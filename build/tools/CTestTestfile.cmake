# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_text_run "/root/repo/build/tools/asyncmac_cli" "--protocol=ca-arrow" "--rho=0.6" "--horizon=5000")
set_tests_properties(cli_text_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_json_run "/root/repo/build/tools/asyncmac_cli" "--protocol=ao-arrow" "--json" "--horizon=5000")
set_tests_properties(cli_json_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_run "/root/repo/build/tools/asyncmac_cli" "--protocol=ca-arrow" "--trace=20" "--horizon=50")
set_tests_properties(cli_trace_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/asyncmac_cli" "--bogus=1")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
