# Empty dependencies file for asyncmac_cli.
# This may be replaced when dependencies are built.
