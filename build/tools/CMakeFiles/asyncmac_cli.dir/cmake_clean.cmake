file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_cli.dir/asyncmac_cli.cpp.o"
  "CMakeFiles/asyncmac_cli.dir/asyncmac_cli.cpp.o.d"
  "asyncmac_cli"
  "asyncmac_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
