# Empty dependencies file for grid_report.
# This may be replaced when dependencies are built.
