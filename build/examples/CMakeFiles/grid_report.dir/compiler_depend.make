# Empty compiler generated dependencies file for grid_report.
# This may be replaced when dependencies are built.
