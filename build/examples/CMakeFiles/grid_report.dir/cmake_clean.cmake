file(REMOVE_RECURSE
  "CMakeFiles/grid_report.dir/grid_report.cpp.o"
  "CMakeFiles/grid_report.dir/grid_report.cpp.o.d"
  "grid_report"
  "grid_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
