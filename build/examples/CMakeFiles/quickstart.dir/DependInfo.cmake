
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/asyncmac_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/asyncmac_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/asyncmac_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asyncmac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncmac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asyncmac_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/asyncmac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/asyncmac_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asyncmac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
