# Empty dependencies file for unknown_r_demo.
# This may be replaced when dependencies are built.
