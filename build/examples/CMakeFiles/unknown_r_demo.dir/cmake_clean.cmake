file(REMOVE_RECURSE
  "CMakeFiles/unknown_r_demo.dir/unknown_r_demo.cpp.o"
  "CMakeFiles/unknown_r_demo.dir/unknown_r_demo.cpp.o.d"
  "unknown_r_demo"
  "unknown_r_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_r_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
