# Empty compiler generated dependencies file for sdn_control_plane.
# This may be replaced when dependencies are built.
