file(REMOVE_RECURSE
  "CMakeFiles/sdn_control_plane.dir/sdn_control_plane.cpp.o"
  "CMakeFiles/sdn_control_plane.dir/sdn_control_plane.cpp.o.d"
  "sdn_control_plane"
  "sdn_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
