file(REMOVE_RECURSE
  "CMakeFiles/msr_explorer.dir/msr_explorer.cpp.o"
  "CMakeFiles/msr_explorer.dir/msr_explorer.cpp.o.d"
  "msr_explorer"
  "msr_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msr_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
