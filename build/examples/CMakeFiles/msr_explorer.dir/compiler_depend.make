# Empty compiler generated dependencies file for msr_explorer.
# This may be replaced when dependencies are built.
