file(REMOVE_RECURSE
  "CMakeFiles/bench_ca_arrow.dir/bench_ca_arrow.cpp.o"
  "CMakeFiles/bench_ca_arrow.dir/bench_ca_arrow.cpp.o.d"
  "bench_ca_arrow"
  "bench_ca_arrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ca_arrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
