# Empty compiler generated dependencies file for bench_ca_arrow.
# This may be replaced when dependencies are built.
