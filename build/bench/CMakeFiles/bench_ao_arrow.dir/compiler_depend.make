# Empty compiler generated dependencies file for bench_ao_arrow.
# This may be replaced when dependencies are built.
