file(REMOVE_RECURSE
  "CMakeFiles/bench_ao_arrow.dir/bench_ao_arrow.cpp.o"
  "CMakeFiles/bench_ao_arrow.dir/bench_ao_arrow.cpp.o.d"
  "bench_ao_arrow"
  "bench_ao_arrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ao_arrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
