# Empty compiler generated dependencies file for bench_abs_sst.
# This may be replaced when dependencies are built.
