file(REMOVE_RECURSE
  "CMakeFiles/bench_abs_sst.dir/bench_abs_sst.cpp.o"
  "CMakeFiles/bench_abs_sst.dir/bench_abs_sst.cpp.o.d"
  "bench_abs_sst"
  "bench_abs_sst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abs_sst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
