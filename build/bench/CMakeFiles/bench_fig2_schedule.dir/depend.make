# Empty dependencies file for bench_fig2_schedule.
# This may be replaced when dependencies are built.
