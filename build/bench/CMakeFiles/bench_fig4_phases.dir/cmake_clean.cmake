file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_phases.dir/bench_fig4_phases.cpp.o"
  "CMakeFiles/bench_fig4_phases.dir/bench_fig4_phases.cpp.o.d"
  "bench_fig4_phases"
  "bench_fig4_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
