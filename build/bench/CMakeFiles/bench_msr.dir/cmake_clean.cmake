file(REMOVE_RECURSE
  "CMakeFiles/bench_msr.dir/bench_msr.cpp.o"
  "CMakeFiles/bench_msr.dir/bench_msr.cpp.o.d"
  "bench_msr"
  "bench_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
