# Empty compiler generated dependencies file for bench_msr.
# This may be replaced when dependencies are built.
