file(REMOVE_RECURSE
  "CMakeFiles/bench_unknown_r.dir/bench_unknown_r.cpp.o"
  "CMakeFiles/bench_unknown_r.dir/bench_unknown_r.cpp.o.d"
  "bench_unknown_r"
  "bench_unknown_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unknown_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
