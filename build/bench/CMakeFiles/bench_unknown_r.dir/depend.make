# Empty dependencies file for bench_unknown_r.
# This may be replaced when dependencies are built.
