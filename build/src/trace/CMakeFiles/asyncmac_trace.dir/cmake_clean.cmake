file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_trace.dir/invariants.cpp.o"
  "CMakeFiles/asyncmac_trace.dir/invariants.cpp.o.d"
  "CMakeFiles/asyncmac_trace.dir/recorder.cpp.o"
  "CMakeFiles/asyncmac_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/asyncmac_trace.dir/renderer.cpp.o"
  "CMakeFiles/asyncmac_trace.dir/renderer.cpp.o.d"
  "CMakeFiles/asyncmac_trace.dir/serialize.cpp.o"
  "CMakeFiles/asyncmac_trace.dir/serialize.cpp.o.d"
  "libasyncmac_trace.a"
  "libasyncmac_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
