
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/invariants.cpp" "src/trace/CMakeFiles/asyncmac_trace.dir/invariants.cpp.o" "gcc" "src/trace/CMakeFiles/asyncmac_trace.dir/invariants.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/asyncmac_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/asyncmac_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/renderer.cpp" "src/trace/CMakeFiles/asyncmac_trace.dir/renderer.cpp.o" "gcc" "src/trace/CMakeFiles/asyncmac_trace.dir/renderer.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/asyncmac_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/asyncmac_trace.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asyncmac_util.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/asyncmac_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
