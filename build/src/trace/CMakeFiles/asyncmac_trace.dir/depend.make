# Empty dependencies file for asyncmac_trace.
# This may be replaced when dependencies are built.
