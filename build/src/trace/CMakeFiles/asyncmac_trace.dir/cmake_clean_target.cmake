file(REMOVE_RECURSE
  "libasyncmac_trace.a"
)
