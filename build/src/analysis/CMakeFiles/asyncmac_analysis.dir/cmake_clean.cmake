file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_analysis.dir/experiment.cpp.o"
  "CMakeFiles/asyncmac_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/asyncmac_analysis.dir/msr.cpp.o"
  "CMakeFiles/asyncmac_analysis.dir/msr.cpp.o.d"
  "CMakeFiles/asyncmac_analysis.dir/registry.cpp.o"
  "CMakeFiles/asyncmac_analysis.dir/registry.cpp.o.d"
  "CMakeFiles/asyncmac_analysis.dir/stability.cpp.o"
  "CMakeFiles/asyncmac_analysis.dir/stability.cpp.o.d"
  "libasyncmac_analysis.a"
  "libasyncmac_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
