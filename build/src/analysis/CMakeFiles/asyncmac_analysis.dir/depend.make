# Empty dependencies file for asyncmac_analysis.
# This may be replaced when dependencies are built.
