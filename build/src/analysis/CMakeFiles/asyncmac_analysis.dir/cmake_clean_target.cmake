file(REMOVE_RECURSE
  "libasyncmac_analysis.a"
)
