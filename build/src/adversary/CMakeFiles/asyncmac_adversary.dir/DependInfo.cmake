
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/bucket_validator.cpp" "src/adversary/CMakeFiles/asyncmac_adversary.dir/bucket_validator.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncmac_adversary.dir/bucket_validator.cpp.o.d"
  "/root/repo/src/adversary/collision_forcer.cpp" "src/adversary/CMakeFiles/asyncmac_adversary.dir/collision_forcer.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncmac_adversary.dir/collision_forcer.cpp.o.d"
  "/root/repo/src/adversary/injectors.cpp" "src/adversary/CMakeFiles/asyncmac_adversary.dir/injectors.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncmac_adversary.dir/injectors.cpp.o.d"
  "/root/repo/src/adversary/mirror.cpp" "src/adversary/CMakeFiles/asyncmac_adversary.dir/mirror.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncmac_adversary.dir/mirror.cpp.o.d"
  "/root/repo/src/adversary/slot_policies.cpp" "src/adversary/CMakeFiles/asyncmac_adversary.dir/slot_policies.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncmac_adversary.dir/slot_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asyncmac_util.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/asyncmac_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncmac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asyncmac_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/asyncmac_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
