file(REMOVE_RECURSE
  "libasyncmac_adversary.a"
)
