file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_adversary.dir/bucket_validator.cpp.o"
  "CMakeFiles/asyncmac_adversary.dir/bucket_validator.cpp.o.d"
  "CMakeFiles/asyncmac_adversary.dir/collision_forcer.cpp.o"
  "CMakeFiles/asyncmac_adversary.dir/collision_forcer.cpp.o.d"
  "CMakeFiles/asyncmac_adversary.dir/injectors.cpp.o"
  "CMakeFiles/asyncmac_adversary.dir/injectors.cpp.o.d"
  "CMakeFiles/asyncmac_adversary.dir/mirror.cpp.o"
  "CMakeFiles/asyncmac_adversary.dir/mirror.cpp.o.d"
  "CMakeFiles/asyncmac_adversary.dir/slot_policies.cpp.o"
  "CMakeFiles/asyncmac_adversary.dir/slot_policies.cpp.o.d"
  "libasyncmac_adversary.a"
  "libasyncmac_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
