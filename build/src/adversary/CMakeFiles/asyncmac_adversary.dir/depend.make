# Empty dependencies file for asyncmac_adversary.
# This may be replaced when dependencies are built.
