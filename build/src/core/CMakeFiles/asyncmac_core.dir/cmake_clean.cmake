file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_core.dir/abs.cpp.o"
  "CMakeFiles/asyncmac_core.dir/abs.cpp.o.d"
  "CMakeFiles/asyncmac_core.dir/adaptive_abs.cpp.o"
  "CMakeFiles/asyncmac_core.dir/adaptive_abs.cpp.o.d"
  "CMakeFiles/asyncmac_core.dir/ao_arrow.cpp.o"
  "CMakeFiles/asyncmac_core.dir/ao_arrow.cpp.o.d"
  "CMakeFiles/asyncmac_core.dir/bounds.cpp.o"
  "CMakeFiles/asyncmac_core.dir/bounds.cpp.o.d"
  "CMakeFiles/asyncmac_core.dir/ca_arrow.cpp.o"
  "CMakeFiles/asyncmac_core.dir/ca_arrow.cpp.o.d"
  "libasyncmac_core.a"
  "libasyncmac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
