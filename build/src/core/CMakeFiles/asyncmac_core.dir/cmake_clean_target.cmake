file(REMOVE_RECURSE
  "libasyncmac_core.a"
)
