# Empty dependencies file for asyncmac_core.
# This may be replaced when dependencies are built.
