file(REMOVE_RECURSE
  "libasyncmac_channel.a"
)
