# Empty dependencies file for asyncmac_channel.
# This may be replaced when dependencies are built.
