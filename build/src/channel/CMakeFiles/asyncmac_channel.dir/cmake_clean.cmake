file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_channel.dir/ledger.cpp.o"
  "CMakeFiles/asyncmac_channel.dir/ledger.cpp.o.d"
  "libasyncmac_channel.a"
  "libasyncmac_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
