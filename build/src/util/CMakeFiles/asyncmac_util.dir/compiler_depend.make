# Empty compiler generated dependencies file for asyncmac_util.
# This may be replaced when dependencies are built.
