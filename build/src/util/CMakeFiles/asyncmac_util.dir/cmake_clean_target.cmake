file(REMOVE_RECURSE
  "libasyncmac_util.a"
)
