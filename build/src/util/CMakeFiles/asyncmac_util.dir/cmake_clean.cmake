file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_util.dir/csv.cpp.o"
  "CMakeFiles/asyncmac_util.dir/csv.cpp.o.d"
  "CMakeFiles/asyncmac_util.dir/histogram.cpp.o"
  "CMakeFiles/asyncmac_util.dir/histogram.cpp.o.d"
  "CMakeFiles/asyncmac_util.dir/rng.cpp.o"
  "CMakeFiles/asyncmac_util.dir/rng.cpp.o.d"
  "CMakeFiles/asyncmac_util.dir/table.cpp.o"
  "CMakeFiles/asyncmac_util.dir/table.cpp.o.d"
  "libasyncmac_util.a"
  "libasyncmac_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
