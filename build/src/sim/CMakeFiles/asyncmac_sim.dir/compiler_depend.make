# Empty compiler generated dependencies file for asyncmac_sim.
# This may be replaced when dependencies are built.
