file(REMOVE_RECURSE
  "libasyncmac_sim.a"
)
