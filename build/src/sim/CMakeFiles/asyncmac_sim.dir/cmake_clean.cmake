file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_sim.dir/engine.cpp.o"
  "CMakeFiles/asyncmac_sim.dir/engine.cpp.o.d"
  "CMakeFiles/asyncmac_sim.dir/station.cpp.o"
  "CMakeFiles/asyncmac_sim.dir/station.cpp.o.d"
  "libasyncmac_sim.a"
  "libasyncmac_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
