file(REMOVE_RECURSE
  "libasyncmac_metrics.a"
)
