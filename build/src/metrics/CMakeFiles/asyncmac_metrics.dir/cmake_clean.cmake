file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_metrics.dir/collector.cpp.o"
  "CMakeFiles/asyncmac_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/asyncmac_metrics.dir/json.cpp.o"
  "CMakeFiles/asyncmac_metrics.dir/json.cpp.o.d"
  "libasyncmac_metrics.a"
  "libasyncmac_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
