# Empty compiler generated dependencies file for asyncmac_metrics.
# This may be replaced when dependencies are built.
