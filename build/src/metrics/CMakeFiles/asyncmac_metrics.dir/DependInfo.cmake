
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/asyncmac_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/asyncmac_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/json.cpp" "src/metrics/CMakeFiles/asyncmac_metrics.dir/json.cpp.o" "gcc" "src/metrics/CMakeFiles/asyncmac_metrics.dir/json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asyncmac_util.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/asyncmac_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
