file(REMOVE_RECURSE
  "libasyncmac_baselines.a"
)
