
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aloha.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/aloha.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/aloha.cpp.o.d"
  "/root/repo/src/baselines/mbtf.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/mbtf.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/mbtf.cpp.o.d"
  "/root/repo/src/baselines/rrw.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/rrw.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/rrw.cpp.o.d"
  "/root/repo/src/baselines/silence_tdma.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/silence_tdma.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/silence_tdma.cpp.o.d"
  "/root/repo/src/baselines/sync_binary_le.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/sync_binary_le.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/sync_binary_le.cpp.o.d"
  "/root/repo/src/baselines/tree_resolution.cpp" "src/baselines/CMakeFiles/asyncmac_baselines.dir/tree_resolution.cpp.o" "gcc" "src/baselines/CMakeFiles/asyncmac_baselines.dir/tree_resolution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asyncmac_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncmac_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asyncmac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asyncmac_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/asyncmac_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/asyncmac_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
