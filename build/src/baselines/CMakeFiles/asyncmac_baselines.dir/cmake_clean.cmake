file(REMOVE_RECURSE
  "CMakeFiles/asyncmac_baselines.dir/aloha.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/aloha.cpp.o.d"
  "CMakeFiles/asyncmac_baselines.dir/mbtf.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/mbtf.cpp.o.d"
  "CMakeFiles/asyncmac_baselines.dir/rrw.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/rrw.cpp.o.d"
  "CMakeFiles/asyncmac_baselines.dir/silence_tdma.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/silence_tdma.cpp.o.d"
  "CMakeFiles/asyncmac_baselines.dir/sync_binary_le.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/sync_binary_le.cpp.o.d"
  "CMakeFiles/asyncmac_baselines.dir/tree_resolution.cpp.o"
  "CMakeFiles/asyncmac_baselines.dir/tree_resolution.cpp.o.d"
  "libasyncmac_baselines.a"
  "libasyncmac_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncmac_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
