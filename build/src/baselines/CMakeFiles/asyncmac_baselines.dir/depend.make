# Empty dependencies file for asyncmac_baselines.
# This may be replaced when dependencies are built.
