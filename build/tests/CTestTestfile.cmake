# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_abs[1]_include.cmake")
include("/root/repo/build/tests/test_ao_arrow[1]_include.cmake")
include("/root/repo/build/tests/test_ca_arrow[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_mirror[1]_include.cmake")
include("/root/repo/build/tests/test_collision_forcer[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_channel_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
