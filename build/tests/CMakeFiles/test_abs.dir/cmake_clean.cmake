file(REMOVE_RECURSE
  "CMakeFiles/test_abs.dir/test_abs.cpp.o"
  "CMakeFiles/test_abs.dir/test_abs.cpp.o.d"
  "test_abs"
  "test_abs.pdb"
  "test_abs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
