file(REMOVE_RECURSE
  "CMakeFiles/test_ca_arrow.dir/test_ca_arrow.cpp.o"
  "CMakeFiles/test_ca_arrow.dir/test_ca_arrow.cpp.o.d"
  "test_ca_arrow"
  "test_ca_arrow.pdb"
  "test_ca_arrow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ca_arrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
