# Empty compiler generated dependencies file for test_ao_arrow.
# This may be replaced when dependencies are built.
