file(REMOVE_RECURSE
  "CMakeFiles/test_ao_arrow.dir/test_ao_arrow.cpp.o"
  "CMakeFiles/test_ao_arrow.dir/test_ao_arrow.cpp.o.d"
  "test_ao_arrow"
  "test_ao_arrow.pdb"
  "test_ao_arrow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ao_arrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
