file(REMOVE_RECURSE
  "CMakeFiles/test_channel_fuzz.dir/test_channel_fuzz.cpp.o"
  "CMakeFiles/test_channel_fuzz.dir/test_channel_fuzz.cpp.o.d"
  "test_channel_fuzz"
  "test_channel_fuzz.pdb"
  "test_channel_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
