# Empty compiler generated dependencies file for test_collision_forcer.
# This may be replaced when dependencies are built.
