file(REMOVE_RECURSE
  "CMakeFiles/test_collision_forcer.dir/test_collision_forcer.cpp.o"
  "CMakeFiles/test_collision_forcer.dir/test_collision_forcer.cpp.o.d"
  "test_collision_forcer"
  "test_collision_forcer.pdb"
  "test_collision_forcer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collision_forcer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
