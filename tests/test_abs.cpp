// Tests for ABS (Section III-A): SST correctness — exactly one winner, no
// premature success, slot bounds (Theorem 1), and the structural lemmas —
// across sweeps of n, R, slot policies and participating subsets.
#include <gtest/gtest.h>

#include <set>

#include "adversary/slot_policies.h"
#include "baselines/listen.h"
#include "core/abs.h"
#include "core/bounds.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using core::AbsAutomaton;
using core::AbsProtocol;
using sim::Engine;
using sim::EngineConfig;
using sim::StopCondition;

constexpr Tick U = kTicksPerUnit;

struct SstOutcome {
  StationId winner = kInvalidStation;
  std::uint32_t winners = 0;
  std::uint32_t still_active = 0;
  std::uint64_t winner_slots = 0;
  std::uint64_t max_participant_slots = 0;
  bool solved = false;
  Tick solved_at = 0;
};

// Run SST: `participants` run ABS with one queued message each; the rest
// only listen. Returns the outcome after the first successful
// transmission (or after the timeout).
SstOutcome run_sst(std::uint32_t n, std::uint32_t R,
                   const std::vector<StationId>& participants,
                   const std::string& policy, std::uint64_t seed = 1) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = seed;

  std::set<StationId> part(participants.begin(), participants.end());
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (StationId id = 1; id <= n; ++id) {
    if (part.count(id))
      protocols.push_back(std::make_unique<AbsProtocol>());
    else
      protocols.push_back(std::make_unique<baselines::ListenProtocol>());
  }
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy(policy, n, R, seed),
           asyncmac::testing::sst_messages(participants));

  const std::uint64_t slot_bound = core::abs_slot_bound(n, R);
  StopCondition stop;
  stop.max_time = static_cast<Tick>(10 * slot_bound) *
                  static_cast<Tick>(R) * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  // The predicate may fire on an observer's event before the winner's own
  // slot-end event (same timestamp) is processed; drain the tie so every
  // automaton sees its final feedback.
  e.run(sim::until(e.now()));

  SstOutcome out;
  out.solved = e.channel_stats().successful >= 1;
  out.solved_at = e.now();
  for (StationId id : participants) {
    const auto* abs =
        dynamic_cast<const AbsProtocol&>(e.protocol(id)).automaton();
    if (abs == nullptr) {
      ADD_FAILURE() << "station " << id << " never started";
      continue;
    }
    out.max_participant_slots =
        std::max(out.max_participant_slots, abs->slots());
    switch (abs->outcome()) {
      case AbsAutomaton::Outcome::kWon:
        ++out.winners;
        out.winner = id;
        out.winner_slots = abs->slots();
        break;
      case AbsAutomaton::Outcome::kActive:
        ++out.still_active;
        break;
      case AbsAutomaton::Outcome::kEliminated:
        break;
    }
  }
  return out;
}

// ------------------------------------------------------------ single cases

TEST(Abs, SingleStationWinsAlone) {
  const auto out = run_sst(1, 1, {1}, "sync");
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.winners, 1u);
  EXPECT_EQ(out.winner, 1u);
  // box 1 (1 slot) + threshold1 (bit0 of ID 1 is 1 -> 7 slots) + transmit.
  EXPECT_EQ(out.winner_slots, 9u);
}

TEST(Abs, TwoStationsSyncZeroBitWins) {
  // IDs 1 (LSB 1) and 2 (LSB 0): station 2 listens 3R slots, transmits
  // first; station 1 hears busy and is eliminated.
  const auto out = run_sst(2, 1, {1, 2}, "sync");
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.winner, 2u);
  EXPECT_EQ(out.winner_slots, 5u);  // 1 + 3 + 1 transmit
  EXPECT_EQ(out.solved_at, 5 * U);
}

TEST(Abs, NonParticipantsStayOut) {
  const auto out = run_sst(8, 2, {3, 5}, "perstation");
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.winners, 1u);
  EXPECT_TRUE(out.winner == 3 || out.winner == 5);
}

TEST(Abs, WinnerDeliversItsMessage) {
  EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 2;
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.push_back(std::make_unique<AbsProtocol>());
  protocols.push_back(std::make_unique<AbsProtocol>());
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 2, 2),
           asyncmac::testing::sst_messages({1, 2}));
  StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));  // drain same-timestamp events
  EXPECT_EQ(e.stats().delivered_packets, 1u);
}

// -------------------------------------------------------- property sweeps

struct SweepParam {
  std::uint32_t n;
  std::uint32_t R;
  std::string policy;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  auto p = info.param;
  std::string pol = p.policy;
  for (auto& c : pol)
    if (c == '-') c = '_';
  std::string name = "n";
  name += std::to_string(p.n);
  name += "_R";
  name += std::to_string(p.R);
  name += "_";
  name += pol;
  return name;
}

class AbsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AbsSweep, ExactlyOneWinnerWithinTheoremOneBound) {
  const auto [n, R, policy] = GetParam();
  std::vector<StationId> everyone;
  for (StationId id = 1; id <= n; ++id) everyone.push_back(id);
  const auto out = run_sst(n, R, everyone, policy);
  ASSERT_TRUE(out.solved) << "SST not solved";
  EXPECT_EQ(out.winners, 1u);
  // Theorem 1: O(R^2 log n) slots; our constants give abs_slot_bound.
  EXPECT_LE(out.max_participant_slots, core::abs_slot_bound(n, R));
}

INSTANTIATE_TEST_SUITE_P(
    NRPolicy, AbsSweep,
    ::testing::Values(
        SweepParam{2, 1, "sync"}, SweepParam{2, 2, "perstation"},
        SweepParam{2, 4, "cyclic"}, SweepParam{3, 2, "random"},
        SweepParam{4, 1, "sync"}, SweepParam{4, 2, "perstation"},
        SweepParam{4, 3, "cyclic"}, SweepParam{4, 4, "random"},
        SweepParam{5, 2, "max"}, SweepParam{7, 3, "random"},
        SweepParam{8, 1, "sync"}, SweepParam{8, 2, "cyclic"},
        SweepParam{8, 4, "perstation"}, SweepParam{8, 8, "random"},
        SweepParam{13, 2, "random"}, SweepParam{16, 2, "perstation"},
        SweepParam{16, 4, "cyclic"}, SweepParam{31, 3, "random"},
        SweepParam{32, 2, "cyclic"}, SweepParam{64, 2, "random"},
        SweepParam{64, 4, "perstation"}, SweepParam{128, 2, "random"},
        SweepParam{16, 2, "stretch-tx"}, SweepParam{8, 4, "stretch-tx"},
        SweepParam{16, 2, "max"}, SweepParam{64, 8, "random"}),
    param_name);

class AbsSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbsSeedSweep, RandomPoliciesAlwaysElectExactlyOne) {
  const std::uint64_t seed = GetParam();
  std::vector<StationId> everyone;
  for (StationId id = 1; id <= 12; ++id) everyone.push_back(id);
  const auto out = run_sst(12, 4, everyone, "random", seed);
  ASSERT_TRUE(out.solved);
  EXPECT_EQ(out.winners, 1u);
  EXPECT_LE(out.max_participant_slots, core::abs_slot_bound(12, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------- structural lemmas

TEST(Abs, NoSuccessfulTransmissionBeforeWinnerLemma4Corollary) {
  // During ABS every transmission before the deciding one collides:
  // the count of successful transmissions at the end must be exactly 1.
  for (std::uint32_t R : {1u, 2u, 4u}) {
    std::vector<StationId> everyone;
    for (StationId id = 1; id <= 8; ++id) everyone.push_back(id);
    EngineConfig cfg;
    cfg.n = 8;
    cfg.bound_r = R;
    std::vector<std::unique_ptr<sim::Protocol>> protocols;
    for (StationId id = 1; id <= 8; ++id) {
      (void)id;
      protocols.push_back(std::make_unique<AbsProtocol>());
    }
    Engine e(cfg, std::move(protocols),
             asyncmac::testing::make_slot_policy("perstation", 8, R),
             asyncmac::testing::sst_messages(everyone));
    StopCondition stop;
    stop.max_time = 1000000 * U;
    stop.predicate = [](const Engine& eng) {
      return eng.channel_stats().successful >= 1;
    };
    e.run(stop);
    EXPECT_EQ(e.channel_stats().successful, 1u) << "R=" << R;
  }
}

TEST(Abs, PhaseAlignmentLemma1) {
  // Trace-level check of Lemma 1: alive stations' transmissions within a
  // phase pairwise overlap (no two disjoint transmissions per Lemma 4).
  EngineConfig cfg;
  cfg.n = 6;
  cfg.bound_r = 3;
  cfg.keep_channel_history = true;
  std::vector<StationId> everyone{1, 2, 3, 4, 5, 6};
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (int i = 0; i < 6; ++i)
    protocols.push_back(std::make_unique<AbsProtocol>());
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 6, 3),
           asyncmac::testing::sst_messages(everyone));
  StopCondition stop;
  stop.max_time = 1000000 * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);

  // Collect all transmissions; group into "contention clusters" (maximal
  // sets of transmissions connected by overlap). Lemma 4 implies each
  // cluster's transmissions pairwise intersect in time. Verify pairwise
  // overlap inside every cluster.
  std::vector<channel::Transmission> txs(e.ledger().full_history());
  for (const auto& t : e.ledger().window()) txs.push_back(t);
  ASSERT_FALSE(txs.empty());
  std::vector<std::vector<channel::Transmission>> clusters;
  for (const auto& t : txs) {
    if (!clusters.empty()) {
      auto& last = clusters.back();
      bool touches = false;
      for (const auto& u : last)
        if (channel::intervals_overlap(u.begin, u.end, t.begin, t.end))
          touches = true;
      if (touches) {
        last.push_back(t);
        continue;
      }
    }
    clusters.push_back({t});
  }
  for (const auto& cluster : clusters)
    for (std::size_t i = 0; i < cluster.size(); ++i)
      for (std::size_t j = i + 1; j < cluster.size(); ++j)
        EXPECT_TRUE(channel::intervals_overlap(
            cluster[i].begin, cluster[i].end, cluster[j].begin,
            cluster[j].end))
            << "disjoint transmissions inside one contention cluster";
}

TEST(Abs, SlotsGrowRoughlyLogarithmicallyInN) {
  std::uint64_t prev = 0;
  for (std::uint32_t n : {4u, 16u, 64u}) {
    std::vector<StationId> everyone;
    for (StationId id = 1; id <= n; ++id) everyone.push_back(id);
    const auto out = run_sst(n, 2, everyone, "perstation");
    ASSERT_TRUE(out.solved);
    EXPECT_GE(out.max_participant_slots, prev);  // monotone-ish
    prev = out.max_participant_slots / 4;        // allow slack
  }
}

// ------------------------------------------------------------- ablations

TEST(AbsAblation, UnderestimatedRBreaksElection) {
  // Build ABS automata believing R = 1 while the true bound is 4: the
  // asymmetric thresholds are then too short to separate bit groups and
  // the election may fail (no winner within the R=1 bound) or elect more
  // than one. We assert only that the *correct* parameterization works
  // where the broken one gives no single clean winner in the same time.
  EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 4;
  std::vector<StationId> everyone{1, 2, 3, 4};
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (int i = 0; i < 4; ++i)
    protocols.push_back(std::make_unique<AbsProtocol>(
        core::abs_threshold0(1), core::abs_threshold1(1)));  // wrong R
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 4, 4),
           asyncmac::testing::sst_messages(everyone));
  StopCondition stop;
  stop.max_time = 2000 * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));  // drain same-timestamp events
  std::uint32_t winners = 0;
  std::uint32_t eliminated = 0;
  for (StationId id = 1; id <= 4; ++id) {
    const auto* abs =
        dynamic_cast<const AbsProtocol&>(e.protocol(id)).automaton();
    if (abs && abs->outcome() == AbsAutomaton::Outcome::kWon) ++winners;
    if (abs && abs->outcome() == AbsAutomaton::Outcome::kEliminated)
      ++eliminated;
  }
  // A healthy election ends with exactly one winner and everyone else
  // eliminated by the end of the winner's phase (Theorem 1's proof). The
  // mis-parameterized run must break that: no winner at all, several
  // winners, or stations left dangling in the protocol after a success.
  const bool healthy = (winners == 1) && (winners + eliminated == 4);
  EXPECT_FALSE(healthy)
      << "underestimating R unexpectedly produced a clean election";
}

TEST(AbsAblation, EqualThresholdsLoseTheAsymmetry) {
  // With threshold0 == threshold1 all same-phase stations transmit in
  // near-lockstep and elimination by bit value disappears; at R=1 both
  // stations with complementary LSBs collide instead of separating.
  EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 1;
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (int i = 0; i < 2; ++i)
    protocols.push_back(std::make_unique<AbsProtocol>(3, 3));
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("sync", 2, 1),
           asyncmac::testing::sst_messages({1, 2}));
  StopCondition stop;
  stop.max_total_slots = 12;  // both phase-0 transmissions happen inside
  e.run(stop);
  EXPECT_GE(e.channel_stats().collided, 2u)
      << "symmetric thresholds should collide in phase 0";
}

}  // namespace
}  // namespace asyncmac
