// Differential fuzzing of the channel Ledger against a brute-force
// reference implementation of the Section-II semantics: random
// transmission sets and random query slots, success and feedback compared
// exactly. The reference is deliberately naive (O(n^2) overlap scans) so
// its correctness is evident by inspection.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "channel/ledger.h"
#include "util/rng.h"

namespace asyncmac::channel {
namespace {

constexpr Tick U = kTicksPerUnit;

struct RefTransmission {
  StationId station;
  Tick begin, end;
};

/// Naive reference: success and slot feedback straight from Section II.
struct Reference {
  std::vector<RefTransmission> txs;

  bool successful(std::size_t i) const {
    for (std::size_t j = 0; j < txs.size(); ++j) {
      if (j == i) continue;
      if (intervals_overlap(txs[i].begin, txs[i].end, txs[j].begin,
                            txs[j].end))
        return false;
    }
    return true;
  }

  Feedback feedback(Tick s, Tick t) const {
    bool overlap = false;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (txs[i].end > s && txs[i].end <= t && successful(i))
        return Feedback::kAck;
      if (intervals_overlap(txs[i].begin, txs[i].end, s, t)) overlap = true;
    }
    return overlap ? Feedback::kBusy : Feedback::kSilence;
  }
};

// Generate a random, begin-sorted transmission set with bounded overlap
// structure (several stations, slot lengths in [1, 4] units). Respects
// the engine-guaranteed precondition that one station's transmissions
// never overlap each other (a station occupies one slot at a time).
Reference random_instance(util::Rng& rng, int count) {
  Reference ref;
  constexpr std::size_t kStations = 6;
  Tick begin = 0;
  Tick last_end[kStations + 1] = {};
  for (int i = 0; i < count; ++i) {
    begin += rng.range(0, 3) * (U / 2);
    // Pick a station that is free at `begin`; if all are mid-transmission
    // advance to the earliest release time.
    std::vector<StationId> free;
    Tick earliest = kTickInfinity;
    for (StationId s = 1; s <= kStations; ++s) {
      if (last_end[s] <= begin) free.push_back(s);
      earliest = std::min(earliest, last_end[s]);
    }
    if (free.empty()) {
      begin = earliest;
      for (StationId s = 1; s <= kStations; ++s)
        if (last_end[s] <= begin) free.push_back(s);
    }
    const StationId station = free[rng.below(free.size())];
    const Tick len = rng.range(1, 4) * U;
    ref.txs.push_back({station, begin, begin + len});
    last_end[station] = begin + len;
  }
  return ref;
}

TEST(ChannelFuzz, SuccessFlagsMatchBruteForce) {
  util::Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    const Reference ref = random_instance(rng, 1 + static_cast<int>(rng.below(30)));
    Ledger ledger;
    for (const auto& t : ref.txs) {
      Transmission tx;
      tx.station = t.station;
      tx.begin = t.begin;
      tx.end = t.end;
      ledger.add(tx);
    }
    const Tick horizon = ref.txs.back().end + 10 * U;
    ledger.finalize_until(horizon);
    std::size_t i = 0;
    for (const auto& t : ledger.window()) {
      ASSERT_EQ(t.successful, ref.successful(i))
          << "round " << round << " tx " << i << " [" << t.begin << ","
          << t.end << ")";
      ++i;
    }
  }
}

TEST(ChannelFuzz, FeedbackMatchesBruteForceOnRandomSlots) {
  util::Rng rng(77);
  for (int round = 0; round < 100; ++round) {
    const Reference ref = random_instance(rng, 1 + static_cast<int>(rng.below(20)));
    Ledger ledger;
    for (const auto& t : ref.txs) {
      Transmission tx;
      tx.station = t.station;
      tx.begin = t.begin;
      tx.end = t.end;
      ledger.add(tx);
    }
    const Tick extent = ref.txs.back().end + 4 * U;
    // Random query slots; ledger queries must go in non-decreasing "end"
    // safety order? No — feedback() only requires all transmissions with
    // begin < t to be present, which holds since everything is added.
    for (int q = 0; q < 50; ++q) {
      const Tick s = rng.range(0, extent - 1);
      const Tick t = s + rng.range(1, 4) * (U / 2);
      ASSERT_EQ(ledger.feedback(s, t), ref.feedback(s, t))
          << "round " << round << " slot [" << s << "," << t << ")";
    }
  }
}

TEST(ChannelFuzz, PruningNeverChangesLaterFeedback) {
  util::Rng rng(55);
  for (int round = 0; round < 50; ++round) {
    const Reference ref = random_instance(rng, 25);
    // Two ledgers: one pruned aggressively mid-stream, one never.
    Ledger pruned, whole;
    std::vector<std::pair<Tick, Tick>> queries;
    for (const auto& t : ref.txs) {
      Transmission tx;
      tx.station = t.station;
      tx.begin = t.begin;
      tx.end = t.end;
      pruned.add(tx);
      whole.add(tx);
      // Query a slot ending just after this transmission's begin.
      queries.emplace_back(t.begin, t.begin + U);
    }
    // Interleave queries with pruning at each query's start.
    for (const auto& [s, t] : queries) {
      ASSERT_EQ(pruned.feedback(s, t), whole.feedback(s, t));
      pruned.prune_before(s);  // everything ending before the current slot
    }
    EXPECT_LE(pruned.window().size(), whole.window().size());
  }
}

}  // namespace
}  // namespace asyncmac::channel
