// tests/sim_helpers.h
//
// Shared construction helpers for protocol/engine tests and benches.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "sim/engine.h"
#include "util/ratio.h"
#include "util/types.h"

namespace asyncmac::testing {

/// n copies of protocol T (one per station).
template <typename T, typename... Args>
std::vector<std::unique_ptr<sim::Protocol>> make_protocols(std::uint32_t n,
                                                           Args&&... args) {
  std::vector<std::unique_ptr<sim::Protocol>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(std::make_unique<T>(args...));
  return out;
}

/// A slot policy by short name (see adversary::make_slot_policy).
inline std::unique_ptr<sim::SlotPolicy> make_slot_policy(
    const std::string& name, std::uint32_t n, std::uint32_t R,
    std::uint64_t seed = 1) {
  return adversary::make_slot_policy(name, n, R, seed);
}

/// All slot-policy names used by the parameterized sweeps.
inline std::vector<std::string> all_policies() {
  return adversary::slot_policy_names();
}

/// One packet per listed station at time 0 (SST "messages").
inline std::unique_ptr<adversary::ScriptedInjector> sst_messages(
    const std::vector<StationId>& stations) {
  std::vector<sim::Injection> script;
  for (StationId s : stations) script.push_back({0, s, kTicksPerUnit});
  return std::make_unique<adversary::ScriptedInjector>(std::move(script));
}

}  // namespace asyncmac::testing
