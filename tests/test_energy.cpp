// The energy subsystem's contract (energy/meter.h, docs/ENERGY.md):
// metering is observation-only — enabling it changes no RunStats, trace
// or fuzz-verdict byte — while the meter itself is exact (slot counts
// reconcile with the engine's own accounting), survives checkpoint/
// resume at arbitrary kill points, and agrees byte-for-byte between the
// scalar engine and every cohort lane.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "energy/meter.h"
#include "metrics/json.h"
#include "sim/cohort_engine.h"
#include "sim/engine.h"
#include "snapshot/checkpoint.h"
#include "snapshot/io.h"
#include "trace/serialize.h"
#include "verify/campaign.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using energy::EnergyMeter;
using energy::EnergyModel;

// ------------------------------------------------------------- meter unit

TEST(EnergyMeter, ChargesAreExactLinearCombinations) {
  EnergyMeter m(3);
  m.add_transmit(1, 5);
  m.add_idle(1, /*queue_empty=*/false, 7);
  m.add_idle(2, /*queue_empty=*/true, 11);
  m.add_transmit(3);

  const EnergyModel model{true, 4, 2, 1};
  EXPECT_EQ(m.station_charge(model, 1), 5u * 4 + 7u * 2);
  EXPECT_EQ(m.station_charge(model, 2), 11u * 1);
  EXPECT_EQ(m.station_charge(model, 3), 4u);
  EXPECT_EQ(m.total_charge(model), 34u + 11u + 4u);
  EXPECT_EQ(m.peak_station_charge(model), 34u);

  // Re-pricing the same counts under a different cost vector needs no
  // re-simulation — the meter stores counts, not charges.
  const EnergyModel free_listen{true, 4, 0, 0};
  EXPECT_EQ(m.station_charge(free_listen, 1), 20u);
  EXPECT_EQ(m.station_charge(free_listen, 2), 0u);
}

TEST(EnergyMeter, ResetAndEqualityTrackCounts) {
  EnergyMeter a(2), b(2);
  EXPECT_EQ(a, b);
  a.add_transmit(2, 3);
  EXPECT_NE(a, b);
  b.add_transmit(2, 3);
  EXPECT_EQ(a, b);
  a.reset(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.tx_slots(2), 0u);
}

TEST(EnergyMeter, SnapshotRoundTripsExactly) {
  EnergyMeter m(4);
  m.add_transmit(1, 9);
  m.add_idle(2, false, 3);
  m.add_idle(4, true, 100);

  snapshot::Writer w;
  m.save_state(w);
  snapshot::Reader r(w.buffer());
  EnergyMeter loaded(4);
  loaded.load_state(r);
  r.expect_end();
  EXPECT_EQ(loaded, m);
}

TEST(EnergyMeter, LoadRejectsStationCountMismatch) {
  EnergyMeter m(3);
  snapshot::Writer w;
  m.save_state(w);
  snapshot::Reader r(w.buffer());
  EnergyMeter other(2);
  EXPECT_THROW(other.load_state(r), snapshot::SnapshotError);
}

// --------------------------------------------------------- observation-only

/// A scenario exercising contention (collisions, queue drain, busy
/// feedback) so all three billing classes occur.
verify::Scenario contended_scenario(const std::string& protocol) {
  verify::Scenario s;
  s.protocol = protocol;
  s.n = 4;
  s.bound_r = 2;
  s.slot_policy = "perstation";
  s.horizon_units = 300;
  s.seed = 77;
  s.injector.kind = "saturating";
  s.injector.rho = util::Ratio(2, 5);
  s.injector.burst_ticks = 8 * kTicksPerUnit;
  s.injector.pattern = "roundrobin";
  s.injector.seed = 78;
  return s;
}

/// Trace + stats JSON, deliberately *without* the energy block — the
/// bytes that must not move when metering is enabled.
std::string render_artifacts(const verify::Scenario& s,
                             const sim::Engine& engine) {
  std::string out =
      trace::serialize_trace({s.n, s.bound_r}, engine.trace().slots());
  out += metrics::to_json(engine.stats(), &engine.channel_stats());
  return out;
}

TEST(EnergyDeterminism, MeteringChangesNoRunStatsOrTraceByte) {
  for (const char* protocol : {"ao-arrow", "beb", "csma-lbt"}) {
    verify::Scenario off = contended_scenario(protocol);
    verify::Scenario on = off;
    on.energy_enabled = true;
    on.energy_cost_transmit = 3;
    on.energy_cost_listen = 2;
    on.energy_cost_sleep = 1;

    auto engine_off = verify::run_scenario(off);
    auto engine_on = verify::run_scenario(on);

    EXPECT_EQ(render_artifacts(off, *engine_off),
              render_artifacts(on, *engine_on))
        << protocol;

    // Metering-off leaves the meter untouched; metering-on billed every
    // completed slot of every station exactly once.
    const EnergyMeter& idle = engine_off->energy_meter();
    const EnergyModel priced{true, 1, 1, 1};
    EXPECT_EQ(idle.total_charge(priced), 0u) << protocol;

    const EnergyMeter& meter = engine_on->energy_meter();
    const auto& stats = engine_on->stats();
    ASSERT_EQ(meter.n(), stats.station.size());
    for (StationId i = 1; i <= meter.n(); ++i) {
      const auto& st = stats.station[i - 1];
      EXPECT_EQ(meter.tx_slots(i) + meter.listen_slots(i) +
                    meter.sleep_slots(i),
                st.slots)
          << protocol << " station " << i;
      EXPECT_EQ(meter.tx_slots(i), st.transmit_slots)
          << protocol << " station " << i;
    }
    EXPECT_GT(meter.total_charge(engine_on->energy_model()), 0u) << protocol;
  }
}

TEST(EnergyDeterminism, FuzzVerdictsAreUnchangedByMetering) {
  // Generated scenarios with metering force-enabled must produce the
  // same verdict text as with metering force-disabled: energy never
  // feeds back into any oracle-visible behavior.
  const verify::ScenarioGen gen(909);
  int tested = 0;
  for (std::uint64_t i = 0; tested < 4 && i < 64; ++i) {
    verify::Scenario s = gen.generate(i);
    if (s.horizon_units > 150) continue;
    verify::Scenario off = s, on = s;
    off.energy_enabled = false;
    on.energy_enabled = true;
    on.energy_cost_transmit = 5;
    const auto r_off = verify::run_case(off);
    const auto r_on = verify::run_case(on);
    EXPECT_EQ(r_off.ok, r_on.ok) << s.describe();
    EXPECT_EQ(r_off.what, r_on.what) << s.describe();
    ++tested;
  }
  EXPECT_EQ(tested, 4);
}

// -------------------------------------------------------- checkpoint/resume

snapshot::RunSpec energy_spec(std::uint64_t seed) {
  snapshot::RunSpec spec;
  spec.protocol = "rrw";
  spec.n = 3;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(1, 2);
  spec.injector.burst_ticks = 6 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.injector.seed = seed + 1;
  spec.seed = seed;
  spec.horizon_units = 250;
  spec.record_trace = true;
  spec.energy_enabled = true;
  spec.energy_cost_transmit = 7;
  spec.energy_cost_listen = 2;
  spec.energy_cost_sleep = 1;
  return spec;
}

TEST(EnergyCheckpoint, MeterSurvivesKillAnywhereResume) {
  const snapshot::RunSpec spec = energy_spec(31);
  auto control = snapshot::build_engine(spec);
  control->run(sim::until(spec.horizon_units * kTicksPerUnit));

  for (const std::uint64_t kill : {std::uint64_t{1}, std::uint64_t{23},
                                   std::uint64_t{171}}) {
    const std::string path =
        "energy_ckpt_" + std::to_string(kill) + ".snap";
    {
      auto engine = snapshot::build_engine(spec);
      sim::StopCondition stop =
          sim::until(spec.horizon_units * kTicksPerUnit);
      stop.max_total_slots = kill;
      engine->run(stop);
      snapshot::write_checkpoint(path, spec, *engine);
    }
    snapshot::ResumedRun run = snapshot::resume_checkpoint(path);
    EXPECT_EQ(run.spec, spec);
    run.engine->run(sim::until(spec.horizon_units * kTicksPerUnit));
    EXPECT_EQ(run.engine->energy_meter(), control->energy_meter())
        << "killed at " << kill;
    EXPECT_EQ(metrics::to_json(run.engine->stats(), nullptr, true,
                               &run.engine->energy_meter(),
                               &run.engine->energy_model()),
              metrics::to_json(control->stats(), nullptr, true,
                               &control->energy_meter(),
                               &control->energy_model()))
        << "killed at " << kill;
    std::remove(path.c_str());
  }
}

// ------------------------------------------------------------- cohort lanes

TEST(EnergyCohort, LanesMatchTheirScalarTwinsExactly) {
  // Two lane shapes: a lockstep-eligible scenario (ca-arrow + sync) and
  // a scalar-fallback one (rrw + perstation); both with metering on.
  std::vector<verify::Scenario> lanes;
  {
    verify::Scenario s = contended_scenario("ca-arrow");
    s.slot_policy = "sync";
    s.bound_r = 1;
    s.energy_enabled = true;
    s.energy_cost_transmit = 4;
    s.energy_cost_listen = 2;
    s.energy_cost_sleep = 1;
    lanes.push_back(s);
  }
  {
    verify::Scenario s = contended_scenario("rrw");
    s.seed = 123;
    s.energy_enabled = true;
    s.energy_cost_transmit = 2;
    lanes.push_back(s);
  }

  std::vector<sim::LaneBuilder> builders;
  for (const auto& s : lanes)
    builders.push_back([s] { return verify::scenario_materials(s); });
  sim::CohortEngine cohort(std::move(builders));
  const Tick horizon = lanes[0].horizon_units * kTicksPerUnit;
  cohort.run(sim::until(horizon));

  for (std::size_t k = 0; k < lanes.size(); ++k) {
    auto scalar = verify::build_engine(lanes[k]);
    scalar->run(sim::until(horizon));
    EXPECT_EQ(cohort.energy_meter(k), scalar->energy_meter())
        << "lane " << k;
    EXPECT_GT(cohort.energy_meter(k).total_charge(scalar->energy_model()),
              0u)
        << "lane " << k;
  }
}

}  // namespace
}  // namespace asyncmac
