// Tests for trace text serialization / parsing / verification and the
// JSON stats export.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "core/ca_arrow.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "trace/serialize.h"

namespace asyncmac {
namespace {

using trace::ParsedTrace;
using trace::SlotRecord;
using trace::TraceHeader;

constexpr Tick U = kTicksPerUnit;

std::vector<SlotRecord> tiny_trace() {
  return {
      {1, 1, 0, U, SlotAction::kTransmitPacket, Feedback::kAck},
      {2, 1, 0, 2 * U, SlotAction::kListen, Feedback::kAck},
      {1, 2, U, 2 * U, SlotAction::kListen, Feedback::kSilence},
      {2, 2, 2 * U, 3 * U, SlotAction::kTransmitControl, Feedback::kAck},
      {1, 3, 2 * U, 3 * U, SlotAction::kListen, Feedback::kAck},
  };
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto original = tiny_trace();
  const std::string text =
      trace::serialize_trace({.n = 2, .bound_r = 2}, original);
  const ParsedTrace parsed = trace::parse_trace(text);
  EXPECT_EQ(parsed.header.n, 2u);
  EXPECT_EQ(parsed.header.bound_r, 2u);
  ASSERT_EQ(parsed.slots.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.slots[i].station, original[i].station);
    EXPECT_EQ(parsed.slots[i].index, original[i].index);
    EXPECT_EQ(parsed.slots[i].begin, original[i].begin);
    EXPECT_EQ(parsed.slots[i].end, original[i].end);
    EXPECT_EQ(parsed.slots[i].action, original[i].action);
    EXPECT_EQ(parsed.slots[i].feedback, original[i].feedback);
  }
}

TEST(Serialize, VerifyAcceptsConsistentTrace) {
  const std::string text =
      trace::serialize_trace({.n = 2, .bound_r = 2}, tiny_trace());
  const auto res = trace::verify_trace_text(text);
  EXPECT_TRUE(res) << res.what;
}

TEST(Serialize, VerifyRejectsTamperedFeedback) {
  auto slots = tiny_trace();
  slots[1].feedback = Feedback::kSilence;  // listener really heard the ack
  const std::string text =
      trace::serialize_trace({.n = 2, .bound_r = 2}, slots);
  const auto res = trace::verify_trace_text(text);
  EXPECT_FALSE(res);
  EXPECT_NE(res.what.find("replays"), std::string::npos);
}

TEST(Serialize, VerifyRejectsTamperedTimes) {
  auto slots = tiny_trace();
  slots[2].begin += 5;  // breaks contiguity
  const std::string text =
      trace::serialize_trace({.n = 2, .bound_r = 2}, slots);
  EXPECT_FALSE(trace::verify_trace_text(text));
}

TEST(Serialize, ParserRejectsGarbage) {
  EXPECT_THROW(trace::parse_trace(""), std::invalid_argument);
  EXPECT_THROW(trace::parse_trace("not-a-trace v1 n=2 r=2\n"),
               std::invalid_argument);
  EXPECT_THROW(
      trace::parse_trace("asyncmac-trace v1 n=2 r=2\nslot 1 1 0\n"),
      std::invalid_argument);
  EXPECT_THROW(trace::parse_trace(
                   "asyncmac-trace v1 n=2 r=2\nslot 1 1 0 720720 fly ack\n"),
               std::invalid_argument);
  EXPECT_THROW(trace::parse_trace(
                   "asyncmac-trace v1 n=2 r=2\nslot 9 1 0 720720 tx ack\n"),
               std::invalid_argument);
}

TEST(Serialize, EndToEndEngineTraceRoundTripsAndVerifies) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<core::CaArrowProtocol>(3),
                asyncmac::testing::make_slot_policy("perstation", 3, 2),
                std::make_unique<adversary::SaturatingInjector>(
                    util::Ratio(1, 2), 8 * U,
                    adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(2000 * U));
  const std::string text =
      trace::serialize_trace({.n = 3, .bound_r = 2}, e.trace().slots());
  EXPECT_GT(text.size(), 10000u);
  const auto res = trace::verify_trace_text(text);
  EXPECT_TRUE(res) << res.what;
}

// --------------------------------------------------------------- JSON

TEST(Json, ContainsAllTopLevelFields) {
  metrics::Collector c(2);
  c.on_injection(1, U, 0);
  c.on_delivery(1, U, 0, U, 3 * U);
  c.on_slot_end(1, SlotAction::kTransmitPacket);
  const std::string json = metrics::to_json(c.stats());
  for (const char* key :
       {"ticks_per_unit", "injected_packets", "delivered_packets",
        "queued_cost", "total_slots", "latency", "stations"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(Json, ChannelSectionOptional) {
  metrics::Collector c(1);
  channel::LedgerStats ch;
  ch.transmissions = 7;
  const std::string with = metrics::to_json(c.stats(), &ch);
  EXPECT_NE(with.find("\"channel\""), std::string::npos);
  EXPECT_NE(with.find("\"transmissions\": 7"), std::string::npos);
  const std::string without = metrics::to_json(c.stats());
  EXPECT_EQ(without.find("\"channel\""), std::string::npos);
}

TEST(Json, StationsCanBeOmitted) {
  metrics::Collector c(3);
  const std::string slim = metrics::to_json(c.stats(), nullptr, false);
  EXPECT_EQ(slim.find("stations"), std::string::npos);
}

TEST(Json, BalancedBracesAndBrackets) {
  metrics::Collector c(4);
  for (int i = 0; i < 10; ++i)
    c.on_injection(1 + static_cast<StationId>(i % 4), U, 0);
  channel::LedgerStats ch;
  const std::string json = metrics::to_json(c.stats(), &ch);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace asyncmac
