// The k-restrained channel (arXiv 1808.02216, channel/transmission.h):
// at most k concurrent on-air transmissions are admitted; excess ones
// jam the medium or are rejected at the radio. Pinned here: the exact
// jam/reject semantics at the Ledger level, agreement between the
// optimized Ledger and the naive ReferenceChannel across an adversarial
// protocol x (k, mode) matrix, repro JSON round-trips (including
// old-format files without the channel fields), ScenarioGen coverage of
// the restrained/energy parameter space, checkpoint/resume and the live
// stack's parity with the simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "live/virtual_net.h"
#include "metrics/json.h"
#include "snapshot/checkpoint.h"
#include "trace/serialize.h"
#include "verify/campaign.h"
#include "verify/reference_channel.h"
#include "verify/repro.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using channel::Admission;
using channel::Ledger;
using channel::RestrainedSpec;
using channel::Transmission;

Transmission tx(StationId station, Tick begin, Tick end) {
  Transmission t;
  t.station = station;
  t.begin = begin;
  t.end = end;
  return t;
}

// -------------------------------------------------------- ledger semantics

TEST(RestrainedLedger, JamModeExcessTransmissionsDestroyEveryOverlap) {
  Ledger ledger(/*keep_history=*/true, RestrainedSpec{1, /*jam=*/true});
  ledger.add(tx(1, 0, 10));
  ledger.add(tx(2, 5, 15));  // over capacity: jams, still on the medium
  ledger.finalize_until(20);

  const auto& w = ledger.window();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].admission, static_cast<std::uint8_t>(Admission::kOk));
  EXPECT_EQ(w[1].admission, static_cast<std::uint8_t>(Admission::kJammed));
  // The jammed entry occupies the medium, so BOTH collide.
  EXPECT_FALSE(w[0].successful);
  EXPECT_FALSE(w[1].successful);
  EXPECT_EQ(ledger.stats().jammed, 1u);
  EXPECT_EQ(ledger.stats().rejected, 0u);
  EXPECT_EQ(ledger.stats().successful, 0u);
  EXPECT_EQ(ledger.stats().collided, 2u);
}

TEST(RestrainedLedger, RejectModeExcessTransmissionsNeverReachTheMedium) {
  Ledger ledger(/*keep_history=*/true, RestrainedSpec{1, /*jam=*/false});
  ledger.add(tx(1, 0, 10));
  ledger.add(tx(2, 5, 15));  // over capacity: suppressed at the radio
  ledger.finalize_until(20);

  const auto& w = ledger.window();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1].admission, static_cast<std::uint8_t>(Admission::kRejected));
  // The rejected entry is invisible: the admitted one succeeds solo.
  EXPECT_TRUE(w[0].successful);
  EXPECT_TRUE(ledger.transmission_successful(1, 10));
  EXPECT_FALSE(w[1].successful);
  EXPECT_TRUE(w[1].decided);  // decided-unsuccessful right at add()
  EXPECT_EQ(ledger.stats().rejected, 1u);
  EXPECT_EQ(ledger.stats().successful, 1u);
  // Rejected counts as collided too: successful + collided == decided.
  EXPECT_EQ(ledger.stats().collided, 1u);
}

TEST(RestrainedLedger, RejectedTransmissionsAreInvisibleToFeedback) {
  Ledger ledger(/*keep_history=*/true, RestrainedSpec{1, /*jam=*/false});
  ledger.add(tx(1, 0, 10));
  ledger.add(tx(2, 5, 15));  // rejected

  // [10, 15) is touched only by the rejected interval: silence, not busy.
  EXPECT_EQ(ledger.feedback(10, 15), Feedback::kSilence);
  // Station 1's own slot hears its solo success as an ack.
  EXPECT_EQ(ledger.feedback(0, 10), Feedback::kAck);
}

TEST(RestrainedLedger, CapacityTwoAdmitsPairsAndJamsTheThird) {
  Ledger ledger(/*keep_history=*/true, RestrainedSpec{2, /*jam=*/true});
  ledger.add(tx(1, 0, 10));
  ledger.add(tx(2, 2, 12));
  ledger.add(tx(3, 4, 14));  // third concurrent: over capacity
  // A later transmission beginning after the first two ended is admitted
  // again — admission is an on-air census, not a global quota.
  ledger.add(tx(1, 20, 30));
  ledger.finalize_until(40);

  const auto& w = ledger.window();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0].admission, static_cast<std::uint8_t>(Admission::kOk));
  EXPECT_EQ(w[1].admission, static_cast<std::uint8_t>(Admission::kOk));
  EXPECT_EQ(w[2].admission, static_cast<std::uint8_t>(Admission::kJammed));
  EXPECT_EQ(w[3].admission, static_cast<std::uint8_t>(Admission::kOk));
  EXPECT_TRUE(w[3].successful);  // solo after the pile-up cleared
}

// --------------------------------------------- ledger vs reference channel

TEST(RestrainedDifferential, LedgerMatchesNaiveReferenceOnDenseStreams) {
  // A dense synthetic stream (no engine in the loop): every combination
  // of overlap depth the census can see, replayed through both
  // implementations under all four restrained configurations.
  const std::vector<Transmission> stream = {
      tx(1, 0, 8),   tx(2, 1, 6),   tx(3, 2, 10),  tx(4, 8, 12),
      tx(1, 9, 15),  tx(2, 12, 20), tx(3, 12, 14), tx(4, 13, 21),
      tx(1, 22, 25), tx(2, 22, 30), tx(3, 23, 27), tx(4, 26, 31),
  };
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    for (const bool jam : {true, false}) {
      const RestrainedSpec spec{k, jam};
      Ledger ledger(/*keep_history=*/true, spec);
      verify::ReferenceChannel ref;
      ref.set_restrained(spec);
      for (const Transmission& t : stream) {
        ledger.add(t);
        ref.add(t);
      }
      ledger.finalize_until(100);
      ref.cache_success();

      const auto& w = ledger.window();
      ASSERT_EQ(w.size(), stream.size());
      for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(w[i].admission, static_cast<std::uint8_t>(ref.admission(i)))
            << "k=" << k << " jam=" << jam << " tx " << i;
        EXPECT_EQ(w[i].successful, ref.successful(i))
            << "k=" << k << " jam=" << jam << " tx " << i;
      }
    }
  }
}

TEST(RestrainedDifferential, EngineMatrixPassesTheChannelOracle) {
  // End-to-end differential matrix: contention-heavy protocols under
  // every restrained mode, through verify::run_case — which replays the
  // trace through a fresh Ledger AND the O(T^2) reference, cross-checks
  // admissions, and runs the cohort-equivalence oracle on top.
  std::uint64_t jammed = 0, rejected = 0;
  for (const char* protocol : {"aloha", "beb", "csma-lbt"}) {
    for (const std::uint32_t k : {1u, 2u}) {
      for (const bool jam : {true, false}) {
        verify::Scenario s;
        s.protocol = protocol;
        s.n = 4;
        s.bound_r = 2;
        s.slot_policy = "perstation";
        s.horizon_units = 120;
        s.seed = 1000 + k * 10 + (jam ? 1 : 0);
        s.injector.kind = "saturating";
        s.injector.rho = util::Ratio(4, 5);
        s.injector.burst_ticks = 8 * kTicksPerUnit;
        s.injector.pattern = "roundrobin";
        s.injector.seed = s.seed + 1;
        s.restrained_k = k;
        s.restrained_jam = jam;

        const auto r = verify::run_case(s);
        EXPECT_TRUE(r.ok) << s.describe() << "\n" << r.what;

        const auto engine = verify::run_scenario(s);
        jammed += engine->ledger().stats().jammed;
        rejected += engine->ledger().stats().rejected;
      }
    }
  }
  // The matrix actually exercised both overflow paths.
  EXPECT_GT(jammed, 0u);
  EXPECT_GT(rejected, 0u);
}

// ------------------------------------------------------- repro round-trip

TEST(RestrainedRepro, JsonRoundTripsChannelAndEnergyFields) {
  verify::Scenario s;
  s.protocol = "aloha";
  s.n = 3;
  s.bound_r = 2;
  s.slot_policy = "perstation";
  s.horizon_units = 60;
  s.seed = 5;
  s.injector.kind = "saturating";
  s.injector.rho = util::Ratio(1, 2);
  s.injector.burst_ticks = 4 * kTicksPerUnit;
  s.injector.pattern = "single";
  s.injector.single_target = 2;
  s.injector.seed = 6;
  s.restrained_k = 2;
  s.restrained_jam = false;
  s.energy_enabled = true;
  s.energy_cost_transmit = 9;
  s.energy_cost_listen = 3;
  s.energy_cost_sleep = 1;

  const verify::Repro repro = verify::make_repro(s, "synthetic violation");
  ASSERT_FALSE(repro.trace_text.empty());
  const verify::Repro parsed = verify::parse_repro_json(verify::to_json(repro));
  EXPECT_EQ(parsed.scenario, s);
  EXPECT_EQ(parsed.violation, repro.violation);
  EXPECT_EQ(parsed.trace_text, repro.trace_text);

  // And the parsed scenario replays the embedded trace bit-for-bit.
  const verify::ReplayOutcome outcome = verify::replay_repro(parsed);
  EXPECT_TRUE(outcome.trace_matches);
}

TEST(RestrainedRepro, OldFormatFilesWithoutChannelFieldsStillParse) {
  // A pre-restrained, pre-energy repro file: the channel fields are
  // absent and must default to the unrestrained, unmetered channel those
  // files were recorded on.
  const std::string old_json = R"({
  "format": "asyncmac-fuzz-repro",
  "version": 1,
  "violation": "",
  "scenario": {
    "protocol": "ao-arrow",
    "n": 2,
    "r": 2,
    "slot_policy": "perstation",
    "horizon_units": 50,
    "seed": 7,
    "case_seed": 0,
    "injector": {
      "kind": "saturating",
      "rho_num": 1,
      "rho_den": 2,
      "burst_ticks": 4000,
      "pattern": "roundrobin",
      "single_target": 1,
      "period_ticks": 8000,
      "drain_a": 0,
      "drain_b": 0,
      "seed": 8
    }
  },
  "trace": ""
})";
  const verify::Repro parsed = verify::parse_repro_json(old_json);
  EXPECT_EQ(parsed.scenario.restrained_k, 0u);
  EXPECT_TRUE(parsed.scenario.restrained_jam);
  EXPECT_FALSE(parsed.scenario.energy_enabled);
  EXPECT_EQ(parsed.scenario.energy_cost_transmit, 1u);
  EXPECT_EQ(parsed.scenario.energy_cost_listen, 1u);
  EXPECT_EQ(parsed.scenario.energy_cost_sleep, 0u);
}

// ----------------------------------------------------- generator coverage

TEST(RestrainedScenarioGen, SamplesTheChannelVariantSpace) {
  const verify::ScenarioGen gen(424242);
  int restrained = 0, jam = 0, reject = 0, energy = 0, csma = 0;
  const std::uint64_t kCases = 300;
  for (std::uint64_t i = 0; i < kCases; ++i) {
    const verify::Scenario s = gen.generate(i);
    if (s.restrained_k != 0) {
      ++restrained;
      ++(s.restrained_jam ? jam : reject);
      EXPECT_GE(s.restrained_k, 1u);
      EXPECT_LE(s.restrained_k, s.n);
    }
    if (s.energy_enabled) {
      ++energy;
      EXPECT_GE(s.energy_cost_transmit, 1u);
      EXPECT_LE(s.energy_cost_transmit, 8u);
    }
    if (s.protocol == "csma-lbt") ++csma;
    // Regeneration from the case seed is exact, channel fields included.
    EXPECT_EQ(s, verify::scenario_from_seed(s.case_seed));
  }
  // ~30% draws each; demand a loose floor so the test is not brittle.
  EXPECT_GT(restrained, 50);
  EXPECT_GT(jam, 10);
  EXPECT_GT(reject, 10);
  EXPECT_GT(energy, 50);
  EXPECT_GT(csma, 10);  // the new baseline is actually in the pool
}

// ---------------------------------------------------- checkpoint + live

snapshot::RunSpec restrained_spec(bool jam) {
  snapshot::RunSpec spec;
  spec.protocol = "aloha";
  spec.n = 4;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(3, 4);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.injector.seed = 91;
  spec.seed = 90;
  spec.horizon_units = 200;
  spec.record_trace = true;
  spec.restrained_k = 1;
  spec.restrained_jam = jam;
  return spec;
}

std::string render(const snapshot::RunSpec& spec, const sim::Engine& engine) {
  std::string out = trace::serialize_trace({spec.n, spec.bound_r},
                                           engine.trace().slots());
  out += metrics::to_json(engine.stats(), &engine.channel_stats());
  return out;
}

TEST(RestrainedCheckpoint, ResumeIsByteIdenticalInBothModes) {
  for (const bool jam : {true, false}) {
    const snapshot::RunSpec spec = restrained_spec(jam);
    auto control = snapshot::build_engine(spec);
    control->run(sim::until(spec.horizon_units * kTicksPerUnit));
    // The run actually hit the admission path it claims to cover.
    EXPECT_GT(jam ? control->ledger().stats().jammed
                  : control->ledger().stats().rejected,
              0u);

    const std::string path =
        std::string("restrained_ckpt_") + (jam ? "jam" : "reject") + ".snap";
    {
      auto engine = snapshot::build_engine(spec);
      sim::StopCondition stop =
          sim::until(spec.horizon_units * kTicksPerUnit);
      stop.max_total_slots = 37;
      engine->run(stop);
      snapshot::write_checkpoint(path, spec, *engine);
    }
    snapshot::ResumedRun run = snapshot::resume_checkpoint(path);
    EXPECT_EQ(run.spec, spec);
    run.engine->run(sim::until(spec.horizon_units * kTicksPerUnit));
    EXPECT_EQ(render(spec, *run.engine), render(spec, *control))
        << (jam ? "jam" : "reject");
    std::remove(path.c_str());
  }
}

TEST(RestrainedLive, VirtualStackMatchesTheSimulator) {
  snapshot::RunSpec spec = restrained_spec(/*jam=*/true);
  spec.horizon_units = 120;
  spec.energy_enabled = true;
  spec.energy_cost_transmit = 3;

  const live::VirtualRunReport rep = live::run_virtual(spec);

  auto engine = snapshot::build_engine(spec);
  engine->run(sim::until(spec.horizon_units * kTicksPerUnit));

  EXPECT_EQ(trace::serialize_trace({spec.n, spec.bound_r}, rep.trace),
            trace::serialize_trace({spec.n, spec.bound_r},
                                   engine->trace().slots()));
  EXPECT_EQ(metrics::to_json(rep.stats, &rep.channel),
            metrics::to_json(engine->stats(), &engine->channel_stats()));
  EXPECT_EQ(rep.energy, engine->energy_meter());
  EXPECT_GT(rep.channel.jammed, 0u);
}

}  // namespace
}  // namespace asyncmac
