// Seed-replayable wire fuzz for the distributed-sweep protocol: a
// PRNG-driven mutator builds streams of valid frames, then truncates,
// flips, splices, reorders and duplicates them, and feeds the wreckage —
// in adversarially chosen chunk sizes — to the frame decoder, the
// message codecs, the coordinator and the worker session. The contract
// under test: no input crashes anything; decode failures are typed
// SnapshotErrors; the coordinator absorbs hostile connections without
// corrupting sweep state.
//
// Every case derives from a single 64-bit seed (the verify::ScenarioGen
// idiom): a failure prints its case seed, and rerunning with that seed
// alone reproduces the exact byte stream. Runs under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "sweep/coordinator.h"
#include "sweep/protocol.h"
#include "sweep/wire.h"
#include "sweep/worker.h"

namespace asyncmac {
namespace {

using namespace asyncmac::sweep;
using snapshot::SnapshotError;

constexpr std::uint64_t kCampaignSeed = 0xA5EEDC0FFEE5EEDull;
constexpr int kCases = 150;

/// SplitMix64 — decorrelated per-case seeds from the campaign seed, the
/// same mixing verify::ScenarioGen::case_seed uses.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepJob fuzz_grid_job() {
  SweepJob job;
  job.kind = JobKind::kGrid;
  job.grid.protocols = {"ca-arrow"};
  job.grid.station_counts = {2};
  job.grid.bounds_r = {2};
  job.grid.rho_percents = {50};
  job.grid.slot_policies = {"perstation"};
  job.grid.horizon_units = 100;
  job.grid.seeds = 2;
  return job;
}

/// A pool of well-formed frames to mutate (every message type).
std::vector<std::vector<std::uint8_t>> frame_pool() {
  WelcomeMsg welcome;
  welcome.worker_id = 3;
  welcome.job = fuzz_grid_job();
  AssignMsg assign;
  assign.lease_id = 1;
  assign.unit_index = 0;
  assign.unit_id = work_unit_id(job_fingerprint(fuzz_grid_job()), 0);
  assign.count = 2;
  ResultMsg result;
  result.worker_id = 3;
  result.unit_id = assign.unit_id;
  result.payload = encode_grid_result({});
  return {to_frame(HelloMsg{"fuzz"}),
          to_frame(welcome),
          to_frame(RequestWorkMsg{3}),
          to_frame(assign),
          to_frame(result),
          to_frame(ResultAckMsg{0, false}),
          to_frame(HeartbeatMsg{3}),
          to_frame(NoWorkMsg{100}),
          to_frame(ShutdownMsg{"complete"})};
}

/// The mutated byte stream case `case_seed` denotes — a pure function of
/// the seed, so any failure replays from the printed seed alone.
std::vector<std::uint8_t> mutated_stream(std::uint64_t case_seed) {
  std::mt19937_64 rng(case_seed);
  const auto pool = frame_pool();
  std::vector<std::uint8_t> stream;
  const int frames = 1 + static_cast<int>(rng() % 5);
  for (int i = 0; i < frames; ++i) {
    auto f = pool[rng() % pool.size()];
    switch (rng() % 6) {
      case 0:  // pristine
        break;
      case 1:  // truncate
        f.resize(rng() % (f.size() + 1));
        break;
      case 2:  // flip 1-4 bytes anywhere
        for (std::uint64_t k = 0, flips = 1 + rng() % 4; k < flips; ++k)
          if (!f.empty()) f[rng() % f.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      case 3:  // splice random garbage in front
        for (std::uint64_t k = 0, g = rng() % 32; k < g; ++k)
          stream.push_back(static_cast<std::uint8_t>(rng()));
        break;
      case 4:  // duplicate the frame
        stream.insert(stream.end(), f.begin(), f.end());
        break;
      case 5:  // forge the length field
        if (f.size() > 16)
          f[9 + rng() % 8] = static_cast<std::uint8_t>(rng());
        break;
    }
    stream.insert(stream.end(), f.begin(), f.end());
  }
  return stream;
}

/// Feed a stream to a decoder in seed-chosen chunk sizes; drain frames
/// and decode their messages. Typed errors are fine, anything else fatal.
void pump_decoder(const std::vector<std::uint8_t>& stream,
                  std::uint64_t case_seed) {
  std::mt19937_64 rng(mix64(case_seed));
  FrameDecoder dec;
  std::size_t pos = 0;
  try {
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 64, stream.size() - pos);
      dec.feed(stream.data() + pos, chunk);
      pos += chunk;
      while (auto f = dec.next()) (void)decode_message(*f);
    }
    dec.at_eof();
  } catch (const SnapshotError&) {
    // Typed rejection is the documented outcome for malformed streams.
  }
}

TEST(SweepWireFuzz, DecoderSurvivesMutatedStreams) {
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t case_seed = mix64(kCampaignSeed + static_cast<std::uint64_t>(c));
    SCOPED_TRACE("case seed " + std::to_string(case_seed));
    pump_decoder(mutated_stream(case_seed), case_seed);
  }
}

TEST(SweepWireFuzz, CoordinatorSurvivesHostileConnections) {
  CoordinatorConfig cfg;
  cfg.job = fuzz_grid_job();
  Coordinator coord(cfg);
  const std::size_t units = coord.units_total();
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t case_seed = mix64(kCampaignSeed ^ 0x1234u) + static_cast<std::uint64_t>(c);
    SCOPED_TRACE("case seed " + std::to_string(case_seed));
    const auto stream = mutated_stream(mix64(case_seed));
    std::mt19937_64 rng(case_seed);
    const std::uint64_t conn = 1000u + static_cast<std::uint64_t>(c);
    coord.on_connect(conn, static_cast<std::uint64_t>(c));
    std::size_t pos = 0;
    // on_bytes must never throw — the coordinator absorbs wire errors by
    // severing; a hostile stream can cost at most its own connection.
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 48, stream.size() - pos);
      coord.on_bytes(conn, stream.data() + pos, chunk,
                     static_cast<std::uint64_t>(c));
      pos += chunk;
    }
    coord.on_eof(conn, static_cast<std::uint64_t>(c));
    coord.on_tick(static_cast<std::uint64_t>(c));
    // Sweep state stays coherent: no unit vanishes or completes off
    // garbage (a hostile peer cannot forge a validated result payload
    // for real cells, and these streams never contain one).
    ASSERT_EQ(coord.units_total(), units);
    ASSERT_EQ(coord.units_done(), 0u);
  }
}

TEST(SweepWireFuzz, WorkerSurvivesHostileCoordinators) {
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t case_seed = mix64(kCampaignSeed ^ 0xBEEFu) + static_cast<std::uint64_t>(c);
    SCOPED_TRACE("case seed " + std::to_string(case_seed));
    // A no-op executor: the fuzz targets the protocol handling, not the
    // engines (a forged Assign must not start a real 100k-unit run).
    WorkerSession w({}, [](const WorkerSession::Context&, const AssignMsg&) {
      return std::vector<std::uint8_t>{};
    });
    (void)w.start(0);
    const auto stream = mutated_stream(mix64(case_seed));
    std::mt19937_64 rng(case_seed);
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 48, stream.size() - pos);
      (void)w.on_bytes(stream.data() + pos, chunk, 0);
      (void)w.on_tick(static_cast<std::uint64_t>(pos));
      pos += chunk;
    }
    w.on_eof();
    // Either outcome is legal; crashing or hanging is not.
    EXPECT_TRUE(w.finished() || w.failed() || !w.welcomed() || w.welcomed());
  }
}

/// Replayability pin: the stream is a pure function of the seed.
TEST(SweepWireFuzz, StreamsReplayByteIdenticalFromSeed) {
  for (int c = 0; c < 10; ++c) {
    const std::uint64_t case_seed = mix64(kCampaignSeed + static_cast<std::uint64_t>(c));
    EXPECT_EQ(mutated_stream(case_seed), mutated_stream(case_seed));
  }
}

}  // namespace
}  // namespace asyncmac
