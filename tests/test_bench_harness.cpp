// Unit tests for the pure pieces of bench/harness.h — baseline
// reconciliation must keep exactly the name overlap and report
// adds/removes deterministically, so speedup columns stay meaningful
// when the bench suite gains or drops configs between trajectories.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace asyncmac::bench {
namespace {

TEST(ReconcileBaseline, ExactMatchKeepsEverything) {
  std::map<std::string, double> raw = {{"a", 1.0}, {"b", 2.0}};
  const BaselineReconciliation rec = reconcile_baseline(raw, {"a", "b"});
  EXPECT_EQ(rec.usable, raw);
  EXPECT_TRUE(rec.missing.empty());
  EXPECT_TRUE(rec.stray.empty());
}

TEST(ReconcileBaseline, KeepsOverlapReportsAddedAndRemoved) {
  const std::map<std::string, double> raw = {
      {"kept1", 10.0}, {"dropped_old", 5.0}, {"kept2", 20.0}};
  const BaselineReconciliation rec =
      reconcile_baseline(raw, {"kept1", "new_config", "kept2", "newer"});
  const std::map<std::string, double> want_usable = {{"kept1", 10.0},
                                                     {"kept2", 20.0}};
  EXPECT_EQ(rec.usable, want_usable);
  // Missing configs in expected order; strays in baseline order.
  EXPECT_EQ(rec.missing, (std::vector<std::string>{"new_config", "newer"}));
  EXPECT_EQ(rec.stray, (std::vector<std::string>{"dropped_old"}));
}

TEST(ReconcileBaseline, DisjointSetsYieldNoUsableEntries) {
  const BaselineReconciliation rec =
      reconcile_baseline({{"old_a", 1.0}, {"old_b", 2.0}}, {"x", "y"});
  EXPECT_TRUE(rec.usable.empty());
  EXPECT_EQ(rec.missing, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(rec.stray, (std::vector<std::string>{"old_a", "old_b"}));
}

TEST(ReconcileBaseline, EmptyInputs) {
  const BaselineReconciliation none = reconcile_baseline({}, {"a"});
  EXPECT_TRUE(none.usable.empty());
  EXPECT_EQ(none.missing, (std::vector<std::string>{"a"}));

  const BaselineReconciliation no_expected =
      reconcile_baseline({{"a", 1.0}}, {});
  EXPECT_TRUE(no_expected.usable.empty());
  EXPECT_EQ(no_expected.stray, (std::vector<std::string>{"a"}));
}

TEST(MinOfNRate, ReturnsFastestRepetition) {
  // Simulated noisy reps: interference only slows a rep down, so the
  // best (max) rate is the estimate; 900.0 here is "two of three reps
  // hit jitter" and must not win the way it could under a median.
  std::vector<double> reps = {900.0, 1000.0, 950.0};
  std::size_t i = 0;
  EXPECT_DOUBLE_EQ(min_of_n_rate([&] { return reps[i++]; }), 1000.0);
  EXPECT_EQ(i, 3u);  // default kBenchReps repetitions, no more
}

TEST(MinOfNRate, HonorsRepCountParameter) {
  int calls = 0;
  const double best = min_of_n_rate(
      [&] {
        ++calls;
        return static_cast<double>(calls);  // monotonically "faster"
      },
      5);
  EXPECT_EQ(calls, 5);
  EXPECT_DOUBLE_EQ(best, 5.0);

  calls = 0;
  EXPECT_DOUBLE_EQ(min_of_n_rate([&] { return 42.0 + calls++; }, 1), 42.0);
  EXPECT_EQ(calls, 1);
}

TEST(MergeBaseline, EndToEndOverTrajectoryFile) {
  const std::string path =
      ::testing::TempDir() + "/harness_baseline_test.json";
  {
    std::ofstream out(path);
    out << "{\n  \"results\": [\n"
        << "    {\"name\": \"cfg_a\", \"slots_per_sec\": 123.5},\n"
        << "    {\"name\": \"cfg_gone\", \"slots_per_sec\": 9.0}\n"
        << "  ]\n}\n";
  }
  const std::map<std::string, double> merged =
      merge_baseline(path, "slots_per_sec", {"cfg_a", "cfg_new"});
  const std::map<std::string, double> want = {{"cfg_a", 123.5}};
  EXPECT_EQ(merged, want);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asyncmac::bench
