// End-to-end smoke test of the real poll()-based UDP transport
// (live/udp.h): a daemon and its station clients on loopback sockets in
// one process, short horizon, real wall-clock timers. Asserts liveness
// and clean completion — byte-level identity is the virtual clock's job
// (test_live_differential.cpp); wall time legitimately stretches slots.
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "live/daemon.h"
#include "live/udp.h"
#include "snapshot/checkpoint.h"

namespace asyncmac::live {
namespace {

snapshot::RunSpec udp_spec(std::uint32_t n) {
  snapshot::RunSpec spec;
  spec.protocol = "ca-arrow";
  spec.n = n;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(1, 2);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.seed = 6;
  spec.horizon_units = 40;  // ~80ms of wall time at 2ms/unit
  return spec;
}

TEST(LiveUdp, DaemonAndThreeStationsCompleteOverLoopback) {
  constexpr std::uint32_t kStations = 3;
  constexpr std::uint64_t kUnitUs = 2000;

  DaemonConfig dc;
  dc.spec = udp_spec(kStations);
  Daemon daemon(dc);

  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();
  UdpServeOptions sopt;
  sopt.unit_us = kUnitUs;
  sopt.idle_timeout_ms = 10000;
  sopt.on_listening = [&](std::uint16_t port) {
    port_promise.set_value(port);
  };
  std::string serve_err;
  int serve_rc = -1;
  std::thread server([&] { serve_rc = serve_udp(daemon, sopt, &serve_err); });

  const std::uint16_t port = port_future.get();
  ASSERT_GT(port, 0);

  std::vector<int> station_rc(kStations, -1);
  std::vector<std::string> station_err(kStations);
  std::vector<std::thread> stations;
  for (std::uint32_t i = 0; i < kStations; ++i) {
    stations.emplace_back([&, i] {
      UdpStationOptions o;
      o.port = port;
      o.unit_us = kUnitUs;
      o.station.id = i + 1;
      o.station.retry_ticks = units(200);  // a few hundred ms
      station_rc[i] = run_station_udp(o, &station_err[i]);
    });
  }
  for (auto& t : stations) t.join();
  server.join();

  EXPECT_EQ(serve_rc, 0) << serve_err;
  EXPECT_TRUE(daemon.done());
  EXPECT_FALSE(daemon.failed()) << daemon.reason();
  for (std::uint32_t i = 0; i < kStations; ++i)
    EXPECT_EQ(station_rc[i], 0) << "station " << i + 1 << ": "
                                << station_err[i];
  EXPECT_GT(daemon.stats().injected_packets, 0u);
  EXPECT_GT(daemon.stats().delivered_packets, 0u);
  EXPECT_GT(daemon.live_channel_stats().successful, 0u);
  EXPECT_EQ(daemon.backlog_samples().size(), 8u);
}

TEST(LiveUdp, IdleDaemonTimesOutWithError) {
  DaemonConfig dc;
  dc.spec = udp_spec(2);
  Daemon daemon(dc);
  UdpServeOptions sopt;
  sopt.idle_timeout_ms = 100;  // nobody will ever join
  std::string err;
  EXPECT_EQ(serve_udp(daemon, sopt, &err), 1);
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(daemon.done());
}

TEST(LiveUdp, BadBindAddressFailsCleanly) {
  DaemonConfig dc;
  dc.spec = udp_spec(2);
  Daemon daemon(dc);
  UdpServeOptions sopt;
  sopt.bind_host = "not-an-address";
  std::string err;
  EXPECT_EQ(serve_udp(daemon, sopt, &err), 1);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace asyncmac::live
