// Tests for the analysis module: finite-horizon stability classification
// and the empirical Max-Stable-Rate estimator (the paper's figure of
// merit for the PT problem).
#include <gtest/gtest.h>

#include "analysis/msr.h"
#include "analysis/stability.h"
#include "baselines/aloha.h"
#include "baselines/rrw.h"
#include "core/ao_arrow.h"
#include "core/ca_arrow.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::SaturatingInjector;
using adversary::TargetPattern;
using analysis::MsrConfig;
using analysis::StabilityConfig;
using analysis::Verdict;

constexpr Tick U = kTicksPerUnit;

template <typename P>
analysis::RateEngineFactory factory(std::uint32_t n, std::uint32_t R,
                                    const std::string& policy) {
  return [=](util::Ratio rho, std::uint64_t seed) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.bound_r = R;
    cfg.seed = seed;
    return std::make_unique<sim::Engine>(
        cfg, asyncmac::testing::make_protocols<P>(n),
        asyncmac::testing::make_slot_policy(policy, n, R, seed),
        std::make_unique<SaturatingInjector>(
            rho, 8 * U, TargetPattern::kRoundRobin, 1, seed + 1));
  };
}

StabilityConfig quick_probe() {
  StabilityConfig c;
  c.horizon = 100000 * U;
  c.chunks = 8;
  c.ceiling = 10000 * U;
  return c;
}

TEST(Stability, VerdictNames) {
  EXPECT_STREQ(analysis::to_string(Verdict::kStable), "stable");
  EXPECT_STREQ(analysis::to_string(Verdict::kGrowing), "growing");
  EXPECT_STREQ(analysis::to_string(Verdict::kSaturated), "saturated");
}

TEST(Stability, CaArrowModerateLoadIsStable) {
  auto f = factory<core::CaArrowProtocol>(4, 2, "perstation");
  const auto report = analysis::probe_stability(
      [&] { return f(util::Ratio(1, 2), 1); }, quick_probe());
  EXPECT_EQ(report.verdict, Verdict::kStable);
  EXPECT_GT(report.delivered, 1000u);
  EXPECT_EQ(report.samples.size(), 8u);
}

TEST(Stability, OverloadIsCaughtAsGrowingOrSaturated) {
  // Declared rate 0.9 on 2-unit slots for half the stations: true demand
  // above 1 — must not be classified stable.
  auto f = [](util::Ratio, std::uint64_t seed) {
    sim::EngineConfig cfg;
    cfg.n = 2;
    cfg.bound_r = 2;
    cfg.seed = seed;
    // Overload: rate 1 of unit-cost packets but all slots are 2 units.
    return std::make_unique<sim::Engine>(
        cfg, asyncmac::testing::make_protocols<core::CaArrowProtocol>(2),
        asyncmac::testing::make_slot_policy("max", 2, 2, seed),
        std::make_unique<SaturatingInjector>(
            util::Ratio::one(), 8 * U, TargetPattern::kRoundRobin));
  };
  const auto report = analysis::probe_stability(
      [&] { return f(util::Ratio::one(), 1); }, quick_probe());
  EXPECT_NE(report.verdict, Verdict::kStable);
}

TEST(Stability, RejectsDegenerateConfig) {
  StabilityConfig bad;
  bad.chunks = 2;
  auto f = factory<core::CaArrowProtocol>(2, 1, "sync");
  EXPECT_THROW(analysis::probe_stability(
                   [&] { return f(util::Ratio(1, 2), 1); }, bad),
               std::invalid_argument);
}

TEST(Msr, CaArrowSustainsHighRates) {
  MsrConfig cfg;
  cfg.probe = quick_probe();
  const auto res =
      analysis::estimate_msr(factory<core::CaArrowProtocol>(3, 2,
                                                            "perstation"),
                             cfg);
  EXPECT_GE(res.msr_pct, 85) << "CA-ARRoW should be stable almost to 1";
  EXPECT_GT(res.probes, 0);
}

TEST(Msr, AoArrowSustainsHighRates) {
  MsrConfig cfg;
  cfg.probe = quick_probe();
  const auto res = analysis::estimate_msr(
      factory<core::AoArrowProtocol>(3, 2, "perstation"), cfg);
  EXPECT_GE(res.msr_pct, 80);
}

TEST(Msr, SlottedAlohaCollapsesEarly) {
  MsrConfig cfg;
  cfg.probe = quick_probe();
  cfg.seeds = 3;
  const auto res = analysis::estimate_msr(
      factory<baselines::SlottedAlohaProtocol>(4, 1, "sync"), cfg);
  EXPECT_LT(res.msr_pct, 60) << "ALOHA must not sustain high rates";
  EXPECT_GT(res.msr_pct, 5) << "but it does sustain light load";
}

TEST(Msr, StableAtMatchesEstimate) {
  MsrConfig cfg;
  cfg.probe = quick_probe();
  auto f = factory<core::CaArrowProtocol>(2, 2, "perstation");
  EXPECT_TRUE(analysis::stable_at(f, util::Ratio(1, 2), cfg));
}

TEST(Msr, RejectsBadRange) {
  MsrConfig cfg;
  cfg.lo_pct = 0;
  auto f = factory<core::CaArrowProtocol>(2, 1, "sync");
  EXPECT_THROW(analysis::estimate_msr(f, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace asyncmac
