// Full combinatorial matrices (gtest Combine) over n x R x slot policy
// for the three core algorithms — broad, shallow coverage that catches
// interactions the hand-picked cases miss. Horizons are kept modest so
// the whole matrix stays fast.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "baselines/listen.h"
#include "core/abs.h"
#include "core/ao_arrow.h"
#include "core/bounds.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::SaturatingInjector;
using adversary::TargetPattern;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

using MatrixParam = std::tuple<std::uint32_t, std::uint32_t, std::string>;

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  auto [n, R, policy] = info.param;
  for (auto& c : policy)
    if (c == '-') c = '_';
  std::string name = "n";
  name += std::to_string(n);
  name += "_R";
  name += std::to_string(R);
  name += "_";
  name += policy;
  return name;
}

// --------------------------------------------------------------- ABS

class AbsMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AbsMatrix, ElectsExactlyOneWinner) {
  const auto [n, R, policy] = GetParam();
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  std::vector<StationId> everyone;
  for (StationId id = 1; id <= n; ++id) everyone.push_back(id);
  Engine e(cfg, asyncmac::testing::make_protocols<core::AbsProtocol>(n),
           asyncmac::testing::make_slot_policy(policy, n, R),
           asyncmac::testing::sst_messages(everyone));
  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(20 * core::abs_slot_bound(n, R)) *
                  static_cast<Tick>(R) * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now() + static_cast<Tick>(R) * U));

  ASSERT_GE(e.channel_stats().successful, 1u) << "SST unsolved";
  std::uint32_t winners = 0;
  std::uint64_t worst = 0;
  for (StationId id = 1; id <= n; ++id) {
    const auto* abs =
        dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
    ASSERT_NE(abs, nullptr);
    worst = std::max(worst, abs->slots());
    winners += abs->outcome() == core::AbsAutomaton::Outcome::kWon;
  }
  EXPECT_EQ(winners, 1u);
  EXPECT_LE(worst, core::abs_slot_bound(n, R));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AbsMatrix,
    ::testing::Combine(::testing::Values(3u, 6u, 12u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::ValuesIn(
                           asyncmac::testing::all_policies())),
    matrix_name);

// ---------------------------------------------------------- CA-ARRoW

class CaMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CaMatrix, CollisionFreeAndDelivering) {
  const auto [n, R, policy] = GetParam();
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  Engine e(cfg,
           asyncmac::testing::make_protocols<core::CaArrowProtocol>(n),
           asyncmac::testing::make_slot_policy(policy, n, R),
           std::make_unique<SaturatingInjector>(
               util::Ratio(3, 10), 6 * U, TargetPattern::kRoundRobin));
  e.run(sim::until(30000 * U));
  EXPECT_EQ(e.channel_stats().collided, 0u);
  EXPECT_GT(e.stats().delivered_packets, e.stats().injected_packets / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CaMatrix,
    ::testing::Combine(::testing::Values(2u, 5u),
                       ::testing::Values(1u, 3u),
                       ::testing::ValuesIn(
                           asyncmac::testing::all_policies())),
    matrix_name);

// ---------------------------------------------------------- AO-ARRoW

class AoMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AoMatrix, DeliversWithoutControlMessages) {
  const auto [n, R, policy] = GetParam();
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  // rho = 0.25 declared: feasible even for variable-cost policies where
  // the true demand can be up to R x the declared rate... only for R <= 4
  // with average stretch ~2.5; use 0.2 to stay safely below capacity
  // across the whole matrix.
  Engine e(cfg,
           asyncmac::testing::make_protocols<core::AoArrowProtocol>(n),
           asyncmac::testing::make_slot_policy(policy, n, R),
           std::make_unique<SaturatingInjector>(
               util::Ratio(1, 5), 6 * U, TargetPattern::kRoundRobin));
  e.run(sim::until(50000 * U));
  EXPECT_EQ(e.channel_stats().control_transmissions, 0u);
  EXPECT_GT(e.stats().delivered_packets, e.stats().injected_packets / 2);
  EXPECT_LT(e.stats().queued_cost, 5000 * U);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AoMatrix,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(1u, 3u),
                       ::testing::ValuesIn(
                           asyncmac::testing::all_policies())),
    matrix_name);

}  // namespace
}  // namespace asyncmac
