// Direct unit tests for the metrics collector (elsewhere it is only
// exercised through the engine).
#include <gtest/gtest.h>

#include "metrics/collector.h"

namespace asyncmac::metrics {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(Collector, StartsEmpty) {
  Collector c(3);
  const auto& s = c.stats();
  EXPECT_EQ(s.injected_packets, 0u);
  EXPECT_EQ(s.delivered_packets, 0u);
  EXPECT_EQ(s.queued_cost, 0);
  EXPECT_EQ(s.station.size(), 3u);
}

TEST(Collector, InjectionAccumulatesCostAndHighWaterMarks) {
  Collector c(2);
  c.on_injection(1, 2 * U, 0);
  c.on_injection(2, 3 * U, 10);
  const auto& s = c.stats();
  EXPECT_EQ(s.injected_packets, 2u);
  EXPECT_EQ(s.injected_cost, 5 * U);
  EXPECT_EQ(s.queued_packets, 2u);
  EXPECT_EQ(s.queued_cost, 5 * U);
  EXPECT_EQ(s.max_queued_cost, 5 * U);
  EXPECT_EQ(s.station[0].injected, 1u);
  EXPECT_EQ(s.station[1].queued_cost, 3 * U);
}

TEST(Collector, DeliveryReducesQueueButKeepsPeaks) {
  Collector c(1);
  c.on_injection(1, 2 * U, 0);
  c.on_injection(1, 2 * U, 0);
  c.on_delivery(1, 2 * U, 0, 2 * U, 5 * U);
  const auto& s = c.stats();
  EXPECT_EQ(s.delivered_packets, 1u);
  EXPECT_EQ(s.queued_packets, 1u);
  EXPECT_EQ(s.queued_cost, 2 * U);
  EXPECT_EQ(s.max_queued_cost, 4 * U);  // peak before the delivery
  EXPECT_EQ(s.realized_cost, 2 * U);
}

TEST(Collector, LatencyHistogramRecordsSojourn) {
  Collector c(1);
  c.on_injection(1, U, 100);
  c.on_delivery(1, U, /*injected_at=*/100, U, /*now=*/350);
  EXPECT_EQ(c.stats().latency.count(), 1u);
  EXPECT_EQ(c.stats().latency.max(), 250);
}

TEST(Collector, SlotAccounting) {
  Collector c(2);
  c.on_slot_end(1, SlotAction::kListen);
  c.on_slot_end(1, SlotAction::kTransmitPacket);
  c.on_slot_end(2, SlotAction::kTransmitControl);
  const auto& s = c.stats();
  EXPECT_EQ(s.total_slots, 3u);
  EXPECT_EQ(s.listen_slots, 1u);
  EXPECT_EQ(s.transmit_slots, 2u);
  EXPECT_EQ(s.control_slots, 1u);
  EXPECT_EQ(s.station[0].slots, 2u);
  EXPECT_EQ(s.station[0].transmit_slots, 1u);
  EXPECT_EQ(s.station[1].transmit_slots, 1u);
}

TEST(Collector, DeliveryWithoutQueueIsABug) {
  Collector c(1);
  EXPECT_THROW(c.on_delivery(1, U, 0, U, U), std::logic_error);
}

TEST(Collector, InvalidStationRejected) {
  Collector c(2);
  EXPECT_THROW(c.on_injection(0, U, 0), std::logic_error);
  EXPECT_THROW(c.on_injection(3, U, 0), std::logic_error);
}

TEST(Collector, ZeroCostInjectionRejected) {
  Collector c(1);
  EXPECT_THROW(c.on_injection(1, 0, 0), std::logic_error);
}

TEST(Collector, PerStationMarksIndependent) {
  Collector c(2);
  for (int i = 0; i < 5; ++i) c.on_injection(1, U, 0);
  c.on_injection(2, U, 0);
  for (int i = 0; i < 4; ++i) c.on_delivery(1, U, 0, U, U);
  EXPECT_EQ(c.stats().station[0].max_queued, 5u);
  EXPECT_EQ(c.stats().station[0].queued, 1u);
  EXPECT_EQ(c.stats().station[1].max_queued, 1u);
}

}  // namespace
}  // namespace asyncmac::metrics
