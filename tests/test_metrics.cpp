// Direct unit tests for the metrics collector (elsewhere it is only
// exercised through the engine).
#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/collector.h"
#include "util/rng.h"

namespace asyncmac::metrics {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(Collector, StartsEmpty) {
  Collector c(3);
  const auto& s = c.stats();
  EXPECT_EQ(s.injected_packets, 0u);
  EXPECT_EQ(s.delivered_packets, 0u);
  EXPECT_EQ(s.queued_cost, 0);
  EXPECT_EQ(s.station.size(), 3u);
}

TEST(Collector, InjectionAccumulatesCostAndHighWaterMarks) {
  Collector c(2);
  c.on_injection(1, 2 * U, 0);
  c.on_injection(2, 3 * U, 10);
  const auto& s = c.stats();
  EXPECT_EQ(s.injected_packets, 2u);
  EXPECT_EQ(s.injected_cost, 5 * U);
  EXPECT_EQ(s.queued_packets, 2u);
  EXPECT_EQ(s.queued_cost, 5 * U);
  EXPECT_EQ(s.max_queued_cost, 5 * U);
  EXPECT_EQ(s.station[0].injected, 1u);
  EXPECT_EQ(s.station[1].queued_cost, 3 * U);
}

TEST(Collector, DeliveryReducesQueueButKeepsPeaks) {
  Collector c(1);
  c.on_injection(1, 2 * U, 0);
  c.on_injection(1, 2 * U, 0);
  c.on_delivery(1, 2 * U, 0, 2 * U, 5 * U);
  const auto& s = c.stats();
  EXPECT_EQ(s.delivered_packets, 1u);
  EXPECT_EQ(s.queued_packets, 1u);
  EXPECT_EQ(s.queued_cost, 2 * U);
  EXPECT_EQ(s.max_queued_cost, 4 * U);  // peak before the delivery
  EXPECT_EQ(s.realized_cost, 2 * U);
}

TEST(Collector, LatencyHistogramRecordsSojourn) {
  Collector c(1);
  c.on_injection(1, U, 100);
  c.on_delivery(1, U, /*injected_at=*/100, U, /*now=*/350);
  EXPECT_EQ(c.stats().latency.count(), 1u);
  EXPECT_EQ(c.stats().latency.max(), 250);
}

TEST(Collector, SlotAccounting) {
  Collector c(2);
  c.on_slot_end(1, SlotAction::kListen);
  c.on_slot_end(1, SlotAction::kTransmitPacket);
  c.on_slot_end(2, SlotAction::kTransmitControl);
  const auto& s = c.stats();
  EXPECT_EQ(s.total_slots, 3u);
  EXPECT_EQ(s.listen_slots, 1u);
  EXPECT_EQ(s.transmit_slots, 2u);
  EXPECT_EQ(s.control_slots, 1u);
  EXPECT_EQ(s.station[0].slots, 2u);
  EXPECT_EQ(s.station[0].transmit_slots, 1u);
  EXPECT_EQ(s.station[1].transmit_slots, 1u);
}

TEST(Collector, DeliveryWithoutQueueIsABug) {
  Collector c(1);
  EXPECT_THROW(c.on_delivery(1, U, 0, U, U), std::logic_error);
}

TEST(Collector, InvalidStationRejected) {
  Collector c(2);
  EXPECT_THROW(c.on_injection(0, U, 0), std::logic_error);
  EXPECT_THROW(c.on_injection(3, U, 0), std::logic_error);
}

TEST(Collector, ZeroCostInjectionRejected) {
  Collector c(1);
  EXPECT_THROW(c.on_injection(1, 0, 0), std::logic_error);
}

TEST(Collector, PerStationMarksIndependent) {
  Collector c(2);
  for (int i = 0; i < 5; ++i) c.on_injection(1, U, 0);
  c.on_injection(2, U, 0);
  for (int i = 0; i < 4; ++i) c.on_delivery(1, U, 0, U, U);
  EXPECT_EQ(c.stats().station[0].max_queued, 5u);
  EXPECT_EQ(c.stats().station[0].queued, 1u);
  EXPECT_EQ(c.stats().station[1].max_queued, 1u);
}

// Randomized event fuzz: drive the collector with an arbitrary but legal
// interleaving of injections, deliveries, and slot ends while tracking
// the queues in a trivial reference model, and assert the accounting
// identities after every event.
TEST(Collector, InvariantsHoldUnderRandomEventStream) {
  struct QueuedPacket {
    Tick cost;
    Tick injected_at;
  };

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    util::Rng rng(seed);
    const std::uint32_t n = static_cast<std::uint32_t>(rng.range(1, 5));
    Collector c(n);
    std::vector<std::deque<QueuedPacket>> model(n);
    std::uint64_t model_injected = 0, model_delivered = 0;
    Tick model_injected_cost = 0, model_delivered_cost = 0;
    std::uint64_t model_slots = 0;
    Tick now = 0;

    auto check = [&] {
      const auto& s = c.stats();
      std::uint64_t queued = 0;
      Tick queued_cost = 0;
      for (std::uint32_t st = 0; st < n; ++st) {
        queued += model[st].size();
        queued_cost += std::accumulate(
            model[st].begin(), model[st].end(), Tick{0},
            [](Tick acc, const QueuedPacket& p) { return acc + p.cost; });
        EXPECT_EQ(s.station[st].queued, model[st].size());
        EXPECT_GE(s.station[st].max_queued, s.station[st].queued);
        EXPECT_EQ(s.station[st].injected,
                  s.station[st].delivered + s.station[st].queued);
      }
      EXPECT_EQ(s.injected_packets, model_injected);
      EXPECT_EQ(s.delivered_packets, model_delivered);
      EXPECT_EQ(s.injected_packets, s.delivered_packets + s.queued_packets);
      EXPECT_EQ(s.queued_packets, queued);
      EXPECT_EQ(s.queued_cost, queued_cost);
      EXPECT_EQ(s.injected_cost, model_injected_cost);
      EXPECT_EQ(s.injected_cost, s.delivered_cost + s.queued_cost);
      EXPECT_EQ(s.delivered_cost, model_delivered_cost);
      EXPECT_GE(s.max_queued_packets, s.queued_packets);
      EXPECT_GE(s.max_queued_cost, s.queued_cost);
      EXPECT_EQ(s.latency.count(), s.delivered_packets);
      EXPECT_EQ(s.total_slots, model_slots);
      EXPECT_EQ(s.total_slots, s.listen_slots + s.transmit_slots);
      EXPECT_LE(s.control_slots, s.transmit_slots);
    };

    for (int step = 0; step < 2000; ++step) {
      now += rng.range(0, 3 * U);
      const StationId st = static_cast<StationId>(rng.below(n) + 1);
      switch (rng.below(4)) {
        case 0: {  // injection
          const Tick cost = rng.range(1, 4) * U;
          c.on_injection(st, cost, now);
          model[st - 1].push_back({cost, now});
          ++model_injected;
          model_injected_cost += cost;
          break;
        }
        case 1: {  // delivery (front of queue, if any)
          if (model[st - 1].empty()) break;
          const QueuedPacket p = model[st - 1].front();
          model[st - 1].pop_front();
          c.on_delivery(st, p.cost, p.injected_at, p.cost, now);
          ++model_delivered;
          model_delivered_cost += p.cost;
          break;
        }
        default: {  // slot end
          const std::uint64_t kind = rng.below(3);
          c.on_slot_end(st, kind == 0 ? SlotAction::kListen
                            : kind == 1 ? SlotAction::kTransmitPacket
                                        : SlotAction::kTransmitControl);
          ++model_slots;
          break;
        }
      }
      if (step % 64 == 0) check();
    }
    check();
  }
}

}  // namespace
}  // namespace asyncmac::metrics
