// tests/test_protocols.h
//
// Minimal protocols used to drive the engine in unit tests.
#pragma once

#include <vector>

#include "sim/protocol.h"

namespace asyncmac::testing {

/// Follows a fixed action script, then listens forever. Records the
/// feedback it received for later inspection.
class ScriptProtocol final : public sim::Protocol {
 public:
  explicit ScriptProtocol(std::vector<SlotAction> script)
      : script_(std::move(script)) {}

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<ScriptProtocol>(*this);
  }

  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext&) override {
    if (prev) results_.push_back(*prev);
    if (next_ < script_.size()) return script_[next_++];
    return SlotAction::kListen;
  }

  std::string name() const override { return "script"; }

  const std::vector<sim::SlotResult>& results() const { return results_; }

 private:
  std::vector<SlotAction> script_;
  std::size_t next_ = 0;
  std::vector<sim::SlotResult> results_;
};

/// Transmits whenever its queue is non-empty (maximally greedy; collides
/// freely when several stations hold packets).
class GreedyProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<GreedyProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>&,
                         sim::StationContext& ctx) override {
    return ctx.queue_empty() ? SlotAction::kListen
                             : SlotAction::kTransmitPacket;
  }
  std::string name() const override { return "greedy"; }
};

}  // namespace asyncmac::testing
