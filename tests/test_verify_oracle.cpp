// Differential tests pinning channel::Ledger::feedback against the
// deliberately naive verify::ReferenceChannel on randomized workloads.
// The interesting regime is the Ledger's windowed scan: it only visits
// entries with begin > s - max_duration(), so these tests place slots
// straddling exactly that boundary — and exercise prune_before under
// keep_history, where archived entries must still add up.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "trace/invariants.h"
#include "util/rng.h"
#include "verify/reference_channel.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using channel::Ledger;
using channel::Transmission;
using verify::ReferenceChannel;

Transmission tx(StationId station, Tick begin, Tick end) {
  Transmission t;
  t.station = station;
  t.begin = begin;
  t.end = end;
  return t;
}

/// Load the same transmission set into both implementations. The Ledger
/// requires non-decreasing begins; the reference must not (one less
/// shared assumption), so it gets them in reverse.
void load(const std::vector<Transmission>& txs, Ledger& ledger,
          ReferenceChannel& ref) {
  std::vector<Transmission> sorted = txs;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Transmission& a, const Transmission& b) {
                     return a.begin < b.begin;
                   });
  for (const Transmission& t : sorted) ledger.add(t);
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) ref.add(*it);
  ref.cache_success();
}

TEST(VerifyOracle, WindowBoundaryExactlyAtMaxDuration) {
  // One long transmission fixes max_duration = 10. The slot [s, t) =
  // [20, 25) must NOT see a transmission with begin == s - 10 == 10
  // (its end can be at most 20 == s: touching, no overlap, no ack) but
  // MUST see begin == 11 with end 21 (overlaps and acks if successful).
  const std::vector<Transmission> txs = {
      tx(1, 0, 10),    // sets max_duration = 10, long gone by s = 20
      tx(2, 10, 20),   // begin == s - max_duration: excluded, correctly
      tx(3, 11, 21),   // begin == s - max_duration + 1: in window
  };
  Ledger ledger;
  ReferenceChannel ref;
  load(txs, ledger, ref);

  // tx(3) overlaps tx(2) on [11, 20): both collided, tx(1) succeeded.
  EXPECT_TRUE(ref.successful(1, 0, 10));
  EXPECT_FALSE(ref.successful(2, 10, 20));
  EXPECT_FALSE(ref.successful(3, 11, 21));

  // [20, 25): only tx(3) reaches in — collided, so busy.
  EXPECT_EQ(ledger.max_duration(), 10);
  EXPECT_EQ(ledger.feedback(20, 25), Feedback::kBusy);
  EXPECT_EQ(ref.feedback(20, 25), Feedback::kBusy);
  // [21, 25): tx(3) ended at 21 == s: charged to the previous slot.
  EXPECT_EQ(ledger.feedback(21, 25), Feedback::kSilence);
  EXPECT_EQ(ref.feedback(21, 25), Feedback::kSilence);
  // [9, 12): tx(1) ends at 10 in (9, 12] and was successful: ack beats
  // the concurrent busy overlap of tx(2) and tx(3).
  EXPECT_EQ(ledger.feedback(9, 12), Feedback::kAck);
  EXPECT_EQ(ref.feedback(9, 12), Feedback::kAck);
}

TEST(VerifyOracle, AckFromBoundarySuccessor) {
  // A successful transmission whose begin sits exactly one past the
  // window cutoff and whose end falls inside (s, t] must produce ack.
  const std::vector<Transmission> txs = {
      tx(1, 0, 8),    // max_duration = 8
      tx(2, 13, 21),  // begin == 21 - 8 == s - max_duration... for s=21
  };
  Ledger ledger;
  ReferenceChannel ref;
  load(txs, ledger, ref);
  EXPECT_EQ(ledger.max_duration(), 8);
  // s = 20: cutoff is begin > 12, so tx(2) (begin 13) is scanned; it
  // ends at 21 in (20, 24] and is successful -> ack.
  EXPECT_EQ(ledger.feedback(20, 24), Feedback::kAck);
  EXPECT_EQ(ref.feedback(20, 24), Feedback::kAck);
  // s = 21: tx(2).end == 21 == s is charged to the earlier slot; and
  // begin 13 == s - max_duration is exactly the excluded boundary.
  EXPECT_EQ(ledger.feedback(21, 24), Feedback::kSilence);
  EXPECT_EQ(ref.feedback(21, 24), Feedback::kSilence);
}

TEST(VerifyOracle, RandomizedDifferentialStraddlesWindowBoundary) {
  util::Rng rng(0xB0117DA7ULL);
  for (int round = 0; round < 40; ++round) {
    util::Rng r = rng.split();
    std::vector<Transmission> txs;
    Tick begin = 0;
    const std::uint64_t count = static_cast<std::uint64_t>(r.range(2, 60));
    for (std::uint64_t i = 0; i < count; ++i) {
      begin += r.range(0, 12);
      // Mostly short transmissions with occasional long outliers, so
      // max_duration is dominated by a few entries and the window
      // cutoff regularly excludes live-but-unreachable neighbors.
      const Tick dur = r.chance(0.15) ? r.range(20, 40) : r.range(1, 6);
      txs.push_back(tx(static_cast<StationId>(i + 1), begin, begin + dur));
    }
    Ledger ledger;
    ReferenceChannel ref;
    load(txs, ledger, ref);
    const Tick D = ledger.max_duration();

    // Candidate slot starts: random points plus, for every transmission,
    // the exact positions that put its begin at the window cutoff
    // (s = begin + D) and one tick to either side.
    std::vector<Tick> starts;
    for (const Transmission& t : txs) {
      starts.push_back(t.begin + D);
      starts.push_back(t.begin + D - 1);
      starts.push_back(t.begin + D + 1);
      starts.push_back(t.end);
      starts.push_back(t.end - 1);
    }
    for (int i = 0; i < 30; ++i)
      starts.push_back(r.range(0, begin + 50));
    for (Tick s : starts) {
      if (s < 0) continue;
      const Tick t = s + r.range(1, 15);
      EXPECT_EQ(ledger.feedback(s, t), ref.feedback(s, t))
          << "round " << round << " slot [" << s << ", " << t << ")";
    }
  }
}

TEST(VerifyOracle, PruneUnderKeepHistoryLosesNothing) {
  util::Rng rng(0x9121E5ULL);
  for (int round = 0; round < 20; ++round) {
    util::Rng r = rng.split();
    Ledger ledger(/*keep_history=*/true);
    ReferenceChannel ref;
    std::vector<Transmission> txs;
    Tick begin = 0;
    for (int i = 0; i < 80; ++i) {
      begin += r.range(0, 8);
      const Tick dur = r.chance(0.1) ? r.range(15, 30) : r.range(1, 5);
      txs.push_back(tx(static_cast<StationId>(i + 1), begin, begin + dur));
    }
    // First half in, then prune, then the rest — queries after the prune
    // horizon must still agree with the unpruned reference.
    for (std::size_t i = 0; i < txs.size(); ++i) {
      ledger.add(txs[i]);
      ref.add(txs[i]);
      if (i == txs.size() / 2) ledger.prune_before(txs[i].begin);
    }
    ref.cache_success();
    const Tick horizon = txs[txs.size() / 2].begin;

    for (int i = 0; i < 120; ++i) {
      const Tick s = horizon + r.range(0, begin - horizon + 40);
      const Tick t = s + r.range(1, 12);
      EXPECT_EQ(ledger.feedback(s, t), ref.feedback(s, t))
          << "round " << round << " slot [" << s << ", " << t << ")";
    }

    // Archiving must have lost nothing, and archived success flags must
    // match the naive verdict.
    ledger.finalize_until(begin + 100);
    EXPECT_EQ(ledger.full_history().size() + ledger.window().size(),
              ledger.stats().transmissions);
    for (const Transmission& t : ledger.full_history()) {
      EXPECT_TRUE(t.decided);
      EXPECT_EQ(t.successful, ref.successful(t.station, t.begin, t.end));
    }
  }
}

TEST(VerifyOracle, EngineHistoryCrossCheckAfterMaybePrune) {
  // A horizon long enough that the engine's periodic maybe_prune (every
  // 4096 steps) actually fires: the oracle then exercises the archived
  // history path, not just the live window.
  verify::Scenario s;
  s.protocol = "aloha";
  s.n = 4;
  s.bound_r = 2;
  s.slot_policy = "sync";
  s.horizon_units = 2000;
  s.seed = 7;
  s.injector.kind = "saturating";
  s.injector.rho = util::Ratio(3, 4);
  auto engine = verify::run_scenario(s);
  ASSERT_FALSE(engine->ledger().full_history().empty())
      << "horizon too short to trigger maybe_prune";

  const auto oracle = verify::check_channel_oracle(engine->trace().slots());
  EXPECT_TRUE(oracle.ok) << oracle.what;
  const auto history = verify::check_ledger_history(*engine);
  EXPECT_TRUE(history.ok) << history.what;
}

}  // namespace
}  // namespace asyncmac
