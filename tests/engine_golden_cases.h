// tests/engine_golden_cases.h
//
// The pinned engine-golden corpus: a fixed list of end-to-end engine
// configurations whose serialized trace + RunStats JSON are committed
// under tests/golden/engine/ and must be reproduced byte-for-byte by
// every future build. The corpus was generated with the pre-PR-4 event
// loop (std::priority_queue scheduler, per-event injection polling), so
// matching it proves the indexed n-event scheduler, the injection
// skip-ahead and the ledger fast paths are semantics-preserving — the
// "old vs new loop" identity test, pinned as data.
//
// Shared by tools/golden_engine_gen (writes the files; run it only on a
// conscious semantics change, with a DESIGN.md note) and
// tests/test_engine_golden.cpp (verifies them).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "trace/serialize.h"

namespace asyncmac::testing {

struct EngineGoldenCase {
  std::string name;          ///< file stem under tests/golden/engine/
  std::string protocol;      ///< analysis registry name
  std::uint32_t n = 2;
  std::uint32_t bound_r = 1;
  std::string slot_policy;   ///< adversary::make_slot_policy name
  /// Injector kind: an adversary::injector_kinds() name, or "none" for a
  /// workload without packet arrivals.
  adversary::InjectorSpec injector;
  bool no_injector = false;
  Tick horizon_units = 100;
  std::uint64_t seed = 1;
};

/// The corpus. Chosen to cover every hot-loop path the PR-4 overhaul
/// touches: synchronous all-ties schedules (indexed-heap tie-breaking),
/// asynchronous R=4 mixes, saturating / bursty-with-long-gaps /
/// drain-chasing / maxqueue injectors (every next_arrival_hint
/// implementation), injection-free listen-heavy runs (empty-window
/// feedback fast path) and random/stretch-tx slot policies.
inline std::vector<EngineGoldenCase> engine_golden_cases() {
  std::vector<EngineGoldenCase> cases;
  {
    EngineGoldenCase c;
    c.name = "ca_arrow_n4_r4_perstation_saturating";
    c.protocol = "ca-arrow";
    c.n = 4;
    c.bound_r = 4;
    c.slot_policy = "perstation";
    c.injector.kind = "saturating";
    c.injector.rho = util::Ratio(1, 2);
    c.injector.burst_ticks = 8 * kTicksPerUnit;
    c.injector.pattern = "roundrobin";
    c.horizon_units = 300;
    c.seed = 11;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "ao_arrow_n3_r2_random_bursty_gap";
    c.protocol = "ao-arrow";
    c.n = 3;
    c.bound_r = 2;
    c.slot_policy = "random";
    c.injector.kind = "bursty";
    c.injector.rho = util::Ratio(1, 4);
    c.injector.burst_ticks = 16 * kTicksPerUnit;
    c.injector.pattern = "roundrobin";
    c.injector.period_ticks = 40 * kTicksPerUnit;  // long silent gaps
    c.horizon_units = 400;
    c.seed = 23;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "beb_n4_r1_sync_saturating_ties";
    c.protocol = "beb";
    c.n = 4;
    c.bound_r = 1;
    c.slot_policy = "sync";  // every slot end ties across all stations
    c.injector.kind = "saturating";
    c.injector.rho = util::Ratio(3, 5);
    c.injector.burst_ticks = 6 * kTicksPerUnit;
    c.injector.pattern = "random";
    c.injector.seed = 7;
    c.horizon_units = 250;
    c.seed = 31;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "rrw_n2_r1_sync_drain_chasing";
    c.protocol = "rrw";
    c.n = 2;
    c.bound_r = 1;
    c.slot_policy = "sync";
    c.injector.kind = "drain-chasing";
    c.injector.rho = util::Ratio(9, 10);
    c.injector.burst_ticks = 4 * kTicksPerUnit;
    c.injector.drain_a = 1;
    c.injector.drain_b = 2;
    c.horizon_units = 300;
    c.seed = 5;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "aloha_n5_r3_cyclic_maxqueue";
    c.protocol = "aloha";
    c.n = 5;
    c.bound_r = 3;
    c.slot_policy = "cyclic";
    c.injector.kind = "maxqueue";
    c.injector.rho = util::Ratio(3, 10);
    c.injector.burst_ticks = 9 * kTicksPerUnit;
    c.horizon_units = 200;
    c.seed = 77;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "ca_arrow_n8_r2_stretchtx_saturating_single";
    c.protocol = "ca-arrow";
    c.n = 8;
    c.bound_r = 2;
    c.slot_policy = "stretch-tx";
    c.injector.kind = "saturating";
    c.injector.rho = util::Ratio(7, 10);
    c.injector.burst_ticks = 10 * kTicksPerUnit;
    c.injector.pattern = "single";
    c.injector.single_target = 3;
    c.horizon_units = 250;
    c.seed = 42;
    cases.push_back(c);
  }
  {
    EngineGoldenCase c;
    c.name = "ao_arrow_n6_r4_perstation_none";
    c.protocol = "ao-arrow";
    c.n = 6;
    c.bound_r = 4;
    c.slot_policy = "perstation";
    c.no_injector = true;  // empty-channel feedback fast path
    c.horizon_units = 300;
    c.seed = 3;
    cases.push_back(c);
  }
  return cases;
}

/// Run a corpus case and render the golden artifact: serialized trace
/// followed by the RunStats + channel-stats JSON, so both the observable
/// schedule and the full statistics are pinned byte-for-byte.
inline std::string run_engine_golden_case(const EngineGoldenCase& c) {
  sim::EngineConfig cfg;
  cfg.n = c.n;
  cfg.bound_r = c.bound_r;
  cfg.seed = c.seed;
  cfg.record_trace = true;
  cfg.record_deliveries = true;
  sim::Engine engine(
      cfg, analysis::make_protocols(c.protocol, c.n),
      adversary::make_slot_policy(c.slot_policy, c.n, c.bound_r, c.seed),
      c.no_injector ? nullptr : adversary::make_injector(c.injector));
  engine.run(sim::until(c.horizon_units * kTicksPerUnit));
  std::string out =
      trace::serialize_trace({c.n, c.bound_r}, engine.trace().slots());
  out += metrics::to_json(engine.stats(), &engine.channel_stats());
  out += "\n";
  return out;
}

}  // namespace asyncmac::testing
