// Cross-module integration tests: the Table-I contrasts (who is stable in
// which model row), AO vs CA comparisons, Theorem-5 instability at
// rho = 1, and realized-cost bucket validation end to end.
#include <gtest/gtest.h>

#include "adversary/bucket_validator.h"
#include "adversary/injectors.h"
#include "baselines/rrw.h"
#include "core/ao_arrow.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::DrainChasingInjector;
using adversary::SaturatingInjector;
using adversary::TargetPattern;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

template <typename P>
std::unique_ptr<Engine> pt_run(std::uint32_t n, std::uint32_t R,
                               std::unique_ptr<sim::InjectionPolicy> inj,
                               const std::string& policy,
                               bool allow_control = true) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.allow_control = allow_control;
  cfg.record_deliveries = true;
  auto protocols = asyncmac::testing::make_protocols<P>(n);
  return std::make_unique<Engine>(
      cfg, std::move(protocols),
      asyncmac::testing::make_slot_policy(policy, n, R), std::move(inj));
}

// --------------------------------------------------- Table I, model rows

TEST(TableOne, AoArrowNeedsNoControlMessages) {
  // Row 2: no control messages allowed — AO-ARRoW runs under the
  // enforcing engine flag without tripping it.
  auto e = pt_run<core::AoArrowProtocol>(
      3, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation", /*allow_control=*/false);
  e->run(sim::until(50000 * U));
  EXPECT_GT(e->stats().delivered_packets, 100u);
}

TEST(TableOne, CaArrowZeroCollisionsAoArrowMayCollide) {
  auto ca = pt_run<core::CaArrowProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(6, 10), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  ca->run(sim::until(100000 * U));
  EXPECT_EQ(ca->channel_stats().collided, 0u);

  auto ao = pt_run<core::AoArrowProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(6, 10), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  ao->run(sim::until(100000 * U));
  // AO-ARRoW trades control messages for (bounded) collisions: elections
  // collide by design.
  EXPECT_GT(ao->channel_stats().collided, 0u);
  // Both deliver the bulk of the traffic.
  EXPECT_GT(ao->stats().delivered_packets,
            ao->stats().injected_packets / 2);
  EXPECT_GT(ca->stats().delivered_packets,
            ca->stats().injected_packets / 2);
}

TEST(TableOne, BothArrowsStableWhereRrwIsNot) {
  const util::Ratio rho(1, 2);
  auto rrw = pt_run<baselines::RrwProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(rho, 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  rrw->run(sim::until(100000 * U));
  const bool rrw_broken = rrw->channel_stats().collided > 0 ||
                          rrw->stats().queued_cost > 1000 * U;
  EXPECT_TRUE(rrw_broken);

  auto ao = pt_run<core::AoArrowProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(rho, 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  ao->run(sim::until(100000 * U));
  EXPECT_LT(ao->stats().queued_cost, 1000 * U);
}

// ------------------------------------------------------ Theorem 5: rho=1

TEST(TheoremFive, DrainChasingAtRateOneGrowsQueues) {
  // At rho = 1 with the chasing adversary, wasted hand-over time under
  // asynchrony accumulates linearly: queues must grow without bound.
  struct Probe {
    Tick at;
    Tick queued;
  };
  auto measure = [](auto make_engine) {
    auto e = make_engine();
    std::vector<Probe> probes;
    for (int chunk = 1; chunk <= 4; ++chunk) {
      e->run(sim::until(chunk * 100000 * U));
      probes.push_back({e->now(), e->stats().queued_cost});
    }
    return probes;
  };

  auto ao_probes = measure([] {
    return pt_run<core::AoArrowProtocol>(
        2, 2,
        std::make_unique<DrainChasingInjector>(util::Ratio::one(), 16 * U, 1,
                                               2),
        "perstation");
  });
  EXPECT_GT(ao_probes.back().queued, 200 * U);
  EXPECT_GT(ao_probes[3].queued, ao_probes[1].queued)
      << "queue growth must continue";

  auto ca_probes = measure([] {
    return pt_run<core::CaArrowProtocol>(
        2, 2,
        std::make_unique<DrainChasingInjector>(util::Ratio::one(), 16 * U, 1,
                                               2),
        "perstation");
  });
  EXPECT_GT(ca_probes.back().queued, 200 * U);
  EXPECT_GT(ca_probes[3].queued, ca_probes[1].queued);
}

TEST(TheoremFive, SameAdversaryBelowOneIsHandled) {
  // Contrast: the identical adversary at rho = 0.9 leaves queues bounded.
  auto e = pt_run<core::CaArrowProtocol>(
      2, 2,
      std::make_unique<DrainChasingInjector>(util::Ratio(9, 10), 16 * U, 1,
                                             2),
      "perstation");
  e->run(sim::until(400000 * U));
  EXPECT_LT(e->stats().queued_cost, 400 * U);
  EXPECT_GT(e->stats().delivered_packets, 10000u);
}

// ----------------------------------------------- realized-cost validation

TEST(RealizedCosts, MatchDeclaredCostsUnderFixedPolicies) {
  auto e = pt_run<core::CaArrowProtocol>(
      3, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  e->run(sim::until(50000 * U));
  ASSERT_GT(e->deliveries().size(), 100u);
  for (const auto& d : e->deliveries())
    EXPECT_EQ(d.declared_cost, d.realized_cost)
        << "packet " << d.seq << " of station " << d.station;
  EXPECT_EQ(e->stats().delivered_cost, e->stats().realized_cost);
}

TEST(RealizedCosts, RealizedStreamIsBucketCompliant) {
  // Def. 1 is really about realized costs; re-check the constraint on
  // the delivered packets' realized costs at their injection times.
  const util::Ratio rho(1, 2);
  const Tick burst = 8 * U;
  auto e = pt_run<core::CaArrowProtocol>(
      3, 2,
      std::make_unique<SaturatingInjector>(rho, burst,
                                           TargetPattern::kRoundRobin),
      "perstation");
  e->run(sim::until(50000 * U));
  std::vector<sim::Injection> realized;
  for (const auto& d : e->deliveries())
    realized.push_back({d.injected_at, d.station, d.realized_cost});
  std::sort(realized.begin(), realized.end(),
            [](auto& a, auto& b) { return a.time < b.time; });
  EXPECT_FALSE(adversary::check_leaky_bucket(realized, rho, burst).violated);
}

// ------------------------------------------------------- latency contrast

TEST(Latency, CaArrowBoundedLatencyUnderModerateLoad) {
  auto e = pt_run<core::CaArrowProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  e->run(sim::until(200000 * U));
  const auto& lat = e->stats().latency;
  ASSERT_FALSE(lat.empty());
  // Every delivery within a small multiple of a full cycle.
  EXPECT_LT(lat.max(), 2000 * U);
}

TEST(Latency, AoArrowDeliversWithFiniteLatencyToo) {
  auto e = pt_run<core::AoArrowProtocol>(
      4, 2,
      std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 8 * U,
                                           TargetPattern::kRoundRobin),
      "perstation");
  e->run(sim::until(200000 * U));
  ASSERT_FALSE(e->stats().latency.empty());
  EXPECT_GT(e->stats().delivered_packets, 1000u);
}

}  // namespace
}  // namespace asyncmac
