// Grid-manifest checkpointing (analysis::run_grid + ExperimentSpec::
// checkpoint_dir): a sweep resumed from a partially-complete manifest
// returns records byte-identical to an uninterrupted sweep, a complete
// manifest replays nothing, and a manifest written for a different sweep
// raises the typed kMismatch error instead of silently mixing results.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "snapshot/format.h"
#include "snapshot/io.h"

namespace asyncmac {
namespace {

using analysis::ExperimentRecord;
using analysis::ExperimentSpec;
using snapshot::ErrorKind;
using snapshot::SnapshotError;

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {2};
  spec.bounds_r = {2};
  spec.rho_percents = {40, 60};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 300;
  spec.seed = 7;
  spec.seeds = 2;
  spec.jobs = 2;
  return spec;  // 2 protocols x 2 rho x 2 seeds = 8 cells
}

/// Byte-level comparison surface: the rendered table covers every field
/// the CSV and CLI expose.
std::string fingerprint(const std::vector<ExperimentRecord>& records) {
  return analysis::to_table(records);
}

/// Skip one serialized ExperimentRecord (mirrors the manifest schema in
/// analysis/experiment.cpp; the manifest-surgery test below needs to walk
/// records without exporting the private loader).
void skip_record(snapshot::Reader& r) {
  r.str();  // protocol
  r.u32();  // n
  r.u32();  // bound_r
  r.i64();  // rho_pct
  r.str();  // slot_policy
  r.u64();  // seed
  r.u64();  // injected
  r.u64();  // delivered
  r.u64();  // queued
  r.f64();  // max_queue_cost_units
  r.f64();  // final_queue_cost_units
  r.u64();  // collisions
  r.u64();  // control_msgs
  r.f64();  // delivered_fraction
  r.f64();  // p99_latency_units
  r.u64();  // energy_total
  r.u64();  // energy_peak_station
  r.f64();  // energy_per_delivery
}

TEST(CheckpointGrid, ResumeFromPartialManifestIsByteIdentical) {
  const ExperimentSpec control_spec = small_spec();
  const std::string control = fingerprint(analysis::run_grid(control_spec));

  // Full checkpointed sweep: same records, manifest on disk.
  const std::string dir = "grid_ckpt_test";
  std::filesystem::remove_all(dir);
  ExperimentSpec spec = small_spec();
  spec.checkpoint_dir = dir;
  EXPECT_EQ(fingerprint(analysis::run_grid(spec)), control);
  const std::string manifest = dir + "/grid-manifest.snap";
  ASSERT_TRUE(std::filesystem::exists(manifest));

  // Manifest surgery — the deterministic stand-in for a SIGKILL
  // mid-sweep: mark two cells incomplete (dropping their records) and
  // rewrite the manifest. The resumed sweep recomputes exactly those
  // cells and must return the identical record set.
  const auto payload =
      snapshot::read_file(manifest, snapshot::FileKind::kGridManifest);
  snapshot::Reader r(payload);
  snapshot::Writer w;
  w.u32(r.u32());  // spec fingerprint, unchanged
  const std::uint64_t cells = r.u64();
  ASSERT_EQ(cells, 8u);
  w.u64(cells);
  for (std::uint64_t i = 0; i < cells; ++i) {
    ASSERT_TRUE(r.boolean());
    const std::size_t start = payload.size() - r.remaining();
    skip_record(r);
    const std::size_t end = payload.size() - r.remaining();
    const bool keep = i != 2 && i != 5;
    w.boolean(keep);
    if (keep) w.bytes(payload.data() + start, end - start);
  }
  r.expect_end();
  snapshot::write_file(manifest, snapshot::FileKind::kGridManifest,
                       w.buffer());

  EXPECT_EQ(fingerprint(analysis::run_grid(spec)), control);

  // The rewritten (now complete) manifest resumes to the same answer
  // again — replaying zero cells.
  EXPECT_EQ(fingerprint(analysis::run_grid(spec)), control);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointGrid, ManifestFromDifferentSweepIsMismatch) {
  const std::string dir = "grid_ckpt_mismatch";
  std::filesystem::remove_all(dir);
  ExperimentSpec spec = small_spec();
  spec.checkpoint_dir = dir;
  analysis::run_grid(spec);

  // Same dimensions, different horizon: the fingerprint must refuse.
  ExperimentSpec other = spec;
  other.horizon_units = spec.horizon_units + 1;
  try {
    analysis::run_grid(other);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }

  // A different cell count must refuse too (not read garbage).
  ExperimentSpec wider = spec;
  wider.rho_percents = {40, 60, 80};
  try {
    analysis::run_grid(wider);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointGrid, JobsValueDoesNotPerturbResumedRecords) {
  // The determinism contract says records are independent of jobs;
  // resuming under a different worker count must preserve that.
  const std::string dir = "grid_ckpt_jobs";
  std::filesystem::remove_all(dir);
  ExperimentSpec spec = small_spec();
  spec.checkpoint_dir = dir;
  spec.jobs = 1;
  const std::string serial = fingerprint(analysis::run_grid(spec));
  spec.jobs = 4;
  EXPECT_EQ(fingerprint(analysis::run_grid(spec)), serial);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace asyncmac
