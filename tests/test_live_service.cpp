// Fault rehearsal for the live stack: scripted datagram drops and seeded
// random loss over the virtual clock exercise the retransmit/dedup
// machinery deterministically — the same paths real UDP hits
// nondeterministically. A lost request must be retransmitted, a lost
// reply must be re-served from the daemon's idempotent cache, and the
// run must still complete with a clean verdict; a dead daemon must not
// hang a station forever.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "live/daemon.h"
#include "live/station.h"
#include "live/virtual_net.h"
#include "live/wire.h"
#include "snapshot/checkpoint.h"

namespace asyncmac::live {
namespace {

snapshot::RunSpec small_spec() {
  snapshot::RunSpec spec;
  spec.protocol = "ca-arrow";
  spec.n = 2;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(1, 2);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.seed = 4;
  spec.horizon_units = 60;
  spec.record_trace = true;
  return spec;
}

struct Fixture {
  std::unique_ptr<Daemon> daemon;
  std::vector<std::unique_ptr<StationMachine>> machines;
  std::vector<StationMachine*> ptrs;

  explicit Fixture(const snapshot::RunSpec& spec) {
    DaemonConfig dc;
    dc.spec = spec;
    daemon = std::make_unique<Daemon>(dc);
    for (StationId id = 1; id <= spec.n; ++id) {
      StationConfig sc;
      sc.id = id;
      sc.retry_ticks = units(4);
      machines.push_back(std::make_unique<StationMachine>(sc));
      ptrs.push_back(machines.back().get());
    }
  }

  std::uint64_t total_retransmits() const {
    std::uint64_t total = 0;
    for (const auto& m : machines) total += m->retransmits();
    return total;
  }
};

void expect_clean_completion(const Fixture& f) {
  EXPECT_TRUE(f.daemon->done());
  EXPECT_FALSE(f.daemon->failed()) << f.daemon->reason();
  for (const auto& m : f.machines) {
    EXPECT_TRUE(m->finished());
    EXPECT_EQ(m->exit_code(), 0);
    EXPECT_GT(m->slots_completed(), 0u);
  }
  EXPECT_GT(f.daemon->stats().delivered_packets, 0u);
}

TEST(LiveService, CleanRunCompletes) {
  Fixture f(small_spec());
  VirtualNet net(*f.daemon, f.ptrs, {});
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);
  EXPECT_EQ(f.total_retransmits(), 0u);
}

TEST(LiveService, DroppedJoinIsRetransmitted) {
  Fixture f(small_spec());
  VirtualNet net(*f.daemon, f.ptrs, {});
  // Station 1's very first datagram (its Join) vanishes.
  net.add_drop(/*to_station=*/false, 1, 0);
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);
  EXPECT_GE(f.machines[0]->retransmits(), 1u);
}

TEST(LiveService, DroppedRepliesAreReServedFromCache) {
  // Drop a few daemon->station replies mid-run (a Welcome/Grant/Feedback
  // depending on position): the station's retransmitted request must hit
  // the daemon's idempotent-resend path and the run must still finish.
  for (const std::uint64_t nth : {0ULL, 3ULL, 10ULL}) {
    SCOPED_TRACE(nth);
    Fixture f(small_spec());
    VirtualNet net(*f.daemon, f.ptrs, {});
    net.add_drop(/*to_station=*/true, 2, nth);
    ASSERT_TRUE(net.run());
    expect_clean_completion(f);
    EXPECT_GE(f.machines[1]->retransmits(), 1u);
  }
}

TEST(LiveService, DroppedSlotEndIsRecovered) {
  Fixture f(small_spec());
  VirtualNet net(*f.daemon, f.ptrs, {});
  // Station 1's datagrams: 0 = Join, 1 = Boundary(1), 2 = SlotEnd(1).
  net.add_drop(/*to_station=*/false, 1, 2);
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);
  EXPECT_GE(f.machines[0]->retransmits(), 1u);
}

TEST(LiveService, SeededRandomLossStillCompletes) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE(seed);
    Fixture f(small_spec());
    EmulationKnobs knobs;
    knobs.loss = 0.05;
    knobs.seed = seed;
    VirtualNet net(*f.daemon, f.ptrs, knobs);
    ASSERT_TRUE(net.run());
    expect_clean_completion(f);
  }
}

TEST(LiveService, DelayAndJitterStillComplete) {
  Fixture f(small_spec());
  EmulationKnobs knobs;
  knobs.delay = kTicksPerUnit / 64;
  knobs.jitter = kTicksPerUnit / 64;
  knobs.seed = 7;
  VirtualNet net(*f.daemon, f.ptrs, knobs);
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);
}

TEST(LiveService, LossyRunMatchesCleanDeliveredWork) {
  // Loss changes timing (retries stretch slots) but must never corrupt
  // protocol state: the run completes, nothing is poisoned, and the
  // injected work is conserved (delivered + queued = injected).
  Fixture f(small_spec());
  EmulationKnobs knobs;
  knobs.loss = 0.1;
  knobs.seed = 11;
  VirtualNet net(*f.daemon, f.ptrs, knobs);
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);
  const auto& s = f.daemon->stats();
  EXPECT_EQ(s.delivered_packets + s.queued_packets, s.injected_packets);
}

TEST(LiveService, StationGivesUpOnDeadDaemon) {
  StationConfig sc;
  sc.id = 1;
  sc.retry_ticks = units(2);
  sc.max_retries = 3;
  StationMachine m(sc);
  auto acts = m.on_start(0);
  ASSERT_EQ(acts.sends.size(), 1u);  // the Join
  ASSERT_TRUE(acts.timer.has_value());
  int fired = 0;
  while (!m.finished() && fired < 100) {
    ASSERT_TRUE(acts.timer.has_value());
    acts = m.on_timer(*acts.timer);
    ++fired;
  }
  ASSERT_TRUE(m.finished());
  EXPECT_EQ(m.exit_code(), 1);  // gave up, not a clean fin
  EXPECT_EQ(m.retransmits(), 3u);
}

TEST(LiveService, MalformedDatagramsAreDroppedNotFatal) {
  Fixture f(small_spec());
  VirtualNet net(*f.daemon, f.ptrs, {});
  // Hand the daemon garbage alongside a normal run start: decode failures
  // must be swallowed (counted), never poison the run.
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00};
  auto acts = f.daemon->on_batch(0, {garbage});
  EXPECT_FALSE(f.daemon->failed());
  EXPECT_TRUE(acts.sends.empty());
  ASSERT_TRUE(net.run());
  expect_clean_completion(f);

  // Stations drop malformed input the same way.
  StationConfig sc;
  sc.id = 1;
  StationMachine m(sc);
  (void)m.on_start(0);
  auto sacts = m.on_datagram(1, garbage);
  EXPECT_FALSE(m.finished());
  EXPECT_TRUE(sacts.sends.empty());
}

TEST(LiveService, ViolationPoisonsTheRun) {
  // A forged Boundary announcing a transmit for a station with an empty
  // queue must fail the run with Fins to everyone, not corrupt stats.
  snapshot::RunSpec spec = small_spec();
  spec.has_injector = false;  // nothing ever queued
  DaemonConfig dc;
  dc.spec = spec;
  Daemon daemon(dc);

  // Join both stations so the run starts.
  std::vector<std::vector<std::uint8_t>> joins;
  for (StationId id = 1; id <= 2; ++id) {
    Msg j;
    j.type = MsgType::kJoin;
    j.station = id;
    j.name = "t";
    joins.push_back(encode(j));
  }
  (void)daemon.on_batch(0, joins);
  ASSERT_TRUE(daemon.started());

  Msg b;
  b.type = MsgType::kBoundary;
  b.station = 1;
  b.slot_index = 1;
  b.action = SlotAction::kTransmitPacket;  // queue is empty: a violation
  const auto acts = daemon.on_batch(0, {encode(b)});
  EXPECT_TRUE(daemon.failed());
  EXPECT_TRUE(daemon.done());
  EXPECT_FALSE(daemon.reason().empty());
  // Every station got a Fin{ok=false}.
  int fins = 0;
  for (const auto& out : acts.sends) {
    const Msg m = decode(out.datagram);
    if (m.type == MsgType::kFin) {
      EXPECT_FALSE(m.ok);
      ++fins;
    }
  }
  EXPECT_EQ(fins, 2);
}

}  // namespace
}  // namespace asyncmac::live
