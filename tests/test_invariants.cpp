// Tests for the trace-level invariant checkers, plus their application to
// real executions of the ARRoW protocols (end-to-end consistency of the
// whole stack: protocols -> engine -> channel -> trace).
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "core/ao_arrow.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "trace/invariants.h"

namespace asyncmac {
namespace {

using trace::SlotRecord;

constexpr Tick U = kTicksPerUnit;

SlotRecord slot(StationId st, SlotIndex idx, Tick b, Tick e, SlotAction a,
                Feedback f) {
  return {st, idx, b, e, a, f};
}

// ------------------------------------------------------------- unit cases

TEST(Invariants, NoOverlapsAcceptsDisjointAndTouching) {
  std::vector<channel::Transmission> txs;
  txs.push_back({1, 0, U, false, 0, false, false});
  txs.push_back({2, U, 2 * U, false, 0, false, false});  // touching: fine
  txs.push_back({1, 5 * U, 6 * U, false, 0, false, false});
  EXPECT_TRUE(trace::check_no_overlaps(txs));
}

TEST(Invariants, NoOverlapsFlagsOverlap) {
  std::vector<channel::Transmission> txs;
  txs.push_back({1, 0, 2 * U, false, 0, false, false});
  txs.push_back({2, U, 3 * U, false, 0, false, false});
  const auto res = trace::check_no_overlaps(txs);
  EXPECT_FALSE(res);
  EXPECT_NE(res.what.find("overlap"), std::string::npos);
}

TEST(Invariants, ContiguityAcceptsProperTiling) {
  std::vector<SlotRecord> slots{
      slot(1, 1, 0, U, SlotAction::kListen, Feedback::kSilence),
      slot(2, 1, 0, 2 * U, SlotAction::kListen, Feedback::kSilence),
      slot(1, 2, U, 3 * U, SlotAction::kListen, Feedback::kSilence),
      slot(2, 2, 2 * U, 3 * U, SlotAction::kListen, Feedback::kSilence),
  };
  EXPECT_TRUE(trace::check_slot_contiguity(slots));
}

TEST(Invariants, ContiguityFlagsGapAndIndexJump) {
  std::vector<SlotRecord> gap{
      slot(1, 1, 0, U, SlotAction::kListen, Feedback::kSilence),
      slot(1, 2, 2 * U, 3 * U, SlotAction::kListen, Feedback::kSilence),
  };
  EXPECT_FALSE(trace::check_slot_contiguity(gap));

  std::vector<SlotRecord> jump{
      slot(1, 1, 0, U, SlotAction::kListen, Feedback::kSilence),
      slot(1, 3, U, 2 * U, SlotAction::kListen, Feedback::kSilence),
  };
  EXPECT_FALSE(trace::check_slot_contiguity(jump));
}

TEST(Invariants, FeedbackConsistencyFlagsWrongFeedback) {
  std::vector<SlotRecord> slots{
      slot(1, 1, 0, U, SlotAction::kTransmitPacket, Feedback::kAck),
      // Keep station 1's recorded timeline at least as long as station
      // 2's, so the bad slot lies inside the checkable prefix.
      slot(1, 2, U, 2 * U, SlotAction::kListen, Feedback::kSilence),
      // Listener claims silence although the transmission ended in its
      // slot (should be ack):
      slot(2, 1, 0, 2 * U, SlotAction::kListen, Feedback::kSilence),
  };
  const auto res = trace::check_feedback_consistency(slots);
  EXPECT_FALSE(res);
  EXPECT_NE(res.what.find("station 2"), std::string::npos);
}

TEST(Invariants, MirrorPropertyChecks) {
  std::vector<SlotRecord> good{
      slot(1, 1, 0, U, SlotAction::kListen, Feedback::kSilence),
      slot(1, 2, U, 2 * U, SlotAction::kTransmitPacket, Feedback::kBusy),
  };
  EXPECT_TRUE(trace::check_mirror_property(good));
  std::vector<SlotRecord> bad{
      slot(1, 1, 0, U, SlotAction::kTransmitPacket, Feedback::kAck),
  };
  EXPECT_FALSE(trace::check_mirror_property(bad));
}

TEST(Invariants, CyclicTurnOrder) {
  std::vector<channel::Transmission> good;
  good.push_back({1, 0, U, false, 0, false, false});
  good.push_back({1, U, 2 * U, false, 0, false, false});  // same burst
  good.push_back({2, 4 * U, 5 * U, false, 0, false, false});
  good.push_back({3, 8 * U, 9 * U, true, 0, false, false});
  good.push_back({1, 12 * U, 13 * U, false, 0, false, false});  // wraps
  EXPECT_TRUE(trace::check_cyclic_turn_order(good, 3));

  std::vector<channel::Transmission> bad = good;
  bad.push_back({3, 16 * U, 17 * U, false, 0, false, false});  // skips 2
  EXPECT_FALSE(trace::check_cyclic_turn_order(bad, 3));
}

// ------------------------------------------------- end-to-end application

template <typename P>
std::unique_ptr<sim::Engine> traced_run(std::uint32_t n, std::uint32_t R,
                                        util::Ratio rho, Tick horizon) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.record_trace = true;
  auto e = std::make_unique<sim::Engine>(
      cfg, asyncmac::testing::make_protocols<P>(n),
      asyncmac::testing::make_slot_policy("perstation", n, R),
      std::make_unique<adversary::SaturatingInjector>(
          rho, 8 * U, adversary::TargetPattern::kRoundRobin));
  e->run(sim::until(horizon));
  return e;
}

TEST(Invariants, CaArrowFullTraceHonorsEverything) {
  auto e = traced_run<core::CaArrowProtocol>(4, 2, util::Ratio(6, 10),
                                             20000 * U);
  const auto& slots = e->trace().slots();
  ASSERT_GT(slots.size(), 1000u);
  EXPECT_TRUE(trace::check_slot_contiguity(slots));
  EXPECT_TRUE(trace::check_feedback_consistency(slots));
  const auto txs = trace::transmissions_of(slots);
  EXPECT_TRUE(trace::check_no_overlaps(txs)) << "CA-ARRoW overlapped";
  EXPECT_TRUE(trace::check_cyclic_turn_order(txs, 4));
}

TEST(Invariants, AoArrowTraceIsSelfConsistent) {
  auto e = traced_run<core::AoArrowProtocol>(3, 2, util::Ratio(1, 2),
                                             20000 * U);
  const auto& slots = e->trace().slots();
  ASSERT_GT(slots.size(), 1000u);
  EXPECT_TRUE(trace::check_slot_contiguity(slots));
  EXPECT_TRUE(trace::check_feedback_consistency(slots));
  // AO-ARRoW is allowed overlaps (collisions), so no no-overlap claim —
  // but the trace must replay to identical feedback, which the check
  // above just proved.
}

}  // namespace
}  // namespace asyncmac
