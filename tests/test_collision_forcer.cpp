// Tests for the Theorem-4 adversary: against collision-free, no-control
// protocols it must force a collision or a queue overflow.
#include <gtest/gtest.h>

#include "adversary/collision_forcer.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "core/ao_arrow.h"

namespace asyncmac {
namespace {

using adversary::CollisionForceOutcome;
using adversary::force_collision_or_overflow;

adversary::ProtocolFactory tdma_factory() {
  return [](StationId) {
    return std::make_unique<baselines::SilenceCountTdmaProtocol>();
  };
}

adversary::ProtocolFactory rrw_factory() {
  return [](StationId) { return std::make_unique<baselines::RrwProtocol>(); };
}

TEST(CollisionForcer, RejectsSynchronousBound) {
  EXPECT_THROW(
      force_collision_or_overflow(tdma_factory(), util::Ratio(1, 2), 10, 1),
      std::invalid_argument);
  EXPECT_THROW(
      force_collision_or_overflow(tdma_factory(), util::Ratio::zero(), 10, 2),
      std::invalid_argument);
}

TEST(CollisionForcer, BreaksSilenceCountTdma) {
  const auto out =
      force_collision_or_overflow(tdma_factory(), util::Ratio(1, 2), 20, 2);
  EXPECT_EQ(out.kind, CollisionForceOutcome::Kind::kCollisionForced)
      << "alpha=" << out.alpha << " beta=" << out.beta;
  EXPECT_GE(out.collisions, 2u);
  EXPECT_GT(out.x_ticks, 0);
  EXPECT_GT(out.y_ticks, 0);
  EXPECT_NE(out.x_ticks, out.y_ticks)
      << "the adversary should need genuinely different stretches";
}

TEST(CollisionForcer, BreaksSilenceCountTdmaAcrossParameters) {
  for (std::uint32_t R : {2u, 3u, 4u}) {
    for (int rho_pct : {30, 50, 80}) {
      const auto out = force_collision_or_overflow(
          tdma_factory(), util::Ratio(rho_pct, 100), 15, R);
      EXPECT_NE(out.kind, CollisionForceOutcome::Kind::kNoTransmission)
          << "R=" << R << " rho%=" << rho_pct;
      EXPECT_TRUE(out.kind == CollisionForceOutcome::Kind::kCollisionForced ||
                  out.kind == CollisionForceOutcome::Kind::kQueueOverflow);
    }
  }
}

TEST(CollisionForcer, BreaksRrw) {
  // RRW is collision-free and control-free at R = 1; Theorem 4 says no
  // such protocol survives R >= 2.
  const auto out =
      force_collision_or_overflow(rrw_factory(), util::Ratio(1, 2), 20, 2);
  EXPECT_TRUE(out.kind == CollisionForceOutcome::Kind::kCollisionForced ||
              out.kind == CollisionForceOutcome::Kind::kQueueOverflow);
}

TEST(CollisionForcer, TransmissionStartsAlignExactly) {
  const auto out =
      force_collision_or_overflow(tdma_factory(), util::Ratio(1, 2), 10, 3);
  ASSERT_EQ(out.kind, CollisionForceOutcome::Kind::kCollisionForced);
  // (T1-1) X == (T2-1) Y == the reported collision time.
  const Tick t1m1 = static_cast<Tick>(out.s_start + out.alpha - 1);
  const Tick t2m1 = static_cast<Tick>(out.s_start + out.beta - 1);
  EXPECT_EQ(t1m1 * out.x_ticks, out.collision_time);
  EXPECT_EQ(t2m1 * out.y_ticks, out.collision_time);
}

TEST(CollisionForcer, AoArrowToleratesTheConstruction) {
  // AO-ARRoW is *allowed* collisions (Table I row 2), so the forced
  // collision is not a contradiction for it — this documents that the
  // construction targets the collision-free model class specifically.
  adversary::ProtocolFactory f = [](StationId) {
    return std::make_unique<core::AoArrowProtocol>();
  };
  const auto out = force_collision_or_overflow(f, util::Ratio(1, 2), 40, 2);
  // Whatever the outcome, the driver must terminate and classify it.
  EXPECT_TRUE(out.kind == CollisionForceOutcome::Kind::kCollisionForced ||
              out.kind == CollisionForceOutcome::Kind::kQueueOverflow ||
              out.kind == CollisionForceOutcome::Kind::kNoTransmission);
}

}  // namespace
}  // namespace asyncmac
