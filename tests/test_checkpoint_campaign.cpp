// Fuzz-campaign cursor checkpointing (verify::CampaignConfig::
// checkpoint_path): a campaign stopped mid-way (stop_after_cases, the
// deterministic stand-in for a kill) and resumed from its cursor file
// produces verdicts and summary text byte-identical to an uninterrupted
// campaign, and a cursor written under a different campaign raises the
// typed kMismatch error.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "snapshot/io.h"
#include "verify/campaign.h"

namespace asyncmac {
namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;
using verify::CampaignConfig;
using verify::CampaignResult;

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.seed = 515;
  cfg.cases = 160;  // 2.5 campaign chunks (kChunk = 64)
  cfg.jobs = 2;
  cfg.shrink = false;
  return cfg;
}

void expect_same_verdicts(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].index, b.verdicts[i].index);
    EXPECT_EQ(a.verdicts[i].case_seed, b.verdicts[i].case_seed);
    EXPECT_EQ(a.verdicts[i].ok, b.verdicts[i].ok);
    EXPECT_EQ(a.verdicts[i].violation, b.verdicts[i].violation);
  }
}

TEST(CheckpointCampaign, StopAndResumeMatchesUninterruptedRun) {
  const CampaignResult control = verify::run_campaign(base_config());
  ASSERT_EQ(control.cases_run, 160u);

  const std::string cursor = "campaign_cursor_test.snap";
  std::remove(cursor.c_str());

  // First leg: stop cleanly past 70 cases (rounded up to a chunk
  // boundary) with the cursor on disk.
  CampaignConfig cfg = base_config();
  cfg.checkpoint_path = cursor;
  cfg.stop_after_cases = 70;  // rounds up to the 128-case boundary
  const CampaignResult partial = verify::run_campaign(cfg);
  EXPECT_TRUE(partial.budget_exhausted);
  EXPECT_GE(partial.cases_run, 70u);
  EXPECT_LT(partial.cases_run, 160u);

  // The partial verdicts are a prefix of the control's.
  ASSERT_LE(partial.verdicts.size(), control.verdicts.size());
  for (std::size_t i = 0; i < partial.verdicts.size(); ++i)
    EXPECT_EQ(partial.verdicts[i].case_seed, control.verdicts[i].case_seed);

  // Second leg: same campaign, no stop — resumes from the cursor and
  // completes. Everything observable matches the uninterrupted run.
  cfg.stop_after_cases = 0;
  const CampaignResult resumed = verify::run_campaign(cfg);
  EXPECT_EQ(resumed.cases_run, 160u);
  EXPECT_FALSE(resumed.budget_exhausted);
  expect_same_verdicts(resumed, control);
  EXPECT_EQ(verify::summarize(resumed), verify::summarize(control));

  // A third run resumes a fully-complete cursor: nothing reruns, same
  // answer again.
  const CampaignResult replayed = verify::run_campaign(cfg);
  expect_same_verdicts(replayed, control);
  std::remove(cursor.c_str());
}

TEST(CheckpointCampaign, CursorFromDifferentCampaignIsMismatch) {
  const std::string cursor = "campaign_cursor_mismatch.snap";
  std::remove(cursor.c_str());
  CampaignConfig cfg = base_config();
  cfg.cases = 64;
  cfg.checkpoint_path = cursor;
  verify::run_campaign(cfg);

  // Different campaign seed, same cursor path: must refuse, not resume.
  CampaignConfig other = cfg;
  other.seed = cfg.seed + 1;
  try {
    verify::run_campaign(other);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }

  // Different case count: also a different campaign.
  CampaignConfig wider = cfg;
  wider.cases = 128;
  try {
    verify::run_campaign(wider);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }
  std::remove(cursor.c_str());
}

}  // namespace
}  // namespace asyncmac
