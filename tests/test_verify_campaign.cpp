// Campaign-level properties of the fuzzing subsystem: generator
// determinism and seed purity, a clean sweep over the shipped protocol
// pool, byte-identical results for every jobs value (verdicts, summary
// text AND repro JSON), greedy shrinking of synthetic violations down to
// the acceptance bar (<= 3 stations), and repro round-trip/replay.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "verify/campaign.h"
#include "verify/repro.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using verify::CampaignConfig;
using verify::CampaignResult;
using verify::Scenario;
using verify::ScenarioGen;

Scenario small_clean_scenario() {
  Scenario s;
  s.protocol = "ca-arrow";
  s.n = 3;
  s.bound_r = 2;
  s.slot_policy = "perstation";
  s.horizon_units = 60;
  s.seed = 11;
  s.injector.kind = "saturating";
  s.injector.rho = util::Ratio(1, 2);
  return s;
}

std::string replace_first(std::string text, const std::string& from,
                          const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "pattern not found: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

TEST(VerifyCampaign, ScenarioGenIsDeterministicAndSeedPure) {
  const ScenarioGen a(42);
  const ScenarioGen b(42);
  for (std::uint64_t i = 0; i < 24; ++i) {
    EXPECT_EQ(a.case_seed(i), b.case_seed(i));
    const Scenario sa = a.generate(i);
    EXPECT_EQ(sa, b.generate(i));
    // A case replays from its seed alone — no campaign context needed.
    EXPECT_EQ(sa, verify::scenario_from_seed(a.case_seed(i)));
  }
  EXPECT_NE(a.case_seed(0), ScenarioGen(43).case_seed(0));
  EXPECT_NE(a.case_seed(0), a.case_seed(1));
}

TEST(VerifyCampaign, SynchronousOnlyProtocolsArePinnedToR1) {
  // tree-resolution's correctness argument assumes globally simultaneous
  // feedback; the generator must never schedule it with R > 1 (this is
  // the regression the 1000-case campaign originally caught).
  int seen = 0;
  const ScenarioGen gen(7);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const Scenario s = gen.generate(i);
    if (s.protocol == "tree-resolution") {
      ++seen;
      EXPECT_EQ(s.bound_r, 1u) << "index " << i;
    }
  }
  EXPECT_GT(seen, 0) << "pool never produced tree-resolution";
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Scenario s =
        verify::scenario_from_seed(seed, {"tree-resolution"});
    EXPECT_EQ(s.bound_r, 1u) << "seed " << seed;
  }
}

TEST(VerifyCampaign, CleanSweepOverShippedProtocols) {
  CampaignConfig config;
  config.seed = 3;
  config.cases = 192;  // three chunks
  config.jobs = 2;
  const CampaignResult result = verify::run_campaign(config);
  EXPECT_EQ(result.cases_run, 192u);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_FALSE(result.shrunk_valid);
  for (const auto& v : result.verdicts) {
    EXPECT_TRUE(v.ok) << "case " << v.index << " seed " << v.case_seed
                      << ": " << v.violation;
  }
  EXPECT_NE(verify::summarize(result).find("violations: 0"),
            std::string::npos);
}

TEST(VerifyCampaign, ResultsAreByteIdenticalAcrossJobs) {
  // A synthetic, deterministic violation on ~a quarter of the cases: the
  // shipped stack (correctly) refuses to fail on its own, so the
  // determinism contract is exercised with failures present via the
  // extra-check hook.
  CampaignConfig config;
  config.seed = 9;
  config.cases = 130;  // crosses a chunk boundary
  config.extra_check = [](const Scenario& s, const sim::Engine&) {
    if (s.case_seed % 4 == 0)
      return trace::CheckResult{false, "synthetic: case_seed % 4 == 0"};
    return trace::CheckResult{};
  };

  config.jobs = 1;
  const CampaignResult r1 = verify::run_campaign(config);
  ASSERT_FALSE(r1.failures.empty());
  ASSERT_TRUE(r1.shrunk_valid);

  for (unsigned jobs : {2u, 5u}) {
    config.jobs = jobs;
    const CampaignResult rn = verify::run_campaign(config);
    EXPECT_EQ(verify::summarize(r1), verify::summarize(rn)) << "jobs "
                                                            << jobs;
    ASSERT_EQ(r1.verdicts.size(), rn.verdicts.size());
    for (std::size_t i = 0; i < r1.verdicts.size(); ++i) {
      EXPECT_EQ(r1.verdicts[i].index, rn.verdicts[i].index);
      EXPECT_EQ(r1.verdicts[i].case_seed, rn.verdicts[i].case_seed);
      EXPECT_EQ(r1.verdicts[i].ok, rn.verdicts[i].ok);
      EXPECT_EQ(r1.verdicts[i].violation, rn.verdicts[i].violation);
    }
    EXPECT_EQ(r1.shrunk, rn.shrunk);
    EXPECT_EQ(r1.shrunk_violation, rn.shrunk_violation);
    // The repro file the CLI would write is part of the contract too.
    EXPECT_EQ(
        verify::to_json(verify::make_repro(r1.shrunk, r1.shrunk_violation)),
        verify::to_json(verify::make_repro(rn.shrunk, rn.shrunk_violation)));
  }
}

TEST(VerifyCampaign, ShrinkerReachesTheStationAcceptanceBar) {
  // A violation that any transmission at all triggers: the shrinker must
  // push a 6-station case to <= 3 stations (the acceptance criterion)
  // while the scenario keeps failing.
  Scenario s;
  s.protocol = "aloha";
  s.n = 6;
  s.bound_r = 3;
  s.slot_policy = "cyclic";
  s.horizon_units = 120;
  s.seed = 5;
  s.injector.kind = "bursty";
  s.injector.rho = util::Ratio(3, 4);
  s.injector.burst_ticks = 16 * kTicksPerUnit;
  s.injector.period_ticks = 8 * kTicksPerUnit;
  const verify::CaseCheck any_transmission =
      [](const Scenario&, const sim::Engine& e) {
        if (e.ledger().stats().transmissions > 0)
          return trace::CheckResult{false, "synthetic: saw a transmission"};
        return trace::CheckResult{};
      };
  ASSERT_FALSE(verify::run_case(s, any_transmission).ok);

  std::string violation;
  const Scenario shrunk =
      verify::shrink_counterexample(s, any_transmission, &violation);
  EXPECT_LE(shrunk.n, 3u);
  EXPECT_LE(shrunk.horizon_units, s.horizon_units);
  EXPECT_EQ(violation, "synthetic: saw a transmission");
  EXPECT_FALSE(verify::run_case(shrunk, any_transmission).ok);

  // End to end through the campaign: the shrunk counterexample lands in
  // the result ready for repro emission.
  CampaignConfig config;
  config.seed = 21;
  config.cases = 8;
  config.jobs = 1;
  config.extra_check = any_transmission;
  const CampaignResult result = verify::run_campaign(config);
  ASSERT_FALSE(result.failures.empty());
  ASSERT_TRUE(result.shrunk_valid);
  EXPECT_LE(result.shrunk.n, 3u);
  EXPECT_FALSE(result.shrunk_violation.empty());
}

TEST(VerifyCampaign, ReproRoundTripsAndReplaysClean) {
  const Scenario s = small_clean_scenario();
  const verify::Repro repro = verify::make_repro(s, "");
  ASSERT_FALSE(repro.trace_text.empty());

  const std::string json = verify::to_json(repro);
  const verify::Repro parsed = verify::parse_repro_json(json);
  EXPECT_EQ(parsed, repro);
  EXPECT_EQ(verify::to_json(parsed), json);

  const verify::ReplayOutcome outcome = verify::replay_repro(parsed);
  EXPECT_TRUE(outcome.case_result.ok) << outcome.case_result.what;
  EXPECT_TRUE(outcome.trace_matches);
  EXPECT_TRUE(outcome.reproduced);

  // Full-width u64 seeds (> INT64_MAX) must survive the JSON layer —
  // real case seeds use all 64 bits.
  Scenario wide = s;
  wide.seed = 0xDEAD'BEEF'DEAD'BEEFULL;
  wide.case_seed = 0xFFFF'FFFF'FFFF'FFFEULL;
  const verify::Repro wide_repro = verify::make_repro(wide, "");
  EXPECT_EQ(verify::parse_repro_json(verify::to_json(wide_repro)),
            wide_repro);

  // A repro claiming a violation the current build does not exhibit must
  // NOT count as reproduced (that is how a fixed bug reads).
  const verify::Repro stale = verify::make_repro(s, "claimed violation");
  const verify::ReplayOutcome fixed = verify::replay_repro(stale);
  EXPECT_TRUE(fixed.trace_matches);
  EXPECT_FALSE(fixed.reproduced);
}

TEST(VerifyCampaign, ReproParserRejectsMalformedInput) {
  const std::string good = verify::to_json(verify::make_repro(
      small_clean_scenario(), ""));
  const std::vector<std::string> bad = {
      good.substr(0, good.size() / 2),
      good + "junk",
      replace_first(good, "asyncmac-fuzz-repro", "something-else"),
      replace_first(good, "\"version\": 1", "\"version\": 2"),
      replace_first(good, "\"version\": 1",
                    "\"version\": 99999999999999999999999"),
      replace_first(good, "\"n\":", "\"m\":"),
      replace_first(good, "\"rho_den\": 2", "\"rho_den\": -2"),
      "{}",
      "[1]",
      "{\"format\": \"a\\qb\"}",
      "{\"format\": \"x\", \"format\": \"x\"}",
      "",
  };
  for (const std::string& text : bad) {
    EXPECT_THROW(verify::parse_repro_json(text), std::invalid_argument)
        << "accepted: " << text.substr(0, 80);
  }
}

}  // namespace
}  // namespace asyncmac
