// The distributed-sweep service (sweep/coordinator.h, sweep/worker.h,
// sweep/loopback.h): deterministic fault-injection over the in-process
// loopback transport. Every failure mode the coordinator promises to
// absorb — worker killed mid-chunk, lease expiry and reassignment,
// duplicate and late results, corrupt frames, lying payloads — is staged
// here with a scripted fault and a virtual clock, and the merged results
// must stay byte-identical to a single-process analysis::run_grid /
// verify::run_campaign of the same job.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <variant>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/grid.h"
#include "snapshot/io.h"
#include "sweep/coordinator.h"
#include "sweep/loopback.h"
#include "sweep/protocol.h"
#include "sweep/worker.h"
#include "telemetry/registry.h"
#include "verify/campaign.h"

namespace asyncmac {
namespace {

using namespace asyncmac::sweep;
using snapshot::ErrorKind;
using snapshot::SnapshotError;

analysis::ExperimentSpec small_spec() {
  analysis::ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {2};
  spec.bounds_r = {2};
  spec.rho_percents = {40, 60};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 300;
  spec.seed = 1;
  spec.seeds = 2;
  spec.jobs = 1;
  return spec;
}

SweepJob grid_job() {
  SweepJob job;
  job.kind = JobKind::kGrid;
  job.grid = small_spec();
  return job;
}

CoordinatorConfig fast_config(SweepJob job) {
  CoordinatorConfig cfg;
  cfg.job = std::move(job);
  cfg.lease_timeout_ms = 1000;  // 10 loopback steps at the default tick
  cfg.heartbeat_ms = 200;
  cfg.nowork_retry_ms = 100;
  return cfg;
}

/// Byte-level equality of record vectors via the canonical wire encoding.
void expect_records_identical(
    const std::vector<analysis::ExperimentRecord>& got,
    const std::vector<analysis::ExperimentRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(encode_grid_result(got), encode_grid_result(want));
  // The rendered table is the CLI-visible face of the same bytes.
  EXPECT_EQ(analysis::to_table(got), analysis::to_table(want));
}

std::uint64_t counter(const char* name) {
  return telemetry::Registry::global().counter(name).value();
}

class SweepServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::Registry::global().reset_values();
    telemetry::set_enabled(true);
  }
  void TearDown() override { telemetry::set_enabled(false); }
};

// ------------------------------------------------------------ happy path

TEST_F(SweepServiceTest, ThreeWorkersMatchSingleProcessRunGrid) {
  const auto control = analysis::run_grid(small_spec());

  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w1, w2, w3;
  net.attach(w1);
  net.attach(w2);
  net.attach(w3);
  ASSERT_TRUE(net.run());
  ASSERT_TRUE(coord.done());
  expect_records_identical(coord.grid_records(), control);
  EXPECT_TRUE(w1.finished());
  EXPECT_TRUE(w2.finished());
  EXPECT_TRUE(w3.finished());
  EXPECT_EQ(counter("sweep.results"), coord.units_total());
  EXPECT_EQ(counter("sweep.worker_deaths"), 0u);
  EXPECT_EQ(counter("sweep.dup_results"), 0u);
}

TEST_F(SweepServiceTest, SingleWorkerAlsoMatches) {
  const auto control = analysis::run_grid(small_spec());
  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w;
  net.attach(w);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
}

// ----------------------------------------------------------- fault paths

TEST_F(SweepServiceTest, WorkerKilledMidChunkIsReassignedByteIdentical) {
  const auto control = analysis::run_grid(small_spec());

  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w1, w2;
  const std::uint64_t c1 = net.attach(w1);
  net.attach(w2);
  // Worker 1's frames toward the coordinator: Hello(0), RequestWork(1),
  // Result(2). Sever the link exactly when its first computed Result
  // would leave — the distributed equivalent of SIGKILL mid-chunk.
  net.add_fault(c1, LoopbackNet::Dir::kToCoordinator, 2,
                LoopbackNet::FaultKind::kSever);
  ASSERT_TRUE(net.run());
  ASSERT_TRUE(coord.done());
  EXPECT_FALSE(net.worker_alive(c1));
  expect_records_identical(coord.grid_records(), control);
  EXPECT_EQ(counter("sweep.worker_deaths"), 1u);
  EXPECT_GE(counter("sweep.reassigns"), 1u);
}

TEST_F(SweepServiceTest, CorruptedResultFrameSeversWorkerButSweepCompletes) {
  const auto control = analysis::run_grid(small_spec());
  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w1, w2;
  const std::uint64_t c1 = net.attach(w1);
  net.attach(w2);
  // Flip a byte inside worker 1's first Result payload in flight: the
  // frame CRC catches it, the coordinator severs, worker 2 finishes.
  net.add_fault(c1, LoopbackNet::Dir::kToCoordinator, 2,
                LoopbackNet::FaultKind::kCorrupt, /*arg=*/30);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
  EXPECT_FALSE(net.worker_alive(c1));
  EXPECT_EQ(counter("sweep.protocol_errors"), 1u);
}

TEST_F(SweepServiceTest, DuplicatedResultFrameMergesOnce) {
  const auto control = analysis::run_grid(small_spec());
  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w;
  const std::uint64_t c = net.attach(w);
  // The network delivers worker's first Result twice (retransmit race).
  net.add_fault(c, LoopbackNet::Dir::kToCoordinator, 2,
                LoopbackNet::FaultKind::kDuplicate);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
  EXPECT_EQ(counter("sweep.dup_results"), 1u);
  EXPECT_TRUE(w.finished());
}

TEST_F(SweepServiceTest, DelayedResultStillMerges) {
  const auto control = analysis::run_grid(small_spec());
  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession w1, w2;
  const std::uint64_t c1 = net.attach(w1);
  net.attach(w2);
  net.add_fault(c1, LoopbackNet::Dir::kToCoordinator, 2,
                LoopbackNet::FaultKind::kDelay, /*arg=*/5);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
}

TEST_F(SweepServiceTest, WorkerKilledWhileIdleBetweenUnits) {
  // Pin cohort=2: with param-varying cohorts the 8-cell grid would plan
  // as 2 whole-row units and worker 1 would finish before the kill step;
  // 4 units keep it mid-sweep (idle between its units) when killed.
  analysis::ExperimentSpec spec = small_spec();
  spec.cohort = 2;
  const auto control = analysis::run_grid(spec);
  SweepJob job = grid_job();
  job.grid = spec;
  Coordinator coord(fast_config(job));
  LoopbackNet net(coord);
  WorkerSession w1, w2;
  const std::uint64_t c1 = net.attach(w1);
  net.attach(w2);
  for (int i = 0; i < 3; ++i) net.step();
  net.kill_worker(c1);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
  EXPECT_EQ(counter("sweep.worker_deaths"), 1u);
}

TEST_F(SweepServiceTest, ExecutorFailureIsAWorkerDeathNotACoordinatorError) {
  const auto control = analysis::run_grid(small_spec());
  Coordinator coord(fast_config(grid_job()));
  LoopbackNet net(coord);
  WorkerSession broken({}, [](const WorkerSession::Context&,
                              const AssignMsg&) -> std::vector<std::uint8_t> {
    throw std::runtime_error("simulated engine crash");
  });
  WorkerSession good;
  net.attach(broken);
  net.attach(good);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);
  EXPECT_TRUE(broken.failed());
  EXPECT_EQ(counter("sweep.worker_deaths"), 1u);
}

// ------------------------------------------- sans-IO protocol edge cases

/// Drive the coordinator directly (no loopback): hand-rolled frames and
/// an explicit virtual clock expose lease timing and idempotence corners.
struct DirectDriver {
  Coordinator& coord;
  std::uint64_t now = 0;

  std::vector<Action> feed(std::uint64_t conn,
                           const std::vector<std::uint8_t>& frame) {
    return coord.on_bytes(conn, frame.data(), frame.size(), now);
  }
  /// First decoded message of the actions' kSend frames, asserted to
  /// target `conn`.
  template <typename M>
  M expect_sent(const std::vector<Action>& actions, std::uint64_t conn) {
    for (const auto& a : actions) {
      if (a.kind != Action::Kind::kSend || a.conn != conn) continue;
      FrameDecoder dec;
      dec.feed(a.frame);
      auto f = dec.next();
      if (!f.has_value()) continue;
      const Message m = decode_message(*f);
      if (const M* typed = std::get_if<M>(&m)) return *typed;
    }
    ADD_FAILURE() << "expected message not sent";
    return M{};
  }
};

TEST_F(SweepServiceTest, LeaseExpiresAndReassignsThenLateResultIsIdempotent) {
  const analysis::ExperimentSpec spec = small_spec();
  const analysis::GridPlan plan = analysis::plan_grid(spec);
  CoordinatorConfig cfg = fast_config(grid_job());
  Coordinator coord(cfg);
  DirectDriver d{coord};

  // Worker A joins and leases unit 0...
  coord.on_connect(1, d.now);
  d.feed(1, to_frame(HelloMsg{"a"}));
  auto assign_a = d.expect_sent<AssignMsg>(
      d.feed(1, to_frame(RequestWorkMsg{1})), 1);
  EXPECT_EQ(assign_a.unit_index, 0u);

  // ...then goes silent past the lease timeout: the unit returns to the
  // pool and worker B is handed the SAME unit under a NEW lease.
  d.now += cfg.lease_timeout_ms + 1;
  coord.on_tick(d.now);
  EXPECT_EQ(counter("sweep.reassigns"), 1u);
  coord.on_connect(2, d.now);
  d.feed(2, to_frame(HelloMsg{"b"}));
  auto assign_b = d.expect_sent<AssignMsg>(
      d.feed(2, to_frame(RequestWorkMsg{2})), 2);
  EXPECT_EQ(assign_b.unit_index, 0u);
  EXPECT_NE(assign_b.lease_id, assign_a.lease_id);

  // Worker A's LATE result (computed under the revoked lease) arrives
  // first. Deterministic engines make it the right bytes — it merges.
  std::vector<std::size_t> todo;
  for (std::uint64_t i = 0; i < assign_a.count; ++i)
    todo.push_back(static_cast<std::size_t>(assign_a.first + i));
  const auto unit_records = analysis::run_grid_cells(spec, plan, todo);
  ResultMsg late;
  late.worker_id = 1;
  late.lease_id = assign_a.lease_id;
  late.unit_index = assign_a.unit_index;
  late.unit_id = assign_a.unit_id;
  late.payload = encode_grid_result(unit_records);
  auto ack_a = d.expect_sent<ResultAckMsg>(d.feed(1, to_frame(late)), 1);
  EXPECT_FALSE(ack_a.duplicate);
  EXPECT_EQ(coord.units_done(), 1u);

  // Worker B finishes the same unit: acked as a duplicate, merged once.
  ResultMsg dup = late;
  dup.worker_id = 2;
  dup.lease_id = assign_b.lease_id;
  auto ack_b = d.expect_sent<ResultAckMsg>(d.feed(2, to_frame(dup)), 2);
  EXPECT_TRUE(ack_b.duplicate);
  EXPECT_EQ(coord.units_done(), 1u);
  EXPECT_EQ(counter("sweep.dup_results"), 1u);

  // The merged cells carry exactly the single-process bytes.
  for (std::uint64_t i = 0; i < assign_a.count; ++i)
    EXPECT_EQ(encode_grid_result({coord.grid_records()[assign_a.first + i]}),
              encode_grid_result({unit_records[i]}));
}

TEST_F(SweepServiceTest, HeartbeatKeepsLeaseAlivePastTheTimeout) {
  CoordinatorConfig cfg = fast_config(grid_job());
  Coordinator coord(cfg);
  DirectDriver d{coord};
  coord.on_connect(1, d.now);
  d.feed(1, to_frame(HelloMsg{"a"}));
  d.expect_sent<AssignMsg>(d.feed(1, to_frame(RequestWorkMsg{1})), 1);
  // Heartbeats at half the timeout, clock marching well past several
  // timeouts: the lease must survive.
  for (int i = 0; i < 6; ++i) {
    d.now += cfg.lease_timeout_ms / 2;
    d.feed(1, to_frame(HeartbeatMsg{1}));
    coord.on_tick(d.now);
  }
  EXPECT_EQ(counter("sweep.reassigns"), 0u);
}

TEST_F(SweepServiceTest, LyingResultPayloadIsRejectedAndSevers) {
  const analysis::ExperimentSpec spec = small_spec();
  Coordinator coord(fast_config(grid_job()));
  DirectDriver d{coord};
  coord.on_connect(1, d.now);
  d.feed(1, to_frame(HelloMsg{"a"}));
  auto assign = d.expect_sent<AssignMsg>(
      d.feed(1, to_frame(RequestWorkMsg{1})), 1);

  // Records for the WRONG cells (a different protocol than the plan's).
  analysis::ExperimentRecord bogus;
  bogus.protocol = "not-in-this-grid";
  bogus.n = 99;
  ResultMsg res;
  res.worker_id = 1;
  res.lease_id = assign.lease_id;
  res.unit_index = assign.unit_index;
  res.unit_id = assign.unit_id;
  res.payload = encode_grid_result(
      std::vector<analysis::ExperimentRecord>(assign.count, bogus));
  const auto actions = d.feed(1, to_frame(res));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, Action::Kind::kClose);
  EXPECT_EQ(coord.units_done(), 0u);
  EXPECT_EQ(counter("sweep.protocol_errors"), 1u);
}

TEST_F(SweepServiceTest, ProtocolViolationsSever) {
  Coordinator coord(fast_config(grid_job()));
  DirectDriver d{coord};
  // Speaking before Hello.
  coord.on_connect(1, d.now);
  auto acts = d.feed(1, to_frame(RequestWorkMsg{1}));
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, Action::Kind::kClose);
  // Duplicate Hello.
  coord.on_connect(2, d.now);
  d.feed(2, to_frame(HelloMsg{"b"}));
  acts = d.feed(2, to_frame(HelloMsg{"b again"}));
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, Action::Kind::kClose);
  // Result for an out-of-range unit.
  coord.on_connect(3, d.now);
  d.feed(3, to_frame(HelloMsg{"c"}));
  ResultMsg res;
  res.worker_id = 3;
  res.unit_index = 1u << 20;
  res.unit_id = 1;
  acts = d.feed(3, to_frame(res));
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, Action::Kind::kClose);
  EXPECT_EQ(counter("sweep.protocol_errors"), 3u);
}

TEST_F(SweepServiceTest, EofMidFrameCountsAsWorkerDeath) {
  Coordinator coord(fast_config(grid_job()));
  DirectDriver d{coord};
  coord.on_connect(1, d.now);
  d.feed(1, to_frame(HelloMsg{"a"}));
  const auto frame = to_frame(HeartbeatMsg{1});
  coord.on_bytes(1, frame.data(), frame.size() / 2, d.now);  // half a frame
  const auto acts = coord.on_eof(1, d.now);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, Action::Kind::kClose);
  EXPECT_EQ(counter("sweep.worker_deaths"), 1u);
}

// -------------------------------------------------------- manifest merge

TEST_F(SweepServiceTest, DistributedRunResumesAPartialManifest) {
  namespace fs = std::filesystem;
  const auto control = analysis::run_grid(small_spec());
  const analysis::ExperimentSpec spec = small_spec();
  const analysis::GridPlan plan = analysis::plan_grid(spec);
  const std::string dir = "sweep_service_manifest_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A prior (single-process or distributed) run finished the first unit:
  // its manifest marks those cells done with the control's bytes.
  std::vector<std::uint8_t> done(plan.cells.size(), 0);
  std::vector<analysis::ExperimentRecord> records(plan.cells.size());
  for (std::size_t i = 0; i < plan.units[0].count; ++i) {
    done[plan.units[0].first + i] = 1;
    records[plan.units[0].first + i] = control[plan.units[0].first + i];
  }
  analysis::write_grid_manifest(dir, analysis::grid_fingerprint(spec), done,
                                records);

  CoordinatorConfig cfg = fast_config(grid_job());
  cfg.checkpoint_dir = dir;
  Coordinator coord(cfg);
  EXPECT_EQ(coord.units_done(), 1u);  // resumed, not recomputed

  LoopbackNet net(coord);
  WorkerSession w;
  net.attach(w);
  ASSERT_TRUE(net.run());
  expect_records_identical(coord.grid_records(), control);

  // The merged manifest is loadable and complete.
  std::vector<std::uint8_t> done2(plan.cells.size(), 0);
  std::vector<analysis::ExperimentRecord> records2(plan.cells.size());
  const std::size_t n_done = analysis::load_grid_manifest(
      dir, analysis::grid_fingerprint(spec), done2, records2);
  EXPECT_EQ(n_done, plan.cells.size());
  expect_records_identical(records2, control);
  fs::remove_all(dir);
}

TEST_F(SweepServiceTest, ForeignManifestIsAMismatch) {
  namespace fs = std::filesystem;
  const std::string dir = "sweep_service_manifest_foreign";
  fs::remove_all(dir);
  fs::create_directories(dir);
  analysis::ExperimentSpec other = small_spec();
  other.horizon_units = 999;  // a different grid
  const analysis::GridPlan plan = analysis::plan_grid(other);
  analysis::write_grid_manifest(
      dir, analysis::grid_fingerprint(other),
      std::vector<std::uint8_t>(plan.cells.size(), 0),
      std::vector<analysis::ExperimentRecord>(plan.cells.size()));

  CoordinatorConfig cfg = fast_config(grid_job());
  cfg.checkpoint_dir = dir;
  try {
    Coordinator coord(cfg);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------- fuzz jobs

TEST_F(SweepServiceTest, DistributedFuzzMatchesRunCampaignVerdicts) {
  verify::CampaignConfig control_cfg;
  control_cfg.seed = 5;
  control_cfg.cases = 24;
  control_cfg.jobs = 1;
  control_cfg.shrink = false;
  const auto control = verify::run_campaign(control_cfg);

  SweepJob job;
  job.kind = JobKind::kFuzz;
  job.fuzz.seed = 5;
  job.fuzz.cases = 24;
  job.fuzz.chunk = 8;
  Coordinator coord(fast_config(job));
  EXPECT_EQ(coord.units_total(), 3u);
  LoopbackNet net(coord);
  WorkerSession w1, w2;
  const std::uint64_t c1 = net.attach(w1);
  net.attach(w2);
  // One worker dies mid-campaign for good measure.
  net.add_fault(c1, LoopbackNet::Dir::kToCoordinator, 2,
                LoopbackNet::FaultKind::kSever);
  ASSERT_TRUE(net.run());

  ASSERT_EQ(coord.fuzz_verdicts().size(), control.verdicts.size());
  for (std::size_t i = 0; i < control.verdicts.size(); ++i) {
    EXPECT_EQ(coord.fuzz_verdicts()[i].index, control.verdicts[i].index);
    EXPECT_EQ(coord.fuzz_verdicts()[i].case_seed,
              control.verdicts[i].case_seed);
    EXPECT_EQ(coord.fuzz_verdicts()[i].ok, control.verdicts[i].ok);
    EXPECT_EQ(coord.fuzz_verdicts()[i].violation,
              control.verdicts[i].violation);
  }
}

}  // namespace
}  // namespace asyncmac
