// Tests for the worker pool that runs independent simulations in
// parallel. All waits are bounded: a deadlock shows up as a test failure
// within a few seconds, not a hung ctest run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace asyncmac::util {
namespace {

using namespace std::chrono_literals;

constexpr auto kGuard = 10s;  // generous; normal completion is microseconds

TEST(ThreadPool, ResolveJobsZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i)
      futures.push_back(pool.submit([&] { ++done; }));
    for (auto& f : futures)
      ASSERT_EQ(f.wait_for(kGuard), std::future_status::ready);
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++done; });
  }  // ~ThreadPool must run all 50, not drop the queue
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesToFutureNotWorker) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  ASSERT_EQ(bad.wait_for(kGuard), std::future_status::ready);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  auto ok = pool.submit([] {});
  ASSERT_EQ(ok.wait_for(kGuard), std::future_status::ready);
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // A task submitting to its own single-worker pool must not deadlock:
  // the worker does not hold the queue lock while running tasks, and the
  // outer task does not block on the inner one.
  ThreadPool pool(1);
  std::promise<void> inner_done;
  auto inner_fut = inner_done.get_future();
  pool.submit([&] {
    pool.submit([&] { inner_done.set_value(); });
  });
  ASSERT_EQ(inner_fut.wait_for(kGuard), std::future_status::ready);
}

TEST(ThreadPool, EmptyPoolDestructsCleanly) {
  ThreadPool pool(8);  // no tasks at all
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, Jobs1RunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  parallel_for(1, ids.size(),
               [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int calls = 0;
  parallel_for(8, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(8, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsWorkerExceptionAfterFinishing) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(4, 100,
                   [&](std::size_t i) {
                     ++ran;
                     if (i == 13) throw std::logic_error("unlucky");
                   }),
      std::logic_error);
  // Remaining indices still execute (the error is collected, not a bail).
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace asyncmac::util
