// The "old vs new event loop" identity suite for the PR-4 engine
// overhaul, pinned as data plus targeted behavioral tests:
//
//  * every corpus case in engine_golden_cases() must reproduce its
//    committed tests/golden/engine/<name>.trace byte-for-byte — the
//    goldens were generated with the pre-overhaul loop
//    (std::priority_queue scheduler, poll-every-event injections), so a
//    byte match proves the indexed heap, the injection skip-ahead and
//    the ledger fast paths preserve semantics exactly;
//  * an always-poll wrapper (hint = now) forces the pre-hint polling
//    cadence on the same injectors and must also match byte-for-byte,
//    isolating the skip-ahead as a pure no-op;
//  * simultaneous slot ends are processed in ascending station order
//    (the heap's tie-break, identical to the old pair ordering);
//  * CostBucket::next_afford_time is exact at the boundary;
//  * EngineConfig::prune_interval is validated;
//  * verify::ScenarioGen emits bursty-with-long-gap scenarios so the
//    fuzzing campaign exercises skip-ahead.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baselines/listen.h"
#include "engine_golden_cases.h"
#include "sim/event_heap.h"
#include "sim_helpers.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using asyncmac::testing::EngineGoldenCase;
using asyncmac::testing::engine_golden_cases;
using asyncmac::testing::run_engine_golden_case;

constexpr Tick U = kTicksPerUnit;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(EngineGolden, CorpusIsByteIdenticalToPreOverhaulEngine) {
  const auto cases = engine_golden_cases();
  ASSERT_FALSE(cases.empty());
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string golden =
        read_file(std::string(ASYNCMAC_ENGINE_GOLDEN_DIR) + "/" + c.name +
                  ".trace");
    ASSERT_FALSE(golden.empty()) << "missing golden file for " << c.name;
    EXPECT_EQ(run_engine_golden_case(c), golden);
  }
}

// Forces the pre-hint polling cadence: delegates poll() but reports
// hint = now, so the engine polls at every event exactly as the old loop
// did. Identical output over the whole corpus shows the skipped polls
// were pure no-ops (the skip-ahead contract, checked end to end).
class AlwaysPollWrapper final : public sim::InjectionPolicy {
 public:
  explicit AlwaysPollWrapper(std::unique_ptr<sim::InjectionPolicy> inner)
      : inner_(std::move(inner)) {}

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override {
    inner_->poll(now, view, out);
  }
  // Intentionally not forwarding to inner_: `now` is the contract's
  // documented "never skip" default.
  Tick next_arrival_hint(Tick now) override { return now; }
  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<sim::InjectionPolicy> inner_;
};

std::string run_case_always_polling(const EngineGoldenCase& c) {
  sim::EngineConfig cfg;
  cfg.n = c.n;
  cfg.bound_r = c.bound_r;
  cfg.seed = c.seed;
  cfg.record_trace = true;
  cfg.record_deliveries = true;
  sim::Engine engine(
      cfg, analysis::make_protocols(c.protocol, c.n),
      adversary::make_slot_policy(c.slot_policy, c.n, c.bound_r, c.seed),
      c.no_injector ? nullptr
                    : std::make_unique<AlwaysPollWrapper>(
                          adversary::make_injector(c.injector)));
  engine.run(sim::until(c.horizon_units * kTicksPerUnit));
  std::string out =
      trace::serialize_trace({c.n, c.bound_r}, engine.trace().slots());
  out += metrics::to_json(engine.stats(), &engine.channel_stats());
  out += "\n";
  return out;
}

TEST(EngineGolden, SkipAheadMatchesAlwaysPollingByteForByte) {
  for (const auto& c : engine_golden_cases()) {
    if (c.no_injector) continue;
    SCOPED_TRACE(c.name);
    EXPECT_EQ(run_engine_golden_case(c), run_case_always_polling(c));
  }
}

TEST(EngineGolden, SimultaneousSlotEndsProcessInAscendingStationOrder) {
  // Uniform 1-unit slots: all n stations end every slot at the same tick,
  // so every event is a tie and the trace must interleave stations
  // 1..n in ascending order within each tick group.
  constexpr std::uint32_t n = 5;
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = 1;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<baselines::ListenProtocol>(n),
                std::make_unique<adversary::UniformSlotPolicy>(U), nullptr);
  sim::StopCondition stop;
  stop.max_total_slots = 10 * n;
  e.run(stop);
  const auto& slots = e.trace().slots();
  ASSERT_EQ(slots.size(), 10u * n);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].end, static_cast<Tick>(i / n + 1) * U);
    EXPECT_EQ(slots[i].station, static_cast<StationId>(i % n + 1));
  }
}

TEST(EngineGolden, SlotEventHeapOrdersByTimeThenStation) {
  sim::SlotEventHeap h(4);
  // All keys start at kTickInfinity; ties break toward the smallest id.
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.top_time(), kTickInfinity);

  h.update(3, 5);
  EXPECT_EQ(h.top_station(), 3u);
  EXPECT_EQ(h.top_time(), 5);

  h.update(1, 5);  // equal key: station 1 precedes station 3
  EXPECT_EQ(h.top_station(), 1u);

  h.update(1, 7);  // re-key past station 3
  EXPECT_EQ(h.top_station(), 3u);

  h.update(3, 6);  // re-key in place, still the minimum
  EXPECT_EQ(h.top_station(), 3u);
  EXPECT_EQ(h.top_time(), 6);

  h.update(3, 9);  // now station 1 at 7 leads (2 and 4 are at infinity)
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.top_time(), 7);
  EXPECT_EQ(h.time_of(3), 9);
  EXPECT_EQ(h.time_of(2), kTickInfinity);
}

TEST(EngineGolden, NextAffordTimeIsExactAtTheBoundary) {
  adversary::CostBucket b(util::Ratio(1, 3), 10 * U);
  b.advance(0);
  b.spend(10 * U);  // drain the full burst
  // Needs 4U more: at rate 1/3 that takes exactly 12U ticks.
  const Tick t = b.next_afford_time(4 * U);
  EXPECT_EQ(t, 12 * U);
  adversary::CostBucket before = b;
  before.advance(t - 1);
  EXPECT_FALSE(before.can_afford(4 * U));
  adversary::CostBucket at = b;
  at.advance(t);
  EXPECT_TRUE(at.can_afford(4 * U));

  // Already affordable: the hint is "now" (the last advance time).
  EXPECT_EQ(at.next_afford_time(4 * U), t);
  // Above the burstiness cap: never affordable.
  EXPECT_EQ(b.next_afford_time(11 * U), kTickInfinity);
  // Zero rate: an empty bucket never refills.
  adversary::CostBucket frozen(util::Ratio(0, 1), 2 * U);
  frozen.advance(0);
  frozen.spend(2 * U);
  EXPECT_EQ(frozen.next_afford_time(U), kTickInfinity);
}

TEST(EngineGolden, PruneIntervalMustBePositive) {
  sim::EngineConfig cfg;
  cfg.n = 1;
  cfg.bound_r = 1;
  cfg.prune_interval = 0;
  EXPECT_THROW(
      sim::Engine(cfg,
                  asyncmac::testing::make_protocols<baselines::ListenProtocol>(
                      1),
                  std::make_unique<adversary::UniformSlotPolicy>(U), nullptr),
      std::invalid_argument);
}

TEST(EngineGolden, ScenarioGenEmitsBurstyLongGapScenarios) {
  // The gap stressor reshapes ~40% of bursty draws into periods of
  // 200..1000 units; over a few hundred cases the campaign must see some.
  verify::ScenarioGen gen(123);
  int long_gaps = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const verify::Scenario s = gen.generate(i);
    if (s.injector.kind == "bursty" &&
        s.injector.period_ticks >= 200 * U)
      ++long_gaps;
  }
  EXPECT_GT(long_gaps, 0);
}

}  // namespace
}  // namespace asyncmac
