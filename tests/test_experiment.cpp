// Tests for the protocol registry and the declarative experiment grid
// runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "analysis/experiment.h"
#include "analysis/registry.h"

namespace asyncmac::analysis {
namespace {

TEST(Registry, AllNamesConstructible) {
  const auto names = protocol_names();
  EXPECT_GE(names.size(), 11u);
  for (const auto& name : names) {
    auto p = make_protocol(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_FALSE(p->name().empty());
    // Every registered protocol must be cloneable (lower-bound driver
    // requirement).
    EXPECT_NE(p->clone(), nullptr) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_protocol("csma-cd"), std::invalid_argument);
}

TEST(Registry, MakeProtocolsCount) {
  const auto ps = make_protocols("ca-arrow", 5);
  EXPECT_EQ(ps.size(), 5u);
  for (const auto& p : ps) EXPECT_EQ(p->name(), "CA-ARRoW");
}

TEST(Experiment, GridSizeIsCrossProduct) {
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {2, 4};
  spec.bounds_r = {1};
  spec.rho_percents = {30, 60};
  spec.slot_policies = {"sync"};
  spec.horizon_units = 3000;
  spec.seeds = 2;
  const auto records = run_grid(spec);
  EXPECT_EQ(records.size(), 2u * 2 * 1 * 2 * 1 * 2);
}

TEST(Experiment, RecordsCarryParametersAndResults) {
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow"};
  spec.station_counts = {3};
  spec.bounds_r = {2};
  spec.rho_percents = {50};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 20000;
  const auto records = run_grid(spec);
  ASSERT_EQ(records.size(), 1u);
  const auto& r = records[0];
  EXPECT_EQ(r.protocol, "ca-arrow");
  EXPECT_EQ(r.n, 3u);
  EXPECT_EQ(r.bound_r, 2u);
  EXPECT_EQ(r.rho_pct, 50);
  EXPECT_GT(r.delivered, 1000u);
  EXPECT_EQ(r.collisions, 0u);
  EXPECT_GT(r.delivered_fraction, 0.95);
  EXPECT_GT(r.p99_latency_units, 0.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentSpec spec;
  spec.protocols = {"ao-arrow"};
  spec.station_counts = {2};
  spec.bounds_r = {2};
  spec.rho_percents = {40};
  spec.slot_policies = {"random"};
  spec.horizon_units = 10000;
  const auto a = run_grid(spec);
  const auto b = run_grid(spec);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].delivered, b[0].delivered);
  EXPECT_EQ(a[0].max_queue_cost_units, b[0].max_queue_cost_units);
}

TEST(Experiment, TableAndCsvRender) {
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow"};
  spec.station_counts = {2};
  spec.bounds_r = {1};
  spec.rho_percents = {50};
  spec.slot_policies = {"sync"};
  spec.horizon_units = 3000;
  const auto records = run_grid(spec);
  const std::string table = to_table(records);
  EXPECT_NE(table.find("ca-arrow"), std::string::npos);
  EXPECT_NE(table.find("max queue"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "asyncmac_experiment_test.csv";
  write_csv(records, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("max_queue_units"), std::string::npos);
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
  std::remove(path.c_str());
}

TEST(Experiment, ParallelJobsMatchSerialFieldByField) {
  // The tentpole guarantee of the parallel runner: records (values AND
  // order) are byte-identical for every jobs value, because each cell is
  // an independent deterministic Engine writing into a pre-sized slot.
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {2, 3};
  spec.bounds_r = {2};
  spec.rho_percents = {40, 60};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 2000;
  spec.seeds = 2;  // 2 x 2 x 1 x 2 x 1 x 2 = 16 cells
  spec.jobs = 1;
  const auto serial = run_grid(spec);
  spec.jobs = 4;
  const auto parallel = run_grid(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 16u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.protocol, b.protocol) << i;
    EXPECT_EQ(a.n, b.n) << i;
    EXPECT_EQ(a.bound_r, b.bound_r) << i;
    EXPECT_EQ(a.rho_pct, b.rho_pct) << i;
    EXPECT_EQ(a.slot_policy, b.slot_policy) << i;
    EXPECT_EQ(a.seed, b.seed) << i;
    EXPECT_EQ(a.injected, b.injected) << i;
    EXPECT_EQ(a.delivered, b.delivered) << i;
    EXPECT_EQ(a.queued, b.queued) << i;
    EXPECT_EQ(a.max_queue_cost_units, b.max_queue_cost_units) << i;
    EXPECT_EQ(a.final_queue_cost_units, b.final_queue_cost_units) << i;
    EXPECT_EQ(a.collisions, b.collisions) << i;
    EXPECT_EQ(a.control_msgs, b.control_msgs) << i;
    EXPECT_EQ(a.delivered_fraction, b.delivered_fraction) << i;
    EXPECT_EQ(a.p99_latency_units, b.p99_latency_units) << i;
  }
}

TEST(Experiment, SameSeedProducesIdenticalCsvAcrossJobs) {
  ExperimentSpec spec;
  spec.protocols = {"ao-arrow"};
  spec.station_counts = {2, 4};
  spec.bounds_r = {2};
  spec.rho_percents = {50};
  spec.slot_policies = {"random"};
  spec.horizon_units = 2000;
  spec.seeds = 2;

  auto csv_bytes = [&](unsigned jobs, const std::string& tag) {
    spec.jobs = jobs;
    const auto records = run_grid(spec);
    const std::string path =
        ::testing::TempDir() + "asyncmac_grid_" + tag + ".csv";
    write_csv(records, path);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return bytes;
  };
  const std::string serial = csv_bytes(1, "serial");
  const std::string parallel = csv_bytes(8, "parallel");
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Experiment, RejectsEmptyDimensions) {
  ExperimentSpec spec;
  spec.protocols.clear();
  EXPECT_THROW(run_grid(spec), std::invalid_argument);
}

TEST(Experiment, CohortTimesJobsMatrixIsByteIdentical) {
  // The cohort guarantee stacked on the jobs guarantee: the records (and
  // the CSV rendered from them) are byte-identical for every (cohort,
  // jobs) combination. ca-arrow/perstation takes the lockstep fast path,
  // rrw falls back to scalar engines inside the cohort — both must agree
  // with cohort=1 (the pre-cohort scalar sweep). seeds=7 with cohort=3
  // exercises partial trailing units; staggered saturation across seeds
  // exercises mid-cohort divergence of lane queues.
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {3};
  spec.bounds_r = {2};
  spec.rho_percents = {40, 70};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 2000;
  spec.seeds = 7;

  auto csv_bytes = [&](unsigned cohort, unsigned jobs) {
    spec.cohort = cohort;
    spec.jobs = jobs;
    const auto records = run_grid(spec);
    const std::string path = ::testing::TempDir() + "asyncmac_grid_c" +
                             std::to_string(cohort) + "_j" +
                             std::to_string(jobs) + ".csv";
    write_csv(records, path);
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    return bytes;
  };

  const std::string reference = csv_bytes(1, 1);  // scalar, serial
  ASSERT_FALSE(reference.empty());
  for (unsigned cohort : {0u, 3u, 8u})
    for (unsigned jobs : {1u, 4u})
      EXPECT_EQ(reference, csv_bytes(cohort, jobs))
          << "cohort=" << cohort << " jobs=" << jobs;
}

TEST(Experiment, CohortResumesPartialManifest) {
  // A manifest written mid-sweep under one cohort width must resume
  // cleanly under another: done cells drop out of their units and the
  // remainder batches as a partial cohort.
  ExperimentSpec spec;
  spec.protocols = {"ca-arrow"};
  spec.station_counts = {3};
  spec.bounds_r = {2};
  spec.rho_percents = {50};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 1500;
  spec.seeds = 5;
  spec.jobs = 1;

  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "asyncmac_cohort_resume_grid";
  std::filesystem::remove_all(dir);

  spec.cohort = 1;
  const auto all_scalar = run_grid(spec);  // no checkpointing: reference

  // First pass: scalar, bounded to complete only part of the grid by
  // running with a manifest and then truncating 'done' via a fresh dir —
  // simplest honest setup: write a manifest from a 2-seed prefix run is
  // not possible (different fingerprint), so instead run the full grid
  // once with cohort=2 checkpointing, then delete nothing and re-run with
  // cohort=3: every cell is done, units skip entirely.
  spec.checkpoint_dir = dir.string();
  spec.cohort = 2;
  const auto first = run_grid(spec);
  spec.cohort = 3;
  const auto resumed = run_grid(spec);  // all cells from manifest
  ASSERT_EQ(first.size(), resumed.size());
  ASSERT_EQ(first.size(), all_scalar.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(all_scalar[i].delivered, first[i].delivered) << i;
    EXPECT_EQ(first[i].delivered, resumed[i].delivered) << i;
    EXPECT_EQ(first[i].max_queue_cost_units, resumed[i].max_queue_cost_units)
        << i;
    EXPECT_EQ(first[i].seed, resumed[i].seed) << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(Experiment, CrossProtocolContrastMatchesTableOne) {
  // A miniature Table-I rendered through the grid runner: at R = 2 the
  // ARRoW protocols deliver nearly everything while RRW collapses.
  ExperimentSpec spec;
  spec.protocols = {"ao-arrow", "ca-arrow", "rrw"};
  spec.station_counts = {4};
  spec.bounds_r = {2};
  spec.rho_percents = {50};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 50000;
  const auto records = run_grid(spec);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_GT(records[0].delivered_fraction, 0.95);  // ao-arrow
  EXPECT_GT(records[1].delivered_fraction, 0.95);  // ca-arrow
  EXPECT_LT(records[2].delivered_fraction, 0.5);   // rrw under asynchrony
}

}  // namespace
}  // namespace asyncmac::analysis
