// Unit tests for the util module: RNG, Ratio, Histogram, Table, CSV,
// check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/ratio.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/types.h"

namespace asyncmac {
namespace {

// ------------------------------------------------------------------ types

TEST(Types, TicksPerUnitDivisibleBySmallIntegers) {
  for (Tick d = 1; d <= 16; ++d)
    EXPECT_EQ(kTicksPerUnit % d, 0) << "not divisible by " << d;
}

TEST(Types, UnitsHelper) {
  EXPECT_EQ(units(3), 3 * kTicksPerUnit);
  EXPECT_DOUBLE_EQ(to_units(kTicksPerUnit / 2), 0.5);
}

TEST(Types, ActionPredicates) {
  EXPECT_FALSE(is_transmit(SlotAction::kListen));
  EXPECT_TRUE(is_transmit(SlotAction::kTransmitPacket));
  EXPECT_TRUE(is_transmit(SlotAction::kTransmitControl));
}

TEST(Types, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(SlotAction::kListen), "listen");
  EXPECT_STREQ(to_string(SlotAction::kTransmitPacket), "tx-packet");
  EXPECT_STREQ(to_string(SlotAction::kTransmitControl), "tx-control");
  EXPECT_STREQ(to_string(Feedback::kSilence), "silence");
  EXPECT_STREQ(to_string(Feedback::kBusy), "busy");
  EXPECT_STREQ(to_string(Feedback::kAck), "ack");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  util::Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  util::Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds) {
  util::Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= (v == -3);
    hi |= (v == 3);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, Uniform01HalfOpen) {
  util::Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  util::Rng a(5);
  util::Rng child = a.split();
  util::Rng a2(5);
  util::Rng child2 = a2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next(), child2.next());
  EXPECT_NE(child.next(), a.next());
}

TEST(Rng, BelowIsApproximatelyUniform) {
  // Chi-square-style check on 16 buckets: with 160k draws the expected
  // count per bucket is 10k; flag deviations beyond ~5 sigma.
  util::Rng r(12345);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b)
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected))
        << "bucket " << b;
}

TEST(Rng, Uniform01MeanAndVariance) {
  util::Rng r(777);
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = r.uniform01();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, NoShortCycles) {
  // xoshiro256** has period 2^256 - 1; sanity-check that a window of
  // consecutive outputs never repeats within a modest horizon.
  util::Rng r(31337);
  const std::uint64_t first = r.next(), second = r.next();
  for (int i = 0; i < 100000; ++i) {
    if (r.next() == first) {
      util::Rng probe = r;  // check the follower too
      EXPECT_NE(probe.next(), second) << "short cycle at offset " << i;
    }
  }
}

TEST(Rng, ChanceExtremes) {
  util::Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

// ------------------------------------------------------------------ ratio

TEST(Ratio, ReducesToLowestTerms) {
  util::Ratio r(6, 8);
  EXPECT_EQ(r.num, 3);
  EXPECT_EQ(r.den, 4);
}

TEST(Ratio, RejectsBadDenominator) {
  EXPECT_THROW(util::Ratio(1, 0), std::invalid_argument);
  EXPECT_THROW(util::Ratio(1, -2), std::invalid_argument);
  EXPECT_THROW(util::Ratio(-1, 2), std::invalid_argument);
}

TEST(Ratio, MulFloorExact) {
  util::Ratio r(2, 3);
  EXPECT_EQ(r.mul_floor(9), 6);
  EXPECT_EQ(r.mul_floor(10), 6);
  EXPECT_EQ(r.mul_floor(11), 7);
}

TEST(Ratio, MulFloorLargeNoOverflow) {
  util::Ratio r(999999, 1000000);
  const std::int64_t t = 4'000'000'000'000'000LL;
  EXPECT_EQ(r.mul_floor(t), t / 1000000 * 999999);
}

TEST(Ratio, DivCeil) {
  util::Ratio r(1, 2);
  EXPECT_EQ(r.div_ceil(5), 10);  // smallest x with x/2 >= 5
  util::Ratio q(3, 4);
  EXPECT_EQ(q.div_ceil(3), 4);
}

TEST(Ratio, Comparisons) {
  EXPECT_TRUE(util::Ratio(1, 2) < util::Ratio(2, 3));
  EXPECT_TRUE(util::Ratio(2, 4) == util::Ratio(1, 2));
  EXPECT_TRUE(util::Ratio(9, 10) < util::Ratio::one());
  EXPECT_TRUE(util::Ratio::zero() <= util::Ratio::zero());
}

TEST(Ratio, FromDoubleRoundTrip) {
  const auto r = util::Ratio::from_double(0.9);
  EXPECT_NEAR(r.to_double(), 0.9, 1e-6);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, EmptyState) {
  util::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.summary(), "n=0");
}

TEST(Histogram, ExactMinMeanMax) {
  util::Histogram h;
  for (int v : {5, 10, 15}) h.add(v);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 15);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, QuantileMonotoneAndBounded) {
  util::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i);
  std::int64_t prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
}

TEST(Histogram, MedianApproximationWithin25Percent) {
  util::Histogram h;
  for (int i = 1; i <= 10000; ++i) h.add(i);
  const auto med = h.quantile(0.5);
  EXPECT_GT(med, 3500);
  EXPECT_LT(med, 6700);
}

TEST(Histogram, MergeMatchesCombined) {
  util::Histogram a, b, all;
  for (int i = 0; i < 100; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 100; i < 300; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_EQ(a.quantile(0.5), all.quantile(0.5));
}

TEST(Histogram, MergeIntoEmpty) {
  util::Histogram a, b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7);
}

TEST(Histogram, NegativeClampedIntoFirstBucketButExactMin) {
  util::Histogram h;
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.quantile(0.0), -5);
}

TEST(Histogram, ClearResets) {
  util::Histogram h;
  h.add(1);
  h.clear();
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, SumStaysExactBeyondDoublePrecision) {
  // A double accumulator absorbs +1 without effect once the running sum
  // reaches 2^53; the exact accumulator must not. (This test fails
  // against the old `double sum_` implementation.)
  util::Histogram h;
  h.add(std::int64_t{1} << 53);
  h.add(1);
  const util::Int128Sum want{0, (std::uint64_t{1} << 53) + 1};
  EXPECT_EQ(h.sum_exact(), want);
  EXPECT_DOUBLE_EQ(h.mean(), (std::ldexp(1.0, 53) + 1.0) / 2.0);
}

TEST(Histogram, SumExactAcrossManyLargeSamples) {
  // 1024 samples of (2^53 + 1): the exact sum keeps all 1024 trailing
  // +1s (2^63 + 1024); a double accumulator would have dropped each one.
  util::Histogram h;
  const std::int64_t big = (std::int64_t{1} << 53) + 1;
  for (int i = 0; i < 1024; ++i) h.add(big);
  const util::Int128Sum want{0, (std::uint64_t{1} << 63) + 1024};
  EXPECT_EQ(h.sum_exact(), want);
}

TEST(Histogram, SumExactSurvivesMergeAndNegatives) {
  util::Histogram a, b;
  a.add(std::int64_t{1} << 53);
  b.add(1);
  b.add(-2);
  a.merge(b);
  const util::Int128Sum want{0, (std::uint64_t{1} << 53) - 1};
  EXPECT_EQ(a.sum_exact(), want);
}

TEST(Histogram, Int128SumCarriesPastUint64) {
  util::Int128Sum s;
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  s.add(max);
  s.add(max);
  s.add(2);  // total = 2^64 exactly
  EXPECT_EQ(s.hi, 1);
  EXPECT_EQ(s.lo, 0u);
  EXPECT_DOUBLE_EQ(s.to_double(), std::ldexp(1.0, 64));
  s.add(-1);
  EXPECT_EQ(s.hi, 0);
  EXPECT_EQ(s.lo, std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, ClearThenMergeEqualsOther) {
  // clear() keeps the resized bucket vector of a previous life; a merge
  // into the cleared (empty) histogram must still reproduce `other`
  // exactly, not be skewed by the stale capacity.
  util::Histogram h;
  h.add(std::int64_t{1} << 40);  // forces a large buckets_ resize
  h.clear();

  util::Histogram other;
  for (int i = 1; i <= 10; ++i) other.add(i);
  h.merge(other);
  EXPECT_EQ(h.count(), other.count());
  EXPECT_EQ(h.min(), other.min());
  EXPECT_EQ(h.max(), other.max());
  EXPECT_EQ(h.sum_exact(), other.sum_exact());
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0})
    EXPECT_EQ(h.quantile(q), other.quantile(q)) << "q=" << q;
}

TEST(Histogram, MergeAfterClearBothDirections) {
  // The reverse orientation: a live histogram merges one that was
  // cleared (merge must be a no-op), then one that was cleared and
  // refilled.
  util::Histogram cleared;
  cleared.add(12345);
  cleared.clear();

  util::Histogram live;
  live.add(7);
  live.merge(cleared);
  EXPECT_EQ(live.count(), 1u);
  EXPECT_EQ(live.min(), 7);
  EXPECT_EQ(live.max(), 7);

  cleared.add(3);
  live.merge(cleared);
  EXPECT_EQ(live.count(), 2u);
  EXPECT_EQ(live.min(), 3);
  EXPECT_EQ(live.quantile(0.0), 3);
  EXPECT_EQ(live.quantile(1.0), 7);
}

TEST(Histogram, QuantileExactAtExtremes) {
  // q=0 and q=1 are documented exact even though interior quantiles are
  // bucketed: min/max must come back bit-exact, including after merges
  // and for single-sample histograms.
  util::Histogram h;
  h.add(1000001);
  EXPECT_EQ(h.quantile(0.0), 1000001);
  EXPECT_EQ(h.quantile(1.0), 1000001);

  util::Histogram wide;
  wide.add(-17);
  wide.add(3);
  wide.add((std::int64_t{1} << 50) + 9);
  EXPECT_EQ(wide.quantile(0.0), -17);
  EXPECT_EQ(wide.quantile(1.0), (std::int64_t{1} << 50) + 9);
  h.merge(wide);
  EXPECT_EQ(h.quantile(0.0), -17);
  EXPECT_EQ(h.quantile(1.0), (std::int64_t{1} << 50) + 9);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns) {
  util::Table t({"name", "value"});
  t.row("alpha", 1);
  t.row("b", 22.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.500"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWidthMismatch) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsBooleansAndIntegralWidths) {
  util::Table t({"flag", "big"});
  t.row(true, std::uint64_t{1234567890123ULL});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("1234567890123"), std::string::npos);
}

TEST(Table, ScientificForExtremeDoubles) {
  util::Table t({"tiny", "huge", "intlike"});
  t.row(1.23e-5, 4.5e9 + 0.5, 1.5e12);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("e-"), std::string::npos);  // tiny -> scientific
  EXPECT_NE(s.find("e+"), std::string::npos);  // huge fractional -> sci
  // Integral-valued doubles render as plain integers.
  EXPECT_NE(s.find("1500000000000"), std::string::npos);
}

// -------------------------------------------------------------------- csv

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "asyncmac_csv_test.csv";
  {
    util::CsvWriter w(path, {"x", "label"});
    w.row(1, "plain");
    w.row(2, "with,comma");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,label");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::remove(path.c_str());
}

TEST(Csv, AddRowEscapesAdversarialCells) {
  // add_row is the raw-cell entry point (the header goes through it, and
  // callers with pre-stringified cells use it directly); it must quote
  // cells containing separators, quotes, or newlines. (This test fails
  // against the old implementation, which wrote cells verbatim.)
  const std::string path = ::testing::TempDir() + "asyncmac_csv_adv.csv";
  {
    util::CsvWriter w(path, {"protocol(name,params)", "note"});
    w.add_row({"ca-arrow(n=2,R=4)", "line\nbreak"});
    w.add_row({"plain", "quote\"inside"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "\"protocol(name,params)\",note");
  std::getline(in, line);
  EXPECT_EQ(line, "\"ca-arrow(n=2,R=4)\",\"line");
  std::getline(in, line);  // continuation of the quoted newline cell
  EXPECT_EQ(line, "break\"");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(Csv, RowPathDoesNotDoubleEscape) {
  // The typed row() convenience funnels into add_row; a cell must be
  // quoted exactly once on that path.
  const std::string path = ::testing::TempDir() + "asyncmac_csv_once.csv";
  {
    util::CsvWriter w(path, {"s"});
    w.row(std::string("a,b"));
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\"");
  std::remove(path.c_str());
}

TEST(Csv, EscapesQuotes) {
  const std::string path = ::testing::TempDir() + "asyncmac_csv_q.csv";
  {
    util::CsvWriter w(path, {"s"});
    w.row("he said \"hi\"");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"he said \"\"hi\"\"\"");
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ check

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(AM_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(AM_CHECK(true));
}

TEST(Check, CheckMsgIncludesPayload) {
  try {
    AM_CHECK_MSG(false, "x=" << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("x=42"), std::string::npos);
  }
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(AM_REQUIRE(false, "bad input"), std::invalid_argument);
  EXPECT_NO_THROW(AM_REQUIRE(true, "ok"));
}

}  // namespace
}  // namespace asyncmac
