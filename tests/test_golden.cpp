// Golden-trace regression tests: two committed execution traces
// (tests/golden/*.trace) must be reproduced byte-for-byte by the current
// build, and every minimized fuzz corpus case (tests/golden/fuzz/*.json)
// must replay clean with a byte-identical regenerated trace. Any
// divergence means the simulator's observable behaviour changed — which,
// for an exact model, is always worth a conscious decision (regenerate
// the goldens only on purpose, with a DESIGN.md note).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/abs.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "trace/serialize.h"
#include "verify/repro.h"

namespace asyncmac {
namespace {

constexpr Tick U = kTicksPerUnit;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string golden_dir() {
  // ctest runs from the build tree; the goldens live in the source tree.
  // CMake passes the absolute source dir via the GOLDEN_DIR define.
#ifdef ASYNCMAC_GOLDEN_DIR
  return ASYNCMAC_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

TEST(Golden, CaArrowTraceIsBitStable) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<core::CaArrowProtocol>(3),
                adversary::make_slot_policy("perstation", 3, 2),
                std::make_unique<adversary::SaturatingInjector>(
                    util::Ratio(1, 2), 8 * U,
                    adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(200 * U));
  const std::string text =
      trace::serialize_trace({3, 2}, e.trace().slots());

  const std::string golden =
      read_file(golden_dir() + "/ca_arrow_n3_r2.trace");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(text, golden);
  EXPECT_TRUE(trace::verify_trace_text(golden));
}

TEST(Golden, AbsElectionTraceIsBitStable) {
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<core::AbsProtocol>(4),
                adversary::make_slot_policy("perstation", 4, 2),
                asyncmac::testing::sst_messages({1, 2, 3, 4}));
  sim::StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now() + 2 * U));
  const std::string text =
      trace::serialize_trace({4, 2}, e.trace().slots());

  const std::string golden = read_file(golden_dir() + "/abs_n4_r2.trace");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(text, golden);
  EXPECT_TRUE(trace::verify_trace_text(golden));
}

TEST(Golden, FuzzCorpusReplaysCleanAndBitStable) {
  // Every pinned corpus case: parse, replay, and require (a) all
  // invariants clean, (b) the current build regenerates the embedded
  // trace byte-for-byte. New cases join via
  //   asyncmac_cli fuzz --emit-case=I --repro-out=tests/golden/fuzz/...
  // (which refuses to pin a violating case).
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(golden_dir() + "/fuzz")) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "fuzz corpus is empty";

  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = read_file(path.string());
    ASSERT_FALSE(text.empty());
    const verify::Repro repro = verify::parse_repro_json(text);
    EXPECT_TRUE(repro.violation.empty())
        << "corpus cases must be pinned clean";
    ASSERT_FALSE(repro.trace_text.empty());
    const verify::ReplayOutcome outcome = verify::replay_repro(repro);
    EXPECT_TRUE(outcome.case_result.ok) << outcome.case_result.what;
    EXPECT_TRUE(outcome.trace_matches);
    EXPECT_TRUE(outcome.reproduced);
  }
}

}  // namespace
}  // namespace asyncmac
