// Golden-trace regression tests: two committed execution traces
// (tests/golden/*.trace) must be reproduced byte-for-byte by the current
// build. Any divergence means the simulator's observable behaviour
// changed — which, for an exact model, is always worth a conscious
// decision (regenerate the goldens only on purpose, with a DESIGN.md
// note).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/abs.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "trace/serialize.h"

namespace asyncmac {
namespace {

constexpr Tick U = kTicksPerUnit;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string golden_dir() {
  // ctest runs from the build tree; the goldens live in the source tree.
  // CMake passes the absolute source dir via the GOLDEN_DIR define.
#ifdef ASYNCMAC_GOLDEN_DIR
  return ASYNCMAC_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

TEST(Golden, CaArrowTraceIsBitStable) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<core::CaArrowProtocol>(3),
                adversary::make_slot_policy("perstation", 3, 2),
                std::make_unique<adversary::SaturatingInjector>(
                    util::Ratio(1, 2), 8 * U,
                    adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(200 * U));
  const std::string text =
      trace::serialize_trace({3, 2}, e.trace().slots());

  const std::string golden =
      read_file(golden_dir() + "/ca_arrow_n3_r2.trace");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(text, golden);
  EXPECT_TRUE(trace::verify_trace_text(golden));
}

TEST(Golden, AbsElectionTraceIsBitStable) {
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  sim::Engine e(cfg,
                asyncmac::testing::make_protocols<core::AbsProtocol>(4),
                adversary::make_slot_policy("perstation", 4, 2),
                asyncmac::testing::sst_messages({1, 2, 3, 4}));
  sim::StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now() + 2 * U));
  const std::string text =
      trace::serialize_trace({4, 2}, e.trace().slots());

  const std::string golden = read_file(golden_dir() + "/abs_n4_r2.trace");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(text, golden);
  EXPECT_TRUE(trace::verify_trace_text(golden));
}

}  // namespace
}  // namespace asyncmac
