// Tests for the closed-form bounds of core/bounds.h — the protocol
// constants of Sections III/IV and the reporting formulas of Theorems
// 1, 2, 3 and 6.
#include <gtest/gtest.h>

#include "core/bounds.h"
#include "util/ratio.h"

namespace asyncmac::core {
namespace {

TEST(Bounds, AbsThresholdsMatchPaper) {
  // Fig. 3: 3R and 4R^2 + 3R.
  EXPECT_EQ(abs_threshold0(1), 3u);
  EXPECT_EQ(abs_threshold1(1), 7u);
  EXPECT_EQ(abs_threshold0(4), 12u);
  EXPECT_EQ(abs_threshold1(4), 76u);
}

TEST(Bounds, ZeroBitListensStrictlyShorter) {
  for (std::uint32_t R = 1; R <= 16; ++R)
    EXPECT_LT(abs_threshold0(R), abs_threshold1(R));
}

TEST(Bounds, SlotsPerPhaseDominatesThresholdPlusWait) {
  for (std::uint32_t R = 1; R <= 16; ++R)
    EXPECT_GE(abs_slots_per_phase(R), abs_threshold1(R) + 2);
}

TEST(Bounds, PhaseCountLogarithmic) {
  EXPECT_EQ(abs_phases(1), 2u);
  EXPECT_EQ(abs_phases(2), 3u);
  EXPECT_EQ(abs_phases(1024), 12u);
}

TEST(Bounds, SlotBoundGrowsAsR2LogN) {
  // Quadratic in R: quadrupling R multiplies the bound by ~16 within 2x.
  const double r2 = static_cast<double>(abs_slot_bound(64, 2));
  const double r8 = static_cast<double>(abs_slot_bound(64, 8));
  EXPECT_GT(r8 / r2, 8.0);
  EXPECT_LT(r8 / r2, 32.0);
  // Logarithmic in n.
  const double n4 = static_cast<double>(abs_slot_bound(4, 4));
  const double n256 = static_cast<double>(abs_slot_bound(256, 4));
  EXPECT_LT(n256 / n4, 4.0);
}

TEST(Bounds, LowerBoundFormula) {
  // r (log n / log r + 1); at n = r it is 2r.
  EXPECT_NEAR(sst_lower_bound_slots(4, 4), 8.0, 1e-9);
  EXPECT_NEAR(sst_lower_bound_slots(16, 4), 12.0, 1e-9);
  EXPECT_GT(sst_lower_bound_slots(1024, 8),
            sst_lower_bound_slots(1024, 2) / 4.0);
}

TEST(Bounds, LowerBoundRejectsSmallR) {
  EXPECT_THROW(sst_lower_bound_slots(16, 1), std::invalid_argument);
}

TEST(Bounds, LongSilenceThresholdDominatesAbsSilentRuns) {
  for (std::uint32_t R = 1; R <= 8; ++R) {
    // One alive-station slot spans up to R observer slots.
    EXPECT_GE(long_silence_threshold(R),
              R * (abs_threshold1(R) + R + 1));
    EXPECT_EQ(sync_countdown_slots(R), R * long_silence_threshold(R));
  }
}

TEST(Bounds, ArrowBoundsFinitePositiveAndOrdered) {
  const auto b = arrow_bounds(4, 2, 2, util::Ratio(1, 2), 10.0);
  EXPECT_GT(b.A, 0.0);
  EXPECT_GT(b.B, 0.0);
  EXPECT_GT(b.S, 0.0);
  EXPECT_GE(b.L, b.L0);
  EXPECT_GE(b.L, b.L1);
}

TEST(Bounds, ArrowLDivergesAsRhoApproachesOne) {
  const auto lo = arrow_bounds(4, 2, 2, util::Ratio(1, 2), 10.0);
  const auto hi = arrow_bounds(4, 2, 2, util::Ratio(99, 100), 10.0);
  EXPECT_GT(hi.L, 10.0 * lo.L);
}

TEST(Bounds, ArrowRejectsRhoOne) {
  EXPECT_THROW(arrow_bounds(4, 2, 2, util::Ratio::one(), 10.0),
               std::invalid_argument);
}

TEST(Bounds, ArrowLMonotoneInNandR) {
  const auto base = arrow_bounds(4, 2, 2, util::Ratio(1, 2), 10.0);
  EXPECT_GT(arrow_bounds(8, 2, 2, util::Ratio(1, 2), 10.0).L, base.L);
  EXPECT_GT(arrow_bounds(4, 4, 4, util::Ratio(1, 2), 10.0).L, base.L);
}

TEST(Bounds, CaArrowBoundMatchesClosedForm) {
  // (2 n R^2 (1 + rho) + b) / (1 - rho) at n=2, R=2, rho=1/2, b=8:
  // (16 * 1.5 + 8) / 0.5 = 64.
  EXPECT_NEAR(ca_arrow_bound(2, 2, util::Ratio(1, 2), 8.0), 64.0, 1e-9);
}

TEST(Bounds, CaArrowRejectsRhoOne) {
  EXPECT_THROW(ca_arrow_bound(2, 2, util::Ratio::one(), 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace asyncmac::core
