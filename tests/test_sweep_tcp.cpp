// End-to-end sweep-service tests over real sockets: a serve() loop and
// run_worker() clients in the same process (separate threads), on an
// ephemeral localhost port. The loopback suite (test_sweep_service)
// owns the fault matrix; this file pins that the TCP transport — accept,
// partial reads, outbuf draining, heartbeat timing off a real clock —
// drives the same state machines to the same byte-identical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/grid.h"
#include "sweep/coordinator.h"
#include "sweep/protocol.h"
#include "sweep/tcp.h"

namespace asyncmac {
namespace {

using namespace asyncmac::sweep;

analysis::ExperimentSpec small_spec() {
  analysis::ExperimentSpec spec;
  spec.protocols = {"ca-arrow", "rrw"};
  spec.station_counts = {2};
  spec.bounds_r = {2};
  spec.rho_percents = {40, 60};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 300;
  spec.seed = 1;
  spec.seeds = 2;
  spec.jobs = 1;
  return spec;
}

TEST(SweepTcp, ThreeWorkersOverSocketsMatchSingleProcess) {
  const auto spec = small_spec();
  const auto control = analysis::run_grid(spec);

  CoordinatorConfig cfg;
  cfg.job.kind = JobKind::kGrid;
  cfg.job.grid = spec;
  cfg.lease_timeout_ms = 10000;
  cfg.heartbeat_ms = 100;

  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();

  ServeOptions opt;
  opt.coord = cfg;
  opt.tick_ms = 20;
  opt.on_listening = [&](std::uint16_t p) { port_promise.set_value(p); };

  std::promise<ServeOutcome> outcome_promise;
  std::thread server([&] {
    try {
      outcome_promise.set_value(serve(opt));
    } catch (...) {
      outcome_promise.set_exception(std::current_exception());
    }
  });

  const std::uint16_t port = port_future.get();
  std::vector<std::thread> workers;
  std::vector<int> rc(3, -1);
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      const std::string name(1, static_cast<char>('a' + i));
      rc[static_cast<std::size_t>(i)] = run_worker({"127.0.0.1", port, name});
    });
  }
  for (auto& t : workers) t.join();
  const ServeOutcome outcome = outcome_promise.get_future().get();
  server.join();

  for (int i = 0; i < 3; ++i) EXPECT_EQ(rc[static_cast<std::size_t>(i)], 0);
  ASSERT_EQ(outcome.records.size(), control.size());
  EXPECT_EQ(encode_grid_result(outcome.records),
            encode_grid_result(control));
  EXPECT_EQ(analysis::to_table(outcome.records),
            analysis::to_table(control));
}

TEST(SweepTcp, WorkerAfterCompletionGetsCleanShutdown) {
  auto spec = small_spec();
  spec.rho_percents = {50};  // 2 cells, 1 unit — one worker finishes fast
  const auto control = analysis::run_grid(spec);

  CoordinatorConfig cfg;
  cfg.job.kind = JobKind::kGrid;
  cfg.job.grid = spec;

  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();
  ServeOptions opt;
  opt.coord = cfg;
  opt.tick_ms = 20;
  opt.on_listening = [&](std::uint16_t p) { port_promise.set_value(p); };

  ServeOutcome outcome;
  std::thread server([&] { outcome = serve(opt); });
  const std::uint16_t port = port_future.get();
  const int rc = run_worker({"127.0.0.1", port, "solo"});
  server.join();

  EXPECT_EQ(rc, 0);
  ASSERT_EQ(outcome.records.size(), control.size());
  EXPECT_EQ(encode_grid_result(outcome.records), encode_grid_result(control));
}

TEST(SweepTcp, ServeThrowsWhenPortTaken) {
  // Hold a port with one listener, then ask serve() to bind the same one.
  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();

  CoordinatorConfig cfg;
  cfg.job.kind = JobKind::kGrid;
  cfg.job.grid = small_spec();

  ServeOptions first;
  first.coord = cfg;
  first.tick_ms = 20;
  first.on_listening = [&](std::uint16_t p) { port_promise.set_value(p); };

  std::thread server([&] { (void)serve(first); });
  const std::uint16_t port = port_future.get();

  ServeOptions second;
  second.coord = cfg;
  second.port = port;
  EXPECT_THROW((void)serve(second), std::runtime_error);

  // Unblock and finish the first server with a real worker.
  EXPECT_EQ(run_worker({"127.0.0.1", port, "closer"}), 0);
  server.join();
}

}  // namespace
}  // namespace asyncmac
