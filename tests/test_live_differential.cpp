// The sim-vs-live differential (the tentpole guarantee of live mode):
// every golden-corpus scenario run through the virtual-clock live stack
// (daemon + station machines + VirtualNet, live/virtual_net.h) must
// reproduce sim::Engine byte-for-byte — the serialized per-slot schedule
// (actions AND feedback), the RunStats/channel-stats JSON, the backlog
// samples at every chunk boundary, and the stability verdict.
//
// This holds because with zero emulation knobs every datagram arrives at
// its send tick and every slot timer fires exactly on time, so the
// daemon's wave processing replays the engine's event loop exactly
// (live/daemon.h explains the phase argument). Any divergence in either
// implementation breaks these comparisons loudly.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stability.h"
#include "engine_golden_cases.h"
#include "live/virtual_net.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "snapshot/checkpoint.h"
#include "trace/serialize.h"

namespace asyncmac::live {
namespace {

using testing::EngineGoldenCase;

snapshot::RunSpec spec_from_case(const EngineGoldenCase& c) {
  snapshot::RunSpec spec;
  spec.protocol = c.protocol;
  spec.n = c.n;
  spec.bound_r = c.bound_r;
  spec.slot_policy = c.slot_policy;
  spec.has_injector = !c.no_injector;
  spec.injector = c.injector;
  spec.seed = c.seed;
  spec.horizon_units = c.horizon_units;
  spec.record_trace = true;
  return spec;
}

struct SimResult {
  std::string trace;
  std::string json;
  std::vector<Tick> samples;
};

/// The control: sim::Engine from the same RunSpec, run in `chunks` legs
/// with the backlog sampled at each boundary — exactly what
/// analysis::probe_stability does, and what the live daemon mirrors.
SimResult run_sim(const snapshot::RunSpec& spec, int chunks) {
  auto engine = snapshot::build_engine(spec);
  const Tick horizon = spec.horizon_units * kTicksPerUnit;
  const Tick step = horizon / chunks;
  SimResult r;
  for (int k = 1; k <= chunks; ++k) {
    engine->run(sim::until(k * step));
    r.samples.push_back(engine->stats().queued_cost);
  }
  r.trace = trace::serialize_trace({spec.n, spec.bound_r},
                                   engine->trace().slots());
  r.json = metrics::to_json(engine->stats(), &engine->channel_stats());
  return r;
}

TEST(LiveDifferential, GoldenCorpusIsByteIdentical) {
  constexpr int kChunks = 8;
  int compared = 0;
  for (const EngineGoldenCase& c : testing::engine_golden_cases()) {
    SCOPED_TRACE(c.name);
    const snapshot::RunSpec spec = spec_from_case(c);
    const SimResult sim = run_sim(spec, kChunks);

    VirtualRunOptions opt;
    opt.chunks = kChunks;
    const VirtualRunReport rep = run_virtual(spec, opt);
    ASSERT_TRUE(rep.completed);
    EXPECT_FALSE(rep.daemon_failed) << rep.reason;
    EXPECT_EQ(rep.station_exit_max, 0);

    // The schedule, byte for byte: slot actions and feedback sequences.
    EXPECT_EQ(trace::serialize_trace({spec.n, spec.bound_r}, rep.trace),
              sim.trace);
    // All statistics, byte for byte (includes channel stats).
    EXPECT_EQ(metrics::to_json(rep.stats, &rep.channel), sim.json);
    // Backlog samples at every chunk boundary, and the verdict derived
    // from them with the shared decision procedure.
    EXPECT_EQ(rep.samples, sim.samples);
    EXPECT_EQ(rep.verdict, analysis::classify_backlog_samples(sim.samples));
    ++compared;
  }
  // The acceptance bar is >= 3 scenarios; the corpus carries more.
  EXPECT_GE(compared, 3);
}

// The differential must also hold for scenarios far from the corpus:
// sparse traffic makes ca-arrow stations hold the turn with an empty
// queue, so control (empty-signal) transmissions flow end to end — a
// channel regime the saturating corpus cases never enter.
TEST(LiveDifferential, ControlModelProtocolMatches) {
  snapshot::RunSpec spec;
  spec.protocol = "ca-arrow";
  spec.n = 3;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(1, 20);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.injector.seed = 3;
  spec.seed = 19;
  spec.horizon_units = 500;
  spec.record_trace = true;

  const SimResult sim = run_sim(spec, 8);
  const VirtualRunReport rep = run_virtual(spec);
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(trace::serialize_trace({spec.n, spec.bound_r}, rep.trace),
            sim.trace);
  EXPECT_EQ(metrics::to_json(rep.stats, &rep.channel), sim.json);
  EXPECT_EQ(rep.samples, sim.samples);
  EXPECT_GT(rep.channel.control_transmissions, 0u);
}

// An overloaded scenario must produce the same non-stable verdict on
// both sides (the differential is only interesting if verdicts can
// actually differ from kStable).
TEST(LiveDifferential, OverloadVerdictMatches) {
  snapshot::RunSpec spec;
  spec.protocol = "aloha";
  spec.n = 4;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(1, 1);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.seed = 9;
  spec.horizon_units = 2000;
  spec.record_trace = false;

  const SimResult sim = run_sim(spec, 8);
  const VirtualRunReport rep = run_virtual(spec);
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(rep.samples, sim.samples);
  const analysis::Verdict expect =
      analysis::classify_backlog_samples(sim.samples);
  EXPECT_EQ(rep.verdict, expect);
  EXPECT_NE(rep.verdict, analysis::Verdict::kStable);
  EXPECT_EQ(metrics::to_json(rep.stats, &rep.channel), sim.json);
}

}  // namespace
}  // namespace asyncmac::live
