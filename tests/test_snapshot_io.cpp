// The snapshot serialization and framing layer (snapshot/io.h,
// snapshot/format.h): scalar round-trips, strict truncation guards, the
// CRC-32 reference vector, and the corruption matrix — truncated files,
// flipped payload/CRC bytes, future-version headers, wrong kinds and bad
// magic must each raise the documented typed SnapshotError, never
// undefined behaviour (this suite also runs under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "snapshot/format.h"
#include "snapshot/io.h"

namespace asyncmac {
namespace {

using snapshot::ErrorKind;
using snapshot::FileKind;
using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

/// EXPECT that `fn` throws SnapshotError with `kind`.
template <typename Fn>
void expect_kind(ErrorKind kind, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected SnapshotError(" << snapshot::to_string(kind) << ")";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(SnapshotIo, Crc32ReferenceVectorAndChaining) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(snapshot::crc32(check, sizeof(check)), 0xCBF43926u);
  // Incremental chaining must equal the one-shot computation.
  const std::uint32_t head = snapshot::crc32(check, 4);
  EXPECT_EQ(snapshot::crc32(check + 4, 5, head), 0xCBF43926u);
  EXPECT_EQ(snapshot::crc32(check, 0), 0u);
}

TEST(SnapshotIo, ScalarAndStringRoundTrip) {
  Writer w;
  w.u8(0);
  w.u8(255);
  w.u32(0xDEADBEEFu);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(-1);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.boolean(true);
  w.boolean(false);
  w.str("");
  w.str(std::string("nul\0inside", 10));
  const std::uint8_t blob[] = {9, 8, 7};
  w.bytes(blob, sizeof(blob));

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 255u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, persists
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
  std::uint8_t out[3] = {};
  r.bytes(out, sizeof(out));
  EXPECT_EQ(out[0], 9u);
  EXPECT_EQ(out[2], 7u);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotIo, TruncatedScalarReadsThrowTyped) {
  const std::uint8_t two[] = {1, 2};
  expect_kind(ErrorKind::kTruncated, [&] { Reader(two, 2).u32(); });
  expect_kind(ErrorKind::kTruncated, [&] { Reader(two, 2).u64(); });
  expect_kind(ErrorKind::kTruncated, [&] { Reader(two, 0).u8(); });
  expect_kind(ErrorKind::kTruncated, [&] {
    std::uint8_t out[3];
    Reader(two, 2).bytes(out, 3);
  });
}

TEST(SnapshotIo, StringLengthGuard) {
  // A declared string length far beyond the input must throw kTruncated
  // up front, not attempt a giant allocation or read past the end.
  Writer w;
  w.u64(std::uint64_t{1} << 40);
  w.u8('x');
  expect_kind(ErrorKind::kTruncated, [&] { Reader(w.buffer()).str(); });
}

TEST(SnapshotIo, ExpectEndRejectsLeftoverBytes) {
  Writer w;
  w.u32(7);
  w.u8(0);  // schema drift: one byte the reader does not consume
  Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  expect_kind(ErrorKind::kCorrupt, [&] { r.expect_end(); });
}

// ------------------------------------------------------ file-level framing

std::vector<std::uint8_t> sample_payload() {
  Writer w;
  w.str("checkpoint payload");
  for (std::uint32_t i = 0; i < 64; ++i) w.u32(i * 2654435761u);
  return w.take();
}

TEST(SnapshotFormat, FileRoundTrip) {
  const std::string path = "snap_io_roundtrip.snap";
  const auto payload = sample_payload();
  snapshot::write_file(path, FileKind::kEngineRun, payload);
  EXPECT_EQ(snapshot::read_file(path, FileKind::kEngineRun), payload);

  // An empty payload is a valid frame.
  snapshot::write_file(path, FileKind::kGridManifest, {});
  EXPECT_TRUE(snapshot::read_file(path, FileKind::kGridManifest).empty());
}

TEST(SnapshotFormat, WrongKindIsMismatch) {
  const std::string path = "snap_io_kind.snap";
  snapshot::write_file(path, FileKind::kEngineRun, sample_payload());
  expect_kind(ErrorKind::kMismatch,
              [&] { snapshot::read_file(path, FileKind::kCampaignCursor); });
}

TEST(SnapshotFormat, MissingFileIsIo) {
  expect_kind(ErrorKind::kIo, [] {
    snapshot::read_file("snap_io_no_such_file.snap", FileKind::kEngineRun);
  });
}

TEST(SnapshotFormat, TruncatedFileIsTruncated) {
  const std::string path = "snap_io_truncated.snap";
  snapshot::write_file(path, FileKind::kEngineRun, sample_payload());
  auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 40u);

  // Cut inside the header.
  dump(path, {bytes.begin(), bytes.begin() + 10});
  expect_kind(ErrorKind::kTruncated,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });

  // Cut inside the payload: header intact, declared length unsatisfied.
  dump(path, {bytes.begin(), bytes.end() - 7});
  expect_kind(ErrorKind::kTruncated,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });

  // An empty file is also just truncation, not magic failure.
  dump(path, {});
  expect_kind(ErrorKind::kTruncated,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });
}

TEST(SnapshotFormat, FlippedPayloadOrCrcByteIsBadCrc) {
  const std::string path = "snap_io_crc.snap";
  snapshot::write_file(path, FileKind::kEngineRun, sample_payload());
  const auto good = slurp(path);

  // Flip one bit in the middle of the payload (bit rot).
  auto bytes = good;
  bytes[bytes.size() - 5] ^= 0x10;
  dump(path, bytes);
  expect_kind(ErrorKind::kBadCrc,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });

  // Flip a byte of the stored CRC itself (header offset 21..24).
  bytes = good;
  bytes[22] ^= 0xFF;
  dump(path, bytes);
  expect_kind(ErrorKind::kBadCrc,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });
}

TEST(SnapshotFormat, FutureVersionHeaderIsBadVersion) {
  const std::string path = "snap_io_version.snap";
  snapshot::write_file(path, FileKind::kEngineRun, sample_payload());
  auto bytes = slurp(path);
  // Version is the u32 LE at offset 9; pretend a much newer writer.
  bytes[9] = 0x2A;
  bytes[10] = 0;
  bytes[11] = 0;
  bytes[12] = 0;
  dump(path, bytes);
  expect_kind(ErrorKind::kBadVersion,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });
}

TEST(SnapshotFormat, CorruptMagicIsBadMagic) {
  const std::string path = "snap_io_magic.snap";
  snapshot::write_file(path, FileKind::kEngineRun, sample_payload());
  auto bytes = slurp(path);
  bytes[0] = 'Z';
  dump(path, bytes);
  expect_kind(ErrorKind::kBadMagic,
              [&] { snapshot::read_file(path, FileKind::kEngineRun); });
}

TEST(SnapshotFormat, ErrorStringsNameTheKind) {
  // The what() text leads with the kind so untyped catch sites still log
  // something actionable.
  const SnapshotError e(ErrorKind::kBadCrc, "details");
  EXPECT_NE(std::string(e.what()).find(snapshot::to_string(ErrorKind::kBadCrc)),
            std::string::npos);
  // Every kind has a distinct, non-empty name.
  std::vector<std::string> names;
  for (const ErrorKind k :
       {ErrorKind::kIo, ErrorKind::kTruncated, ErrorKind::kBadMagic,
        ErrorKind::kBadVersion, ErrorKind::kBadCrc, ErrorKind::kCorrupt,
        ErrorKind::kMismatch}) {
    names.emplace_back(snapshot::to_string(k));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace asyncmac
