// Unit tests for the indexed slot-event heap (sim/event_heap.h): the
// degenerate n=1 heap, re-keying an entry to its current key, the
// (end, station) tie-break on all-ties synchronous schedules, and a
// randomized cross-check against a linear-scan reference model.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_heap.h"
#include "util/types.h"

namespace asyncmac {
namespace {

using sim::SlotEventHeap;

TEST(EventHeap, SingleStationHeap) {
  // volatile blocks constant propagation of n=1: GCC otherwise proves the
  // backing array has one element and flags the (unreachable) sift paths
  // with a false-positive -Warray-bounds under -Werror.
  volatile std::uint32_t one = 1;
  SlotEventHeap h(one);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_FALSE(h.empty());
  // All stations start at the "no slot committed" sentinel.
  EXPECT_EQ(h.top_time(), kTickInfinity);
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.time_of(1), kTickInfinity);

  h.update(1, 500);
  EXPECT_EQ(h.top_time(), 500);
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.time_of(1), 500);

  // Decrease, increase, and back to the sentinel — with one entry every
  // update must land at the root without touching out-of-range children.
  h.update(1, 3);
  EXPECT_EQ(h.top_time(), 3);
  h.update(1, 1000000);
  EXPECT_EQ(h.top_time(), 1000000);
  h.update(1, kTickInfinity);
  EXPECT_EQ(h.top_time(), kTickInfinity);
}

TEST(EventHeap, ReKeyToEqualKeyKeepsEntryValid) {
  SlotEventHeap h(5);
  for (StationId s = 1; s <= 5; ++s) h.update(s, 100 * s);
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.top_time(), 100);

  // Re-keying the top to its current key must leave it the top.
  h.update(1, 100);
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.top_time(), 100);
  EXPECT_EQ(h.time_of(1), 100);

  // Re-keying an interior entry to its current key must not lose it or
  // disturb the order.
  h.update(3, 300);
  EXPECT_EQ(h.time_of(3), 300);
  EXPECT_EQ(h.top_station(), 1u);

  // Re-key station 2 onto station 1's key: ties break by station id, so
  // station 1 stays on top; after it advances, station 2 surfaces.
  h.update(2, 100);
  EXPECT_EQ(h.top_station(), 1u);
  h.update(1, 999);
  EXPECT_EQ(h.top_station(), 2u);
  EXPECT_EQ(h.top_time(), 100);
}

TEST(EventHeap, AllTiesProcessInAscendingStationOrder) {
  // The synchronous schedule: every slot ends at the same tick. Draining
  // the ties (re-keying each served top to a later end) must visit
  // stations in ascending id order — the documented ordering contract.
  constexpr std::uint32_t n = 9;
  SlotEventHeap h(n);
  for (StationId s = 1; s <= n; ++s) h.update(s, 720720);
  for (StationId expect = 1; expect <= n; ++expect) {
    EXPECT_EQ(h.top_time(), 720720);
    EXPECT_EQ(h.top_station(), expect);
    h.update(h.top_station(), 2 * 720720);
  }
  EXPECT_EQ(h.top_station(), 1u);
  EXPECT_EQ(h.top_time(), 2 * 720720);
}

TEST(EventHeap, MatchesLinearScanReference) {
  // Randomized re-key storm, including deliberate duplicate keys, checked
  // after every update against a linear scan over a shadow array under
  // the packed (end, station) lexicographic order.
  constexpr std::uint32_t n = 7;
  SlotEventHeap h(n);
  std::vector<Tick> shadow(n, kTickInfinity);
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  for (int step = 0; step < 5000; ++step) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const StationId s = static_cast<StationId>(1 + (rng >> 33) % n);
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    // Small key range on purpose: collisions exercise the tie-break and
    // equal-key re-keys far more often than distinct keys would.
    const Tick end = static_cast<Tick>((rng >> 40) % 16);
    h.update(s, end);
    shadow[s - 1] = end;

    StationId best = 1;
    for (StationId c = 2; c <= n; ++c)
      if (shadow[c - 1] < shadow[best - 1]) best = c;
    EXPECT_EQ(h.top_time(), shadow[best - 1]) << "step " << step;
    EXPECT_EQ(h.top_station(), best) << "step " << step;
    for (StationId c = 1; c <= n; ++c)
      ASSERT_EQ(h.time_of(c), shadow[c - 1]) << "step " << step;
  }
}

}  // namespace
}  // namespace asyncmac
