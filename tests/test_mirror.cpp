// Tests for the Theorem-2 mirror-execution lower-bound adversary: the
// constructed executions must verify as true mirror executions on the
// exact channel model, and the slots they force match the
// Omega(r (log n / log r + 1)) bound's shape.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/mirror.h"
#include "baselines/sync_binary_le.h"
#include "core/abs.h"
#include "core/bounds.h"

namespace asyncmac {
namespace {

using adversary::MirrorResult;
using adversary::MirrorRun;

adversary::ProtocolFactory abs_factory() {
  return [](StationId) { return std::make_unique<core::AbsProtocol>(); };
}

adversary::ProtocolFactory sync_le_factory() {
  return [](StationId) {
    return std::make_unique<baselines::SyncBinaryLeProtocol>();
  };
}

TEST(Mirror, RejectsDegenerateParameters) {
  EXPECT_THROW(MirrorRun(abs_factory(), 1, 2, 2), std::invalid_argument);
  EXPECT_THROW(MirrorRun(abs_factory(), 4, 1, 2), std::invalid_argument);
  EXPECT_THROW(MirrorRun(abs_factory(), 4, 4, 2), std::invalid_argument);
}

TEST(Mirror, AgainstAbsProducesVerifiedMirrorExecution) {
  MirrorRun run(abs_factory(), 16, 2, 2);
  const MirrorResult res = run.run();
  EXPECT_TRUE(res.verified_mirror);
  EXPECT_GE(res.survivors.size(), 2u);
  EXPECT_GE(res.phases, 1u);
  EXPECT_EQ(res.slots_per_station, static_cast<std::uint64_t>(res.phases) * 2);
}

TEST(Mirror, ForcesAtLeastTheTheoremTwoSlots) {
  // The adversary withholds success for at least the formula's order.
  for (std::uint32_t r : {2u, 4u}) {
    for (std::uint32_t n : {16u, 64u}) {
      MirrorRun run(abs_factory(), n, r, r);
      const MirrorResult res = run.run();
      EXPECT_TRUE(res.verified_mirror) << "n=" << n << " r=" << r;
      // ABS is silent for long stretches, so the adversary keeps everyone
      // alive far beyond the generic bound; >= r * (log n / log(2r)) is
      // the conservative pigeonhole floor.
      const double floor_slots =
          r * (std::log2(n) / std::log2(2.0 * r));
      EXPECT_GE(static_cast<double>(res.slots_per_station), floor_slots)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(Mirror, AgainstSyncBinaryLeToo) {
  // The lower bound is algorithm-agnostic: the same adversary stalls the
  // synchronous binary search (which is only correct at R = 1 anyway).
  MirrorRun run(sync_le_factory(), 32, 2, 2);
  const MirrorResult res = run.run();
  EXPECT_TRUE(res.verified_mirror);
  EXPECT_GE(res.phases, 1u);
}

TEST(Mirror, SurvivorsShrinkNoFasterThanPigeonhole) {
  MirrorRun run(abs_factory(), 64, 4, 4);
  const MirrorResult res = run.run();
  EXPECT_TRUE(res.verified_mirror);
  // |C_{h+1}| >= |C_h| / (2r) each phase; with p phases at least
  // n / (2r)^p stations remain at the end of the committed prefix, so the
  // committed phase count ensures survivors >= 2.
  EXPECT_GE(res.survivors.size(), 2u);
}

TEST(Mirror, DeterministicConstruction) {
  auto once = [] {
    MirrorRun run(abs_factory(), 32, 3, 4);
    const MirrorResult r = run.run();
    return std::tuple(r.phases, r.total_time, r.survivors);
  };
  EXPECT_EQ(once(), once());
}

TEST(Mirror, MoreAsynchronyForcesMoreTime) {
  // With larger r the adversary wastes more channel time per phase;
  // total forced time should not shrink when r grows.
  MirrorRun run2(abs_factory(), 64, 2, 8);
  MirrorRun run8(abs_factory(), 64, 8, 8);
  const auto res2 = run2.run();
  const auto res8 = run8.run();
  EXPECT_TRUE(res2.verified_mirror);
  EXPECT_TRUE(res8.verified_mirror);
  EXPECT_GT(res8.total_time, 0);
  EXPECT_GT(res2.total_time, 0);
}

}  // namespace
}  // namespace asyncmac
