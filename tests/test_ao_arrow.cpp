// Tests for AO-ARRoW (Section IV): universal stability for rho < 1
// (Theorem 3) with queue cost below the closed-form L, liveness (every
// packet is eventually delivered), the no-control-message model, and the
// rejoin/synchronization machinery.
#include <gtest/gtest.h>

#include "adversary/bucket_validator.h"
#include "adversary/injectors.h"
#include "core/ao_arrow.h"
#include "core/bounds.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::SaturatingInjector;
using adversary::ScriptedInjector;
using adversary::TargetPattern;
using core::AoArrowProtocol;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

struct PtRun {
  std::unique_ptr<Engine> engine;
  SaturatingInjector* injector = nullptr;
};

PtRun make_run(std::uint32_t n, std::uint32_t R, util::Ratio rho,
               Tick burst, const std::string& policy,
               TargetPattern pattern = TargetPattern::kRoundRobin,
               std::uint64_t seed = 1) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = seed;
  auto inj = std::make_unique<SaturatingInjector>(rho, burst, pattern, 1,
                                                  seed + 1);
  auto* inj_raw = inj.get();
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(n);
  auto engine = std::make_unique<Engine>(
      cfg, std::move(protocols),
      asyncmac::testing::make_slot_policy(policy, n, R, seed),
      std::move(inj));
  return {std::move(engine), inj_raw};
}

// ---------------------------------------------------------------- basics

TEST(AoArrow, QuiescentWithoutPackets) {
  auto run = make_run(4, 2, util::Ratio::zero(), 0, "perstation");
  run.engine->run(sim::until(5000 * U));
  EXPECT_EQ(run.engine->channel_stats().transmissions, 0u);
}

TEST(AoArrow, NeverSendsControlMessages) {
  auto run = make_run(3, 2, util::Ratio(1, 2), 4 * U, "perstation");
  run.engine->run(sim::until(20000 * U));
  EXPECT_GT(run.engine->stats().delivered_packets, 100u);
  EXPECT_EQ(run.engine->channel_stats().control_transmissions, 0u);
}

TEST(AoArrow, SingleStationDrainsItsQueue) {
  auto run = make_run(1, 2, util::Ratio(1, 2), 8 * U, "max",
                      TargetPattern::kSingle);
  run.engine->run(sim::until(50000 * U));
  const auto& s = run.engine->stats();
  EXPECT_GT(s.delivered_packets, 1000u);
  // Stable: queue bounded well below total traffic.
  EXPECT_LT(s.max_queued_cost, 2000 * U);
}

TEST(AoArrow, LonePacketIntoSilentSystemIsDelivered) {
  // A single packet injected into an idle system must be delivered via
  // the long-silence -> synchronize path (boxes 7/9 of Fig. 5).
  EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  std::vector<sim::Injection> script{{1000 * U, 2, 2 * U}};
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(3);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 3, 2),
           std::make_unique<ScriptedInjector>(script));
  // B bound (time units) plus the injection time, with slack.
  const double b_time = core::arrow_B(2, 2);
  e.run(sim::until(1000 * U + static_cast<Tick>(4 * b_time + 100) * U));
  EXPECT_EQ(e.stats().delivered_packets, 1u);
  EXPECT_EQ(e.stats().queued_packets, 0u);
}

TEST(AoArrow, DrainsBacklogAfterInjectionStops) {
  // Inject a burst, then nothing: liveness requires the backlog to reach
  // zero.
  EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 2;
  std::vector<sim::Injection> script;
  for (int k = 0; k < 40; ++k)
    script.push_back({static_cast<Tick>(k) * U, 1 + static_cast<StationId>(k % 4), U});
  std::sort(script.begin(), script.end(),
            [](auto& a, auto& b) { return a.time < b.time; });
  // Give every packet cost = its station's fixed slot length (1+(i%2)).
  for (auto& inj : script) inj.cost = (1 + ((inj.station - 1) % 2)) * U;
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(4);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 4, 2),
           std::make_unique<ScriptedInjector>(script));
  e.run(sim::until(300000 * U));
  EXPECT_EQ(e.stats().delivered_packets, 40u);
  EXPECT_EQ(e.stats().queued_packets, 0u);
}

TEST(AoArrow, WinnerSitsOutNextElections) {
  // After draining, a station's wait is n-1 and decrements per observed
  // election win; with continuous traffic on all stations, deliveries
  // must not be monopolized by one station.
  auto run = make_run(4, 1, util::Ratio(6, 10), 8 * U, "sync");
  run.engine->run(sim::until(60000 * U));
  const auto& st = run.engine->stats().station;
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_GT(st[i].delivered, 100u) << "station " << i + 1 << " starved";
}

// ------------------------------------------------------ stability sweeps

struct StabilityParam {
  std::uint32_t n;
  std::uint32_t R;
  int rho_pct;
  std::string policy;
};

std::string stability_name(
    const ::testing::TestParamInfo<StabilityParam>& info) {
  auto p = info.param;
  std::string pol = p.policy;
  for (auto& c : pol)
    if (c == '-') c = '_';
  std::string name = "n";
  name += std::to_string(p.n);
  name += "_R";
  name += std::to_string(p.R);
  name += "_rho";
  name += std::to_string(p.rho_pct);
  name += "_";
  name += pol;
  return name;
}

class AoArrowStability : public ::testing::TestWithParam<StabilityParam> {};

TEST_P(AoArrowStability, QueueCostStaysBelowTheoremThreeBound) {
  const auto [n, R, rho_pct, policy] = GetParam();
  const util::Ratio rho(rho_pct, 100);
  const Tick burst = 8 * static_cast<Tick>(R) * U;
  auto run = make_run(n, R, rho, burst, policy);
  run.injector->set_keep_log(true);
  run.engine->run(sim::until(150000 * U));

  const auto bounds = core::arrow_bounds(n, R, R, rho, to_units(burst));
  EXPECT_LT(to_units(run.engine->stats().max_queued_cost), bounds.L)
      << "queue exceeded Theorem 3's bound L=" << bounds.L;
  // Workload sanity: the injector stayed in the adversary class.
  EXPECT_FALSE(
      adversary::check_leaky_bucket(run.injector->log(), rho, burst)
          .violated);
  // Throughput sanity: with rho < 1 most injected packets get delivered.
  const auto& s = run.engine->stats();
  EXPECT_GT(s.delivered_packets, s.injected_packets / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AoArrowStability,
    ::testing::Values(StabilityParam{2, 1, 50, "sync"},
                      StabilityParam{2, 2, 50, "perstation"},
                      StabilityParam{2, 2, 80, "perstation"},
                      StabilityParam{3, 2, 60, "cyclic"},
                      StabilityParam{4, 1, 80, "sync"},
                      StabilityParam{4, 2, 50, "random"},
                      StabilityParam{4, 2, 70, "perstation"},
                      StabilityParam{4, 3, 50, "perstation"},
                      StabilityParam{6, 2, 40, "random"},
                      StabilityParam{8, 1, 60, "sync"},
                      StabilityParam{8, 2, 30, "perstation"},
                      StabilityParam{2, 4, 40, "perstation"},
                      StabilityParam{3, 2, 50, "stretch-tx"},
                      StabilityParam{4, 2, 50, "max"}),
    stability_name);

TEST(AoArrow, HigherRateStillStableLongRun) {
  // rho = 0.9 on a small system, long horizon: queue must stay bounded
  // (below L) the whole time, not just at the end.
  const util::Ratio rho(9, 10);
  auto run = make_run(2, 2, rho, 16 * U, "perstation");
  const auto bounds = core::arrow_bounds(2, 2, 2, rho, 16.0);
  for (int chunk = 1; chunk <= 6; ++chunk) {
    run.engine->run(sim::until(chunk * 100000 * U));
    ASSERT_LT(to_units(run.engine->stats().max_queued_cost), bounds.L)
        << "chunk " << chunk;
  }
  EXPECT_GT(run.engine->stats().delivered_packets, 10000u);
}

TEST(AoArrow, BurstRecovery) {
  // Bucket dumps (bursty pattern) followed by quiet: queue returns to a
  // small level after each burst.
  EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(3);
  auto inj = std::make_unique<adversary::BurstyInjector>(
      util::Ratio(4, 10), 20 * U, 5000 * U, TargetPattern::kRoundRobin);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 3, 2),
           std::move(inj));
  e.run(sim::until(400000 * U));
  const auto& s = e.stats();
  EXPECT_GT(s.delivered_packets, 100u);
  // Long-run drain: at the horizon the backlog is a small residue.
  EXPECT_LT(s.queued_cost, 60 * U);
}

TEST(AoArrow, WinnerDrainsPacketsThatArriveMidDrain) {
  // Box (4) says "transmit all packets" — including ones injected while
  // the drain is running. One station, a seed burst, then a trickle that
  // lands during the drain: everything must go out in one contiguous
  // withholding run (no second election needed).
  EngineConfig cfg;
  cfg.n = 1;
  cfg.bound_r = 2;
  cfg.keep_channel_history = true;
  std::vector<sim::Injection> script;
  for (int k = 0; k < 10; ++k) script.push_back({0, 1, U});
  // Arrivals while the first packets are being transmitted:
  for (int k = 0; k < 5; ++k)
    script.push_back({static_cast<Tick>(20 + k) * U, 1, U});
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(1);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("sync", 1, 2),
           std::make_unique<ScriptedInjector>(script));
  e.run(sim::until(1000 * U));
  EXPECT_EQ(e.stats().delivered_packets, 15u);
  EXPECT_EQ(e.stats().queued_packets, 0u);
  // All successful transmissions form one contiguous run (the drain).
  const auto& hist = e.ledger().window();
  Tick prev_end = -1;
  std::uint64_t runs = 0;
  for (const auto& tx : e.ledger().full_history()) {
    if (tx.begin != prev_end) ++runs;
    prev_end = tx.end;
  }
  for (const auto& tx : hist) {
    if (tx.begin != prev_end) ++runs;
    prev_end = tx.end;
  }
  EXPECT_LE(runs, 2u) << "drain fragmented into " << runs << " runs";
}

TEST(AoArrow, StateAccessorsReflectLifecycle) {
  // Thin sanity for the introspection API the benches rely on.
  EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 2;
  auto protocols = asyncmac::testing::make_protocols<AoArrowProtocol>(2);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 2, 2),
           std::make_unique<SaturatingInjector>(
               util::Ratio(1, 2), 8 * U, TargetPattern::kRoundRobin));
  e.run(sim::until(20000 * U));
  std::uint64_t elections = 0, wins = 0;
  for (StationId id = 1; id <= 2; ++id) {
    const auto& p = dynamic_cast<const AoArrowProtocol&>(e.protocol(id));
    elections += p.elections_entered();
    wins += p.elections_won();
    EXPECT_LE(p.wait(), 1u);  // wait is in [0, n-1]
  }
  EXPECT_GT(elections, 10u);
  EXPECT_GT(wins, 5u);
  EXPECT_LE(wins, elections);
}

TEST(AoArrowAblation, ShrunkenLongSilenceThresholdMisfires) {
  // The box-7 deduction ("threshold silent slots => no election in
  // progress") is sound only with the paper's constant; a small fraction
  // of it re-enters live elections. Compare collision counts.
  auto run_with_threshold = [](std::uint64_t thr) {
    AoArrowProtocol::Tuning tuning;
    tuning.long_silence_slots = thr;
    tuning.sync_countdown_slots = 2 * thr;
    EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i)
      ps.push_back(std::make_unique<AoArrowProtocol>(tuning));
    auto e = std::make_unique<Engine>(
        cfg, std::move(ps),
        asyncmac::testing::make_slot_policy("perstation", 4, 2),
        std::make_unique<SaturatingInjector>(
            util::Ratio(1, 2), 16 * U, TargetPattern::kRoundRobin));
    e->run(sim::until(100000 * U));
    return e;
  };
  const std::uint64_t paper = core::long_silence_threshold(2);
  auto good = run_with_threshold(paper);
  auto bad = run_with_threshold(paper / 4);
  EXPECT_GT(bad->channel_stats().collided,
            10 * good->channel_stats().collided)
      << "shrunken threshold should misfire into collisions";
  EXPECT_LT(good->stats().queued_cost, 500 * U);
}

// ------------------------------------------------------------ determinism

TEST(AoArrow, DeterministicExecution) {
  auto once = [] {
    auto run = make_run(3, 2, util::Ratio(1, 2), 6 * U, "cyclic");
    run.engine->run(sim::until(30000 * U));
    const auto& s = run.engine->stats();
    return std::tuple(s.delivered_packets, s.injected_packets,
                      s.max_queued_cost,
                      run.engine->channel_stats().collided);
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace asyncmac
