// Tests for CA-ARRoW (Section VI): zero collisions in every execution,
// universal stability with the Theorem-6 queue bound, turn consistency,
// and control-message usage limited to empty-queue turn holders.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "core/bounds.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::SaturatingInjector;
using adversary::TargetPattern;
using core::CaArrowProtocol;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

std::unique_ptr<Engine> make_run(std::uint32_t n, std::uint32_t R,
                                 util::Ratio rho, Tick burst,
                                 const std::string& policy,
                                 std::uint64_t seed = 1) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = seed;
  auto protocols = asyncmac::testing::make_protocols<CaArrowProtocol>(n);
  std::unique_ptr<sim::InjectionPolicy> inj;
  if (rho.num > 0 || burst > 0)
    inj = std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kRoundRobin, 1, seed + 1);
  return std::make_unique<Engine>(
      cfg, std::move(protocols),
      asyncmac::testing::make_slot_policy(policy, n, R, seed),
      std::move(inj));
}

// --------------------------------------------------------- collision-free

struct CfParam {
  std::uint32_t n;
  std::uint32_t R;
  int rho_pct;
  std::string policy;
};

std::string cf_name(const ::testing::TestParamInfo<CfParam>& info) {
  auto p = info.param;
  std::string pol = p.policy;
  for (auto& c : pol)
    if (c == '-') c = '_';
  std::string name = "n";
  name += std::to_string(p.n);
  name += "_R";
  name += std::to_string(p.R);
  name += "_rho";
  name += std::to_string(p.rho_pct);
  name += "_";
  name += pol;
  return name;
}

class CaArrowCollisionFree : public ::testing::TestWithParam<CfParam> {};

TEST_P(CaArrowCollisionFree, NeverCollides) {
  const auto [n, R, rho_pct, policy] = GetParam();
  auto e = make_run(n, R, util::Ratio(rho_pct, 100),
                    8 * static_cast<Tick>(R) * U, policy);
  e->run(sim::until(100000 * U));
  EXPECT_EQ(e->channel_stats().collided, 0u)
      << "CA-ARRoW generated a collision";
  EXPECT_GT(e->channel_stats().transmissions, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaArrowCollisionFree,
    ::testing::Values(CfParam{1, 1, 50, "sync"}, CfParam{2, 1, 50, "sync"},
                      CfParam{2, 2, 50, "perstation"},
                      CfParam{2, 2, 80, "cyclic"},
                      CfParam{3, 2, 60, "random"},
                      CfParam{4, 1, 80, "sync"},
                      CfParam{4, 2, 60, "perstation"},
                      CfParam{4, 3, 50, "cyclic"},
                      CfParam{4, 4, 40, "random"},
                      CfParam{6, 2, 50, "random"},
                      CfParam{8, 2, 40, "perstation"},
                      CfParam{8, 4, 30, "random"},
                      CfParam{3, 3, 50, "stretch-tx"},
                      CfParam{5, 2, 50, "max"},
                      CfParam{2, 8, 40, "random"}),
    cf_name);

TEST(CaArrow, NoCollisionsEvenWithRandomSeedSweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto e = make_run(5, 3, util::Ratio(1, 2), 12 * U, "random", seed);
    e->run(sim::until(40000 * U));
    ASSERT_EQ(e->channel_stats().collided, 0u) << "seed " << seed;
  }
}

// -------------------------------------------------------------- stability

TEST(CaArrow, QueueBelowTheoremSixBound) {
  struct Case {
    std::uint32_t n, R;
    int rho_pct;
  };
  for (const Case c : {Case{2, 2, 50}, Case{4, 2, 70}, Case{3, 3, 60},
                       Case{8, 2, 40}, Case{2, 4, 50}}) {
    const util::Ratio rho(c.rho_pct, 100);
    const Tick burst = 8 * static_cast<Tick>(c.R) * U;
    auto e = make_run(c.n, c.R, rho, burst, "perstation");
    e->run(sim::until(200000 * U));
    const double bound = core::ca_arrow_bound(c.n, c.R, rho, to_units(burst));
    EXPECT_LT(to_units(e->stats().max_queued_cost), bound)
        << "n=" << c.n << " R=" << c.R << " rho%=" << c.rho_pct;
    EXPECT_GT(e->stats().delivered_packets,
              e->stats().injected_packets / 2);
  }
}

TEST(CaArrow, HighRateLongRunStable) {
  const util::Ratio rho(9, 10);
  auto e = make_run(2, 2, rho, 16 * U, "perstation");
  const double bound = core::ca_arrow_bound(2, 2, rho, 16.0);
  for (int chunk = 1; chunk <= 5; ++chunk) {
    e->run(sim::until(chunk * 100000 * U));
    ASSERT_LT(to_units(e->stats().max_queued_cost), bound);
    ASSERT_EQ(e->channel_stats().collided, 0u);
  }
  EXPECT_GT(e->stats().delivered_packets, 10000u);
}

// ------------------------------------------------------------- mechanics

TEST(CaArrow, EmptySystemCyclesControlSignals) {
  // With no packets at all, the turn still rotates via empty signals.
  auto e = make_run(3, 2, util::Ratio::zero(), 0, "perstation");
  e->run(sim::until(5000 * U));
  const auto& cs = e->channel_stats();
  EXPECT_GT(cs.control_transmissions, 10u);
  EXPECT_EQ(cs.collided, 0u);
  EXPECT_EQ(cs.transmissions, cs.control_transmissions);
}

TEST(CaArrow, ControlOnlyFromEmptyQueueHolders) {
  // Under saturation every station has packets at its turn: no control
  // messages should appear (after warm-up the queues are never empty).
  auto e = make_run(3, 2, util::Ratio(8, 10), 30 * U, "perstation");
  e->run(sim::until(100000 * U));
  const auto& cs = e->channel_stats();
  // Allow only a handful of early empty signals before queues fill.
  EXPECT_LT(cs.control_transmissions, 20u);
  EXPECT_GT(cs.successful_packets, 1000u);
}

TEST(CaArrow, TurnsRotateFairly) {
  auto e = make_run(4, 2, util::Ratio(6, 10), 8 * U, "perstation");
  e->run(sim::until(100000 * U));
  std::uint64_t min_turns = UINT64_MAX, max_turns = 0;
  for (StationId id = 1; id <= 4; ++id) {
    const auto& p = dynamic_cast<const CaArrowProtocol&>(e->protocol(id));
    min_turns = std::min(min_turns, p.turns_taken());
    max_turns = std::max(max_turns, p.turns_taken());
  }
  EXPECT_GT(min_turns, 10u);
  EXPECT_LE(max_turns - min_turns, 1u) << "turn counters diverged";
}

TEST(CaArrow, AllStationsDeliver) {
  auto e = make_run(5, 2, util::Ratio(5, 10), 10 * U, "cyclic");
  e->run(sim::until(150000 * U));
  for (std::uint32_t i = 0; i < 5; ++i)
    EXPECT_GT(e->stats().station[i].delivered, 50u)
        << "station " << i + 1 << " starved";
}

TEST(CaArrow, DrainsBacklogCompletely) {
  EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  std::vector<sim::Injection> script;
  for (int k = 0; k < 30; ++k)
    script.push_back({static_cast<Tick>(k) * U, 1 + static_cast<StationId>(k % 3),
                      (1 + static_cast<Tick>(k % 3) % 2) * U});
  auto protocols = asyncmac::testing::make_protocols<CaArrowProtocol>(3);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 3, 2),
           std::make_unique<adversary::ScriptedInjector>(script));
  e.run(sim::until(10000 * U));
  EXPECT_EQ(e.stats().delivered_packets, 30u);
  EXPECT_EQ(e.stats().queued_packets, 0u);
}

TEST(CaArrow, DeterministicExecution) {
  auto once = [] {
    auto e = make_run(4, 3, util::Ratio(1, 2), 10 * U, "cyclic");
    e->run(sim::until(30000 * U));
    return std::tuple(e->stats().delivered_packets,
                      e->channel_stats().control_transmissions, e->now());
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace asyncmac
