// Tests for the live-mode datagram codec (live/wire.h): round-trips for
// every message type and typed SnapshotError rejection of malformed
// datagrams — a live daemon feeds raw socket bytes straight into
// decode(), so every corruption class must surface as a catchable typed
// error, never UB or an allocation bomb.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "live/wire.h"
#include "snapshot/io.h"

namespace asyncmac::live {
namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;

ErrorKind decode_error(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)decode(bytes);
  } catch (const SnapshotError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "decode accepted a malformed datagram";
  return ErrorKind::kIo;
}

// ------------------------------------------------------------ round trips

TEST(LiveWire, JoinRoundTrip) {
  Msg m;
  m.type = MsgType::kJoin;
  m.station = 3;
  m.name = "station-3";
  const Msg d = decode(encode(m));
  EXPECT_EQ(d.type, MsgType::kJoin);
  EXPECT_EQ(d.station, 3u);
  EXPECT_EQ(d.name, "station-3");
}

TEST(LiveWire, WelcomeRoundTrip) {
  Msg m;
  m.type = MsgType::kWelcome;
  m.station = 2;
  m.name = "ca-arrow";
  m.n = 4;
  m.bound_r = 3;
  m.rng_seed = 0xdeadbeefcafe1234ULL;
  m.horizon_ticks = 100 * kTicksPerUnit;
  m.injections = {{7, 2 * kTicksPerUnit}, {9 * kTicksPerUnit, kTicksPerUnit}};
  const Msg d = decode(encode(m));
  EXPECT_EQ(d.type, MsgType::kWelcome);
  EXPECT_EQ(d.station, 2u);
  EXPECT_EQ(d.name, "ca-arrow");
  EXPECT_EQ(d.n, 4u);
  EXPECT_EQ(d.bound_r, 3u);
  EXPECT_EQ(d.rng_seed, 0xdeadbeefcafe1234ULL);
  EXPECT_EQ(d.horizon_ticks, 100 * kTicksPerUnit);
  ASSERT_EQ(d.injections.size(), 2u);
  EXPECT_EQ(d.injections[0].injected_at, 7);
  EXPECT_EQ(d.injections[0].cost, 2 * kTicksPerUnit);
  EXPECT_EQ(d.injections[1].injected_at, 9 * kTicksPerUnit);
}

TEST(LiveWire, BoundaryRoundTrip) {
  for (const SlotAction a : {SlotAction::kListen, SlotAction::kTransmitPacket,
                             SlotAction::kTransmitControl}) {
    Msg m;
    m.type = MsgType::kBoundary;
    m.station = 1;
    m.slot_index = 42;
    m.action = a;
    const Msg d = decode(encode(m));
    EXPECT_EQ(d.slot_index, 42u);
    EXPECT_EQ(d.action, a);
  }
}

TEST(LiveWire, GrantRoundTrip) {
  Msg m;
  m.type = MsgType::kGrant;
  m.slot_index = 7;
  m.length = 3 * kTicksPerUnit;
  const Msg d = decode(encode(m));
  EXPECT_EQ(d.slot_index, 7u);
  EXPECT_EQ(d.length, 3 * kTicksPerUnit);
}

TEST(LiveWire, SlotEndRoundTrip) {
  Msg m;
  m.type = MsgType::kSlotEnd;
  m.station = 5;
  m.slot_index = 99;
  const Msg d = decode(encode(m));
  EXPECT_EQ(d.station, 5u);
  EXPECT_EQ(d.slot_index, 99u);
}

TEST(LiveWire, FeedbackRoundTrip) {
  for (const Feedback f :
       {Feedback::kSilence, Feedback::kBusy, Feedback::kAck}) {
    Msg m;
    m.type = MsgType::kFeedback;
    m.slot_index = 12;
    m.feedback = f;
    m.delivered = (f == Feedback::kAck);
    m.injections = {{55, kTicksPerUnit}};
    const Msg d = decode(encode(m));
    EXPECT_EQ(d.feedback, f);
    EXPECT_EQ(d.delivered, f == Feedback::kAck);
    ASSERT_EQ(d.injections.size(), 1u);
    EXPECT_EQ(d.injections[0].injected_at, 55);
  }
}

TEST(LiveWire, FinRoundTrip) {
  Msg m;
  m.type = MsgType::kFin;
  m.ok = false;
  m.name = "station 2 transmitted with an empty queue";
  const Msg d = decode(encode(m));
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.name, "station 2 transmitted with an empty queue");
}

// ------------------------------------------------------- malformed input

TEST(LiveWire, ShortDatagramIsTruncated) {
  std::vector<std::uint8_t> bytes(kDatagramHeaderBytes - 1, 0);
  EXPECT_EQ(decode_error(bytes), ErrorKind::kTruncated);
  EXPECT_EQ(decode_error({}), ErrorKind::kTruncated);
}

TEST(LiveWire, BadMagicIsRejected) {
  Msg m;
  m.type = MsgType::kGrant;
  std::vector<std::uint8_t> bytes = encode(m);
  bytes[0] ^= 0xff;
  EXPECT_EQ(decode_error(bytes), ErrorKind::kBadMagic);
}

TEST(LiveWire, BadVersionIsRejected) {
  Msg m;
  m.type = MsgType::kGrant;
  std::vector<std::uint8_t> bytes = encode(m);
  bytes[4] = 0x7f;  // version LE byte 0
  EXPECT_EQ(decode_error(bytes), ErrorKind::kBadVersion);
}

TEST(LiveWire, UnknownTypeIsCorrupt) {
  Msg m;
  m.type = MsgType::kGrant;
  std::vector<std::uint8_t> bytes = encode(m);
  bytes[8] = 0xee;
  EXPECT_EQ(decode_error(bytes), ErrorKind::kCorrupt);
  bytes[8] = 0;
  EXPECT_EQ(decode_error(bytes), ErrorKind::kCorrupt);
}

TEST(LiveWire, TruncatedPayloadIsRejected) {
  Msg m;
  m.type = MsgType::kWelcome;
  m.name = "ca-arrow";
  std::vector<std::uint8_t> bytes = encode(m);
  bytes.pop_back();
  EXPECT_EQ(decode_error(bytes), ErrorKind::kTruncated);
}

TEST(LiveWire, TrailingBytesAreRejected) {
  Msg m;
  m.type = MsgType::kGrant;
  std::vector<std::uint8_t> bytes = encode(m);
  bytes.push_back(0x00);  // header length no longer matches
  EXPECT_EQ(decode_error(bytes), ErrorKind::kTruncated);
}

TEST(LiveWire, AbsurdPayloadLengthIsCorrupt) {
  Msg m;
  m.type = MsgType::kGrant;
  std::vector<std::uint8_t> bytes = encode(m);
  // Overwrite the u64 payload length (offset 9) with a huge value.
  for (std::size_t i = 0; i < 8; ++i) bytes[9 + i] = 0xff;
  EXPECT_EQ(decode_error(bytes), ErrorKind::kCorrupt);
}

TEST(LiveWire, FlippedPayloadByteFailsCrc) {
  Msg m;
  m.type = MsgType::kFeedback;
  m.slot_index = 3;
  m.feedback = Feedback::kAck;
  m.delivered = true;
  std::vector<std::uint8_t> bytes = encode(m);
  bytes.back() ^= 0x01;
  EXPECT_EQ(decode_error(bytes), ErrorKind::kBadCrc);
}

/// Frame an arbitrary payload as a datagram of the given type, with a
/// correct length and CRC — the codec's header checks must all pass so
/// the payload-level validation is what rejects it.
std::vector<std::uint8_t> frame(MsgType type,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kDatagramHeaderBytes + payload.size());
  for (std::size_t i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(kDatagramMagic[i]));
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(kLiveWireVersion >> (8 * i)));
  out.push_back(static_cast<std::uint8_t>(type));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(payload.size()) >> (8 * i)));
  const std::uint32_t crc = snapshot::crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  for (const std::uint8_t b : payload) out.push_back(b);
  return out;
}

TEST(LiveWire, AbsurdInjectionCountIsCorrupt) {
  // A Feedback payload claiming ~2^63 injections must be rejected before
  // the decoder tries to reserve that much memory.
  snapshot::Writer w;
  w.u64(3);                       // slot_index
  w.u8(2);                        // feedback = ack
  w.boolean(true);                // delivered
  w.u64(0x7fffffffffffffffULL);   // injection count
  EXPECT_EQ(decode_error(frame(MsgType::kFeedback, w.buffer())),
            ErrorKind::kCorrupt);
}

TEST(LiveWire, BadEnumValuesAreCorrupt) {
  {
    snapshot::Writer w;
    w.u32(1);   // station
    w.u64(1);   // slot_index
    w.u8(9);    // not a SlotAction
    EXPECT_EQ(decode_error(frame(MsgType::kBoundary, w.buffer())),
              ErrorKind::kCorrupt);
  }
  {
    snapshot::Writer w;
    w.u64(1);   // slot_index
    w.u8(9);    // not a Feedback
    EXPECT_EQ(decode_error(frame(MsgType::kFeedback, w.buffer())),
              ErrorKind::kCorrupt);
  }
}

TEST(LiveWire, PayloadWithTrailingGarbageIsRejected) {
  // A well-formed Grant payload with one extra byte: header length and
  // CRC both match, so only the reader's end-of-payload check can catch
  // the mismatch (a shorter-than-claimed payload would mis-decode).
  snapshot::Writer w;
  w.u64(7);                   // slot_index
  w.i64(3 * kTicksPerUnit);   // length
  std::vector<std::uint8_t> payload = w.buffer();
  payload.push_back(0xab);
  EXPECT_THROW((void)decode(frame(MsgType::kGrant, payload)), SnapshotError);
}

}  // namespace
}  // namespace asyncmac::live
