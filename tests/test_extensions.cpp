// Tests for the experimental extensions: AdaptiveAbs (leader election
// with UNKNOWN asynchrony bound — the Section VII open problem) and the
// BEB randomized baseline.
#include <gtest/gtest.h>

#include "adversary/mirror.h"
#include "adversary/slot_policies.h"
#include "baselines/beb.h"
#include "core/adaptive_abs.h"
#include "core/bounds.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using core::AdaptiveAbsProtocol;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

struct AdaptiveOutcome {
  bool solved = false;
  std::uint32_t winners = 0;
  std::uint32_t unfinished = 0;
  std::uint32_t max_epochs = 0;
  std::uint32_t winner_estimate = 0;
  std::uint64_t worst_slots = 0;
};

AdaptiveOutcome run_adaptive(std::uint32_t n, std::uint32_t true_r,
                             const std::string& policy,
                             std::uint64_t seed = 1) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = true_r;
  cfg.seed = seed;
  Engine e(cfg,
           asyncmac::testing::make_protocols<AdaptiveAbsProtocol>(n),
           asyncmac::testing::make_slot_policy(policy, n, true_r, seed),
           asyncmac::testing::sst_messages([&] {
             std::vector<StationId> all;
             for (StationId id = 1; id <= n; ++id) all.push_back(id);
             return all;
           }()));
  sim::StopCondition stop;
  // Generous: several doubling epochs, each bounded by the known-R cost.
  stop.max_time = static_cast<Tick>(400 * core::abs_slot_bound(n, true_r)) *
                  static_cast<Tick>(true_r) * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  // The winner's ack reaches a loser at the end of the loser's slot that
  // contains the win — up to r time later; drain that window too.
  e.run(sim::until(e.now() + static_cast<Tick>(true_r) * U));

  AdaptiveOutcome out;
  out.solved = e.channel_stats().successful >= 1;
  for (StationId id = 1; id <= n; ++id) {
    const auto& p =
        dynamic_cast<const AdaptiveAbsProtocol&>(e.protocol(id));
    out.max_epochs = std::max(out.max_epochs, p.epochs());
    out.worst_slots = std::max(out.worst_slots, p.total_slots());
    switch (p.status()) {
      case AdaptiveAbsProtocol::Status::kWon:
        ++out.winners;
        out.winner_estimate = p.r_estimate();
        break;
      case AdaptiveAbsProtocol::Status::kRunning:
        ++out.unfinished;
        break;
      case AdaptiveAbsProtocol::Status::kObservedWinner:
        break;
    }
  }
  return out;
}

// ----------------------------------------------------------- AdaptiveAbs

TEST(AdaptiveAbs, SolvesSstWhenRIsActuallyOne) {
  const auto out = run_adaptive(8, 1, "sync");
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.winners, 1u);
  EXPECT_EQ(out.unfinished, 0u);
  EXPECT_EQ(out.max_epochs, 1u) << "no doubling needed at r = 1";
}

struct AdaptiveParam {
  std::uint32_t n;
  std::uint32_t r;
  std::string policy;
};

class AdaptiveSweep : public ::testing::TestWithParam<AdaptiveParam> {};

TEST_P(AdaptiveSweep, ElectsExactlyOneWithUnknownBound) {
  const auto [n, r, policy] = GetParam();
  const auto out = run_adaptive(n, r, policy);
  ASSERT_TRUE(out.solved) << "SST never solved";
  EXPECT_EQ(out.winners, 1u);
  EXPECT_EQ(out.unfinished, 0u)
      << "every loser must detect the winner's ack";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveSweep,
    ::testing::Values(AdaptiveParam{2, 2, "perstation"},
                      AdaptiveParam{4, 2, "perstation"},
                      AdaptiveParam{4, 2, "cyclic"},
                      AdaptiveParam{8, 2, "perstation"},
                      AdaptiveParam{4, 4, "perstation"},
                      AdaptiveParam{8, 4, "cyclic"},
                      AdaptiveParam{6, 3, "random"},
                      AdaptiveParam{16, 2, "random"}),
    [](const ::testing::TestParamInfo<AdaptiveParam>& param_info) {
      std::string pol = param_info.param.policy;
      for (auto& c : pol)
        if (c == '-') c = '_';
      std::string name = "n";
      name += std::to_string(param_info.param.n);
      name += "_r";
      name += std::to_string(param_info.param.r);
      name += "_";
      name += pol;
      return name;
    });

TEST(AdaptiveAbs, DoublesUnderMirroredFeedback) {
  // Benign fixed schedules rarely defeat epoch 1 (ABS is robust even with
  // an underestimated R on many of them), so exercise the doubling path
  // deterministically: drive the automaton with Theorem-2-style mirrored
  // feedback (listen -> silence, transmit -> busy). Its election can then
  // never resolve, the phase cap trips repeatedly, and the estimate must
  // keep doubling.
  AdaptiveAbsProtocol p;
  sim::StationContext ctx(2, 8, 8, 1);
  SlotAction a = p.next_action(std::nullopt, ctx);
  for (int step = 0; step < 500000 && p.r_estimate() < 16; ++step) {
    const sim::SlotResult mirrored{
        a, is_transmit(a) ? Feedback::kBusy : Feedback::kSilence, false};
    a = p.next_action(mirrored, ctx);
  }
  EXPECT_GE(p.r_estimate(), 16u) << "the estimate never doubled";
  EXPECT_GE(p.epochs(), 4u);
  EXPECT_EQ(p.status(), AdaptiveAbsProtocol::Status::kRunning);
}

TEST(AdaptiveAbs, MirrorAdversaryStallsItLikeAnyDeterministicAlgorithm) {
  // Theorem 2 applies to adaptive-ABS too: the mirror adversary builds a
  // verified execution in which nobody wins for many phases.
  adversary::ProtocolFactory f = [](StationId) {
    return std::make_unique<AdaptiveAbsProtocol>();
  };
  adversary::MirrorRun run(f, 16, 2, 2);
  const auto res = run.run();
  EXPECT_TRUE(res.verified_mirror);
  EXPECT_GE(res.phases, 1u);
}

TEST(AdaptiveAbs, CostsMoreThanKnownRButTerminates) {
  // The doubling penalty: unknown-R needs more slots than ABS with the
  // right constant, but stays within a small factor of the known bound.
  const auto out = run_adaptive(8, 2, "perstation");
  ASSERT_TRUE(out.solved);
  EXPECT_GT(out.worst_slots, 0u);
  EXPECT_LT(out.worst_slots, 400 * core::abs_slot_bound(8, 2));
}

TEST(AdaptiveAbs, SeedSweepRandomPolicies) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto out = run_adaptive(6, 3, "random", seed);
    ASSERT_TRUE(out.solved) << "seed " << seed;
    ASSERT_EQ(out.winners, 1u) << "seed " << seed;
  }
}

// ------------------------------------------------------------------- BEB

TEST(Beb, DeliversUnderLightLoad) {
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  Engine e(cfg, asyncmac::testing::make_protocols<baselines::BebProtocol>(4),
           asyncmac::testing::make_slot_policy("sync", 4, 1),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(1, 10), 4 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(100000 * U));
  EXPECT_GT(e.stats().delivered_packets,
            e.stats().injected_packets * 8 / 10);
}

TEST(Beb, BacksOffAfterCollisions) {
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 1;
  Engine e(cfg, asyncmac::testing::make_protocols<baselines::BebProtocol>(2),
           asyncmac::testing::make_slot_policy("sync", 2, 1),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(3, 10), 6 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(50000 * U));
  EXPECT_GT(e.channel_stats().collided, 0u);  // it does collide...
  EXPECT_GT(e.stats().delivered_packets, 1000u);  // ...and still delivers
}

TEST(Beb, WorksUnderAsynchronyToo) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  Engine e(cfg, asyncmac::testing::make_protocols<baselines::BebProtocol>(3),
           asyncmac::testing::make_slot_policy("perstation", 3, 2),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(2, 10), 6 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(100000 * U));
  EXPECT_GT(e.stats().delivered_packets,
            e.stats().injected_packets / 2);
}

TEST(Beb, DegradesUnderSaturation) {
  sim::EngineConfig cfg;
  cfg.n = 6;
  cfg.bound_r = 1;
  Engine e(cfg, asyncmac::testing::make_protocols<baselines::BebProtocol>(6),
           asyncmac::testing::make_slot_policy("sync", 6, 1),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(9, 10), 16 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(100000 * U));
  // At rho = 0.9 BEB cannot keep up: a large backlog accumulates.
  EXPECT_GT(e.stats().queued_packets, 1000u);
}

}  // namespace
}  // namespace asyncmac
