// The distributed-sweep wire layer (sweep/wire.h, sweep/protocol.h):
// frame round-trips under arbitrary chunking, message payload codecs,
// splittable unit identity, and the corruption matrix — truncated
// frames, flipped payload/CRC bytes, future versions, bad magic, unknown
// types, oversized lengths and mid-handshake severs must each raise the
// documented typed SnapshotError, never undefined behaviour (this suite
// mirrors test_snapshot_io.cpp and runs under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sweep/protocol.h"
#include "sweep/wire.h"

namespace asyncmac {
namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;
using namespace asyncmac::sweep;

/// EXPECT that `fn` throws SnapshotError with `kind`.
template <typename Fn>
void expect_kind(ErrorKind kind, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected SnapshotError(" << snapshot::to_string(kind) << ")";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

std::vector<std::uint8_t> hello_frame(const std::string& name = "w") {
  HelloMsg m;
  m.worker_name = name;
  return to_frame(m);
}

SweepJob small_grid_job() {
  SweepJob job;
  job.kind = JobKind::kGrid;
  job.grid.protocols = {"ca-arrow", "rrw"};
  job.grid.station_counts = {2, 3};
  job.grid.bounds_r = {2};
  job.grid.rho_percents = {40, 60};
  job.grid.slot_policies = {"perstation"};
  job.grid.horizon_units = 500;
  job.grid.seeds = 2;
  return job;
}

// ------------------------------------------------------------ round trips

TEST(SweepWire, FrameRoundTripAllTypes) {
  WelcomeMsg welcome;
  welcome.worker_id = 7;
  welcome.heartbeat_ms = 250;
  welcome.lease_timeout_ms = 4000;
  welcome.job = small_grid_job();
  AssignMsg assign;
  assign.lease_id = 3;
  assign.unit_index = 5;
  assign.unit_id = work_unit_id(1234, 5);
  assign.first = 40;
  assign.count = 8;
  ResultMsg result;
  result.worker_id = 7;
  result.lease_id = 3;
  result.unit_index = 5;
  result.unit_id = assign.unit_id;
  result.payload = {1, 2, 3, 4};
  ShutdownMsg bye;
  bye.reason = "complete";

  FrameDecoder dec;
  dec.feed(hello_frame("alpha"));
  dec.feed(to_frame(welcome));
  dec.feed(to_frame(assign));
  dec.feed(to_frame(result));
  dec.feed(to_frame(bye));

  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, MsgType::kHello);
  EXPECT_EQ(std::get<HelloMsg>(decode_message(*f)).worker_name, "alpha");

  f = dec.next();
  ASSERT_TRUE(f.has_value());
  const auto w = std::get<WelcomeMsg>(decode_message(*f));
  EXPECT_EQ(w.worker_id, 7u);
  EXPECT_EQ(w.heartbeat_ms, 250u);
  EXPECT_EQ(w.lease_timeout_ms, 4000u);
  EXPECT_EQ(w.job.kind, JobKind::kGrid);
  EXPECT_EQ(w.job.grid.protocols, small_grid_job().grid.protocols);
  EXPECT_EQ(w.job.grid.station_counts, small_grid_job().grid.station_counts);
  EXPECT_EQ(w.job.grid.seeds, 2);

  f = dec.next();
  ASSERT_TRUE(f.has_value());
  const auto a = std::get<AssignMsg>(decode_message(*f));
  EXPECT_EQ(a.lease_id, 3u);
  EXPECT_EQ(a.unit_index, 5u);
  EXPECT_EQ(a.unit_id, assign.unit_id);
  EXPECT_EQ(a.first, 40u);
  EXPECT_EQ(a.count, 8u);

  f = dec.next();
  ASSERT_TRUE(f.has_value());
  const auto r = std::get<ResultMsg>(decode_message(*f));
  EXPECT_EQ(r.payload, result.payload);

  f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(std::get<ShutdownMsg>(decode_message(*f)).reason, "complete");

  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_NO_THROW(dec.at_eof());
}

TEST(SweepWire, ByteAtATimeChunkingYieldsSameFrames) {
  const auto bytes = to_frame(HeartbeatMsg{42});
  FrameDecoder dec;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // No frame may surface before the last byte arrives.
    if (i + 1 < bytes.size()) {
      EXPECT_FALSE(dec.next().has_value());
    }
    dec.feed(&bytes[i], 1);
  }
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(std::get<HeartbeatMsg>(decode_message(*f)).worker_id, 42u);
}

TEST(SweepWire, FuzzJobRoundTrip) {
  WelcomeMsg welcome;
  welcome.worker_id = 1;
  welcome.job.kind = JobKind::kFuzz;
  welcome.job.fuzz.seed = 99;
  welcome.job.fuzz.cases = 1000;
  welcome.job.fuzz.chunk = 64;
  welcome.job.fuzz.protocols = {"ca-arrow"};
  FrameDecoder dec;
  dec.feed(to_frame(welcome));
  const auto w = std::get<WelcomeMsg>(decode_message(*dec.next()));
  EXPECT_EQ(w.job.kind, JobKind::kFuzz);
  EXPECT_EQ(w.job.fuzz.seed, 99u);
  EXPECT_EQ(w.job.fuzz.cases, 1000u);
  EXPECT_EQ(w.job.fuzz.chunk, 64u);
  EXPECT_EQ(w.job.fuzz.protocols, std::vector<std::string>{"ca-arrow"});
}

// --------------------------------------------------------- unit identity

TEST(SweepWire, WorkUnitIdIsStableSplittableAndNeverZero) {
  const std::uint32_t fp = job_fingerprint(small_grid_job());
  // Pure function: same inputs, same id — and ids never collide with the
  // "no unit" sentinel 0.
  EXPECT_EQ(work_unit_id(fp, 0), work_unit_id(fp, 0));
  EXPECT_NE(work_unit_id(fp, 0), 0u);
  EXPECT_NE(work_unit_id(fp, 0), work_unit_id(fp, 1));
  EXPECT_NE(work_unit_id(fp, 0), work_unit_id(fp + 1, 0));
}

TEST(SweepWire, JobFingerprintSeparatesJobs) {
  SweepJob grid = small_grid_job();
  SweepJob fuzz;
  fuzz.kind = JobKind::kFuzz;
  fuzz.fuzz.cases = 128;
  EXPECT_NE(job_fingerprint(grid), job_fingerprint(fuzz));
  SweepJob fuzz2 = fuzz;
  fuzz2.fuzz.seed = 2;
  EXPECT_NE(job_fingerprint(fuzz), job_fingerprint(fuzz2));
}

// ------------------------------------------------------ corruption matrix

TEST(SweepWire, TruncatedFrameSurfacesOnEof) {
  auto bytes = hello_frame();
  bytes.resize(bytes.size() - 1);  // sever one byte short
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());  // still waiting, not an error...
  expect_kind(ErrorKind::kTruncated, [&] { dec.at_eof(); });  // ...until EOF
}

TEST(SweepWire, MidHandshakeSeverTruncatesHeader) {
  auto bytes = hello_frame();
  bytes.resize(kFrameHeaderBytes / 2);  // not even a full header
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  expect_kind(ErrorKind::kTruncated, [&] { dec.at_eof(); });
}

TEST(SweepWire, FlippedCrcByte) {
  auto bytes = hello_frame();
  bytes[17] ^= 0xFF;  // CRC field
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kBadCrc, [&] { dec.next(); });
}

TEST(SweepWire, FlippedPayloadByte) {
  auto bytes = hello_frame("worker-name");
  bytes[kFrameHeaderBytes + 3] ^= 0x01;
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kBadCrc, [&] { dec.next(); });
}

TEST(SweepWire, BadMagic) {
  auto bytes = hello_frame();
  bytes[0] = 'X';
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kBadMagic, [&] { dec.next(); });
}

TEST(SweepWire, FutureVersionRefused) {
  auto bytes = hello_frame();
  bytes[4] = static_cast<std::uint8_t>(kWireVersion + 1);  // version LSB
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kBadVersion, [&] { dec.next(); });
}

TEST(SweepWire, UnknownMessageType) {
  auto bytes = hello_frame();
  bytes[8] = 0xEE;
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kCorrupt, [&] { dec.next(); });
}

TEST(SweepWire, OversizedDeclaredLength) {
  auto bytes = hello_frame();
  for (int i = 9; i < 17; ++i) bytes[static_cast<std::size_t>(i)] = 0xFF;
  FrameDecoder dec;
  dec.feed(bytes);
  // Fails the moment the header is complete — it never waits for 2^64
  // phantom payload bytes.
  expect_kind(ErrorKind::kCorrupt, [&] { dec.next(); });
}

TEST(SweepWire, PoisonedDecoderKeepsThrowingSameKind) {
  auto bytes = hello_frame();
  bytes[0] = 'X';
  FrameDecoder dec;
  dec.feed(bytes);
  expect_kind(ErrorKind::kBadMagic, [&] { dec.next(); });
  expect_kind(ErrorKind::kBadMagic, [&] { dec.next(); });
  expect_kind(ErrorKind::kBadMagic, [&] { dec.feed(bytes); });
  expect_kind(ErrorKind::kBadMagic, [&] { dec.at_eof(); });
}

TEST(SweepWire, EncodeRefusesOversizedPayload) {
  expect_kind(ErrorKind::kCorrupt, [&] {
    std::vector<std::uint8_t> huge(kMaxFramePayload + 1, 0);
    encode_frame(MsgType::kResult, huge);
  });
}

// Payload-level corruption: the frame checks out (CRC is recomputed) but
// the message inside is malformed — decode_message must throw typed.
TEST(SweepWire, TruncatedMessagePayload) {
  Frame f;
  f.type = MsgType::kWelcome;
  f.payload = {1, 2};  // far too short for a Welcome
  expect_kind(ErrorKind::kTruncated, [&] { decode_message(f); });
}

TEST(SweepWire, TrailingGarbageInMessagePayload) {
  auto bytes = to_frame(HeartbeatMsg{1});
  FrameDecoder dec;
  dec.feed(bytes);
  Frame f = *dec.next();
  f.payload.push_back(0);  // one byte too many
  expect_kind(ErrorKind::kCorrupt, [&] { decode_message(f); });
}

TEST(SweepWire, AbsurdElementCountIsCorruptionNotAllocation) {
  // A Welcome whose grid spec declares 2^61 protocols must be rejected
  // by the count guard before any reserve() happens.
  snapshot::Writer w;
  w.u32(1);            // worker id
  w.u64(1000);         // heartbeat
  w.u64(10000);        // lease timeout
  w.u8(1);             // JobKind::kGrid
  w.u64(1ull << 61);   // declared protocol count
  Frame f;
  f.type = MsgType::kWelcome;
  f.payload = w.take();
  expect_kind(ErrorKind::kCorrupt, [&] { decode_message(f); });
}

TEST(SweepWire, UnknownJobKindIsCorrupt) {
  snapshot::Writer w;
  w.u32(1);
  w.u64(1000);
  w.u64(10000);
  w.u8(9);  // no such JobKind
  Frame f;
  f.type = MsgType::kWelcome;
  f.payload = w.take();
  expect_kind(ErrorKind::kCorrupt, [&] { decode_message(f); });
}

// --------------------------------------------------------- result codecs

TEST(SweepWire, GridResultRoundTrip) {
  analysis::ExperimentRecord rec;
  rec.protocol = "ca-arrow";
  rec.n = 2;
  rec.bound_r = 2;
  rec.rho_pct = 40;
  rec.slot_policy = "perstation";
  rec.seed = 17;
  rec.injected = 100;
  rec.delivered = 90;
  rec.delivered_fraction = 0.9;
  const auto payload = encode_grid_result({rec});
  const auto back = decode_grid_result(payload);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].protocol, "ca-arrow");
  EXPECT_EQ(back[0].seed, 17u);
  EXPECT_EQ(back[0].delivered, 90u);
  EXPECT_DOUBLE_EQ(back[0].delivered_fraction, 0.9);
}

TEST(SweepWire, GridResultRejectsTrailingBytes) {
  auto payload = encode_grid_result({});
  payload.push_back(7);
  expect_kind(ErrorKind::kCorrupt, [&] { decode_grid_result(payload); });
}

TEST(SweepWire, FuzzResultRoundTripAndGuards) {
  verify::CaseVerdict v;
  v.index = 3;
  v.case_seed = 123456789;
  v.ok = false;
  v.violation = "synthetic";
  const auto payload = encode_fuzz_result({v});
  const auto back = decode_fuzz_result(payload);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].index, 3u);
  EXPECT_EQ(back[0].case_seed, 123456789u);
  EXPECT_FALSE(back[0].ok);
  EXPECT_EQ(back[0].violation, "synthetic");

  snapshot::Writer w;
  w.u64(1ull << 60);  // absurd verdict count
  const auto bad = w.take();
  expect_kind(ErrorKind::kCorrupt, [&] { decode_fuzz_result(bad); });
}

}  // namespace
}  // namespace asyncmac
