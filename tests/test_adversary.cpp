// Tests for the adversary module: slot policies, the exact token bucket,
// injection adversaries (and their Def.-1 compliance via the validator).
#include <gtest/gtest.h>

#include "adversary/bucket_validator.h"
#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "baselines/listen.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "test_protocols.h"

namespace asyncmac::adversary {
namespace {

constexpr Tick U = kTicksPerUnit;

// ------------------------------------------------------------ slot policies

TEST(SlotPolicies, UniformConstant) {
  UniformSlotPolicy p(2 * U);
  EXPECT_EQ(p.slot_length(1, 1, 0, SlotAction::kListen), 2 * U);
  EXPECT_EQ(p.slot_length(5, 99, 12345, SlotAction::kTransmitPacket), 2 * U);
  EXPECT_EQ(p.fixed_length(3), 2 * U);
}

TEST(SlotPolicies, UniformRejectsSubUnit) {
  EXPECT_THROW(UniformSlotPolicy(U - 1), std::invalid_argument);
}

TEST(SlotPolicies, PerStationLengths) {
  PerStationSlotPolicy p({U, 2 * U, 3 * U});
  EXPECT_EQ(p.slot_length(1, 1, 0, SlotAction::kListen), U);
  EXPECT_EQ(p.slot_length(3, 7, 0, SlotAction::kListen), 3 * U);
  EXPECT_EQ(p.fixed_length(2), 2 * U);
}

TEST(SlotPolicies, CyclicPatternWithShift) {
  CyclicSlotPolicy p({U, 2 * U}, /*shift_per_station=*/true);
  // Station 1, slot 1: index (0 + 1) % 2 = 1 -> 2U.
  EXPECT_EQ(p.slot_length(1, 1, 0, SlotAction::kListen), 2 * U);
  EXPECT_EQ(p.slot_length(1, 2, 0, SlotAction::kListen), U);
  EXPECT_EQ(p.slot_length(2, 1, 0, SlotAction::kListen), U);
}

TEST(SlotPolicies, CyclicNotFixed) {
  CyclicSlotPolicy p({U, 2 * U});
  EXPECT_EQ(p.fixed_length(1), 0);
}

TEST(SlotPolicies, RandomWithinRangeAndDeterministic) {
  RandomSlotPolicy a(2, U, 4 * U, 42), b(2, U, 4 * U, 42);
  for (SlotIndex j = 1; j <= 200; ++j) {
    const Tick la = a.slot_length(1, j, 0, SlotAction::kListen);
    EXPECT_GE(la, U);
    EXPECT_LE(la, 4 * U);
    EXPECT_EQ(la, b.slot_length(1, j, 0, SlotAction::kListen));
  }
}

TEST(SlotPolicies, RandomPerStationStreamsIndependent) {
  RandomSlotPolicy a(2, U, 4 * U, 42);
  RandomSlotPolicy b(2, U, 4 * U, 42);
  // Drawing station 1 many times must not perturb station 2's stream.
  for (int i = 0; i < 50; ++i) a.slot_length(1, 1, 0, SlotAction::kListen);
  EXPECT_EQ(a.slot_length(2, 1, 0, SlotAction::kListen),
            b.slot_length(2, 1, 0, SlotAction::kListen));
}

TEST(SlotPolicies, StretchTransmitsOnlyStretchesTransmissions) {
  StretchTransmitsPolicy p(5 * U);
  EXPECT_EQ(p.slot_length(1, 1, 0, SlotAction::kListen), U);
  EXPECT_EQ(p.slot_length(1, 2, 0, SlotAction::kTransmitPacket), 5 * U);
  EXPECT_EQ(p.slot_length(1, 3, 0, SlotAction::kTransmitControl), 5 * U);
}

// ----------------------------------------------------------------- bucket

TEST(CostBucket, StartsFullAndCaps) {
  CostBucket b(util::Ratio(1, 2), 10 * U);
  EXPECT_EQ(b.tokens(), 10 * U);
  b.advance(100 * U);  // would accrue 50U; capped at burst
  EXPECT_EQ(b.tokens(), 10 * U);
}

TEST(CostBucket, AccruesAtExactRate) {
  CostBucket b(util::Ratio(1, 2), 10 * U);
  b.spend(10 * U);
  EXPECT_EQ(b.tokens(), 0);
  b.advance(4 * U);
  EXPECT_EQ(b.tokens(), 2 * U);
  EXPECT_TRUE(b.can_afford(2 * U));
  EXPECT_FALSE(b.can_afford(2 * U + 1));
}

TEST(CostBucket, SpendRequiresAffordability) {
  CostBucket b(util::Ratio(1, 2), U);
  EXPECT_THROW(b.spend(2 * U), std::logic_error);
}

TEST(CostBucket, ZeroRateOnlyBurst) {
  CostBucket b(util::Ratio::zero(), 3 * U);
  b.advance(1000 * U);
  EXPECT_EQ(b.tokens(), 3 * U);
  b.spend(3 * U);
  b.advance(2000 * U);
  EXPECT_EQ(b.tokens(), 0);
}

// -------------------------------------------------------------- validator

TEST(BucketValidator, EmptyLogCompliant) {
  EXPECT_FALSE(
      check_leaky_bucket({}, util::Ratio(1, 2), U).violated);
  EXPECT_EQ(effective_burstiness({}, util::Ratio(1, 2)), 0);
}

TEST(BucketValidator, SingleInjectionNeedsItsCostAsBurst) {
  std::vector<sim::Injection> log{{100, 1, 5 * U}};
  EXPECT_EQ(effective_burstiness(log, util::Ratio(1, 2)), 5 * U);
  EXPECT_FALSE(check_leaky_bucket(log, util::Ratio(1, 2), 5 * U).violated);
  EXPECT_TRUE(check_leaky_bucket(log, util::Ratio(1, 2), 5 * U - 1).violated);
}

TEST(BucketValidator, DetectsMidStreamBurstViolation) {
  // Slow trickle, then an instantaneous dump: the window around the dump
  // must be flagged even though the overall average rate is low.
  std::vector<sim::Injection> log;
  for (int k = 0; k < 10; ++k)
    log.push_back({static_cast<Tick>(k) * 100 * U, 1, U});
  for (int k = 0; k < 5; ++k) log.push_back({1000 * U, 1, U});
  const auto v = check_leaky_bucket(log, util::Ratio(1, 10), 2 * U);
  EXPECT_TRUE(v.violated);
  EXPECT_EQ(v.window_end, 1000 * U);
  EXPECT_GT(v.cost_in_window, v.allowed);
}

TEST(BucketValidator, SteadyRateCompliant) {
  // One unit-cost packet every 2 units == rate 1/2 exactly.
  std::vector<sim::Injection> log;
  for (int k = 0; k < 1000; ++k)
    log.push_back({static_cast<Tick>(k) * 2 * U, 1, U});
  EXPECT_FALSE(check_leaky_bucket(log, util::Ratio(1, 2), U).violated);
  EXPECT_TRUE(check_leaky_bucket(log, util::Ratio(49, 100), U).violated);
}

TEST(BucketValidator, EffectiveBurstinessRoundTrips) {
  std::vector<sim::Injection> log;
  for (int k = 0; k < 100; ++k)
    log.push_back({static_cast<Tick>(k) * U, 1, U});
  const util::Ratio rho(3, 4);
  const Tick b = effective_burstiness(log, rho);
  EXPECT_FALSE(check_leaky_bucket(log, rho, b).violated);
  EXPECT_TRUE(check_leaky_bucket(log, rho, b - 1).violated);
}

// -------------------------------------------------------------- injectors

TEST(SaturatingInjector, RespectsLeakyBucketExactly) {
  const util::Ratio rho(7, 10);
  const Tick burst = 5 * U;
  auto inj = std::make_unique<SaturatingInjector>(
      rho, burst, TargetPattern::kRoundRobin);
  inj->set_keep_log(true);
  auto* raw = inj.get();
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(3);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("perstation", 3, 2),
                std::move(inj));
  e.run(sim::until(5000 * U));
  const auto& log = raw->log();
  ASSERT_GT(log.size(), 100u);
  EXPECT_FALSE(check_leaky_bucket(log, rho, burst).violated);
  // It should actually use most of its budget (long-run rate near rho).
  EXPECT_GT(static_cast<double>(raw->injected_cost()),
            0.9 * rho.to_double() * 5000 * U);
}

TEST(SaturatingInjector, RoundRobinCyclesStations) {
  auto inj = std::make_unique<SaturatingInjector>(
      util::Ratio(1, 2), 10 * U, TargetPattern::kRoundRobin);
  inj->set_keep_log(true);
  auto* raw = inj.get();
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(4);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("sync", 4, 1),
                std::move(inj));
  e.run(sim::until(100 * U));
  const auto& log = raw->log();
  ASSERT_GE(log.size(), 8u);
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i].station, 1 + i % 4);
}

TEST(SaturatingInjector, SingleTargetsOneStation) {
  auto inj = std::make_unique<SaturatingInjector>(
      util::Ratio(1, 2), 4 * U, TargetPattern::kSingle, 3);
  inj->set_keep_log(true);
  auto* raw = inj.get();
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(4);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("sync", 4, 1),
                std::move(inj));
  e.run(sim::until(200 * U));
  for (const auto& i : raw->log()) EXPECT_EQ(i.station, 3u);
  EXPECT_GT(e.queue_size(3), 0u);
  EXPECT_EQ(e.queue_size(1), 0u);
}

TEST(SaturatingInjector, CostsMatchFixedSlotLengths) {
  auto inj = std::make_unique<SaturatingInjector>(
      util::Ratio(1, 2), 10 * U, TargetPattern::kRoundRobin);
  inj->set_keep_log(true);
  auto* raw = inj.get();
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 3;
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(2);
  sim::Engine e(cfg, std::move(protocols),
                std::make_unique<PerStationSlotPolicy>(
                    std::vector<Tick>{U, 3 * U}),
                std::move(inj));
  e.run(sim::until(100 * U));
  for (const auto& i : raw->log())
    EXPECT_EQ(i.cost, i.station == 1 ? U : 3 * U);
}

TEST(BurstyInjector, CompliantAndActuallyBursty) {
  const util::Ratio rho(1, 2);
  const Tick burst = 20 * U;
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 1;
  auto protocols =
      asyncmac::testing::make_protocols<testing::ScriptProtocol>(
          2, std::vector<SlotAction>{});
  // BurstyInjector has no log; validate via a wrapper engine run and the
  // queue growth pattern: everything arrives in clumps of ~burst size.
  auto inj = std::make_unique<BurstyInjector>(rho, burst, 40 * U,
                                              TargetPattern::kSingle, 1);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("sync", 2, 1),
                std::move(inj));
  e.run(sim::until(39 * U));
  const auto after_first = e.queue_size(1);
  EXPECT_EQ(after_first, 20u);  // the initial full bucket dumped at once
  e.run(sim::until(200 * U));
  EXPECT_GT(e.queue_size(1), after_first);
}

TEST(ScriptedInjector, RejectsUnsortedScript) {
  std::vector<sim::Injection> bad{{10 * U, 1, U}, {5 * U, 1, U}};
  EXPECT_THROW(ScriptedInjector{bad}, std::invalid_argument);
}

TEST(ScriptedInjector, DeliversAtScheduledSlotBoundaries) {
  std::vector<sim::Injection> script{{U / 2, 1, U}, {3 * U, 1, U}};
  sim::EngineConfig cfg;
  cfg.n = 1;
  cfg.bound_r = 1;
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(1);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("sync", 1, 1),
                std::make_unique<ScriptedInjector>(script));
  e.run(sim::until(2 * U));
  EXPECT_EQ(e.queue_size(1), 1u);  // mid-slot injection appeared
  e.run(sim::until(10 * U));
  EXPECT_EQ(e.queue_size(1), 2u);
}

TEST(DrainChasing, AlternatesAwayFromLastSuccess) {
  // Greedy stations + chasing injector: the injector must keep switching
  // targets, so both stations receive packets over time.
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 1;
  auto protocols = asyncmac::testing::make_protocols<testing::GreedyProtocol>(2);
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("sync", 2, 1),
                std::make_unique<DrainChasingInjector>(
                    util::Ratio(1, 2), 2 * U, 1, 2));
  e.run(sim::until(400 * U));
  EXPECT_GT(e.stats().station[0].injected, 10u);
  EXPECT_GT(e.stats().station[1].injected, 10u);
}

}  // namespace
}  // namespace asyncmac::adversary
