// Tests for the synchronous state-of-the-art baselines (Table I's R = 1
// column) and their breakdown under bounded asynchrony (R > 1), which is
// exactly the gap the paper's ARRoW protocols close.
#include <gtest/gtest.h>

#include <bit>

#include "adversary/injectors.h"
#include "baselines/aloha.h"
#include "baselines/listen.h"
#include "baselines/mbtf.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "baselines/sync_binary_le.h"
#include "baselines/tree_resolution.h"
#include "sim/engine.h"
#include "sim_helpers.h"

namespace asyncmac {
namespace {

using adversary::SaturatingInjector;
using adversary::TargetPattern;
using sim::Engine;
using sim::EngineConfig;

constexpr Tick U = kTicksPerUnit;

template <typename P>
std::unique_ptr<Engine> make_pt(std::uint32_t n, std::uint32_t R,
                                util::Ratio rho, Tick burst,
                                const std::string& policy,
                                std::uint64_t seed = 1) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = seed;
  auto protocols = asyncmac::testing::make_protocols<P>(n);
  return std::make_unique<Engine>(
      cfg, std::move(protocols),
      asyncmac::testing::make_slot_policy(policy, n, R, seed),
      std::make_unique<SaturatingInjector>(rho, burst,
                                           TargetPattern::kRoundRobin, 1,
                                           seed + 1));
}

// -------------------------------------------------------------------- RRW

TEST(Rrw, StableAndCollisionFreeAtR1) {
  for (int rho_pct : {50, 80, 95}) {
    auto e = make_pt<baselines::RrwProtocol>(4, 1, util::Ratio(rho_pct, 100),
                                             8 * U, "sync");
    e->run(sim::until(100000 * U));
    EXPECT_EQ(e->channel_stats().collided, 0u) << "rho%=" << rho_pct;
    EXPECT_EQ(e->channel_stats().control_transmissions, 0u);
    EXPECT_LT(e->stats().max_queued_cost, 2000 * U);
    EXPECT_GT(e->stats().delivered_packets,
              e->stats().injected_packets * 9 / 10);
  }
}

TEST(Rrw, AllStationsServedAtR1) {
  auto e = make_pt<baselines::RrwProtocol>(5, 1, util::Ratio(7, 10), 10 * U,
                                           "sync");
  e->run(sim::until(100000 * U));
  for (std::uint32_t i = 0; i < 5; ++i)
    EXPECT_GT(e->stats().station[i].delivered, 100u);
}

TEST(Rrw, BreaksUnderAsynchrony) {
  // With R = 2 and misaligned slots, RRW's silent-slot turn passing
  // diverges: collisions appear and/or queues blow up — the Table I
  // "Instability" row for the no-control collision-free model.
  auto e = make_pt<baselines::RrwProtocol>(4, 2, util::Ratio(1, 2), 8 * U,
                                           "perstation");
  e->run(sim::until(100000 * U));
  const bool collided = e->channel_stats().collided > 0;
  const bool unstable = e->stats().queued_cost > 1000 * U;
  EXPECT_TRUE(collided || unstable)
      << "RRW unexpectedly survived bounded asynchrony";
}

// ------------------------------------------------------------------- MBTF

TEST(Mbtf, StableAtR1) {
  for (int rho_pct : {50, 80}) {
    auto e = make_pt<baselines::MbtfProtocol>(4, 1, util::Ratio(rho_pct, 100),
                                              8 * U, "sync");
    e->run(sim::until(100000 * U));
    EXPECT_EQ(e->channel_stats().collided, 0u);
    EXPECT_LT(e->stats().max_queued_cost, 2000 * U) << "rho%=" << rho_pct;
    EXPECT_GT(e->stats().delivered_packets,
              e->stats().injected_packets * 9 / 10);
  }
}

TEST(Mbtf, HeavyStationMovesToFront) {
  // Saturate one station only; after its first big sequence it must sit
  // at the front of everyone's list.
  EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  auto protocols = asyncmac::testing::make_protocols<baselines::MbtfProtocol>(4);
  Engine e(cfg, std::move(protocols),
           asyncmac::testing::make_slot_policy("sync", 4, 1),
           std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 20 * U,
                                                TargetPattern::kSingle, 3));
  e.run(sim::until(200 * U));
  for (StationId id = 1; id <= 4; ++id) {
    const auto& p = dynamic_cast<const baselines::MbtfProtocol&>(
        e.protocol(id));
    ASSERT_FALSE(p.list().empty());
    EXPECT_EQ(p.list().front(), 3u) << "station " << id << "'s list";
  }
}

TEST(Mbtf, ListsStayConsistentAcrossStations) {
  auto e = make_pt<baselines::MbtfProtocol>(4, 1, util::Ratio(6, 10), 12 * U,
                                            "sync");
  e->run(sim::until(50000 * U));
  const auto& ref =
      dynamic_cast<const baselines::MbtfProtocol&>(e->protocol(1)).list();
  for (StationId id = 2; id <= 4; ++id)
    EXPECT_EQ(dynamic_cast<const baselines::MbtfProtocol&>(e->protocol(id))
                  .list(),
              ref);
}

// ------------------------------------------------------------------ ALOHA

TEST(Aloha, DeliversUnderLightLoad) {
  auto e = make_pt<baselines::SlottedAlohaProtocol>(
      4, 1, util::Ratio(1, 10), 4 * U, "sync");
  e->run(sim::until(100000 * U));
  EXPECT_GT(e->stats().delivered_packets,
            e->stats().injected_packets * 8 / 10);
}

TEST(Aloha, CollapsesUnderHeavyLoad) {
  // At rho = 0.8 slotted ALOHA (throughput <= 1/e) must diverge while the
  // deterministic protocols stay stable — the paper's intro comparison.
  auto e = make_pt<baselines::SlottedAlohaProtocol>(
      4, 1, util::Ratio(8, 10), 8 * U, "sync");
  e->run(sim::until(100000 * U));
  EXPECT_GT(e->stats().queued_packets, 1000u);
}

TEST(Aloha, CollidesButStillMakesProgress) {
  auto e = make_pt<baselines::SlottedAlohaProtocol>(
      3, 1, util::Ratio(2, 10), 4 * U, "sync");
  e->run(sim::until(50000 * U));
  EXPECT_GT(e->channel_stats().collided, 0u);
  EXPECT_GT(e->stats().delivered_packets, 100u);
}

// ------------------------------------------------------- silence-count TDMA

TEST(SilenceTdma, CollisionFreeAndPositiveRateAtR1) {
  auto e = make_pt<baselines::SilenceCountTdmaProtocol>(
      4, 1, util::Ratio(1, 10), 4 * U, "sync");
  e->run(sim::until(100000 * U));
  EXPECT_EQ(e->channel_stats().collided, 0u);
  EXPECT_EQ(e->channel_stats().control_transmissions, 0u);
  EXPECT_GT(e->stats().delivered_packets,
            e->stats().injected_packets * 8 / 10);
  EXPECT_LT(e->stats().queued_packets, 100u);
}

TEST(SilenceTdma, SeedSweepStaysCollisionFreeAtR1) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto e = make_pt<baselines::SilenceCountTdmaProtocol>(
        5, 1, util::Ratio(15, 100), 5 * U, "sync", seed);
    e->run(sim::until(30000 * U));
    ASSERT_EQ(e->channel_stats().collided, 0u) << "seed " << seed;
  }
}

// -------------------------------------------------------- sync binary LE

TEST(SyncBinaryLe, ElectsExactlyOneAtR1) {
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 16u, 64u, 200u}) {
    EngineConfig cfg;
    cfg.n = n;
    cfg.bound_r = 1;
    auto protocols =
        asyncmac::testing::make_protocols<baselines::SyncBinaryLeProtocol>(n);
    std::vector<StationId> everyone;
    for (StationId id = 1; id <= n; ++id) everyone.push_back(id);
    Engine e(cfg, std::move(protocols),
             asyncmac::testing::make_slot_policy("sync", n, 1),
             asyncmac::testing::sst_messages(everyone));
    sim::StopCondition stop;
    stop.max_time = 1000 * U;
    stop.predicate = [](const Engine& eng) {
      return eng.channel_stats().successful >= 1;
    };
    e.run(stop);
    e.run(sim::until(e.now()));  // drain same-timestamp events
    std::uint32_t winners = 0;
    std::uint64_t max_slots = 0;
    for (StationId id = 1; id <= n; ++id) {
      const auto& p = dynamic_cast<const baselines::SyncBinaryLeProtocol&>(
          e.protocol(id));
      winners += p.outcome() ==
                 baselines::SyncBinaryLeProtocol::Outcome::kWon;
      max_slots = std::max(max_slots, p.slots());
    }
    EXPECT_EQ(winners, 1u) << "n=" << n;
    // Theta(log n): at most bit_width(n) + 1 slots.
    EXPECT_LE(max_slots,
              static_cast<std::uint64_t>(std::bit_width(n)) + 1)
        << "n=" << n;
  }
}

// ------------------------------------------------------ tree resolution

TEST(TreeResolution, ElectsExactlyOneAtR1) {
  for (std::uint32_t n : {1u, 2u, 3u, 5u, 8u, 16u, 64u, 100u}) {
    EngineConfig cfg;
    cfg.n = n;
    cfg.bound_r = 1;
    auto protocols =
        asyncmac::testing::make_protocols<baselines::TreeResolutionProtocol>(
            n);
    std::vector<StationId> everyone;
    for (StationId id = 1; id <= n; ++id) everyone.push_back(id);
    Engine e(cfg, std::move(protocols),
             asyncmac::testing::make_slot_policy("sync", n, 1),
             asyncmac::testing::sst_messages(everyone));
    sim::StopCondition stop;
    stop.max_time = static_cast<Tick>(4 * n + 16) * U;
    stop.predicate = [](const Engine& eng) {
      return eng.channel_stats().successful >= 1;
    };
    e.run(stop);
    e.run(sim::until(e.now()));
    ASSERT_GE(e.channel_stats().successful, 1u) << "n=" << n;
    std::uint32_t winners = 0;
    std::uint64_t worst = 0;
    for (StationId id = 1; id <= n; ++id) {
      const auto* a =
          dynamic_cast<const baselines::TreeResolutionProtocol&>(
              e.protocol(id))
              .automaton();
      ASSERT_NE(a, nullptr);
      worst = std::max(worst, a->slots());
      winners += a->outcome() == core::LeaderElection::Outcome::kWon;
    }
    EXPECT_EQ(winners, 1u) << "n=" << n;
    // Splitting depth <= bit width: first success within ~width+1 slots.
    EXPECT_LE(worst, static_cast<std::uint64_t>(std::bit_width(n)) + 2)
        << "n=" << n;
  }
}

TEST(TreeResolution, SubsetContention) {
  // Only stations {3, 7} contend among 8.
  EngineConfig cfg;
  cfg.n = 8;
  cfg.bound_r = 1;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  for (StationId id = 1; id <= 8; ++id) {
    if (id == 3 || id == 7)
      ps.push_back(std::make_unique<baselines::TreeResolutionProtocol>());
    else
      ps.push_back(std::make_unique<baselines::ListenProtocol>());
  }
  Engine e(cfg, std::move(ps),
           asyncmac::testing::make_slot_policy("sync", 8, 1),
           asyncmac::testing::sst_messages({3, 7}));
  sim::StopCondition stop;
  stop.max_time = 100 * U;
  stop.predicate = [](const Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));
  std::uint32_t winners = 0;
  for (StationId id : {3u, 7u})
    winners += dynamic_cast<const baselines::TreeResolutionProtocol&>(
                   e.protocol(id))
                   .automaton()
                   ->outcome() == core::LeaderElection::Outcome::kWon;
  EXPECT_EQ(winners, 1u);
}

TEST(TreeResolution, SingleContenderWinsImmediately) {
  EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  ps.push_back(std::make_unique<baselines::TreeResolutionProtocol>());
  for (int i = 0; i < 3; ++i)
    ps.push_back(std::make_unique<baselines::ListenProtocol>());
  Engine e(cfg, std::move(ps),
           asyncmac::testing::make_slot_policy("sync", 4, 1),
           asyncmac::testing::sst_messages({1}));
  e.run(sim::until(3 * U));
  EXPECT_EQ(e.channel_stats().successful, 1u);
  EXPECT_EQ(e.stats().delivered_packets, 1u);
}

}  // namespace
}  // namespace asyncmac
