// Tests for the run-telemetry layer: registry instruments, JSONL export
// and its reader/summarizer, and the determinism guarantee (telemetry on
// vs off changes no RunStats, trace, or fuzz verdict byte).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "live/virtual_net.h"
#include "metrics/json.h"
#include "snapshot/checkpoint.h"
#include "sim/cohort_engine.h"
#include "sim/engine.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "telemetry/summary.h"
#include "trace/renderer.h"
#include "verify/campaign.h"

namespace asyncmac {
namespace {

// Telemetry state is process-global; every test that flips the switch
// restores "disabled, no exporter, zeroed instruments" on the way out so
// tests stay order-independent.
class ScopedTelemetry {
 public:
  ScopedTelemetry() { telemetry::set_enabled(true); }
  ~ScopedTelemetry() {
    telemetry::uninstall_exporter();
    telemetry::set_enabled(false);
    telemetry::Registry::global().reset_values();
  }
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------------ instruments

TEST(TelemetryRegistry, DisabledInstrumentsAreInert) {
  telemetry::set_enabled(false);
  auto& c = telemetry::Registry::global().counter("test.inert_counter");
  auto& g = telemetry::Registry::global().gauge("test.inert_gauge");
  auto& t = telemetry::Registry::global().timer("test.inert_timer");
  c.add(7);
  g.observe(42);
  t.record_ns(1000);
  { const telemetry::ScopeTimer scope(t); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(TelemetryRegistry, CounterAccumulatesWhenEnabled) {
  ScopedTelemetry on;
  auto& c = telemetry::Registry::global().counter("test.counter");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&c, &telemetry::Registry::global().counter("test.counter"));
}

TEST(TelemetryRegistry, GaugeKeepsHighWaterMark) {
  ScopedTelemetry on;
  auto& g = telemetry::Registry::global().gauge("test.gauge");
  g.observe(5);
  g.observe(3);
  g.observe(8);
  g.observe(8);
  EXPECT_EQ(g.value(), 8u);
}

TEST(TelemetryRegistry, TimerSummarizesSamples) {
  ScopedTelemetry on;
  auto& t = telemetry::Registry::global().timer("test.timer");
  for (std::int64_t ns : {100, 200, 300}) t.record_ns(ns);
  const util::Histogram h = t.snapshot();
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(TelemetryRegistry, SnapshotIsNameSortedAndComplete) {
  ScopedTelemetry on;
  telemetry::Registry::global().counter("test.snap_b").add(2);
  telemetry::Registry::global().counter("test.snap_a").add(1);
  telemetry::Registry::global().gauge("test.snap_gauge").observe(11);
  telemetry::Registry::global().timer("test.snap_timer").record_ns(50);

  const telemetry::Snapshot snap = telemetry::Registry::global().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);

  auto counter_value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    ADD_FAILURE() << name << " missing from snapshot";
    return 0;
  };
  EXPECT_EQ(counter_value("test.snap_a"), 1u);
  EXPECT_EQ(counter_value("test.snap_b"), 2u);

  bool timer_found = false;
  for (const auto& [n, stats] : snap.timers) {
    if (n != "test.snap_timer") continue;
    timer_found = true;
    EXPECT_EQ(stats.count, 1u);
    EXPECT_EQ(stats.min_ns, 50);
    EXPECT_EQ(stats.max_ns, 50);
  }
  EXPECT_TRUE(timer_found);
}

TEST(TelemetryRegistry, ResetValuesKeepsInstrumentAddresses) {
  ScopedTelemetry on;
  auto& c = telemetry::Registry::global().counter("test.reset_counter");
  c.add(3);
  telemetry::Registry::global().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &telemetry::Registry::global().counter("test.reset_counter"));
}

// ------------------------------------------------------------ JSON parser

TEST(TelemetryJson, ParsesScalarsAndNesting) {
  const auto v = telemetry::parse_json(
      R"({"a": 1, "b": -2.5, "c": "x\"y", "d": [true, false, null], "e": {"k": 9}})");
  ASSERT_EQ(v.kind, telemetry::JsonValue::Kind::kObject);
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->number, -2.5);
  EXPECT_EQ(v.find("c")->string, "x\"y");
  ASSERT_EQ(v.find("d")->array.size(), 3u);
  EXPECT_TRUE(v.find("d")->array[0].boolean);
  EXPECT_EQ(v.find("d")->array[2].kind, telemetry::JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("e")->find("k")->as_int(), 9);
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(TelemetryJson, DecodesUnicodeEscapes) {
  const auto v = telemetry::parse_json(R"({"s": "aé✓"})");
  EXPECT_EQ(v.find("s")->string, "a\xc3\xa9\xe2\x9c\x93");
}

TEST(TelemetryJson, RejectsMalformedInput) {
  EXPECT_THROW(telemetry::parse_json(""), std::invalid_argument);
  EXPECT_THROW(telemetry::parse_json("{"), std::invalid_argument);
  EXPECT_THROW(telemetry::parse_json("{} extra"), std::invalid_argument);
  EXPECT_THROW(telemetry::parse_json(R"({"a": 01})"), std::invalid_argument);
  EXPECT_THROW(telemetry::parse_json(R"({"a": "\x"})"),
               std::invalid_argument);
  EXPECT_THROW(telemetry::parse_json("[1, 2,]"), std::invalid_argument);
}

TEST(TelemetryJson, HugeIntegersFallBackToDouble) {
  const auto v = telemetry::parse_json(R"({"big": 99999999999999999999999})");
  EXPECT_EQ(v.find("big")->kind, telemetry::JsonValue::Kind::kDouble);
  EXPECT_GT(v.find("big")->number, 1e22);
}

TEST(TelemetryJson, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\n\t\x01"),
            "a\\\"b\\\\c\\n\\t\\u0001");
}

// ----------------------------------------------------------- JSONL export

TEST(TelemetryJsonl, RoundTripsThroughSummarizer) {
  ScopedTelemetry on;
  const std::string path = temp_path("telemetry_roundtrip.jsonl");
  telemetry::Registry::global().counter("test.rt_counter").add(21);
  {
    telemetry::JsonlExporter::Options opt;
    opt.path = path;
    opt.snapshot_period = std::chrono::milliseconds(0);  // no flusher
    auto exporter = std::make_unique<telemetry::JsonlExporter>(opt);
    ASSERT_TRUE(exporter->ok());
    telemetry::install_exporter(std::move(exporter));
    telemetry::emit("unit.event",
                    {{"i", std::int64_t{-3}},
                     {"u", std::uint64_t{7}},
                     {"d", 1.5},
                     {"flag", true},
                     {"s", std::string("quote\"newline\n")}});
    telemetry::emit("unit.event", {});
    telemetry::exporter()->snapshot_now("manual");
    telemetry::uninstall_exporter();  // appends the teardown snapshot
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto summary = telemetry::summarize_stream(in);
  EXPECT_EQ(summary.meta_lines, 1u);
  EXPECT_EQ(summary.events, 2u);
  EXPECT_EQ(summary.snapshots, 2u);
  EXPECT_EQ(summary.lines, 5u);
  EXPECT_EQ(summary.event_counts.at("unit.event"), 2u);

  bool found = false;
  for (const auto& [name, value] : summary.counters)
    if (name == "test.rt_counter") {
      found = true;
      EXPECT_EQ(value, 21u);
    }
  EXPECT_TRUE(found);

  const std::string rendered = telemetry::render_summary(summary);
  EXPECT_NE(rendered.find("test.rt_counter = 21"), std::string::npos);
  EXPECT_NE(rendered.find("unit.event x 2"), std::string::npos);

  std::remove(path.c_str());
}

TEST(TelemetryJsonl, EveryLineIsValidJsonWithKnownType) {
  ScopedTelemetry on;
  const std::string path = temp_path("telemetry_lines.jsonl");
  {
    telemetry::JsonlExporter::Options opt;
    opt.path = path;
    opt.snapshot_period = std::chrono::milliseconds(0);
    telemetry::install_exporter(
        std::make_unique<telemetry::JsonlExporter>(opt));
    telemetry::emit("lines.check", {{"n", std::int64_t{1}}});
    telemetry::uninstall_exporter();
  }
  std::istringstream in(read_file(path));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const auto v = telemetry::parse_json(line);
    ASSERT_EQ(v.kind, telemetry::JsonValue::Kind::kObject);
    const auto* type = v.find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_TRUE(type->string == "meta" || type->string == "event" ||
                type->string == "snapshot")
        << "unknown type: " << type->string;
  }
  EXPECT_GE(lines, 3u);  // meta + event + teardown snapshot
  std::remove(path.c_str());
}

TEST(TelemetryJsonl, SummarizerRejectsCorruptStreams) {
  std::istringstream not_json("{\"type\":\"meta\"}\nnot json at all\n");
  EXPECT_THROW(telemetry::summarize_stream(not_json), std::invalid_argument);
  std::istringstream bad_type("{\"type\":\"mystery\"}\n");
  EXPECT_THROW(telemetry::summarize_stream(bad_type), std::invalid_argument);
  std::istringstream no_type("{\"hello\": 1}\n");
  EXPECT_THROW(telemetry::summarize_stream(no_type), std::invalid_argument);
}

TEST(TelemetryJsonl, EmitWithoutExporterIsHarmless) {
  ScopedTelemetry on;
  telemetry::uninstall_exporter();
  telemetry::emit("void.event", {{"x", std::int64_t{1}}});  // must not crash
  EXPECT_EQ(telemetry::exporter(), nullptr);
}

// ------------------------------------------------------------ determinism

struct RunArtifacts {
  std::string stats_json;
  std::string schedule;
};

RunArtifacts run_instrumented_sim(const std::string& protocol,
                                  std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 2;
  cfg.seed = seed;
  cfg.record_trace = true;
  sim::Engine engine(
      cfg, analysis::make_protocols(protocol, cfg.n),
      adversary::make_slot_policy("perstation", cfg.n, cfg.bound_r, seed),
      std::make_unique<adversary::SaturatingInjector>(
          util::Ratio(3, 5), 8 * kTicksPerUnit,
          adversary::TargetPattern::kRoundRobin, 1, seed + 1));
  engine.run(sim::until(2000 * kTicksPerUnit));

  RunArtifacts out;
  out.stats_json = metrics::to_json(engine.stats(), &engine.channel_stats());
  trace::RenderOptions r;
  r.to = 200 * kTicksPerUnit;
  out.schedule = trace::render_schedule(engine.trace().slots(), r);
  return out;
}

TEST(TelemetryDeterminism, RunStatsAndTraceAreByteIdentical) {
  telemetry::set_enabled(false);
  const RunArtifacts off_ao = run_instrumented_sim("ao-arrow", 11);
  const RunArtifacts off_ca = run_instrumented_sim("ca-arrow", 11);

  const std::string path = temp_path("telemetry_determinism.jsonl");
  RunArtifacts on_ao, on_ca;
  {
    ScopedTelemetry on;
    ASSERT_TRUE(telemetry::enable_to_file(path));
    on_ao = run_instrumented_sim("ao-arrow", 11);
    on_ca = run_instrumented_sim("ca-arrow", 11);
  }

  EXPECT_EQ(off_ao.stats_json, on_ao.stats_json);
  EXPECT_EQ(off_ao.schedule, on_ao.schedule);
  EXPECT_EQ(off_ca.stats_json, on_ca.stats_json);
  EXPECT_EQ(off_ca.schedule, on_ca.schedule);

  // And the run did actually record telemetry (the guarantee is "write
  // only", not "write nothing").
  std::ifstream in(path);
  const auto summary = telemetry::summarize_stream(in);
  bool saw_slots = false;
  for (const auto& [name, value] : summary.counters)
    if (name == "engine.slots") saw_slots = value > 0;
  EXPECT_TRUE(saw_slots);
  std::remove(path.c_str());
}

RunArtifacts run_memo_sim(std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  cfg.seed = seed;
  cfg.record_trace = true;
  // Synchronous slots: every station polls feedback over the same [s, t)
  // window, so each slot is one ledger memo miss followed by n - 1 hits —
  // the repeat-query memo's home turf.
  sim::Engine engine(
      cfg, analysis::make_protocols("ca-arrow", cfg.n),
      adversary::make_slot_policy("sync", cfg.n, cfg.bound_r, seed),
      std::make_unique<adversary::SaturatingInjector>(
          util::Ratio(1, 2), 8 * kTicksPerUnit,
          adversary::TargetPattern::kRoundRobin, 1, seed + 1));
  engine.run(sim::until(1000 * kTicksPerUnit));

  RunArtifacts out;
  out.stats_json = metrics::to_json(engine.stats(), &engine.channel_stats());
  trace::RenderOptions r;
  r.to = 200 * kTicksPerUnit;
  out.schedule = trace::render_schedule(engine.trace().slots(), r);
  return out;
}

// The ledger's repeat-query memo counters (channel.memo_hits /
// channel.memo_misses) are write-only like every other instrument:
// telemetry on vs off changes no result byte, and a synchronous run —
// where all n stations query the same slot window — records both.
TEST(TelemetryDeterminism, MemoCountersAreWriteOnlyAndRecorded) {
  telemetry::set_enabled(false);
  const RunArtifacts off = run_memo_sim(23);

  const std::string path = temp_path("telemetry_memo_determinism.jsonl");
  RunArtifacts on;
  {
    ScopedTelemetry enabled;
    ASSERT_TRUE(telemetry::enable_to_file(path));
    on = run_memo_sim(23);
  }

  EXPECT_EQ(off.stats_json, on.stats_json);
  EXPECT_EQ(off.schedule, on.schedule);

  std::ifstream in(path);
  const auto summary = telemetry::summarize_stream(in);
  std::uint64_t hits = 0, misses = 0, queries = 0;
  for (const auto& [name, value] : summary.counters) {
    if (name == "channel.memo_hits") hits = value;
    if (name == "channel.memo_misses") misses = value;
    if (name == "channel.feedback_queries") queries = value;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
  // Every non-fast-path query is exactly one hit or one miss, never both.
  EXPECT_LE(hits + misses, queries);
  std::remove(path.c_str());
}

RunArtifacts run_instrumented_live(std::uint64_t seed) {
  snapshot::RunSpec spec;
  spec.protocol = "ca-arrow";
  spec.n = 3;
  spec.bound_r = 2;
  spec.slot_policy = "perstation";
  spec.has_injector = true;
  spec.injector.kind = "saturating";
  spec.injector.rho = util::Ratio(3, 5);
  spec.injector.burst_ticks = 8 * kTicksPerUnit;
  spec.injector.pattern = "roundrobin";
  spec.injector.seed = seed + 1;
  spec.seed = seed;
  spec.horizon_units = 400;
  spec.record_trace = true;

  const live::VirtualRunReport rep = live::run_virtual(spec);
  RunArtifacts out;
  out.stats_json = metrics::to_json(rep.stats, &rep.channel);
  trace::RenderOptions r;
  r.to = 200 * kTicksPerUnit;
  out.schedule = trace::render_schedule(rep.trace, r);
  return out;
}

TEST(TelemetryDeterminism, LiveStackIsByteIdenticalAndInstrumented) {
  telemetry::set_enabled(false);
  const RunArtifacts off = run_instrumented_live(11);

  const std::string path = temp_path("telemetry_live_determinism.jsonl");
  RunArtifacts on;
  {
    ScopedTelemetry enabled;
    ASSERT_TRUE(telemetry::enable_to_file(path));
    on = run_instrumented_live(11);
  }

  // Telemetry on vs off changes no result byte: same stats JSON, same
  // rendered schedule (the live.* instruments are write-only).
  EXPECT_EQ(off.stats_json, on.stats_json);
  EXPECT_EQ(off.schedule, on.schedule);

  // And the live instruments did record: datagrams flowed both ways and
  // the virtual clock never fired a slot timer off its granted end.
  std::ifstream in(path);
  const auto summary = telemetry::summarize_stream(in);
  std::uint64_t rx = 0, tx = 0, late = 0, retransmits = 0;
  for (const auto& [name, value] : summary.counters) {
    if (name == "live.datagrams_rx") rx = value;
    if (name == "live.datagrams_tx") tx = value;
    if (name == "live.late_packets") late = value;
    if (name == "live.retransmits") retransmits = value;
  }
  EXPECT_GT(rx, 0u);
  EXPECT_GT(tx, 0u);
  EXPECT_EQ(late, 0u);         // zero knobs: nothing arrives stale
  EXPECT_EQ(retransmits, 0u);  // zero knobs: every reply arrives
  bool drift_seen = false;
  std::uint64_t drift = 1;
  for (const auto& [name, value] : summary.gauges)
    if (name == "live.slot_timer_drift") {
      drift_seen = true;
      drift = value;
    }
  EXPECT_TRUE(drift_seen);
  EXPECT_EQ(drift, 0u);  // virtual clock: arrivals exactly on the grant
  std::remove(path.c_str());
}

TEST(TelemetryDeterminism, FuzzVerdictsAreByteIdentical) {
  verify::CampaignConfig cfg;
  cfg.seed = 5;
  cfg.cases = 48;
  cfg.jobs = 2;

  telemetry::set_enabled(false);
  const std::string off = verify::summarize(verify::run_campaign(cfg));

  const std::string path = temp_path("telemetry_fuzz_determinism.jsonl");
  std::string on_summary;
  {
    ScopedTelemetry on;
    ASSERT_TRUE(telemetry::enable_to_file(path));
    on_summary = verify::summarize(verify::run_campaign(cfg));
  }
  EXPECT_EQ(off, on_summary);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- cohort

/// One lockstep-eligible lane (ca-arrow + fixed-length slots) for the
/// cohort counter test.
sim::LaneBuilder cohort_lane(std::uint64_t seed) {
  return [seed] {
    sim::LaneMaterials m;
    m.cfg.n = 4;
    m.cfg.bound_r = 1;
    m.cfg.seed = seed;
    m.protocols = analysis::make_protocols("ca-arrow", m.cfg.n);
    m.slot_policy = adversary::make_slot_policy("sync", m.cfg.n, 1, 1);
    return m;
  };
}

TEST(TelemetryCohort, CountsBatchesRetirementsAndDetaches) {
  ScopedTelemetry on;
  const auto& batches = telemetry::Registry::global().counter("cohort.batches");
  const auto& detaches =
      telemetry::Registry::global().counter("cohort.detaches");
  const auto& retired =
      telemetry::Registry::global().counter("cohort.lanes_retired");

  const std::size_t kLanes = 3;
  {
    std::vector<sim::LaneBuilder> builders;
    for (std::size_t k = 0; k < kLanes; ++k)
      builders.push_back(cohort_lane(11 + 37 * k));
    sim::CohortEngine cohort(std::move(builders));
    ASSERT_TRUE(cohort.lockstep());

    // First run: all lanes advance in lockstep to the horizon and retire.
    cohort.run(sim::until(500 * kTicksPerUnit));
    // Second run with a later horizon: each retired lane must detach to a
    // scalar engine to advance past the frozen shared schedule.
    cohort.run(sim::until(1000 * kTicksPerUnit));
  }  // destructor flushes the batched deltas

  EXPECT_GT(batches.value(), 0u);           // shared events were processed
  EXPECT_EQ(retired.value(), kLanes);       // every lane hit the first stop
  EXPECT_EQ(detaches.value(), kLanes);      // every lane detached on rerun
}

}  // namespace
}  // namespace asyncmac
