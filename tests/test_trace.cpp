// Tests for the trace recorder and the Fig.-2-style ASCII schedule
// renderer.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "core/abs.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "test_protocols.h"
#include "trace/recorder.h"
#include "trace/renderer.h"

namespace asyncmac {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(Recorder, StoresAndFiltersPerStation) {
  trace::Recorder rec;
  rec.record({1, 1, 0, U, SlotAction::kListen, Feedback::kSilence});
  rec.record({2, 1, 0, 2 * U, SlotAction::kTransmitPacket, Feedback::kAck});
  rec.record({1, 2, U, 2 * U, SlotAction::kListen, Feedback::kAck});
  EXPECT_EQ(rec.slots().size(), 3u);
  EXPECT_EQ(rec.station_slots(1).size(), 2u);
  EXPECT_EQ(rec.station_slots(2).size(), 1u);
  EXPECT_EQ(rec.station_slots(1)[1].index, 2u);
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

TEST(Renderer, EmptyTrace) {
  EXPECT_EQ(trace::render_schedule({}), "(empty trace)\n");
}

TEST(Renderer, MarksActionsAndFeedback) {
  std::vector<trace::SlotRecord> slots{
      {1, 1, 0, U, SlotAction::kListen, Feedback::kSilence},
      {1, 2, U, 2 * U, SlotAction::kTransmitPacket, Feedback::kAck},
      {2, 1, 0, 2 * U, SlotAction::kTransmitControl, Feedback::kBusy},
  };
  const std::string out = trace::render_schedule(slots);
  EXPECT_NE(out.find("station 1"), std::string::npos);
  EXPECT_NE(out.find("station 2"), std::string::npos);
  EXPECT_NE(out.find('T'), std::string::npos);
  EXPECT_NE(out.find('C'), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(Renderer, WindowClipping) {
  std::vector<trace::SlotRecord> slots{
      {1, 1, 0, U, SlotAction::kListen, Feedback::kSilence},
      {1, 2, 100 * U, 101 * U, SlotAction::kListen, Feedback::kSilence},
  };
  trace::RenderOptions opt;
  opt.from = 50 * U;
  opt.to = 99 * U;
  const std::string out = trace::render_schedule(slots, opt);
  EXPECT_EQ(out.find('|'), std::string::npos);  // both slots clipped out
}

TEST(Renderer, WidthCapRespected) {
  std::vector<trace::SlotRecord> slots;
  for (int i = 0; i < 500; ++i)
    slots.push_back({1, static_cast<SlotIndex>(i + 1),
                     static_cast<Tick>(i) * U, static_cast<Tick>(i + 1) * U,
                     SlotAction::kListen, Feedback::kSilence});
  trace::RenderOptions opt;
  opt.max_width = 100;
  const std::string out = trace::render_schedule(slots, opt);
  std::size_t pos = 0, prev = 0;
  while ((pos = out.find('\n', prev)) != std::string::npos) {
    EXPECT_LE(pos - prev, 120u);
    prev = pos + 1;
  }
}

TEST(Renderer, EndToEndFromEngineTrace) {
  // Render a real ABS election and eyeball the invariants: some
  // transmission marks, exactly one ack on the winning slot row.
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 2;
  cfg.record_trace = true;
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.push_back(std::make_unique<core::AbsProtocol>());
  protocols.push_back(std::make_unique<core::AbsProtocol>());
  sim::Engine e(cfg, std::move(protocols),
                asyncmac::testing::make_slot_policy("perstation", 2, 2),
                asyncmac::testing::sst_messages({1, 2}));
  sim::StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  const std::string out = trace::render_schedule(e.trace().slots());
  EXPECT_NE(out.find('T'), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
}

}  // namespace
}  // namespace asyncmac
