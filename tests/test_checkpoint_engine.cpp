// The determinism contract of engine checkpoint/resume
// (snapshot/checkpoint.h): kill a run at an arbitrary slot, write a
// checkpoint file, rebuild from it in a fresh engine, continue — the
// trace and RunStats of the resumed run must be byte-identical to the
// uninterrupted one. Pinned across the full engine-golden corpus (every
// hot-loop path), generated fuzz scenarios, and a chained double-resume;
// plus RunSpec round-trip, AutoSaver retention and the typed mismatch /
// corruption errors of the decode path.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "engine_golden_cases.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "snapshot/checkpoint.h"
#include "trace/serialize.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using snapshot::ErrorKind;
using snapshot::RunSpec;
using snapshot::SnapshotError;

/// Map a golden-corpus case to the declarative RunSpec the checkpoint
/// subsystem uses (the corpus runs with trace + delivery recording on).
RunSpec spec_from_golden(const testing::EngineGoldenCase& c) {
  RunSpec spec;
  spec.protocol = c.protocol;
  spec.n = c.n;
  spec.bound_r = c.bound_r;
  spec.slot_policy = c.slot_policy;
  spec.has_injector = !c.no_injector;
  spec.injector = c.injector;
  spec.seed = c.seed;
  spec.horizon_units = c.horizon_units;
  spec.record_trace = true;
  spec.record_deliveries = true;
  return spec;
}

/// Map a fuzz scenario the same way (verify engines record the trace and
/// keep the full channel history for the differential oracle).
RunSpec spec_from_scenario(const verify::Scenario& s) {
  RunSpec spec;
  spec.protocol = s.protocol;
  spec.n = s.n;
  spec.bound_r = s.bound_r;
  spec.slot_policy = s.slot_policy;
  spec.has_injector = true;
  spec.injector = s.injector;
  spec.seed = s.seed;
  spec.horizon_units = s.horizon_units;
  spec.record_trace = true;
  spec.keep_channel_history = true;
  spec.restrained_k = s.restrained_k;
  spec.restrained_jam = s.restrained_jam;
  spec.energy_enabled = s.energy_enabled;
  spec.energy_cost_transmit = s.energy_cost_transmit;
  spec.energy_cost_listen = s.energy_cost_listen;
  spec.energy_cost_sleep = s.energy_cost_sleep;
  return spec;
}

/// The full observable artifact of a run: serialized trace + stats JSON.
std::string render(const RunSpec& spec, const sim::Engine& engine) {
  std::string out = trace::serialize_trace({spec.n, spec.bound_r},
                                           engine.trace().slots());
  out += metrics::to_json(engine.stats(), &engine.channel_stats());
  return out;
}

std::string run_uninterrupted(const RunSpec& spec) {
  auto engine = snapshot::build_engine(spec);
  engine->run(sim::until(spec.horizon_units * kTicksPerUnit));
  return render(spec, *engine);
}

/// Run to `kill_slots` processed events, checkpoint to disk, drop the
/// engine, resume from the file and finish the run.
std::string run_killed_and_resumed(const RunSpec& spec,
                                   std::uint64_t kill_slots,
                                   const std::string& path) {
  {
    auto engine = snapshot::build_engine(spec);
    // Cap by event count AND horizon so an oversized kill point degrades
    // into "checkpoint at the end" instead of running past the horizon.
    sim::StopCondition stop = sim::until(spec.horizon_units * kTicksPerUnit);
    stop.max_total_slots = kill_slots;
    engine->run(stop);
    snapshot::write_checkpoint(path, spec, *engine);
  }
  snapshot::ResumedRun run = snapshot::resume_checkpoint(path);
  EXPECT_EQ(run.spec, spec);
  run.engine->run(sim::until(spec.horizon_units * kTicksPerUnit));
  return render(spec, *run.engine);
}

TEST(CheckpointEngine, GoldenCorpusResumesByteIdentical) {
  for (const auto& c : testing::engine_golden_cases()) {
    const RunSpec spec = spec_from_golden(c);
    const std::string control = run_uninterrupted(spec);
    ASSERT_EQ(run_uninterrupted(spec), control) << c.name;

    // Kill early and late — both segments must splice invisibly.
    for (const std::uint64_t kill : {std::uint64_t{17}, std::uint64_t{211}}) {
      const std::string path = "ckpt_engine_" + c.name + ".snap";
      EXPECT_EQ(run_killed_and_resumed(spec, kill, path), control)
          << c.name << " killed at " << kill;
    }
  }
}

TEST(CheckpointEngine, GoldenCorpusMatchesDirectConstruction) {
  // snapshot::build_engine goes through the same registries as the golden
  // generator; the artifacts must agree byte-for-byte.
  for (const auto& c : testing::engine_golden_cases()) {
    const RunSpec spec = spec_from_golden(c);
    EXPECT_EQ(run_uninterrupted(spec) + "\n",
              testing::run_engine_golden_case(c))
        << c.name;
  }
}

TEST(CheckpointEngine, GeneratedScenariosResumeByteIdentical) {
  // Fuzz-generated scenarios reach protocol/policy/injector combinations
  // the curated corpus does not; resume must hold there too.
  const verify::ScenarioGen gen(20260805);
  int tested = 0;
  for (std::uint64_t i = 0; tested < 3 && i < 32; ++i) {
    verify::Scenario s = gen.generate(i);
    if (s.horizon_units > 400) continue;  // keep the test cheap
    const RunSpec spec = spec_from_scenario(s);
    const std::string control = run_uninterrupted(spec);
    const std::string path =
        "ckpt_scenario_" + std::to_string(i) + ".snap";
    EXPECT_EQ(run_killed_and_resumed(spec, 29, path), control)
        << s.describe();
    ++tested;
  }
  EXPECT_EQ(tested, 3);
}

TEST(CheckpointEngine, ChainedResumeStaysIdentical) {
  // Resume, run a bit, checkpoint again, resume again: determinism must
  // survive arbitrarily many kill points in one lineage.
  const RunSpec spec = spec_from_golden(testing::engine_golden_cases()[0]);
  const std::string control = run_uninterrupted(spec);

  const std::string p1 = "ckpt_chain_1.snap";
  const std::string p2 = "ckpt_chain_2.snap";
  {
    auto engine = snapshot::build_engine(spec);
    sim::StopCondition stop = sim::until(spec.horizon_units * kTicksPerUnit);
    stop.max_total_slots = 40;
    engine->run(stop);
    snapshot::write_checkpoint(p1, spec, *engine);
  }
  {
    snapshot::ResumedRun mid = snapshot::resume_checkpoint(p1);
    sim::StopCondition stop = sim::until(spec.horizon_units * kTicksPerUnit);
    stop.max_total_slots = 160;  // cumulative: 120 further events
    mid.engine->run(stop);
    snapshot::write_checkpoint(p2, mid.spec, *mid.engine);
  }
  snapshot::ResumedRun last = snapshot::resume_checkpoint(p2);
  last.engine->run(sim::until(spec.horizon_units * kTicksPerUnit));
  EXPECT_EQ(render(spec, *last.engine), control);
}

TEST(CheckpointEngine, RunSpecRoundTrip) {
  RunSpec spec = spec_from_golden(testing::engine_golden_cases()[1]);
  spec.checkpoint_interval = 4096;
  spec.allow_control = false;
  spec.prune_interval = 123;
  snapshot::Writer w;
  snapshot::save_run_spec(w, spec);
  snapshot::Reader r(w.buffer());
  EXPECT_EQ(snapshot::load_run_spec(r), spec);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(CheckpointEngine, AutoSaverRotatesWithBoundedRetention) {
  RunSpec spec = spec_from_golden(testing::engine_golden_cases()[0]);
  spec.checkpoint_interval = 50;
  const std::string dir = "ckpt_retention_dir";
  std::filesystem::remove_all(dir);

  auto saver = std::make_shared<snapshot::AutoSaver>(dir, spec, 2);
  EXPECT_EQ(saver->latest(), "");
  auto engine = snapshot::build_engine(spec);
  engine->set_checkpoint_sink(
      [saver](const sim::Engine& e) { (*saver)(e); });
  engine->run(sim::until(spec.horizon_units * kTicksPerUnit));

  // Many autosaves fired, but only `retention` files remain — the oldest
  // were removed, and files() lists survivors oldest-first.
  ASSERT_EQ(saver->files().size(), 2u);
  EXPECT_LT(saver->files()[0], saver->files()[1]);
  EXPECT_EQ(saver->latest(), saver->files()[1]);
  std::size_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".snap");
    ++on_disk;
  }
  EXPECT_EQ(on_disk, 2u);

  // The newest survivor must resume cleanly.
  snapshot::ResumedRun run = snapshot::resume_checkpoint(saver->latest());
  EXPECT_EQ(run.spec, spec);
}

TEST(CheckpointEngine, LoadIntoDifferentConfigurationIsMismatch) {
  const RunSpec spec = spec_from_golden(testing::engine_golden_cases()[0]);
  auto engine = snapshot::build_engine(spec);
  sim::StopCondition stop;
  stop.max_total_slots = 25;
  engine->run(stop);
  snapshot::Writer w;
  engine->save_state(w);

  RunSpec other = spec;
  other.n = spec.n + 1;
  auto victim = snapshot::build_engine(other);
  snapshot::Reader r(w.buffer());
  try {
    victim->load_state(r);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }
}

TEST(CheckpointEngine, DecodeRejectsUnknownProtocolAndTrailingBytes) {
  const RunSpec spec = spec_from_golden(testing::engine_golden_cases()[0]);
  auto engine = snapshot::build_engine(spec);
  engine->run(sim::until(10 * kTicksPerUnit));

  // Unknown registry name: the snapshot came from a binary shipping
  // protocols this one does not.
  RunSpec alien = spec;
  alien.protocol = "carrier-pigeon";
  auto payload = snapshot::encode_checkpoint(alien, *engine);
  try {
    snapshot::decode_checkpoint(payload);
    FAIL() << "expected SnapshotError(kMismatch)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kMismatch) << e.what();
  }

  // Trailing garbage after a valid engine state: schema drift, kCorrupt.
  payload = snapshot::encode_checkpoint(spec, *engine);
  payload.push_back(0);
  try {
    snapshot::decode_checkpoint(payload);
    FAIL() << "expected SnapshotError(kCorrupt)";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt) << e.what();
  }
}

}  // namespace
}  // namespace asyncmac
