// Unit tests for the channel model: exact overlap semantics, success
// finalization, the ack/busy/silence feedback truth table (Section II),
// pruning and statistics.
#include <gtest/gtest.h>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "util/types.h"

namespace asyncmac::channel {
namespace {

constexpr Tick U = kTicksPerUnit;

Transmission tx(StationId s, Tick begin, Tick end, bool control = false) {
  Transmission t;
  t.station = s;
  t.begin = begin;
  t.end = end;
  t.is_control = control;
  return t;
}

// ---------------------------------------------------------------- overlap

TEST(Overlap, ProperOverlap) {
  EXPECT_TRUE(intervals_overlap(0, 10, 5, 15));
  EXPECT_TRUE(intervals_overlap(5, 15, 0, 10));
  EXPECT_TRUE(intervals_overlap(0, 10, 2, 8));  // containment
}

TEST(Overlap, TouchingEndpointsDoNotOverlap) {
  EXPECT_FALSE(intervals_overlap(0, 10, 10, 20));
  EXPECT_FALSE(intervals_overlap(10, 20, 0, 10));
}

TEST(Overlap, DisjointIntervals) {
  EXPECT_FALSE(intervals_overlap(0, 10, 11, 20));
}

// --------------------------------------------------------------- feedback

TEST(Ledger, SilenceWhenNothingTransmitted) {
  Ledger ledger;
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kSilence);
}

TEST(Ledger, LoneTransmissionAcksItsOwnSlot) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  // The transmitter's slot [0, U): its own success ends inside -> ack.
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kAck);
}

TEST(Ledger, ListenerHearsAckWhenSuccessEndsInsideItsSlot) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  // Listener slot [0, 2U) contains the end at U -> ack.
  EXPECT_EQ(ledger.feedback(0, 2 * U), Feedback::kAck);
}

TEST(Ledger, EndExactlyAtSlotEndCountsAsInThatSlot) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  // Listener slot [0, U): end at U is charged to (0, U] -> ack.
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kAck);
  // Next slot [U, 2U): the end at U belongs to the previous slot.
  EXPECT_EQ(ledger.feedback(U, 2 * U), Feedback::kSilence);
}

TEST(Ledger, BusyWhileTransmissionOngoing) {
  Ledger ledger;
  ledger.add(tx(1, 0, 3 * U));
  // A slot that overlaps but does not contain the end -> busy.
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kBusy);
  EXPECT_EQ(ledger.feedback(U, 2 * U), Feedback::kBusy);
  // The slot containing the end gets the ack.
  EXPECT_EQ(ledger.feedback(2 * U, 3 * U), Feedback::kAck);
}

TEST(Ledger, CollisionGivesBusyNotAck) {
  Ledger ledger;
  ledger.add(tx(1, 0, 2 * U));
  ledger.add(tx(2, U, 3 * U));
  // Both transmissions overlap: no ack anywhere.
  EXPECT_EQ(ledger.feedback(0, 2 * U), Feedback::kBusy);   // tx1's slot
  EXPECT_EQ(ledger.feedback(U, 3 * U), Feedback::kBusy);   // tx2's slot
  EXPECT_EQ(ledger.feedback(0, 4 * U), Feedback::kBusy);   // observer
  EXPECT_EQ(ledger.stats().collided, 2u);
  EXPECT_EQ(ledger.stats().successful, 0u);
}

TEST(Ledger, BackToBackTransmissionsBothSucceed) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  ledger.add(tx(2, U, 2 * U));
  ledger.finalize_until(2 * U);
  EXPECT_EQ(ledger.stats().successful, 2u);
  EXPECT_EQ(ledger.stats().collided, 0u);
  // A slot covering both ends still reports ack.
  EXPECT_EQ(ledger.feedback(0, 2 * U), Feedback::kAck);
}

TEST(Ledger, AckDominatesBusyInMixedSlot) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));          // successful, ends at U
  ledger.add(tx(2, 2 * U, 4 * U));  // collides with tx3
  ledger.add(tx(3, 3 * U, 5 * U));
  // Observer slot [0, 5U): a successful transmission ended inside -> ack
  // takes precedence over the later collision noise.
  EXPECT_EQ(ledger.feedback(0, 5 * U), Feedback::kAck);
}

TEST(Ledger, SilenceBetweenTransmissions) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  ledger.add(tx(2, 5 * U, 6 * U));
  EXPECT_EQ(ledger.feedback(2 * U, 3 * U), Feedback::kSilence);
}

TEST(Ledger, TransmissionStartingAtSlotEndDoesNotAffectIt) {
  Ledger ledger;
  ledger.add(tx(1, U, 2 * U));
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kSilence);
}

// ------------------------------------------------------- success decision

TEST(Ledger, SuccessDecidableAtEndDespiteLaterQueries) {
  Ledger ledger;
  ledger.add(tx(1, 0, 2 * U));
  ledger.finalize_until(2 * U);
  EXPECT_TRUE(ledger.transmission_successful(1, 2 * U));
  // A transmission starting exactly at the end does not change that.
  ledger.add(tx(2, 2 * U, 3 * U));
  ledger.finalize_until(3 * U);
  EXPECT_TRUE(ledger.transmission_successful(1, 2 * U));
  EXPECT_TRUE(ledger.transmission_successful(2, 3 * U));
}

TEST(Ledger, NestedTransmissionCollidesBoth) {
  Ledger ledger;
  ledger.add(tx(1, 0, 10 * U));
  ledger.add(tx(2, 4 * U, 5 * U));
  ledger.finalize_until(10 * U);
  EXPECT_FALSE(ledger.transmission_successful(1, 10 * U));
  EXPECT_FALSE(ledger.transmission_successful(2, 5 * U));
}

TEST(Ledger, ThreeWayCollision) {
  Ledger ledger;
  ledger.add(tx(1, 0, 3 * U));
  ledger.add(tx(2, U, 4 * U));
  ledger.add(tx(3, 2 * U, 5 * U));
  ledger.finalize_until(5 * U);
  EXPECT_EQ(ledger.stats().collided, 3u);
}

TEST(Ledger, ChainOfPairwiseOverlapsAllFail) {
  Ledger ledger;
  // 1 overlaps 2, 2 overlaps 3, but 1 and 3 are disjoint: still all fail
  // because success requires no overlap with ANY transmission.
  ledger.add(tx(1, 0, 2 * U));
  ledger.add(tx(2, U, 4 * U));
  ledger.add(tx(3, 3 * U, 5 * U));
  ledger.finalize_until(5 * U);
  EXPECT_EQ(ledger.stats().collided, 3u);
  EXPECT_EQ(ledger.stats().successful, 0u);
}

// ------------------------------------------------------------------ stats

TEST(Ledger, StatsDistinguishControlFromPackets) {
  Ledger ledger;
  ledger.add(tx(1, 0, U, /*control=*/true));
  ledger.add(tx(2, 2 * U, 4 * U, /*control=*/false));
  ledger.finalize_until(4 * U);
  const auto& s = ledger.stats();
  EXPECT_EQ(s.transmissions, 2u);
  EXPECT_EQ(s.control_transmissions, 1u);
  EXPECT_EQ(s.successful, 2u);
  EXPECT_EQ(s.successful_packets, 1u);
  EXPECT_EQ(s.successful_packet_time, 2 * U);
  EXPECT_EQ(s.successful_control_time, U);
}

TEST(Ledger, StatsSurvivePruning) {
  Ledger ledger;
  for (int i = 0; i < 10; ++i)
    ledger.add(tx(1, 2 * i * U, (2 * i + 1) * U));
  ledger.finalize_until(100 * U);
  ledger.prune_before(100 * U);
  EXPECT_TRUE(ledger.window().empty());
  EXPECT_EQ(ledger.stats().successful, 10u);
  EXPECT_EQ(ledger.stats().successful_packet_time, 10 * U);
}

TEST(Ledger, HistoryRetainedWhenRequested) {
  Ledger ledger(/*keep_history=*/true);
  ledger.add(tx(1, 0, U));
  ledger.add(tx(2, 2 * U, 3 * U));
  ledger.finalize_until(3 * U);
  ledger.prune_before(3 * U);
  EXPECT_EQ(ledger.full_history().size(), 2u);
  EXPECT_TRUE(ledger.full_history()[0].successful);
}

TEST(Ledger, PruneKeepsUndecidedTransmissions) {
  Ledger ledger;
  ledger.add(tx(1, 0, 10 * U));  // still in flight at horizon 5U
  ledger.prune_before(5 * U);
  EXPECT_EQ(ledger.window().size(), 1u);
}

// ------------------------------------------------------------- invariants

TEST(Ledger, RejectsOutOfOrderBegins) {
  Ledger ledger;
  ledger.add(tx(1, 5 * U, 6 * U));
  EXPECT_THROW(ledger.add(tx(2, 4 * U, 7 * U)), std::logic_error);
}

TEST(Ledger, RejectsEmptyInterval) {
  Ledger ledger;
  EXPECT_THROW(ledger.add(tx(1, U, U)), std::logic_error);
}

TEST(Ledger, RejectsInvalidStation) {
  Ledger ledger;
  EXPECT_THROW(ledger.add(tx(kInvalidStation, 0, U)), std::logic_error);
}

TEST(Ledger, LatestEndTracksMaximum) {
  Ledger ledger;
  ledger.add(tx(1, 0, 5 * U));
  ledger.add(tx(2, U, 2 * U));
  EXPECT_EQ(ledger.latest_end(), 5 * U);
}

TEST(Ledger, EqualBeginTransmissionsCollide) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  ledger.add(tx(2, 0, 2 * U));
  ledger.finalize_until(2 * U);
  EXPECT_EQ(ledger.stats().collided, 2u);
}

TEST(Ledger, IdenticalIntervalDifferentStationsCollide) {
  Ledger ledger;
  ledger.add(tx(1, 0, U));
  ledger.add(tx(2, 0, U));
  ledger.finalize_until(U);
  EXPECT_EQ(ledger.stats().collided, 2u);
  EXPECT_EQ(ledger.feedback(0, U), Feedback::kBusy);
}

}  // namespace
}  // namespace asyncmac::channel
