// Bad-usage argv matrix for asyncmac_cli: every subcommand, fed
// malformed / overflowing / empty / non-finite numeric values, must exit
// with the usage status (2) and a usage message — never std::terminate
// on an uncaught std::sto* exception, and never silently accept trailing
// garbage ("--n=8x") or wrap on u32 overflow ("--r=4294967297").
//
// The tests spawn the real binary (path injected via ASYNCMAC_CLI_BIN)
// because ctest's WILL_FAIL cannot distinguish a clean exit 2 from an
// abort: WIFEXITED must hold AND the status must be exactly 2.
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct RunResult {
  bool exited = false;  ///< terminated via exit(), not a signal
  int status = -1;      ///< WEXITSTATUS when exited
  std::string output;   ///< combined stdout+stderr
};

RunResult run_cli(const std::string& args) {
  // Stderr is folded into the pipe so the usage message is observable.
  const std::string cmd =
      std::string(ASYNCMAC_CLI_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return r;
  }
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int wait_status = pclose(pipe);
  if (wait_status >= 0 && WIFEXITED(wait_status)) {
    r.exited = true;
    r.status = WEXITSTATUS(wait_status);
  }
  return r;
}

void expect_usage_exit(const std::string& args) {
  SCOPED_TRACE(args);
  const RunResult r = run_cli(args);
  EXPECT_TRUE(r.exited) << "killed by a signal (std::terminate?): "
                        << r.output;
  EXPECT_EQ(r.status, 2) << r.output;
  EXPECT_NE(r.output.find("asyncmac_cli:"), std::string::npos) << r.output;
}

// ------------------------------------------------------------- run mode

TEST(CliUsage, RunModeRejectsMalformedNumerics) {
  expect_usage_exit("--n=abc");
  expect_usage_exit("--n=8x");          // trailing garbage
  expect_usage_exit("--n=");            // empty value
  expect_usage_exit("--r=4294967297");  // u32 overflow must not wrap to 1
  expect_usage_exit("--seed=abc");
  expect_usage_exit("--seed=-3");
  expect_usage_exit("--horizon=1e5");
  expect_usage_exit("--horizon=99999999999999999999");  // u64 overflow
  expect_usage_exit("--burst=16units");
  expect_usage_exit("--trace=x");
  expect_usage_exit("--seeds=abc");
  expect_usage_exit("--jobs=1.5");
  expect_usage_exit("--cohort=-1");
}

TEST(CliUsage, RunModeRejectsNonFiniteRho) {
  expect_usage_exit("--rho=nan");
  expect_usage_exit("--rho=NaN");
  expect_usage_exit("--rho=inf");
  expect_usage_exit("--rho=-inf");
  expect_usage_exit("--rho=");
  expect_usage_exit("--rho=0.5x");
  expect_usage_exit("--rho=1.5");   // finite but out of range
  expect_usage_exit("--rho=-0.1");
}

TEST(CliUsage, UnknownArgumentsAreUsageErrors) {
  expect_usage_exit("--bogus=1");
  expect_usage_exit("--grid --bogus");
  expect_usage_exit("frobnicate");
}

// ---------------------------------------------------------- grid / msr

TEST(CliUsage, GridModeRejectsMalformedListValues) {
  expect_usage_exit("--grid --n=2,abc");
  expect_usage_exit("--grid --r=1,4294967297");
  expect_usage_exit("--grid --rho=0.4,nan");
  expect_usage_exit("--grid --rho=0.4,inf");
  expect_usage_exit("--grid --rho=0.4,2.0");
  expect_usage_exit("--grid --seeds=0");
}

TEST(CliUsage, MsrModeRejectsMalformedNumerics) {
  expect_usage_exit("--msr --horizon=abc");
  expect_usage_exit("--msr --seed=1x");
  expect_usage_exit("--msr --rho=nan");
}

// ------------------------------------------------- fuzz / stats / resume

TEST(CliUsage, FuzzRejectsMalformedNumerics) {
  expect_usage_exit("fuzz --cases=abc");
  expect_usage_exit("fuzz --cases=0");
  expect_usage_exit("fuzz --seed 12z");  // two-token form
  expect_usage_exit("fuzz --jobs=x");
  expect_usage_exit("fuzz --time-budget=-1");
  expect_usage_exit("fuzz --case-seed=beef");
  expect_usage_exit("fuzz --emit-case=1.0");
  expect_usage_exit("fuzz --seed");      // flag without a value
}

TEST(CliUsage, StatsRejectsMalformedNumerics) {
  expect_usage_exit("stats file.jsonl --top=x");
  expect_usage_exit("stats file.jsonl --top=10x");
  expect_usage_exit("stats");  // missing file
}

TEST(CliUsage, ResumeRejectsMalformedNumerics) {
  expect_usage_exit("resume ckpt.snap --horizon=abc");
  expect_usage_exit("resume ckpt.snap --trace=4x");
  expect_usage_exit("resume");  // missing path
}

// ----------------------------------------------------- serve / worker

TEST(CliUsage, ServeRejectsMalformedNumerics) {
  expect_usage_exit("serve --port=notaport");
  expect_usage_exit("serve --port=70000");  // > 65535
  expect_usage_exit("serve --lease-timeout-ms=abc");
  expect_usage_exit("serve --lease-timeout-ms=0");
  expect_usage_exit("serve --heartbeat-ms=1s");
  expect_usage_exit("serve --rho=nan");
  expect_usage_exit("serve --cases=x --fuzz");
}

TEST(CliUsage, WorkerRejectsMalformedNumerics) {
  expect_usage_exit("worker --port=abc");
  expect_usage_exit("worker --port=99999");
  expect_usage_exit("worker");  // missing --port
}

// ----------------------------------------------- live-serve / live-station

TEST(CliUsage, LiveServeRejectsMalformedNumerics) {
  expect_usage_exit("live-serve --rho=nan");
  expect_usage_exit("live-serve --rho=inf");
  expect_usage_exit("live-serve --n=2x");
  expect_usage_exit("live-serve --r=4294967297");
  expect_usage_exit("live-serve --horizon=abc");
  expect_usage_exit("live-serve --port=70000");
  expect_usage_exit("live-serve --unit-us=0");
  expect_usage_exit("live-serve --unit-us=fast");
  expect_usage_exit("live-serve --idle-timeout-ms=0");
  expect_usage_exit("live-serve --emu-loss=abc");
  expect_usage_exit("live-serve --emu-loss=1.5");
  expect_usage_exit("live-serve --emu-delay-us=x");
  expect_usage_exit("live-serve --emu-seed=");
  expect_usage_exit("live-serve --n=2,4");  // comma lists need --grid
  expect_usage_exit("live-serve --bogus");
}

TEST(CliUsage, LiveStationRejectsMalformedNumerics) {
  expect_usage_exit("live-station --port=abc");
  expect_usage_exit("live-station --port=1234 --id=abc");
  expect_usage_exit("live-station --port=1234 --id=0");
  expect_usage_exit("live-station --port=1234");  // missing --id
  expect_usage_exit("live-station --id=1");       // missing --port
  expect_usage_exit("live-station --port=1234 --id=1 --retry-units=0");
  expect_usage_exit("live-station --port=1234 --id=1 --max-retries=x");
  expect_usage_exit("live-station --port=1234 --id=1 --unit-us=0");
}

// A sanity anchor: a well-formed invocation must NOT exit 2 (guards
// against the matrix passing because the binary always exits 2).
TEST(CliUsage, WellFormedRunExitsZero) {
  const RunResult r =
      run_cli("--protocol=ca-arrow --n=2 --rho=0.5 --horizon=200");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.status, 0) << r.output;
}

}  // namespace
