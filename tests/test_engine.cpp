// Tests for the discrete-event engine: slot sequencing, transmission
// registration, feedback delivery, packet delivery, injection visibility,
// stop conditions, determinism and model enforcement.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "baselines/listen.h"
#include "core/abs.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "test_protocols.h"

namespace asyncmac {
namespace {

using adversary::PerStationSlotPolicy;
using adversary::ScriptedInjector;
using adversary::UniformSlotPolicy;
using asyncmac::testing::GreedyProtocol;
using asyncmac::testing::ScriptProtocol;
using sim::Engine;
using sim::EngineConfig;
using sim::Injection;
using sim::StopCondition;

constexpr Tick U = kTicksPerUnit;

EngineConfig config(std::uint32_t n, std::uint32_t R) {
  EngineConfig c;
  c.n = n;
  c.bound_r = R;
  c.record_trace = true;
  c.record_deliveries = true;
  return c;
}

TEST(Engine, RequiresValidConfiguration) {
  std::vector<std::unique_ptr<sim::Protocol>> p;
  p.push_back(std::make_unique<baselines::ListenProtocol>());
  EXPECT_THROW(Engine(config(0, 1), {}, std::make_unique<UniformSlotPolicy>(),
                      nullptr),
               std::invalid_argument);
  EXPECT_THROW(Engine(config(2, 1), std::move(p),
                      std::make_unique<UniformSlotPolicy>(), nullptr),
               std::invalid_argument);
}

TEST(Engine, SlotBoundariesAdvanceByPolicyLength) {
  auto protocols = asyncmac::testing::make_protocols<
      baselines::ListenProtocol>(1);
  Engine e(config(1, 3), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(3 * U), nullptr);
  StopCondition stop;
  stop.max_total_slots = 5;
  e.run(stop);
  const auto& slots = e.trace().slots();
  ASSERT_EQ(slots.size(), 5u);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].begin, static_cast<Tick>(i) * 3 * U);
    EXPECT_EQ(slots[i].end, static_cast<Tick>(i + 1) * 3 * U);
    EXPECT_EQ(slots[i].index, i + 1);
  }
}

TEST(Engine, InjectionAtTimeZeroVisibleToFirstDecision) {
  std::vector<Injection> script{{0, 1, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(1);
  Engine e(config(1, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<ScriptedInjector>(script));
  StopCondition stop;
  stop.max_total_slots = 1;
  e.run(stop);
  EXPECT_EQ(e.stats().delivered_packets, 1u);
  EXPECT_EQ(e.trace().slots()[0].action, SlotAction::kTransmitPacket);
  EXPECT_EQ(e.trace().slots()[0].feedback, Feedback::kAck);
}

TEST(Engine, DeliveryRemovesPacketAndRecordsLatency) {
  std::vector<Injection> script{{0, 1, U}, {0, 1, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(1);
  Engine e(config(1, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<ScriptedInjector>(script));
  e.run(sim::until(10 * U));
  EXPECT_EQ(e.stats().delivered_packets, 2u);
  EXPECT_EQ(e.stats().queued_packets, 0u);
  ASSERT_EQ(e.deliveries().size(), 2u);
  EXPECT_EQ(e.deliveries()[0].delivered_at, U);
  EXPECT_EQ(e.deliveries()[1].delivered_at, 2 * U);
  EXPECT_EQ(e.deliveries()[0].realized_cost, U);
}

TEST(Engine, CollisionLeavesPacketsQueued) {
  std::vector<Injection> script{{0, 1, U}, {0, 2, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  Engine e(config(2, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<ScriptedInjector>(script));
  StopCondition stop;
  stop.max_total_slots = 2;  // one slot each: they collide
  e.run(stop);
  EXPECT_EQ(e.stats().delivered_packets, 0u);
  EXPECT_EQ(e.stats().queued_packets, 2u);
  EXPECT_EQ(e.channel_stats().collided, 2u);
}

TEST(Engine, TransmitterFeedbackBusyOnCollision) {
  std::vector<Injection> script{{0, 1, U}, {0, 2, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  Engine e(config(2, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<ScriptedInjector>(script));
  StopCondition stop;
  stop.max_total_slots = 2;
  e.run(stop);
  for (const auto& s : e.trace().slots()) {
    EXPECT_EQ(s.action, SlotAction::kTransmitPacket);
    EXPECT_EQ(s.feedback, Feedback::kBusy);
  }
}

TEST(Engine, AsynchronousSlotsPartialOverlapCollides) {
  // Station 1 has 2-unit slots, station 2 has 3-unit slots. Both transmit
  // their first slot: [0,2) vs [0,3) overlap -> both fail.
  std::vector<Injection> script{{0, 1, 2 * U}, {0, 2, 3 * U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  EngineConfig cfg = config(2, 3);
  Engine e(cfg, std::move(protocols),
           std::make_unique<PerStationSlotPolicy>(
               std::vector<Tick>{2 * U, 3 * U}),
           std::make_unique<ScriptedInjector>(script));
  StopCondition stop;
  stop.max_total_slots = 2;
  e.run(stop);
  EXPECT_EQ(e.channel_stats().collided, 2u);
}

TEST(Engine, ListenerFeedbackSequenceAroundTransmission) {
  // Station 1 transmits its 3rd slot; station 2 (2-unit slots) listens.
  auto p1 = std::make_unique<ScriptProtocol>(std::vector<SlotAction>{
      SlotAction::kListen, SlotAction::kListen, SlotAction::kTransmitControl});
  auto listener = std::make_unique<ScriptProtocol>(std::vector<SlotAction>{});
  auto* listener_raw = listener.get();
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.push_back(std::move(p1));
  protocols.push_back(std::move(listener));
  Engine e(config(2, 2), std::move(protocols),
           std::make_unique<PerStationSlotPolicy>(
               std::vector<Tick>{U, 2 * U}),
           nullptr);
  e.run(sim::until(6 * U));
  // Station 1 transmits [2U, 3U). Station 2's slots: [0,2U) silence,
  // [2U,4U) contains the end -> ack, [4U,6U) silence.
  const auto& r = listener_raw->results();
  ASSERT_GE(r.size(), 3u);
  EXPECT_EQ(r[0].feedback, Feedback::kSilence);
  EXPECT_EQ(r[1].feedback, Feedback::kAck);
  EXPECT_EQ(r[2].feedback, Feedback::kSilence);
}

TEST(Engine, ControlForbiddenWhenModelDisallows) {
  auto protocols = asyncmac::testing::make_protocols<ScriptProtocol>(
      1, std::vector<SlotAction>{SlotAction::kTransmitControl});
  EngineConfig cfg = config(1, 1);
  cfg.allow_control = false;
  EXPECT_THROW(
      Engine(cfg, std::move(protocols), std::make_unique<UniformSlotPolicy>(),
             nullptr),
      std::logic_error);
}

TEST(Engine, TransmitPacketWithEmptyQueueIsAProtocolBug) {
  auto protocols = asyncmac::testing::make_protocols<ScriptProtocol>(
      1, std::vector<SlotAction>{SlotAction::kTransmitPacket});
  EXPECT_THROW(Engine(config(1, 1), std::move(protocols),
                      std::make_unique<UniformSlotPolicy>(), nullptr),
               std::logic_error);
}

TEST(Engine, StopAtMaxTimeDoesNotProcessLaterEvents) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(1);
  Engine e(config(1, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(), nullptr);
  e.run(sim::until(10 * U));
  EXPECT_EQ(e.stats().total_slots, 10u);
  EXPECT_EQ(e.now(), 10 * U);
}

TEST(Engine, PredicateStopsRun) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(1);
  Engine e(config(1, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(), nullptr);
  StopCondition stop;
  stop.max_time = 1000 * U;
  stop.predicate = [](const Engine& eng) {
    return eng.stats().total_slots >= 7;
  };
  e.run(stop);
  EXPECT_EQ(e.stats().total_slots, 7u);
}

TEST(Engine, RunCanBeResumed) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(1);
  Engine e(config(1, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(), nullptr);
  e.run(sim::until(5 * U));
  EXPECT_EQ(e.stats().total_slots, 5u);
  e.run(sim::until(9 * U));
  EXPECT_EQ(e.stats().total_slots, 9u);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(3);
    EngineConfig cfg = config(3, 4);
    cfg.seed = 99;
    Engine e(cfg, std::move(protocols),
             asyncmac::testing::make_slot_policy("random", 3, 4, 5),
             std::make_unique<adversary::SaturatingInjector>(
                 util::Ratio(1, 2), 4 * U, adversary::TargetPattern::kRandom,
                 1, 77));
    e.run(sim::until(500 * U));
    return std::make_tuple(e.stats().delivered_packets,
                           e.stats().injected_packets,
                           e.channel_stats().collided, e.now());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, AccountingInvariantInjectedEqualsDeliveredPlusQueued) {
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(4);
  Engine e(config(4, 2), std::move(protocols),
           asyncmac::testing::make_slot_policy("perstation", 4, 2),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(3, 10), 6 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(2000 * U));
  const auto& s = e.stats();
  EXPECT_EQ(s.injected_packets, s.delivered_packets + s.queued_packets);
  EXPECT_EQ(s.injected_cost, s.delivered_cost + s.queued_cost);
  Tick per_station = 0;
  std::uint64_t per_station_pkts = 0;
  for (const auto& st : s.station) {
    per_station += st.queued_cost;
    per_station_pkts += st.queued;
  }
  EXPECT_EQ(per_station, s.queued_cost);
  EXPECT_EQ(per_station_pkts, s.queued_packets);
}

TEST(Engine, PerStationSlotCountsMatchTrace) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(2);
  Engine e(config(2, 2), std::move(protocols),
           std::make_unique<PerStationSlotPolicy>(
               std::vector<Tick>{U, 2 * U}),
           nullptr);
  e.run(sim::until(10 * U));
  // Station 1: 10 slots of 1 unit; station 2: 5 slots of 2 units.
  EXPECT_EQ(e.stats().station[0].slots, 10u);
  EXPECT_EQ(e.stats().station[1].slots, 5u);
}

TEST(Engine, EngineViewExposesFixedSlotLengths) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(2);
  Engine e(config(2, 3), std::move(protocols),
           std::make_unique<PerStationSlotPolicy>(
               std::vector<Tick>{U, 3 * U}),
           nullptr);
  EXPECT_EQ(e.fixed_slot_length(1), U);
  EXPECT_EQ(e.fixed_slot_length(2), 3 * U);
}

TEST(Engine, LastSuccessfulStationTracksDeliveries) {
  std::vector<Injection> script{{0, 2, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  Engine e(config(2, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<ScriptedInjector>(script));
  EXPECT_EQ(e.last_successful_station(), kInvalidStation);
  e.run(sim::until(3 * U));
  EXPECT_EQ(e.last_successful_station(), 2u);
}

TEST(Engine, LongRunPruningKeepsMemoryBounded) {
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  Engine e(config(2, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(1, 4), 2 * U, adversary::TargetPattern::kSingle,
               1));
  // ~40k slots; without pruning the window would hold ~10k transmissions.
  e.run(sim::until(20000 * U));
  EXPECT_LT(e.ledger().window().size(), 5000u);
}

TEST(Engine, HistoryRunsPruneTooWhileHistoryAccumulates) {
  // Regression: keep_channel_history used to disable pruning entirely,
  // so every feedback() on a long run scanned an ever-growing window
  // (O(T^2) total). Pruning must now keep the live window bounded while
  // the pruned entries accumulate in full_history() for inspection.
  EngineConfig cfg = config(2, 1);
  cfg.keep_channel_history = true;
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  Engine e(cfg, std::move(protocols),
           std::make_unique<UniformSlotPolicy>(),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(1, 4), 2 * U, adversary::TargetPattern::kSingle,
               1));
  e.run(sim::until(20000 * U));
  const auto& ledger = e.ledger();
  EXPECT_LT(ledger.window().size(), 5000u);
  EXPECT_GT(ledger.full_history().size(), 1000u);
  // Nothing is lost: archived + live covers every registered transmission.
  EXPECT_EQ(ledger.full_history().size() + ledger.window().size(),
            ledger.stats().transmissions);
}

TEST(Engine, RejectsSlotPolicyViolatingBounds) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(1);
  // Policy returns 3 units but R = 2; the very first slot trips the check.
  EXPECT_THROW(Engine(config(1, 2), std::move(protocols),
                      std::make_unique<UniformSlotPolicy>(3 * U), nullptr),
               std::logic_error);
}

TEST(Engine, InjectionCostBoundsEnforced) {
  // Costs must lie in [1, R] units (a packet's carrying slot cannot be
  // shorter or longer).
  auto run_with_cost = [](Tick cost) {
    std::vector<Injection> script{{0, 1, cost}};
    auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(1);
    Engine e(config(1, 2), std::move(protocols),
             std::make_unique<UniformSlotPolicy>(),
             std::make_unique<ScriptedInjector>(script));
    e.run(sim::until(2 * U));
  };
  EXPECT_NO_THROW(run_with_cost(U));
  EXPECT_NO_THROW(run_with_cost(2 * U));
  EXPECT_THROW(run_with_cost(U - 1), std::logic_error);
  EXPECT_THROW(run_with_cost(2 * U + 1), std::logic_error);
}

TEST(Engine, InjectionToUnknownStationRejected) {
  // A time-0 injection is polled during construction, so the bad station
  // id trips the check right there.
  std::vector<Injection> script{{0, 9, U}};
  auto protocols = asyncmac::testing::make_protocols<GreedyProtocol>(2);
  EXPECT_THROW(Engine(config(2, 1), std::move(protocols),
                      std::make_unique<UniformSlotPolicy>(),
                      std::make_unique<ScriptedInjector>(script)),
               std::logic_error);
}

TEST(Engine, MaxSupportedBoundSixteenWorks) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(2);
  Engine e(config(2, 16), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(16 * U), nullptr);
  e.run(sim::until(160 * U));
  EXPECT_EQ(e.stats().station[0].slots, 10u);
}

TEST(Engine, ScalesToHundredsOfStations) {
  // Smoke: 512 stations under CA-ARRoW for a short horizon.
  sim::EngineConfig cfg;
  cfg.n = 512;
  cfg.bound_r = 2;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  for (int i = 0; i < 512; ++i)
    ps.push_back(std::make_unique<core::CaArrowProtocol>());
  Engine e(cfg, std::move(ps),
           asyncmac::testing::make_slot_policy("perstation", 512, 2),
           std::make_unique<adversary::SaturatingInjector>(
               util::Ratio(1, 10), 32 * U,
               adversary::TargetPattern::kRoundRobin));
  e.run(sim::until(30000 * U));
  EXPECT_EQ(e.channel_stats().collided, 0u);
  EXPECT_GT(e.stats().delivered_packets, 500u);
}

TEST(Engine, MaxTotalSlotsStopsRun) {
  auto protocols =
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(3);
  Engine e(config(3, 1), std::move(protocols),
           std::make_unique<UniformSlotPolicy>(), nullptr);
  StopCondition stop;
  stop.max_total_slots = 10;
  e.run(stop);
  EXPECT_EQ(e.stats().total_slots, 10u);
}

TEST(Engine, AllFinishedReflectsOneShotProtocols) {
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = 1;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  ps.push_back(std::make_unique<core::AbsProtocol>());
  ps.push_back(std::make_unique<core::AbsProtocol>());
  Engine e(cfg, std::move(ps),
           std::make_unique<UniformSlotPolicy>(),
           asyncmac::testing::sst_messages({1, 2}));
  EXPECT_FALSE(e.all_finished());
  StopCondition stop;
  stop.max_time = 1000 * U;
  stop.predicate = [](const Engine& eng) { return eng.all_finished(); };
  e.run(stop);
  EXPECT_TRUE(e.all_finished());
}

}  // namespace
}  // namespace asyncmac
