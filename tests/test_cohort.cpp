// Byte-identity of the batched SoA cohort engine against the scalar
// engine — THE contract of sim/cohort_engine.h: a lockstep lane's
// save_lane_state() must equal the save_state() of a scalar Engine built
// from the same materials and driven through the same stop conditions, on
// every path (lockstep, fallback, mid-run retirement, rerun after
// retirement, explicit detachment). The comparisons are full state
// snapshots — queues, RNG streams, protocol state, ledger, metrics,
// trace, deliveries and engine cursors — so any divergence anywhere
// fails loudly.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "engine_golden_cases.h"
#include "sim/cohort_engine.h"
#include "snapshot/io.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

using testing::EngineGoldenCase;

std::vector<std::uint8_t> engine_bytes(const sim::Engine& e) {
  snapshot::Writer w;
  e.save_state(w);
  return w.take();
}

std::vector<std::uint8_t> lane_bytes(const sim::CohortEngine& c,
                                     std::size_t lane) {
  snapshot::Writer w;
  c.save_lane_state(lane, w);
  return w.take();
}

std::unique_ptr<sim::Engine> engine_from(sim::LaneMaterials m) {
  return std::make_unique<sim::Engine>(std::move(m.cfg), std::move(m.protocols),
                                       std::move(m.slot_policy),
                                       std::move(m.injection));
}

/// A golden case's engine materials, with the engine seed swappable (the
/// slot policy keeps the case seed, as lanes of one cohort must share the
/// schedule).
sim::LaneMaterials golden_materials(const EngineGoldenCase& c,
                                    std::uint64_t engine_seed) {
  sim::LaneMaterials m;
  m.cfg.n = c.n;
  m.cfg.bound_r = c.bound_r;
  m.cfg.seed = engine_seed;
  m.cfg.record_trace = true;
  m.cfg.record_deliveries = true;
  m.protocols = analysis::make_protocols(c.protocol, c.n);
  m.slot_policy =
      adversary::make_slot_policy(c.slot_policy, c.n, c.bound_r, c.seed);
  m.injection = c.no_injector ? nullptr : adversary::make_injector(c.injector);
  return m;
}

sim::LaneBuilder golden_builder(const EngineGoldenCase& c,
                                std::uint64_t engine_seed) {
  return [c, engine_seed] { return golden_materials(c, engine_seed); };
}

/// Fixed-length slot policies with the lane-ized protocol take the
/// lockstep fast path; everything else falls back to scalar engines.
bool expect_lockstep(const EngineGoldenCase& c) {
  return c.protocol == "ca-arrow" &&
         (c.slot_policy == "sync" || c.slot_policy == "max" ||
          c.slot_policy == "perstation");
}

/// An always-eligible configuration for the lockstep-specific tests.
sim::LaneMaterials eligible_materials(std::uint64_t seed,
                                      std::uint32_t n = 5,
                                      std::uint32_t r = 3) {
  sim::LaneMaterials m;
  m.cfg.n = n;
  m.cfg.bound_r = r;
  m.cfg.seed = seed;
  m.cfg.record_trace = true;
  m.cfg.record_deliveries = true;
  m.protocols = analysis::make_protocols("ca-arrow", n);
  m.slot_policy = adversary::make_slot_policy("perstation", n, r, 1);
  adversary::InjectorSpec inj;
  inj.kind = "saturating";
  inj.rho = util::Ratio(1, 2);
  inj.burst_ticks = 8 * kTicksPerUnit;
  inj.pattern = "roundrobin";
  inj.seed = seed + 1;
  m.injection = adversary::make_injector(inj);
  return m;
}

sim::LaneBuilder eligible_builder(std::uint64_t seed, std::uint32_t n = 5,
                                  std::uint32_t r = 3) {
  return [seed, n, r] { return eligible_materials(seed, n, r); };
}

// Every golden corpus case, lockstep or fallback, with per-lane seeds:
// lane snapshots must equal scalar engines run to the same horizon.
TEST(CohortGolden, ByteIdentityAcrossCorpus) {
  for (const EngineGoldenCase& c : testing::engine_golden_cases()) {
    const std::size_t kLanes = 3;
    std::vector<sim::LaneBuilder> builders;
    for (std::size_t k = 0; k < kLanes; ++k)
      builders.push_back(golden_builder(c, c.seed + 37 * k));
    sim::CohortEngine cohort(std::move(builders));
    EXPECT_EQ(cohort.lockstep(), expect_lockstep(c)) << c.name;

    const sim::StopCondition stop = sim::until(c.horizon_units * kTicksPerUnit);
    cohort.run(stop);

    for (std::size_t k = 0; k < kLanes; ++k) {
      auto ref = engine_from(golden_materials(c, c.seed + 37 * k));
      ref->run(stop);
      EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref))
          << c.name << " lane " << k;
      EXPECT_EQ(cohort.stats(k).total_slots, ref->stats().total_slots);
      EXPECT_EQ(cohort.channel_stats(k).transmissions,
                ref->channel_stats().transmissions);
    }
  }
}

// The lockstep-eligible corpus case, rendered through a detached lane,
// must reproduce the committed golden artifact exactly (lane 0 carries
// the case's own seed).
TEST(CohortGolden, LockstepLaneReproducesGoldenArtifact) {
  for (const EngineGoldenCase& c : testing::engine_golden_cases()) {
    if (!expect_lockstep(c)) continue;
    std::vector<sim::LaneBuilder> builders;
    for (std::size_t k = 0; k < 4; ++k)
      builders.push_back(golden_builder(c, c.seed + 37 * k));
    sim::CohortEngine cohort(std::move(builders));
    ASSERT_TRUE(cohort.lockstep());
    cohort.run(sim::until(c.horizon_units * kTicksPerUnit));

    sim::Engine& lane0 = cohort.engine(0);
    std::string artifact =
        trace::serialize_trace({c.n, c.bound_r}, lane0.trace().slots());
    artifact += metrics::to_json(lane0.stats(), &lane0.channel_stats());
    artifact += "\n";
    EXPECT_EQ(artifact, testing::run_engine_golden_case(c)) << c.name;
  }
}

// Generated scenarios through the scenario_materials seam: whatever the
// generator draws (any protocol, any policy, any injector), cohort lanes
// match scalar runs byte for byte.
TEST(CohortScenario, GeneratedScenariosByteIdentity) {
  verify::ScenarioGen gen(0xC0480u);
  for (std::uint64_t index : {0u, 1u, 2u}) {
    const verify::Scenario s = gen.generate(index);
    const std::size_t kLanes = 3;
    std::vector<sim::LaneBuilder> builders;
    for (std::size_t k = 0; k < kLanes; ++k) {
      const std::uint64_t lane_seed = s.seed + k;  // lane 0 = the scenario
      builders.push_back(
          [s, lane_seed] { return verify::scenario_materials(s, lane_seed); });
    }
    sim::CohortEngine cohort(std::move(builders));
    const sim::StopCondition stop = sim::until(s.horizon_units * kTicksPerUnit);
    cohort.run(stop);
    for (std::size_t k = 0; k < kLanes; ++k) {
      auto ref = engine_from(verify::scenario_materials(s, s.seed + k));
      ref->run(stop);
      EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref))
          << s.describe() << " lane " << k;
    }
  }
}

// Lanes that share protocol / policy / n / R / seed but differ in
// injector *parameters and kinds* — the grid-row batching shape
// (analysis::run_grid groups a rho x seed block into one cohort). Every
// lane must still match its own scalar twin byte for byte, including a
// no-injector lane riding along with adversarial ones.
TEST(Cohort, ParamVaryingLanesByteIdentity) {
  auto lane = [](adversary::InjectorSpec* inj) {
    const adversary::InjectorSpec spec = inj ? *inj : adversary::InjectorSpec{};
    const bool none = inj == nullptr;
    return [spec, none] {
      sim::LaneMaterials m = eligible_materials(55);
      m.injection = none ? nullptr : adversary::make_injector(spec);
      return m;
    };
  };
  std::vector<adversary::InjectorSpec> specs(4);
  specs[0].rho = util::Ratio(1, 2);  // the eligible_materials default shape
  specs[1].rho = util::Ratio(1, 4);  // halved rate
  specs[1].burst_ticks = 16 * kTicksPerUnit;  // doubled burst
  specs[2].pattern = "single";  // different cost-bucket targeting
  specs[2].single_target = 2;
  specs[3].kind = "drain-chasing";  // different injector kind entirely
  specs[3].drain_a = 1;
  specs[3].drain_b = 3;

  std::vector<sim::LaneBuilder> builders;
  for (auto& s : specs) builders.push_back(lane(&s));
  builders.push_back(lane(nullptr));  // and one lane with no injector
  sim::CohortEngine cohort(std::move(builders));
  ASSERT_TRUE(cohort.lockstep());
  const sim::StopCondition stop = sim::until(300 * kTicksPerUnit);
  cohort.run(stop);
  for (std::size_t k = 0; k < 5; ++k) {
    auto ref = engine_from(lane(k < specs.size() ? &specs[k] : nullptr)());
    ref->run(stop);
    EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref)) << "lane " << k;
  }
}

// Kill-anywhere: a lane's snapshot must equal the scalar engine's at
// *every* observation point, not just retirement — save_lane_state on a
// live lockstep lane flushes the SoA ledger and metrics blocks
// mid-cadence. Swept across prune cadences (every event, the shared
// default-ish 16, and one so sparse it never fires) so cuts land before,
// between and on prune boundaries.
TEST(Cohort, KillAnywhereByteIdentityAcrossPruneCadences) {
  for (const std::uint64_t prune : {std::uint64_t{1}, std::uint64_t{16},
                                    std::uint64_t{4096}}) {
    auto lane = [prune](std::uint64_t seed) {
      return [prune, seed] {
        sim::LaneMaterials m = eligible_materials(seed);
        m.cfg.prune_interval = prune;
        return m;
      };
    };
    const std::size_t kLanes = 3;
    std::vector<sim::LaneBuilder> builders;
    std::vector<std::unique_ptr<sim::Engine>> refs;
    for (std::size_t k = 0; k < kLanes; ++k) {
      builders.push_back(lane(600 + 7 * k));
      refs.push_back(engine_from(lane(600 + 7 * k)()));
    }
    sim::CohortEngine cohort(std::move(builders));
    ASSERT_TRUE(cohort.lockstep());
    // Cuts chosen to straddle prune boundaries for every cadence above.
    for (const Tick cut_units : {3, 17, 40, 111, 256}) {
      const sim::StopCondition stop = sim::until(cut_units * kTicksPerUnit);
      cohort.run(stop);
      for (std::size_t k = 0; k < kLanes; ++k) {
        refs[k]->run(stop);
        EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*refs[k]))
            << "prune=" << prune << " cut=" << cut_units << " lane " << k;
      }
    }
  }
}

// K = 1 is the degenerate cohort: still lockstep, still identical.
TEST(Cohort, SingleLaneDegenerate) {
  std::vector<sim::LaneBuilder> builders;
  builders.push_back(eligible_builder(99));
  sim::CohortEngine cohort(std::move(builders));
  ASSERT_TRUE(cohort.lockstep());
  ASSERT_EQ(cohort.lanes(), 1u);
  cohort.run(sim::until(200 * kTicksPerUnit));
  auto ref = engine_from(eligible_materials(99));
  ref->run(sim::until(200 * kTicksPerUnit));
  EXPECT_EQ(lane_bytes(cohort, 0), engine_bytes(*ref));
}

// Randomized K / seed sweep with staggered per-lane stops: lanes retire
// mid-run at different events (time stops and slot-count stops mixed)
// while the shared schedule advances for the rest.
TEST(Cohort, StaggeredStopsRetireLanesMidRun) {
  for (std::size_t kLanes : {2u, 5u, 8u}) {
    std::vector<sim::LaneBuilder> builders;
    std::vector<sim::StopCondition> stops;
    for (std::size_t k = 0; k < kLanes; ++k) {
      builders.push_back(eligible_builder(1000 + k * 1000003));
      sim::StopCondition stop;
      if (k % 3 == 2)
        stop.max_total_slots = 150 + 40 * k;
      else
        stop.max_time = static_cast<Tick>(80 + 23 * k) * kTicksPerUnit;
      stops.push_back(stop);
    }
    sim::CohortEngine cohort(std::move(builders));
    ASSERT_TRUE(cohort.lockstep());
    cohort.run(stops);
    for (std::size_t k = 0; k < kLanes; ++k) {
      EXPECT_TRUE(cohort.retired(k)) << "K=" << kLanes << " lane " << k;
      auto ref = engine_from(eligible_materials(1000 + k * 1000003));
      ref->run(stops[k]);
      EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref))
          << "K=" << kLanes << " lane " << k;
    }
  }
}

// Running again after retirement materializes the retired lanes and
// continues them bit-for-bit (two-segment scalar runs as reference).
TEST(Cohort, RerunAfterRetirementContinuesExactly) {
  const std::size_t kLanes = 4;
  std::vector<sim::LaneBuilder> builders;
  for (std::size_t k = 0; k < kLanes; ++k)
    builders.push_back(eligible_builder(7 + k));
  sim::CohortEngine cohort(std::move(builders));
  ASSERT_TRUE(cohort.lockstep());
  cohort.run(sim::until(60 * kTicksPerUnit));
  for (std::size_t k = 0; k < kLanes; ++k) EXPECT_TRUE(cohort.retired(k));
  cohort.run(sim::until(140 * kTicksPerUnit));
  for (std::size_t k = 0; k < kLanes; ++k) {
    EXPECT_FALSE(cohort.retired(k));  // now a live scalar engine
    auto ref = engine_from(eligible_materials(7 + k));
    ref->run(sim::until(60 * kTicksPerUnit));
    ref->run(sim::until(140 * kTicksPerUnit));
    EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref)) << "lane " << k;
  }
}

// engine(k) detaches a lane to a scalar engine mid-flight; the cohort
// keeps advancing it (and the still-lockstep lanes) on later runs.
TEST(Cohort, ExplicitDetachThenContinue) {
  const std::size_t kLanes = 3;
  std::vector<sim::LaneBuilder> builders;
  for (std::size_t k = 0; k < kLanes; ++k)
    builders.push_back(eligible_builder(41 + 11 * k));
  sim::CohortEngine cohort(std::move(builders));
  cohort.run(sim::until(50 * kTicksPerUnit));

  sim::Engine& detached = cohort.engine(1);
  EXPECT_FALSE(cohort.retired(1));
  EXPECT_EQ(&detached, &cohort.engine(1));  // idempotent, cached

  cohort.run(sim::until(120 * kTicksPerUnit));
  for (std::size_t k = 0; k < kLanes; ++k) {
    auto ref = engine_from(eligible_materials(41 + 11 * k));
    ref->run(sim::until(50 * kTicksPerUnit));
    ref->run(sim::until(120 * kTicksPerUnit));
    EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref)) << "lane " << k;
  }
}

// The shared prune cadence (and its telemetry flush) with ledger history
// archiving: a small prune_interval fires many prunes over a long run,
// and the frozen-at-different-prune-phases lanes must still serialize
// identically to scalar runs.
TEST(Cohort, PruneCadenceWithHistoryByteIdentity) {
  auto lane = [](std::uint64_t seed) {
    return [seed] {
      sim::LaneMaterials m = eligible_materials(seed);
      m.cfg.prune_interval = 16;
      m.cfg.keep_channel_history = true;
      return m;
    };
  };
  const std::size_t kLanes = 4;
  std::vector<sim::LaneBuilder> builders;
  std::vector<sim::StopCondition> stops;
  for (std::size_t k = 0; k < kLanes; ++k) {
    builders.push_back(lane(300 + k));
    stops.push_back(sim::until(static_cast<Tick>(900 + 67 * k) *
                               kTicksPerUnit));
  }
  sim::CohortEngine cohort(std::move(builders));
  ASSERT_TRUE(cohort.lockstep());
  cohort.run(stops);
  for (std::size_t k = 0; k < kLanes; ++k) {
    auto ref = engine_from(lane(300 + k)());
    ref->run(stops[k]);
    EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref)) << "lane " << k;
  }
}

// A StopCondition predicate observes a scalar Engine, so predicate lanes
// must detach before running — and still match a scalar run.
TEST(Cohort, PredicateStopDetachesLane) {
  std::vector<sim::LaneBuilder> builders;
  builders.push_back(eligible_builder(5));
  builders.push_back(eligible_builder(6));
  sim::CohortEngine cohort(std::move(builders));
  ASSERT_TRUE(cohort.lockstep());

  std::vector<sim::StopCondition> stops(2, sim::until(90 * kTicksPerUnit));
  stops[0].predicate = [](const sim::Engine& e) {
    return e.stats().delivered_packets >= 10;
  };
  cohort.run(stops);

  for (std::size_t k = 0; k < 2; ++k) {
    auto ref = engine_from(eligible_materials(5 + k));
    ref->run(stops[k]);
    EXPECT_EQ(lane_bytes(cohort, k), engine_bytes(*ref)) << "lane " << k;
  }
}

// Mismatched lane configurations (different n) cannot share a schedule:
// the cohort must fall back to scalar engines and still match.
TEST(Cohort, MismatchedLanesFallBackToScalar) {
  std::vector<sim::LaneBuilder> builders;
  builders.push_back(eligible_builder(3, /*n=*/4));
  builders.push_back(eligible_builder(3, /*n=*/6));
  sim::CohortEngine cohort(std::move(builders));
  EXPECT_FALSE(cohort.lockstep());
  cohort.run(sim::until(100 * kTicksPerUnit));
  auto ref0 = engine_from(eligible_materials(3, 4));
  auto ref1 = engine_from(eligible_materials(3, 6));
  ref0->run(sim::until(100 * kTicksPerUnit));
  ref1->run(sim::until(100 * kTicksPerUnit));
  EXPECT_EQ(lane_bytes(cohort, 0), engine_bytes(*ref0));
  EXPECT_EQ(lane_bytes(cohort, 1), engine_bytes(*ref1));
}

// Checkpointing configurations are ineligible by design (the sink
// callback observes a scalar Engine mid-run) — and the fallback still
// runs them to byte-identity with a scalar engine.
TEST(Cohort, CheckpointConfigFallsBack) {
  auto lane = [] {
    sim::LaneMaterials m = eligible_materials(17);
    m.cfg.checkpoint_interval = 64;
    return m;
  };
  std::vector<sim::LaneBuilder> builders;
  builders.push_back(lane);
  sim::CohortEngine cohort(std::move(builders));
  EXPECT_FALSE(cohort.lockstep());
  cohort.run(sim::until(100 * kTicksPerUnit));
  auto ref = engine_from(lane());
  ref->run(sim::until(100 * kTicksPerUnit));
  EXPECT_EQ(lane_bytes(cohort, 0), engine_bytes(*ref));
}

TEST(Cohort, RejectsEmptyAndLaneIndexOutOfRange) {
  EXPECT_THROW(sim::CohortEngine({}), std::invalid_argument);
  std::vector<sim::LaneBuilder> builders;
  builders.push_back(eligible_builder(1));
  sim::CohortEngine cohort(std::move(builders));
  EXPECT_THROW(cohort.stats(1), std::invalid_argument);
  EXPECT_THROW(cohort.retired(9), std::invalid_argument);
  EXPECT_THROW(cohort.run(std::vector<sim::StopCondition>(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace asyncmac
