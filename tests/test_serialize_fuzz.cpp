// Round-trip and robustness fuzzing of trace/serialize: every trace the
// engine can produce must survive serialize -> parse -> serialize
// byte-identically, and NO byte-level corruption of a trace file may
// crash the parser — malformed input fails with std::invalid_argument,
// nothing else, ever (repro files come back in from disk).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "trace/serialize.h"
#include "util/rng.h"
#include "verify/scenario.h"

namespace asyncmac {
namespace {

std::string serialized_trace_of(std::uint64_t case_seed) {
  const verify::Scenario s = verify::scenario_from_seed(case_seed);
  auto engine = verify::run_scenario(s);
  return trace::serialize_trace({s.n, s.bound_r}, engine->trace().slots());
}

TEST(SerializeFuzz, EngineTracesRoundTripByteIdentically) {
  for (std::uint64_t case_seed = 101; case_seed < 113; ++case_seed) {
    const std::string text = serialized_trace_of(case_seed);
    ASSERT_FALSE(text.empty());
    const trace::ParsedTrace parsed = trace::parse_trace(text);
    const std::string again =
        trace::serialize_trace(parsed.header, parsed.slots);
    EXPECT_EQ(text, again) << "case seed " << case_seed;
  }
}

TEST(SerializeFuzz, MalformedInputsThrowInvalidArgument) {
  const std::vector<std::string> bad = {
      "",
      "\n",
      "asyncmac-trace v2 n=2 r=1\n",
      "wrong-magic v1 n=2 r=1\n",
      "asyncmac-trace v1 n=2\n",
      "asyncmac-trace v1 n=2 r=1 extra\n",
      "asyncmac-trace v1 n=x r=1\n",
      "asyncmac-trace v1 n=99999999999999999999 r=1\n",
      "asyncmac-trace v1 n=2 r=1\nslot\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 0 720720\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 0 720720 listen silence x\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 0 0 720720 listen silence\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 -5 720720 listen silence\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 720720 720720 listen silence\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 0 720720 dance silence\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1 1 0 720720 listen loud\n",
      "asyncmac-trace v1 n=2 r=1\nslot 0 1 0 720720 listen silence\n",
      "asyncmac-trace v1 n=2 r=1\nslot 1x 1 0 720720 listen silence\n",
      "asyncmac-trace v1 n=2 r=1\ngarbage line\n",
  };
  for (const std::string& text : bad) {
    EXPECT_THROW(trace::parse_trace(text), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(SerializeFuzz, RandomMutationsNeverCrashTheParser) {
  const std::string base = serialized_trace_of(4242);
  ASSERT_FALSE(base.empty());
  util::Rng rng(0x5E71A112EULL);
  const std::string alphabet =
      "slot 0123456789-\nabcdefghijklmnopqrstuvwxyz=.";
  int parsed_ok = 0;
  for (int i = 0; i < 400; ++i) {
    std::string text = base;
    const int edits = static_cast<int>(rng.range(1, 6));
    for (int e = 0; e < edits; ++e) {
      if (text.empty()) break;
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(4)) {
        case 0:  // substitute
          text[pos] = alphabet[rng.below(alphabet.size())];
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        case 2:  // insert
          text.insert(pos, 1, alphabet[rng.below(alphabet.size())]);
          break;
        default:  // truncate
          text.resize(pos);
          break;
      }
    }
    // A mutation may leave the text valid (e.g. it touched only a
    // numeric value); what it must never do is escape with anything but
    // std::invalid_argument.
    try {
      const trace::ParsedTrace parsed = trace::parse_trace(text);
      trace::serialize_trace(parsed.header, parsed.slots);
      ++parsed_ok;
    } catch (const std::invalid_argument&) {
      // expected for most mutations
    }
  }
  // Sanity: the campaign is meaningful — most mutations must actually
  // corrupt the text (if everything still parsed, the oracle is dead).
  EXPECT_LT(parsed_ok, 400);
}

TEST(SerializeFuzz, VerifyTraceTextAcceptsEngineOutput) {
  const std::string text = serialized_trace_of(777);
  const trace::CheckResult res = trace::verify_trace_text(text);
  EXPECT_TRUE(res.ok) << res.what;
}

}  // namespace
}  // namespace asyncmac
