// Robustness and failure-injection tests: regime-flipping slot
// adversaries, the adaptive max-queue injector, AO-ARRoW over a non-
// async-safe election subroutine, exhaustive small-case SST sweeps, and
// randomized differential fuzzing of the engine against the channel
// model.
#include <gtest/gtest.h>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "baselines/listen.h"
#include "baselines/sync_binary_le.h"
#include "core/abs.h"
#include "core/ao_arrow.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "sim_helpers.h"
#include "trace/invariants.h"

namespace asyncmac {
namespace {

using adversary::MaxQueueInjector;
using adversary::RegimeFlipSlotPolicy;
using adversary::SaturatingInjector;
using adversary::TargetPattern;
using adversary::UniformSlotPolicy;

constexpr Tick U = kTicksPerUnit;

// ------------------------------------------------------------ regime flip

TEST(RegimeFlip, SwitchesPoliciesAtFlipTime) {
  RegimeFlipSlotPolicy p(std::make_unique<UniformSlotPolicy>(U),
                         std::make_unique<UniformSlotPolicy>(3 * U),
                         100 * U);
  EXPECT_EQ(p.slot_length(1, 1, 0, SlotAction::kListen), U);
  EXPECT_EQ(p.slot_length(1, 50, 99 * U, SlotAction::kListen), U);
  EXPECT_EQ(p.slot_length(1, 51, 100 * U, SlotAction::kListen), 3 * U);
  EXPECT_EQ(p.slot_length(2, 9, 500 * U, SlotAction::kListen), 3 * U);
}

TEST(RegimeFlip, RejectsNullRegimes) {
  EXPECT_THROW(RegimeFlipSlotPolicy(nullptr,
                                    std::make_unique<UniformSlotPolicy>(U),
                                    0),
               std::invalid_argument);
}

TEST(RegimeFlip, ArrowProtocolsSurviveMidRunRegimeChange) {
  // Warm up synchronous, then flip to maximal stretching: state built
  // under the old regime must not wedge the protocols.
  for (int variant = 0; variant < 2; ++variant) {
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 3;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i) {
      if (variant == 0)
        ps.push_back(std::make_unique<core::AoArrowProtocol>());
      else
        ps.push_back(std::make_unique<core::CaArrowProtocol>());
    }
    sim::Engine e(
        cfg, std::move(ps),
        std::make_unique<RegimeFlipSlotPolicy>(
            std::make_unique<UniformSlotPolicy>(U),
            std::make_unique<UniformSlotPolicy>(3 * U), 50000 * U),
        std::make_unique<SaturatingInjector>(util::Ratio(25, 100), 8 * U,
                                             TargetPattern::kRoundRobin));
    e.run(sim::until(200000 * U));
    EXPECT_GT(e.stats().delivered_packets,
              e.stats().injected_packets * 9 / 10)
        << (variant == 0 ? "AO" : "CA");
    EXPECT_LT(e.stats().queued_cost, 2000 * U);
    if (variant == 1) {
      EXPECT_EQ(e.channel_stats().collided, 0u);
    }
  }
}

// -------------------------------------------------------- max-queue chase

TEST(MaxQueueInjector, TargetsTheLongestQueue) {
  sim::EngineConfig cfg;
  cfg.n = 3;
  cfg.bound_r = 1;
  sim::Engine e(
      cfg,
      asyncmac::testing::make_protocols<baselines::ListenProtocol>(3),
      asyncmac::testing::make_slot_policy("sync", 3, 1),
      std::make_unique<MaxQueueInjector>(util::Ratio(1, 2), 4 * U));
  e.run(sim::until(100 * U));
  // Nobody ever drains, so once station 1 gets the first packet it stays
  // the max-queue station and receives everything.
  EXPECT_GT(e.queue_size(1), 0u);
  EXPECT_EQ(e.queue_size(2), 0u);
  EXPECT_EQ(e.queue_size(3), 0u);
}

TEST(MaxQueueInjector, ArrowProtocolsRemainStableUnderAdaptivePressure) {
  for (int variant = 0; variant < 2; ++variant) {
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i) {
      if (variant == 0)
        ps.push_back(std::make_unique<core::AoArrowProtocol>());
      else
        ps.push_back(std::make_unique<core::CaArrowProtocol>());
    }
    sim::Engine e(cfg, std::move(ps),
                  asyncmac::testing::make_slot_policy("perstation", 4, 2),
                  std::make_unique<MaxQueueInjector>(util::Ratio(6, 10),
                                                     12 * U));
    e.run(sim::until(200000 * U));
    EXPECT_LT(e.stats().max_queued_cost, 2000 * U)
        << (variant == 0 ? "AO" : "CA");
    EXPECT_GT(e.stats().delivered_packets,
              e.stats().injected_packets / 2);
  }
}

// ------------------------------------- AO-ARRoW over a non-async-safe LE

TEST(PluggableElection, AoOverSyncBinaryLeWorksAtR1) {
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 1;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  for (int i = 0; i < 4; ++i)
    ps.push_back(std::make_unique<core::AoArrowProtocol>(
        baselines::SyncBinaryLeAutomaton::factory()));
  sim::Engine e(cfg, std::move(ps),
                asyncmac::testing::make_slot_policy("sync", 4, 1),
                std::make_unique<SaturatingInjector>(
                    util::Ratio(1, 2), 8 * U, TargetPattern::kRoundRobin));
  e.run(sim::until(100000 * U));
  EXPECT_GT(e.stats().delivered_packets,
            e.stats().injected_packets * 9 / 10);
  EXPECT_LT(e.stats().max_queued_cost, 1000 * U);
}

TEST(PluggableElection, AoOverSyncBinaryLeMisfiresUnderDriftingSchedules) {
  // Swap the synchronous binary search into AO-ARRoW under a *drifting*
  // asynchronous schedule: the AO wrapper's recovery machinery keeps the
  // system limping (a measured finding — misfired elections are absorbed
  // by the await-ack / long-silence paths), but the misfires are plainly
  // visible as an order of magnitude more collisions than the ABS-based
  // composition on the identical run. The workload stays below true
  // capacity (declared rho = 0.5 of unit costs ~ 0.75 utilization on the
  // 1.5-unit average slots of the cyclic schedule).
  auto run_with = [](core::LeaderElectionFactory le) {
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i)
      ps.push_back(std::make_unique<core::AoArrowProtocol>(le));
    auto e = std::make_unique<sim::Engine>(
        cfg, std::move(ps),
        asyncmac::testing::make_slot_policy("cyclic", 4, 2),
        std::make_unique<SaturatingInjector>(util::Ratio(1, 2), 8 * U,
                                             TargetPattern::kRoundRobin));
    e->run(sim::until(100000 * U));
    return e;
  };
  auto sync_le = run_with(baselines::SyncBinaryLeAutomaton::factory());
  auto abs_le = run_with(core::AbsAutomaton::factory());

  EXPECT_GT(sync_le->channel_stats().collided,
            5 * abs_le->channel_stats().collided + 20)
      << "sync-LE elections should misfire into far more collisions";
  // The ABS-based composition is cleanly healthy on the same run.
  EXPECT_LT(abs_le->stats().queued_cost, 1000 * U);
  EXPECT_GT(abs_le->stats().delivered_packets,
            abs_le->stats().injected_packets * 9 / 10);
}

// ----------------------------------------------- exhaustive small cases

TEST(ExhaustiveSst, AllParticipantSubsetsUpToN4) {
  // Every non-empty subset of {1..4} as the active set, at R in {1, 2}:
  // exactly one subset member must win.
  for (std::uint32_t R : {1u, 2u}) {
    for (unsigned mask = 1; mask < 16; ++mask) {
      sim::EngineConfig cfg;
      cfg.n = 4;
      cfg.bound_r = R;
      std::vector<StationId> participants;
      std::vector<std::unique_ptr<sim::Protocol>> ps;
      for (StationId id = 1; id <= 4; ++id) {
        if (mask & (1u << (id - 1))) {
          participants.push_back(id);
          ps.push_back(std::make_unique<core::AbsProtocol>());
        } else {
          ps.push_back(std::make_unique<baselines::ListenProtocol>());
        }
      }
      sim::Engine e(cfg, std::move(ps),
                    asyncmac::testing::make_slot_policy("perstation", 4, R),
                    asyncmac::testing::sst_messages(participants));
      sim::StopCondition stop;
      stop.max_time = 100000 * U;
      stop.predicate = [](const sim::Engine& eng) {
        return eng.channel_stats().successful >= 1;
      };
      e.run(stop);
      e.run(sim::until(e.now() + static_cast<Tick>(R) * U));
      std::uint32_t winners = 0;
      StationId winner = kInvalidStation;
      for (StationId id : participants) {
        const auto* abs =
            dynamic_cast<const core::AbsProtocol&>(e.protocol(id))
                .automaton();
        if (abs &&
            abs->outcome() == core::AbsAutomaton::Outcome::kWon) {
          ++winners;
          winner = id;
        }
      }
      ASSERT_EQ(winners, 1u) << "mask=" << mask << " R=" << R;
      ASSERT_NE(std::find(participants.begin(), participants.end(), winner),
                participants.end());
    }
  }
}

// --------------------------------------------------- differential fuzzing

/// Takes random actions (control transmissions with probability ~0.3);
/// together with the trace invariant checkers this fuzzes the engine
/// against an independent replay of the channel model.
class RandomChatterProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<RandomChatterProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>&,
                         sim::StationContext& ctx) override {
    return ctx.rng().chance(0.3) ? SlotAction::kTransmitControl
                                 : SlotAction::kListen;
  }
  std::string name() const override { return "random-chatter"; }
};

TEST(Fuzz, RandomActionsAlwaysReplayConsistently) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::EngineConfig cfg;
    cfg.n = 5;
    cfg.bound_r = 4;
    cfg.seed = seed;
    cfg.record_trace = true;
    sim::Engine e(
        cfg,
        asyncmac::testing::make_protocols<RandomChatterProtocol>(5),
        asyncmac::testing::make_slot_policy("random", 5, 4, seed * 31),
        nullptr);
    e.run(sim::until(3000 * U));
    const auto& slots = e.trace().slots();
    ASSERT_GT(slots.size(), 1000u);
    const auto contiguous = trace::check_slot_contiguity(slots);
    ASSERT_TRUE(contiguous) << "seed " << seed << ": " << contiguous.what;
    const auto consistent = trace::check_feedback_consistency(slots);
    ASSERT_TRUE(consistent) << "seed " << seed << ": " << consistent.what;
  }
}

TEST(Fuzz, MixedProtocolZooStaysConsistent) {
  // A deliberately chaotic mix: chatterers, CA-ARRoW and AO-ARRoW share
  // one channel (nonsensical as a deployment, perfect as a stressor).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::EngineConfig cfg;
    cfg.n = 6;
    cfg.bound_r = 3;
    cfg.seed = seed;
    cfg.record_trace = true;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    ps.push_back(std::make_unique<RandomChatterProtocol>());
    ps.push_back(std::make_unique<core::AoArrowProtocol>());
    ps.push_back(std::make_unique<core::CaArrowProtocol>());
    ps.push_back(std::make_unique<RandomChatterProtocol>());
    ps.push_back(std::make_unique<core::AoArrowProtocol>());
    ps.push_back(std::make_unique<core::CaArrowProtocol>());
    sim::Engine e(cfg, std::move(ps),
                  asyncmac::testing::make_slot_policy("random", 6, 3,
                                                      seed * 17),
                  std::make_unique<SaturatingInjector>(
                      util::Ratio(2, 10), 6 * U,
                      TargetPattern::kRoundRobin));
    e.run(sim::until(3000 * U));
    const auto consistent =
        trace::check_feedback_consistency(e.trace().slots());
    ASSERT_TRUE(consistent) << "seed " << seed << ": " << consistent.what;
  }
}

}  // namespace
}  // namespace asyncmac
