// Tests for the arrival-driven live channel (live/channel.h): open
// transmissions make overlapping slots busy but never ack, and once all
// intervals are closed the answers and cumulative stats are identical to
// the simulation ledger fed the same schedule — the stats-parity half of
// the sim-vs-live differential.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "live/channel.h"
#include "util/rng.h"

namespace asyncmac::live {
namespace {

constexpr Tick U = kTicksPerUnit;

TEST(LiveChannel, OpenTransmissionIsBusyNeverAck) {
  LiveChannel ch;
  ch.begin_tx(1, 10, /*is_control=*/false, /*packet=*/1);
  EXPECT_TRUE(ch.has_open(1));
  // Any slot overlapping [10, inf) is busy; nothing has ended, so no ack.
  EXPECT_EQ(ch.feedback(0, 10), Feedback::kSilence);  // touching, no overlap
  EXPECT_EQ(ch.feedback(5, 15), Feedback::kBusy);
  EXPECT_EQ(ch.feedback(100, 200), Feedback::kBusy);
  EXPECT_EQ(ch.stats().transmissions, 1u);
  EXPECT_EQ(ch.stats().successful, 0u);
  EXPECT_EQ(ch.stats().collided, 0u);
}

TEST(LiveChannel, LoneClosedTransmissionAcks) {
  LiveChannel ch;
  ch.begin_tx(1, 10, false, 1);
  EXPECT_TRUE(ch.close_tx(1, 20));
  EXPECT_FALSE(ch.has_open(1));
  // Ack iff the successful end lands in (s, t].
  EXPECT_EQ(ch.feedback(10, 20), Feedback::kAck);
  EXPECT_EQ(ch.feedback(15, 25), Feedback::kAck);
  EXPECT_EQ(ch.feedback(20, 30), Feedback::kSilence);  // end not in (20, 30]
  EXPECT_EQ(ch.feedback(0, 10), Feedback::kSilence);
  EXPECT_EQ(ch.stats().successful, 1u);
  EXPECT_EQ(ch.stats().successful_packets, 1u);
  EXPECT_EQ(ch.stats().successful_packet_time, 10);
}

TEST(LiveChannel, OverlapCollidesBothWays) {
  LiveChannel ch;
  ch.begin_tx(1, 0, false, 1);
  ch.begin_tx(2, 5, false, 2);
  // Station 1 closes first at 10: overlaps [5, open) -> collided.
  EXPECT_FALSE(ch.close_tx(1, 10));
  // Station 2 closes at 12: overlaps the closed [0, 10) -> collided.
  EXPECT_FALSE(ch.close_tx(2, 12));
  EXPECT_EQ(ch.stats().collided, 2u);
  EXPECT_EQ(ch.stats().successful, 0u);
  EXPECT_EQ(ch.feedback(0, 12), Feedback::kBusy);
}

TEST(LiveChannel, TouchingEndpointsDoNotCollide) {
  LiveChannel ch;
  ch.begin_tx(1, 0, false, 1);
  EXPECT_TRUE(ch.close_tx(1, 10));
  ch.begin_tx(2, 10, false, 2);  // back-to-back, no overlap
  EXPECT_TRUE(ch.close_tx(2, 20));
  EXPECT_EQ(ch.stats().successful, 2u);
  EXPECT_EQ(ch.stats().collided, 0u);
}

TEST(LiveChannel, ControlTransmissionsCountSeparately) {
  LiveChannel ch;
  ch.begin_tx(1, 0, /*is_control=*/true, 0);
  EXPECT_TRUE(ch.close_tx(1, 5));
  EXPECT_EQ(ch.stats().transmissions, 1u);
  EXPECT_EQ(ch.stats().control_transmissions, 1u);
  EXPECT_EQ(ch.stats().successful, 1u);
  EXPECT_EQ(ch.stats().successful_packets, 0u);
  EXPECT_EQ(ch.stats().successful_control_time, 5);
  EXPECT_EQ(ch.stats().successful_packet_time, 0);
  // A successful control transmission still acks its slot.
  EXPECT_EQ(ch.feedback(0, 5), Feedback::kAck);
}

TEST(LiveChannel, PrunePreservesStatsAndKeepsOpenEntries) {
  LiveChannel ch;
  ch.begin_tx(1, 0, false, 1);
  EXPECT_TRUE(ch.close_tx(1, 10));
  ch.begin_tx(2, 20, false, 2);  // stays open across the prune
  ch.prune_before(15);
  EXPECT_EQ(ch.window_size(), 1u);  // closed [0,10) dropped, open kept
  EXPECT_TRUE(ch.has_open(2));
  EXPECT_EQ(ch.stats().successful, 1u);
  EXPECT_EQ(ch.stats().transmissions, 2u);
  // Later slots still see the open transmission.
  EXPECT_EQ(ch.feedback(25, 30), Feedback::kBusy);
}

// ----------------------------------------------------- ledger differential

struct ScheduledTx {
  StationId station;
  Tick begin;
  Tick end;
  bool is_control;
};

/// Seeded random schedule: per station a chain of non-overlapping slots
/// with random lengths and idle gaps, transmitting with probability 1/2.
/// Cross-station overlap is unconstrained — exactly the regime where
/// success/collision decisions are interesting.
std::vector<ScheduledTx> random_schedule(std::uint64_t seed, int stations,
                                         int slots_per_station) {
  util::Rng rng(seed);
  std::vector<ScheduledTx> txs;
  for (StationId s = 1; s <= static_cast<StationId>(stations); ++s) {
    Tick t = static_cast<Tick>(rng.below(5)) * U;
    for (int k = 0; k < slots_per_station; ++k) {
      const Tick len = (1 + static_cast<Tick>(rng.below(4))) * U;
      if (rng.below(2) == 0)
        txs.push_back({s, t, t + len, rng.below(8) == 0});
      t += len + static_cast<Tick>(rng.below(3)) * U;
    }
  }
  std::sort(txs.begin(), txs.end(),
            [](const ScheduledTx& a, const ScheduledTx& b) {
              return a.begin < b.begin ||
                     (a.begin == b.begin && a.station < b.station);
            });
  return txs;
}

TEST(LiveChannelDifferential, MatchesLedgerOnRandomSchedules) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    const auto txs = random_schedule(seed, 5, 40);
    ASSERT_FALSE(txs.empty());

    // Ledger: full intervals in begin order (the engine's add pattern).
    channel::Ledger ledger;
    Tick latest_end = 0;
    for (const auto& tx : txs) {
      channel::Transmission t;
      t.station = tx.station;
      t.begin = tx.begin;
      t.end = tx.end;
      t.is_control = tx.is_control;
      t.packet = tx.is_control ? 0 : 1;
      ledger.add(t);
      latest_end = std::max(latest_end, tx.end);
    }

    // LiveChannel: begins in begin order, each closed once every earlier
    // begin is registered (the daemon's wave ordering). Interleave by
    // merging: before registering a begin at time b, close everything
    // ending at or before b; drain the rest at the end.
    LiveChannel live;
    std::vector<ScheduledTx> open;
    auto close_until = [&](Tick t) {
      std::sort(open.begin(), open.end(),
                [](const ScheduledTx& a, const ScheduledTx& b) {
                  return a.end < b.end;
                });
      while (!open.empty() && open.front().end <= t) {
        live.close_tx(open.front().station, open.front().end);
        open.erase(open.begin());
      }
    };
    for (const auto& tx : txs) {
      close_until(tx.begin);
      live.begin_tx(tx.station, tx.begin, tx.is_control,
                    tx.is_control ? 0 : 1);
      open.push_back(tx);
    }
    close_until(latest_end);
    ASSERT_TRUE(open.empty());

    // Force the ledger to finalize everything so stats are comparable.
    ledger.finalize_until(latest_end);
    EXPECT_EQ(live.stats().transmissions, ledger.stats().transmissions);
    EXPECT_EQ(live.stats().successful, ledger.stats().successful);
    EXPECT_EQ(live.stats().collided, ledger.stats().collided);
    EXPECT_EQ(live.stats().control_transmissions,
              ledger.stats().control_transmissions);
    EXPECT_EQ(live.stats().successful_packets,
              ledger.stats().successful_packets);
    EXPECT_EQ(live.stats().successful_packet_time,
              ledger.stats().successful_packet_time);
    EXPECT_EQ(live.stats().successful_control_time,
              ledger.stats().successful_control_time);

    // Feedback parity over a dense sweep of query windows, including
    // ones straddling interval boundaries.
    util::Rng qrng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (int q = 0; q < 500; ++q) {
      const Tick s = static_cast<Tick>(
          qrng.below(static_cast<std::uint64_t>(latest_end)));
      const Tick t =
          s + 1 +
          static_cast<Tick>(qrng.below(static_cast<std::uint64_t>(4 * U)));
      EXPECT_EQ(live.feedback(s, t), ledger.feedback(s, t))
          << "seed=" << seed << " window=[" << s << "," << t << ")";
    }
  }
}

}  // namespace
}  // namespace asyncmac::live
