#include "baselines/aloha.h"

// SlottedAlohaProtocol is header-only; this file anchors the translation
// unit for the baselines library target.
