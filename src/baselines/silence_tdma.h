// asyncmac/baselines/silence_tdma.h
//
// SilenceCountTdma — a natural collision-free, no-control-message
// protocol used to exhibit Theorem 4 (Section V): the channel's run of
// consecutive silent slots is common knowledge on a synchronous channel
// (every slot is globally silent or globally busy), so stations implement
// TDMA over it — station i transmits one packet exactly when the silent
// run length is congruent to i modulo n and its queue is non-empty; any
// transmission resets everyone's run counter.
//
// On the synchronous channel at most one residue class fires per slot, so
// the protocol never collides, uses no control messages, and sustains a
// positive stable rate (TDMA round of n slots). Under bounded asynchrony
// the run counters of different stations drift apart; Theorem 4's
// adversary stretches two stations' slots so their first transmissions
// coincide in real time, forcing a collision — or, if a protocol delays
// transmissions to avoid that, unbounded queues.
// adversary/collision_forcer.h implements that construction against this
// protocol.
#pragma once

#include "sim/protocol.h"

namespace asyncmac::baselines {

class SilenceCountTdmaProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "silence-count-TDMA"; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  std::uint64_t silent_run_ = 0;
};

}  // namespace asyncmac::baselines
