#include "baselines/tree_resolution.h"

#include <bit>

#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::baselines {

TreeResolutionAutomaton::TreeResolutionAutomaton(std::uint32_t id,
                                                 std::uint32_t n)
    : id_(id), bit_(std::bit_width(n)), counter_(0) {
  AM_REQUIRE(id >= 1 && id <= n, "id must be in [1, n]");
}

core::LeaderElectionFactory TreeResolutionAutomaton::factory() {
  return [](StationId id, std::uint32_t n, std::uint32_t /*bound_r*/) {
    return std::make_unique<TreeResolutionAutomaton>(id, n);
  };
}

SlotAction TreeResolutionAutomaton::decide() {
  ++slots_;
  return counter_ == 0 ? SlotAction::kTransmitPacket : SlotAction::kListen;
}

SlotAction TreeResolutionAutomaton::next(
    const std::optional<sim::SlotResult>& prev) {
  if (outcome_ != Outcome::kActive) return SlotAction::kListen;
  if (!prev) return decide();  // round 1: every contender transmits

  const bool transmitted = prev->action != SlotAction::kListen;
  switch (prev->feedback) {
    case Feedback::kAck:
      // First success ends the election (SST semantics).
      outcome_ = transmitted ? Outcome::kWon : Outcome::kEliminated;
      return SlotAction::kListen;

    case Feedback::kBusy:
      if (transmitted) {
        // Our group collided: split on the next ID bit (MSB first); the
        // 0-half retries immediately, the 1-half waits on the stack.
        AM_CHECK_MSG(bit_ > 0, "distinct IDs must split before bits run out");
        --bit_;
        if ((id_ >> bit_) & 1U) counter_ = 1;
      } else {
        // A group below us collided and split: our stack deepens.
        ++counter_;
      }
      return decide();

    case Feedback::kSilence:
      // The scheduled group was empty: the stack pops.
      AM_CHECK(!transmitted);
      --counter_;
      AM_CHECK(counter_ >= 0);
      return decide();
  }
  AM_CHECK(false);
  return SlotAction::kListen;
}

SlotAction TreeResolutionProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (!automaton_) automaton_.emplace(ctx.id(), ctx.n());
  SlotAction a = automaton_->next(prev);
  if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
    a = SlotAction::kTransmitControl;
  return a;
}

void TreeResolutionAutomaton::save_state(snapshot::Writer& w) const {
  w.u32(id_);
  w.u32(bit_);
  w.i64(counter_);
  w.u8(static_cast<std::uint8_t>(outcome_));
  w.u64(slots_);
}

void TreeResolutionAutomaton::load_state(snapshot::Reader& r) {
  id_ = r.u32();
  bit_ = r.u32();
  counter_ = r.i64();
  outcome_ = static_cast<Outcome>(r.u8());
  slots_ = r.u64();
}

void TreeResolutionProtocol::save_state(snapshot::Writer& w) const {
  w.boolean(automaton_.has_value());
  if (automaton_) automaton_->save_state(w);
}

void TreeResolutionProtocol::load_state(snapshot::Reader& r,
                                        sim::StationContext& ctx) {
  if (r.boolean()) {
    automaton_.emplace(ctx.id(), ctx.n());
    automaton_->load_state(r);
  } else {
    automaton_.reset();
  }
}

}  // namespace asyncmac::baselines
