// asyncmac/baselines/rrw.h
//
// RRW — Round-Robin Withholding (Chlebus, Kowalski, Rokicki, "Adversarial
// queuing on the multiple access channel", ref. [11] of the paper): the
// synchronous state of the art for the most restrictive model row of
// Table I (no control messages, collision-free).
//
// Stations take turns; the holder *withholds* the channel while its queue
// is non-empty, one packet per slot; a globally silent slot passes the
// turn. On the synchronous channel (R = 1) every slot is silent or busy
// for everyone simultaneously, so the shared `turn` counter stays
// consistent, the protocol is collision-free without any control traffic,
// and it is universally stable for every rho < 1.
//
// Under bounded asynchrony (R > 1) stations observe silence in different
// slots, `turn` diverges, and the protocol collides and destabilizes —
// the behaviour Theorem 4 proves is unavoidable for this model row, and
// the contrast row of Table I.
#pragma once

#include "sim/protocol.h"

namespace asyncmac::baselines {

class RrwProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "RRW"; }

  StationId turn() const noexcept { return turn_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  StationId turn_ = 1;
};

}  // namespace asyncmac::baselines
