#include "baselines/mbtf.h"

#include <algorithm>

#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::baselines {

std::unique_ptr<sim::Protocol> MbtfProtocol::clone() const {
  return std::make_unique<MbtfProtocol>(*this);
}

void MbtfProtocol::ensure_init(const sim::StationContext& ctx) {
  if (!list_.empty()) return;
  list_.resize(ctx.n());
  for (std::uint32_t i = 0; i < ctx.n(); ++i)
    list_[i] = static_cast<StationId>(i + 1);
}

StationId MbtfProtocol::holder() const {
  AM_CHECK(!list_.empty());
  return list_[token_];
}

void MbtfProtocol::sequence_ended(const sim::StationContext& ctx) {
  const bool big = seq_len_ >= ctx.n();
  const StationId h = list_[token_];
  const std::size_t next_index = (token_ + 1) % list_.size();
  const StationId successor = list_[next_index];
  if (big && seq_len_ > 0) {
    // Move the big holder to the front; the token continues with the
    // holder's old successor, whose index may have shifted by the move.
    list_.erase(list_.begin() +
                static_cast<std::vector<StationId>::difference_type>(token_));
    list_.insert(list_.begin(), h);
  }
  token_ = static_cast<std::size_t>(
      std::find(list_.begin(), list_.end(), successor) - list_.begin());
  AM_CHECK(token_ < list_.size());
  seq_len_ = 0;
}

SlotAction MbtfProtocol::next_action(const std::optional<sim::SlotResult>& prev,
                                     sim::StationContext& ctx) {
  ensure_init(ctx);
  if (prev) {
    if (prev->feedback == Feedback::kSilence) {
      sequence_ended(ctx);
    } else {
      ++seq_len_;
    }
  }
  if (list_[token_] == ctx.id() && !ctx.queue_empty())
    return SlotAction::kTransmitPacket;
  return SlotAction::kListen;
}

void MbtfProtocol::save_state(snapshot::Writer& w) const {
  w.u64(list_.size());
  for (StationId s : list_) w.u32(s);
  w.u64(token_);
  w.u64(seq_len_);
}

void MbtfProtocol::load_state(snapshot::Reader& r, sim::StationContext&) {
  const std::uint64_t count = r.u64();
  list_.clear();
  list_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) list_.push_back(r.u32());
  token_ = static_cast<std::size_t>(r.u64());
  seq_len_ = r.u64();
}

}  // namespace asyncmac::baselines
