// asyncmac/baselines/aloha.h
//
// Slotted ALOHA (Abramson / Roberts; refs. [1], [12] of the paper): the
// classic randomized baseline the introduction contrasts against. A
// station with a non-empty queue transmits its head-of-line packet in
// each slot independently with probability p (default 1/n). Stable only
// for low arrival rates (throughput at most 1/e in the classic analysis);
// included so benchmarks can show the deterministic ARRoW protocols
// sustaining rates ALOHA cannot.
#pragma once

#include "sim/protocol.h"

namespace asyncmac::baselines {

class SlottedAlohaProtocol final : public sim::Protocol {
 public:
  /// p <= 0 selects the classic 1/n.
  explicit SlottedAlohaProtocol(double transmit_probability = 0.0)
      : p_(transmit_probability) {}

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<SlottedAlohaProtocol>(*this);
  }

  SlotAction next_action(const std::optional<sim::SlotResult>&,
                         sim::StationContext& ctx) override {
    if (ctx.queue_empty()) return SlotAction::kListen;
    const double p = p_ > 0 ? p_ : 1.0 / static_cast<double>(ctx.n());
    return ctx.rng().chance(p) ? SlotAction::kTransmitPacket
                               : SlotAction::kListen;
  }

  std::string name() const override { return "slotted-ALOHA"; }

 private:
  double p_;
};

}  // namespace asyncmac::baselines
