#include "baselines/silence_tdma.h"

#include "snapshot/io.h"

namespace asyncmac::baselines {

std::unique_ptr<sim::Protocol> SilenceCountTdmaProtocol::clone() const {
  return std::make_unique<SilenceCountTdmaProtocol>(*this);
}

SlotAction SilenceCountTdmaProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (prev) {
    if (prev->action != SlotAction::kListen ||
        prev->feedback != Feedback::kSilence) {
      silent_run_ = 0;  // own transmission or busy/ack resets the run
    } else {
      ++silent_run_;
    }
  }
  if (!ctx.queue_empty() &&
      silent_run_ % ctx.n() == ctx.id() % ctx.n()) {
    return SlotAction::kTransmitPacket;
  }
  return SlotAction::kListen;
}

void SilenceCountTdmaProtocol::save_state(snapshot::Writer& w) const {
  w.u64(silent_run_);
}

void SilenceCountTdmaProtocol::load_state(snapshot::Reader& r,
                                          sim::StationContext&) {
  silent_run_ = r.u64();
}

}  // namespace asyncmac::baselines
