// asyncmac/baselines/sync_binary_le.h
//
// Synchronous binary-search leader election (the Theta(log n) classic the
// paper cites for R = 1, refs. [20], [23]): one slot per ID bit, least
// significant first. In each phase every alive station whose current bit
// is 0 transmits; on the synchronous channel the feedback decides the
// phase globally —
//   ack     : the single transmitter won, everyone else is eliminated;
//   busy    : at least two 0-stations collided, all 1-stations drop out;
//   silence : no 0-stations, the 1-stations survive.
// Distinct IDs leave at most one survivor once the bits are exhausted;
// bits beyond the ID width read 0, so the survivor transmits alone and
// wins. Total slots <= bit_width(n) + 1.
//
// Correct only on the synchronous channel (R = 1) — the whole point of
// ABS is that this simple search breaks under slot stretching; the SST
// benchmarks use it as the R = 1 reference line, and AO-ARRoW can be
// instantiated over it (core::LeaderElection) to show that an
// asynchrony-safe subroutine is load-bearing.
#pragma once

#include "core/leader_election.h"
#include "sim/protocol.h"

namespace asyncmac::baselines {

/// The election automaton (embeddable in AO-ARRoW).
class SyncBinaryLeAutomaton final : public core::LeaderElection {
 public:
  explicit SyncBinaryLeAutomaton(std::uint32_t id) : id_(id) {}

  SlotAction next(const std::optional<sim::SlotResult>& prev) override;
  Outcome outcome() const noexcept override { return outcome_; }
  std::uint64_t slots() const noexcept override { return slots_; }
  std::unique_ptr<core::LeaderElection> clone() const override {
    return std::make_unique<SyncBinaryLeAutomaton>(*this);
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  static core::LeaderElectionFactory factory();

 private:
  SlotAction phase_action();

  std::uint32_t id_;
  Outcome outcome_ = Outcome::kActive;
  std::uint32_t phase_ = 0;
  std::uint64_t slots_ = 0;
};

/// Standalone Protocol wrapper for SST experiments at R = 1.
class SyncBinaryLeProtocol final : public sim::Protocol {
 public:
  using Outcome = core::LeaderElection::Outcome;
  /// Backwards-compatible aliases used by tests and benches.
  static constexpr Outcome kActive = Outcome::kActive;

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<SyncBinaryLeProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "sync-binary-LE"; }
  bool finished() const override {
    return automaton_ && automaton_->outcome() != Outcome::kActive;
  }

  Outcome outcome() const {
    return automaton_ ? automaton_->outcome() : Outcome::kActive;
  }
  std::uint64_t slots() const { return automaton_ ? automaton_->slots() : 0; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  std::optional<SyncBinaryLeAutomaton> automaton_;
};

}  // namespace asyncmac::baselines
