// asyncmac/baselines/csma_lbt.h
//
// Carrier-sensing listen-before-talk (CSMA/LBT) — the channel-access
// discipline of unlicensed-band MACs (ETSI EN 301 893 LBT, 802.11 CCA):
// a station with packets first *senses* the medium for a gap of M
// consecutive idle observation slots, then counts down a random backoff
// drawn from a contention window, and only then transmits. A failed
// transmission doubles the window (capped) and the whole gap + backoff
// procedure restarts; a success resets the window.
//
// In the paper's feedback model a station's only carrier sense is the
// feedback of its own slots: kSilence means the medium was idle for the
// whole slot, kBusy/kAck mean some transmission touched it. The gap is
// therefore counted in *own listen slots that came back silent* — under
// asynchronous slot policies different stations observe different gap
// lengths in real time, which is exactly the asynchrony stress the
// ARRoW protocols are built to survive and this baseline is not.
//
// Like BEB this is randomized (ctx.rng()) and offers no worst-case
// queue bound; unlike BEB it never transmits into a slot it just heard
// traffic in, so its collision rate is lower at the price of deferral
// latency (the bench_energy suite measures that trade-off).
#pragma once

#include <algorithm>

#include "sim/protocol.h"
#include "snapshot/io.h"

namespace asyncmac::baselines {

class CsmaLbtProtocol final : public sim::Protocol {
 public:
  /// `gap_slots` is the LBT deter period: consecutive silent listen
  /// slots required before the backoff countdown may run (M observation
  /// slots). `initial_window`/`max_window` bound the contention window
  /// the backoff is drawn from.
  explicit CsmaLbtProtocol(std::uint32_t gap_slots = 2,
                           std::uint32_t initial_window = 4,
                           std::uint32_t max_window = 1024)
      : gap_slots_(gap_slots),
        window_(initial_window),
        initial_window_(initial_window),
        max_window_(max_window) {}

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<CsmaLbtProtocol>(*this);
  }

  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override {
    if (prev) {
      if (prev->action == SlotAction::kTransmitPacket) {
        if (prev->delivered) {
          window_ = initial_window_;
        } else {
          window_ = std::min(window_ * 2, max_window_);
        }
        backoff_ = ctx.rng().below(window_);
        idle_run_ = 0;  // re-sense the gap before the next attempt
      } else if (prev->feedback == Feedback::kSilence) {
        ++idle_run_;
      } else {
        // Heard traffic: the gap restarts, and a busy medium also
        // freezes the backoff countdown (only slots past the gap with a
        // silent history decrement it below).
        idle_run_ = 0;
      }
    }
    if (ctx.queue_empty()) return SlotAction::kListen;
    if (idle_run_ < gap_slots_) return SlotAction::kListen;  // sensing
    if (backoff_ > 0) {
      --backoff_;
      return SlotAction::kListen;  // idle observation slot, counted down
    }
    return SlotAction::kTransmitPacket;
  }

  std::string name() const override { return "CSMA-LBT"; }

  void save_state(snapshot::Writer& w) const override {
    w.u32(window_);
    w.u64(backoff_);
    w.u64(idle_run_);
  }
  void load_state(snapshot::Reader& r, sim::StationContext&) override {
    window_ = r.u32();
    backoff_ = r.u64();
    idle_run_ = r.u64();
  }

 private:
  std::uint32_t gap_slots_;
  std::uint32_t window_;
  std::uint32_t initial_window_;
  std::uint32_t max_window_;
  std::uint64_t backoff_ = 0;
  std::uint64_t idle_run_ = 0;  ///< consecutive silent own listen slots
};

}  // namespace asyncmac::baselines
