// asyncmac/baselines/tree_resolution.h
//
// Capetanakis tree resolution (the paper's ref. [20], "Tree algorithms
// for packet broadcast channels") — the classic synchronous contention
// resolver: all contenders transmit; on a collision the group splits by
// the next ID bit, the 0-half retries immediately while the 1-half (and
// every later group) waits, tracked by a local stack counter that every
// station updates from the shared ternary feedback (collision = busy,
// success = ack, idle = silence).
//
// Used here as an SST baseline at R = 1: the first success ends the
// election. Depth is at most the ID width, so SST completes in O(n)
// slots worst case and O(log n) when few stations contend. Like the
// synchronous binary search, it relies on globally simultaneous feedback
// and is NOT correct under bounded asynchrony — another data point for
// why ABS exists.
#pragma once

#include "core/leader_election.h"
#include "sim/protocol.h"

namespace asyncmac::baselines {

class TreeResolutionAutomaton final : public core::LeaderElection {
 public:
  TreeResolutionAutomaton(std::uint32_t id, std::uint32_t n);

  SlotAction next(const std::optional<sim::SlotResult>& prev) override;
  Outcome outcome() const noexcept override { return outcome_; }
  std::uint64_t slots() const noexcept override { return slots_; }
  std::unique_ptr<core::LeaderElection> clone() const override {
    return std::make_unique<TreeResolutionAutomaton>(*this);
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  static core::LeaderElectionFactory factory();

 private:
  SlotAction decide();

  std::uint32_t id_;
  std::uint32_t bit_;       // next ID bit (from the most significant)
  std::int64_t counter_;    // 0 = in the transmitting group; >0 = waiting
  Outcome outcome_ = Outcome::kActive;
  std::uint64_t slots_ = 0;
};

/// Standalone Protocol wrapper (R = 1 experiments).
class TreeResolutionProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<TreeResolutionProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "tree-resolution"; }
  bool finished() const override {
    return automaton_ &&
           automaton_->outcome() != core::LeaderElection::Outcome::kActive;
  }

  const TreeResolutionAutomaton* automaton() const {
    return automaton_ ? &*automaton_ : nullptr;
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  std::optional<TreeResolutionAutomaton> automaton_;
};

}  // namespace asyncmac::baselines
