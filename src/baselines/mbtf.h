// asyncmac/baselines/mbtf.h
//
// MBTF — Move-Big-To-Front (after Chlebus, Kowalski, Rokicki, "Maximum
// throughput of multiple access channels in adversarial environments",
// ref. [6] of the paper): the synchronous comparator of Table I's three
// less restrictive rows, universally stable at R = 1 with queues
// O(n^2 + b).
//
// Rendering used here (documented adaptation — see DESIGN.md): all
// stations simulate a shared list of station IDs, initially sorted by ID,
// plus a token position. The token holder withholds the channel while its
// queue is non-empty (one packet per slot); a globally silent slot ends
// its sequence. At a sequence end every station applies the same update:
// if the holder's transmission sequence was "big" (>= n packets) the
// holder is moved to the front of the list — giving heavily loaded
// stations priority on the next cycle, the defining trait of MBTF — and
// the token advances to the holder's old successor. Feedback at R = 1 is
// global, so the simulated lists never diverge.
#pragma once

#include <vector>

#include "sim/protocol.h"

namespace asyncmac::baselines {

class MbtfProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "MBTF"; }

  StationId holder() const;
  const std::vector<StationId>& list() const noexcept { return list_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  void ensure_init(const sim::StationContext& ctx);
  void sequence_ended(const sim::StationContext& ctx);

  std::vector<StationId> list_;  // shared (simulated) station order
  std::size_t token_ = 0;        // index into list_
  std::uint64_t seq_len_ = 0;    // packets heard in the current sequence
};

}  // namespace asyncmac::baselines
