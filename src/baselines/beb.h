// asyncmac/baselines/beb.h
//
// Binary Exponential Backoff — the contention mechanism of Ethernet and
// (in randomized-slot form) of IEEE 802.11's DCF, which the paper's
// introduction positions the deterministic ARRoW protocols against
// (refs. [1], [18]). A station with packets transmits when its backoff
// counter hits zero; a failed transmission (no ack) doubles the
// contention window (capped) and redraws the counter; a success resets
// the window. Randomized, low-latency at light load, but its throughput
// degrades under sustained pressure and it offers no worst-case queue
// bound — which is exactly what the MSR benchmark shows.
#pragma once

#include "sim/protocol.h"
#include "snapshot/io.h"

namespace asyncmac::baselines {

class BebProtocol final : public sim::Protocol {
 public:
  explicit BebProtocol(std::uint32_t initial_window = 2,
                       std::uint32_t max_window = 1024)
      : window_(initial_window),
        initial_window_(initial_window),
        max_window_(max_window) {}

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<BebProtocol>(*this);
  }

  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override {
    if (prev && prev->action == SlotAction::kTransmitPacket) {
      if (prev->delivered) {
        window_ = initial_window_;
      } else {
        window_ = std::min(window_ * 2, max_window_);
      }
      backoff_ = ctx.rng().below(window_);
    }
    if (ctx.queue_empty()) return SlotAction::kListen;
    if (backoff_ > 0) {
      --backoff_;
      return SlotAction::kListen;
    }
    return SlotAction::kTransmitPacket;
  }

  std::string name() const override { return "BEB"; }

  void save_state(snapshot::Writer& w) const override {
    w.u32(window_);
    w.u64(backoff_);
  }
  void load_state(snapshot::Reader& r, sim::StationContext&) override {
    window_ = r.u32();
    backoff_ = r.u64();
  }

 private:
  std::uint32_t window_;
  std::uint32_t initial_window_;
  std::uint32_t max_window_;
  std::uint64_t backoff_ = 0;
};

}  // namespace asyncmac::baselines
