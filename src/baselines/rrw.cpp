#include "baselines/rrw.h"

#include "snapshot/io.h"

namespace asyncmac::baselines {

std::unique_ptr<sim::Protocol> RrwProtocol::clone() const {
  return std::make_unique<RrwProtocol>(*this);
}

SlotAction RrwProtocol::next_action(const std::optional<sim::SlotResult>& prev,
                                    sim::StationContext& ctx) {
  if (prev && prev->feedback == Feedback::kSilence)
    turn_ = (turn_ % ctx.n()) + 1;
  if (turn_ == ctx.id() && !ctx.queue_empty())
    return SlotAction::kTransmitPacket;
  return SlotAction::kListen;
}

void RrwProtocol::save_state(snapshot::Writer& w) const { w.u32(turn_); }

void RrwProtocol::load_state(snapshot::Reader& r, sim::StationContext&) {
  turn_ = r.u32();
}

}  // namespace asyncmac::baselines
