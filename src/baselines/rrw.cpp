#include "baselines/rrw.h"

namespace asyncmac::baselines {

std::unique_ptr<sim::Protocol> RrwProtocol::clone() const {
  return std::make_unique<RrwProtocol>(*this);
}

SlotAction RrwProtocol::next_action(const std::optional<sim::SlotResult>& prev,
                                    sim::StationContext& ctx) {
  if (prev && prev->feedback == Feedback::kSilence)
    turn_ = (turn_ % ctx.n()) + 1;
  if (turn_ == ctx.id() && !ctx.queue_empty())
    return SlotAction::kTransmitPacket;
  return SlotAction::kListen;
}

}  // namespace asyncmac::baselines
