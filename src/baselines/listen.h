// asyncmac/baselines/listen.h
//
// A station that only ever listens. Used for non-participating stations in
// SST experiments (the paper's SST instance activates an adversarial
// subset of the n stations).
#pragma once

#include "sim/protocol.h"

namespace asyncmac::baselines {

class ListenProtocol final : public sim::Protocol {
 public:
  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<ListenProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>&,
                         sim::StationContext&) override {
    return SlotAction::kListen;
  }
  std::string name() const override { return "listen"; }
};

}  // namespace asyncmac::baselines
