#include "baselines/sync_binary_le.h"

#include "snapshot/io.h"

namespace asyncmac::baselines {

core::LeaderElectionFactory SyncBinaryLeAutomaton::factory() {
  return [](StationId id, std::uint32_t /*n*/, std::uint32_t /*bound_r*/) {
    return std::make_unique<SyncBinaryLeAutomaton>(id);
  };
}

SlotAction SyncBinaryLeAutomaton::phase_action() {
  const bool bit = (id_ >> phase_) & 1U;
  ++slots_;
  return bit ? SlotAction::kListen : SlotAction::kTransmitPacket;
}

SlotAction SyncBinaryLeAutomaton::next(
    const std::optional<sim::SlotResult>& prev) {
  if (outcome_ != Outcome::kActive) return SlotAction::kListen;
  if (!prev) return phase_action();

  const bool transmitted = prev->action != SlotAction::kListen;
  switch (prev->feedback) {
    case Feedback::kAck:
      outcome_ = transmitted ? Outcome::kWon : Outcome::kEliminated;
      return SlotAction::kListen;
    case Feedback::kBusy:
      if (!transmitted) {
        outcome_ = Outcome::kEliminated;  // 0-stations exist; we are a 1
        return SlotAction::kListen;
      }
      break;  // we collided with another 0-station; stay alive
    case Feedback::kSilence:
      break;  // no 0-stations this phase; we are an alive 1
  }
  ++phase_;
  return phase_action();
}

SlotAction SyncBinaryLeProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (!automaton_) automaton_.emplace(ctx.id());
  SlotAction a = automaton_->next(prev);
  if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
    a = SlotAction::kTransmitControl;
  return a;
}

void SyncBinaryLeAutomaton::save_state(snapshot::Writer& w) const {
  w.u32(id_);
  w.u8(static_cast<std::uint8_t>(outcome_));
  w.u32(phase_);
  w.u64(slots_);
}

void SyncBinaryLeAutomaton::load_state(snapshot::Reader& r) {
  id_ = r.u32();
  outcome_ = static_cast<Outcome>(r.u8());
  phase_ = r.u32();
  slots_ = r.u64();
}

void SyncBinaryLeProtocol::save_state(snapshot::Writer& w) const {
  w.boolean(automaton_.has_value());
  if (automaton_) automaton_->save_state(w);
}

void SyncBinaryLeProtocol::load_state(snapshot::Reader& r,
                                      sim::StationContext& ctx) {
  if (r.boolean()) {
    automaton_.emplace(ctx.id());
    automaton_->load_state(r);
  } else {
    automaton_.reset();
  }
}

}  // namespace asyncmac::baselines
