// asyncmac/adversary/protocol_factory.h
#pragma once

#include <functional>
#include <memory>

#include "sim/protocol.h"
#include "util/types.h"

namespace asyncmac::adversary {

/// Creates a fresh protocol instance for a given station. Drivers that
/// construct whole executions (mirror lower bound, collision forcer) need
/// to instantiate protocols repeatedly and in virtual copies.
using ProtocolFactory =
    std::function<std::unique_ptr<sim::Protocol>(StationId)>;

}  // namespace asyncmac::adversary
