// asyncmac/adversary/slot_policies.h
//
// Concrete adversarial schedulers of slot lengths (the "online adversary
// who can make the decision about when to end a slot", Section II). All
// lengths are in ticks and must lie in [1, R] time units; the engine
// enforces the bound, so a policy constructed with parameters outside it
// fails fast.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/slot_policy.h"
#include "util/rng.h"
#include "util/types.h"

namespace asyncmac::adversary {

/// Every station, every slot: the same length. scale = 1 gives the fully
/// synchronous channel (R = 1 rows of Table I).
class UniformSlotPolicy final : public sim::SlotPolicy {
 public:
  /// `length_ticks` in [kTicksPerUnit, R * kTicksPerUnit].
  explicit UniformSlotPolicy(Tick length_ticks = kTicksPerUnit);
  Tick slot_length(StationId, SlotIndex, Tick, SlotAction) override {
    return length_;
  }
  Tick fixed_length(StationId) const override { return length_; }
  std::string name() const override;

 private:
  Tick length_;
};

/// Each station has its own constant slot length — the workhorse for
/// stability experiments, because Def.-1 packet costs are then exact, and
/// the setting used by the Theorem-4 construction (lengths X and Y).
class PerStationSlotPolicy final : public sim::SlotPolicy {
 public:
  /// lengths[i] is the slot length (ticks) of station i+1.
  explicit PerStationSlotPolicy(std::vector<Tick> lengths);
  Tick slot_length(StationId s, SlotIndex, Tick, SlotAction) override;
  Tick fixed_length(StationId s) const override;
  std::string name() const override;

 private:
  std::vector<Tick> lengths_;
};

/// Station i's j-th slot takes pattern[(j-1) % pattern.size()] ticks,
/// with an optional per-station phase shift — produces drifting,
/// re-aligning schedules that stress slot-boundary edge cases.
class CyclicSlotPolicy final : public sim::SlotPolicy {
 public:
  CyclicSlotPolicy(std::vector<Tick> pattern, bool shift_per_station = true);
  Tick slot_length(StationId s, SlotIndex j, Tick, SlotAction) override;
  std::string name() const override;

 private:
  std::vector<Tick> pattern_;
  bool shift_per_station_;
};

/// Independent uniform random length in [min, max] ticks per slot, from a
/// seeded deterministic RNG (per-station streams, so one station's draw
/// count does not perturb another's).
class RandomSlotPolicy final : public sim::SlotPolicy {
 public:
  RandomSlotPolicy(std::uint32_t n, Tick min_ticks, Tick max_ticks,
                   std::uint64_t seed);
  Tick slot_length(StationId s, SlotIndex, Tick, SlotAction) override;
  std::string name() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  Tick min_, max_;
  std::vector<util::Rng> rngs_;
};

/// Adversarially stretches exactly the slots in which the station
/// transmits (to length `stretch`), keeping listening slots minimal —
/// maximizes the channel time burned per transmission, the worst case for
/// throughput accounting.
class StretchTransmitsPolicy final : public sim::SlotPolicy {
 public:
  explicit StretchTransmitsPolicy(Tick stretch_ticks);
  Tick slot_length(StationId, SlotIndex, Tick, SlotAction a) override;
  std::string name() const override;

 private:
  Tick stretch_;
};

/// Switches between two underlying policies at a scheduled flip time —
/// an adversary that changes regime mid-run (e.g. synchronous warm-up,
/// then maximal stretching), stressing protocol state that was built
/// under the earlier regime.
class RegimeFlipSlotPolicy final : public sim::SlotPolicy {
 public:
  RegimeFlipSlotPolicy(std::unique_ptr<sim::SlotPolicy> before,
                       std::unique_ptr<sim::SlotPolicy> after,
                       Tick flip_at_ticks);
  Tick slot_length(StationId s, SlotIndex j, Tick begin,
                   SlotAction a) override;
  std::string name() const override;

  /// Recurses into both regimes, so a flip policy over stateful policies
  /// (e.g. random) checkpoints correctly; flip_at_ is construction data.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  std::unique_ptr<sim::SlotPolicy> before_, after_;
  Tick flip_at_;
};

/// Helper: clamp-checked constructor utilities shared by policies.
Tick require_slot_length(Tick ticks);

/// Factory over the named policy families used throughout the tests,
/// benches, CLI and experiment grids:
///   "sync"        all slots 1 unit (the synchronous channel)
///   "max"         all slots R units (uniform worst-case stretch)
///   "perstation"  station i fixed at 1 + (i-1) mod R units
///   "cyclic"      pattern 1..R units per slot, phase-shifted per station
///   "random"      seeded uniform in [1, R] units per slot
///   "stretch-tx"  transmit slots R units, listening slots 1 unit
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<sim::SlotPolicy> make_slot_policy(const std::string& name,
                                                  std::uint32_t n,
                                                  std::uint32_t bound_r,
                                                  std::uint64_t seed = 1);

/// The names make_slot_policy accepts.
std::vector<std::string> slot_policy_names();

}  // namespace asyncmac::adversary
