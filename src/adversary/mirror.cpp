#include "adversary/mirror.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "channel/ledger.h"
#include "util/check.h"

namespace asyncmac::adversary {

MirrorRun::MirrorRun(ProtocolFactory factory, std::uint32_t n,
                     std::uint32_t r, std::uint32_t bound_r,
                     std::uint32_t max_phases)
    : factory_(std::move(factory)),
      n_(n),
      r_(r),
      bound_r_(bound_r),
      max_phases_(max_phases) {
  AM_REQUIRE(n >= 2, "the mirror construction needs n >= 2");
  AM_REQUIRE(r >= 2 && r <= bound_r, "need 2 <= r <= R");
  AM_REQUIRE(bound_r <= 16, "tick resolution supports R <= 16");
}

MirrorRun::Extension MirrorRun::extend(const AliveStation& s) const {
  Extension ext{.transmits = {},
                .protocol = s.protocol->clone(),
                .ctx = s.ctx,  // deep copy (queue + rng state)
                .pending = s.pending,
                .f = 0};
  ext.transmits.reserve(r_);
  for (std::uint32_t k = 0; k < r_; ++k) {
    const bool tx = is_transmit(ext.pending);
    ext.transmits.push_back(tx);
    const sim::SlotResult mirrored{
        ext.pending, tx ? Feedback::kBusy : Feedback::kSilence, false};
    ext.pending = ext.protocol->next_action(mirrored, ext.ctx);
  }
  // f(i) = #maximal blocks, plus r when the word starts with a transmit.
  std::uint32_t blocks = 1;
  for (std::uint32_t k = 1; k < r_; ++k)
    if (ext.transmits[k] != ext.transmits[k - 1]) ++blocks;
  ext.f = blocks + (ext.transmits.front() ? r_ : 0);
  return ext;
}

MirrorResult MirrorRun::run() {
  const Tick unit = kTicksPerUnit;

  std::vector<AliveStation> alive;
  alive.reserve(n_);
  for (StationId id = 1; id <= n_; ++id) {
    AliveStation s{.id = id,
                   .protocol = factory_(id),
                   .ctx = sim::StationContext(id, n_, bound_r_, id),
                   .pending = SlotAction::kListen,
                   .schedule = {}};
    // The SST "message": one packet that is never delivered (the mirror
    // execution has no successful transmissions).
    sim::Packet msg;
    msg.seq = id;
    msg.station = id;
    msg.cost = unit;
    s.ctx.push(msg);
    s.pending = s.protocol->next_action(std::nullopt, s.ctx);
    alive.push_back(std::move(s));
  }

  MirrorResult result;
  Tick now = 0;

  for (std::uint32_t phase = 0; phase < max_phases_; ++phase) {
    // Virtual extensions under mirrored feedback.
    std::vector<Extension> ext;
    ext.reserve(alive.size());
    for (const auto& s : alive) ext.push_back(extend(s));

    // Pigeonhole on f; keep the largest class (ties -> smallest f).
    std::map<std::uint32_t, std::vector<std::size_t>> classes;
    for (std::size_t i = 0; i < ext.size(); ++i)
      classes[ext[i].f].push_back(i);
    const auto best = std::max_element(
        classes.begin(), classes.end(), [](const auto& a, const auto& b) {
          return a.second.size() < b.second.size();
        });
    if (best->second.size() < 2) break;  // cannot keep the mirror alive

    const std::uint32_t f = best->first;
    const std::uint32_t blocks = (f <= r_) ? f : f - r_;

    // Commit: stretch each kept station's blocks to exactly r time units.
    std::vector<AliveStation> kept;
    kept.reserve(best->second.size());
    for (const std::size_t i : best->second) {
      AliveStation s = std::move(alive[i]);
      Extension& e = ext[i];

      // Split zeta into maximal runs; all class members share the count.
      std::vector<std::uint32_t> run_lengths;
      std::uint32_t run = 1;
      for (std::uint32_t k = 1; k < r_; ++k) {
        if (e.transmits[k] != e.transmits[k - 1]) {
          run_lengths.push_back(run);
          run = 1;
        } else {
          ++run;
        }
      }
      run_lengths.push_back(run);
      AM_CHECK(run_lengths.size() == blocks);

      Tick t = now;
      std::uint32_t slot = 0;
      for (std::uint32_t j = 0; j < blocks; ++j) {
        const std::uint32_t m = run_lengths[j];
        const Tick block_total = static_cast<Tick>(r_) * unit;
        AM_CHECK(block_total % m == 0);
        const Tick len = block_total / m;
        for (std::uint32_t k = 0; k < m; ++k) {
          const SlotAction a = e.transmits[slot]
                                   ? SlotAction::kTransmitPacket
                                   : SlotAction::kListen;
          s.schedule.emplace_back(t, t + len, a);
          t += len;
          ++slot;
        }
      }
      AM_CHECK(slot == r_);
      AM_CHECK(t == now + static_cast<Tick>(blocks) * r_ * unit);

      // Adopt the virtual continuation as the committed automaton state.
      s.protocol = std::move(e.protocol);
      s.ctx = std::move(e.ctx);
      s.pending = e.pending;
      kept.push_back(std::move(s));
    }

    alive = std::move(kept);
    now += static_cast<Tick>(blocks) * r_ * unit;
    ++result.phases;
  }

  result.slots_per_station = static_cast<std::uint64_t>(result.phases) * r_;
  result.total_time = now;
  for (const auto& s : alive) result.survivors.push_back(s.id);
  result.verified_mirror = verify(alive, now);
  return result;
}

bool MirrorRun::verify(const std::vector<AliveStation>& alive,
                       Tick end_time) const {
  (void)end_time;
  if (alive.size() < 2) return true;  // nothing committed (0 phases)

  // Gather every committed slot, register the transmissions in begin
  // order, then check the mirror property against the exact channel model.
  struct Slot {
    StationId station;
    Tick begin, end;
    SlotAction action;
  };
  std::vector<Slot> slots;
  for (const auto& s : alive)
    for (const auto& [b, e, a] : s.schedule) slots.push_back({s.id, b, e, a});
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    return std::tie(a.begin, a.station) < std::tie(b.begin, b.station);
  });

  channel::Ledger ledger;
  for (const auto& s : slots) {
    if (!is_transmit(s.action)) continue;
    channel::Transmission tx;
    tx.station = s.station;
    tx.begin = s.begin;
    tx.end = s.end;
    ledger.add(tx);
  }
  for (const auto& s : slots) {
    const Feedback fb = ledger.feedback(s.begin, s.end);
    const Feedback expected =
        is_transmit(s.action) ? Feedback::kBusy : Feedback::kSilence;
    if (fb != expected) return false;
  }
  return true;
}

}  // namespace asyncmac::adversary
