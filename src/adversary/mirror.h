// asyncmac/adversary/mirror.h
//
// The Theorem-2 lower-bound adversary: constructs, online and against ANY
// deterministic SST protocol, a *mirror execution* — one in which every
// listening slot hears silence and every transmitting slot hears busy
// without an acknowledgment — so no participating station ever succeeds.
//
// Construction (Section III-B): proceed in phases of r slots per alive
// station. For each alive station, clone its automaton and drive it r
// virtual slots under mirrored feedback, yielding an action word
// zeta_i in {listen, transmit}^r. Classify stations by
// f(i) = (#maximal blocks of zeta_i) + (r if zeta_i starts with transmit):
// at most 2r classes, so some class C' keeps >= |C|/(2r) stations
// (pigeonhole). The adversary keeps exactly C', and stretches each
// station's slots uniformly *within each block* so that every block spans
// exactly r time units. Blocks then align across C': listening blocks are
// globally silent, transmitting blocks carry >= 2 overlapping
// transmissions (busy, no ack) — the virtual mirrored feedback becomes the
// real channel feedback, closing the induction.
//
// The driver keeps going while it can retain at least two stations, so
// the surviving stations experience phases * r slots with no successful
// transmission: a lower bound on the protocol's SST slot complexity of
// Omega(r * (log n / log r + 1)).
//
// Exactness: block stretches are r/m time units with m <= r <= 16, which
// kTicksPerUnit represents exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/protocol_factory.h"
#include "sim/station.h"
#include "util/types.h"

namespace asyncmac::adversary {

struct MirrorResult {
  std::uint32_t phases = 0;             ///< committed phases
  std::uint64_t slots_per_station = 0;  ///< phases * r
  Tick total_time = 0;                  ///< end of the constructed execution
  std::vector<StationId> survivors;     ///< final alive set (size >= 2)
  bool verified_mirror = false;  ///< replay through the channel model agreed
};

class MirrorRun {
 public:
  /// n stations with IDs 1..n all start the SST protocol at time 0; the
  /// adversary picks slot lengths in [1, r] with 2 <= r <= R <= 16.
  MirrorRun(ProtocolFactory factory, std::uint32_t n, std::uint32_t r,
            std::uint32_t bound_r, std::uint32_t max_phases = 1u << 20);

  /// Build the execution and (always) verify the mirror property by
  /// replaying the committed schedules through the exact channel model.
  MirrorResult run();

 private:
  struct AliveStation {
    StationId id;
    std::unique_ptr<sim::Protocol> protocol;  // committed automaton state
    sim::StationContext ctx;                  // committed context
    SlotAction pending;                       // action for the next slot
    // Committed schedule: (begin, end, action) per slot, for verification.
    std::vector<std::tuple<Tick, Tick, SlotAction>> schedule;
  };

  struct Extension {
    std::vector<bool> transmits;             // zeta_i, length r
    std::unique_ptr<sim::Protocol> protocol; // post-extension clone
    sim::StationContext ctx;
    SlotAction pending;                      // action after the extension
    std::uint32_t f = 0;                     // block classifier
  };

  Extension extend(const AliveStation& s) const;
  bool verify(const std::vector<AliveStation>& alive, Tick end_time) const;

  ProtocolFactory factory_;
  std::uint32_t n_, r_, bound_r_, max_phases_;
};

}  // namespace asyncmac::adversary
