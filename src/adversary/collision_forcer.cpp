#include "adversary/collision_forcer.h"

#include <algorithm>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "sim/engine.h"
#include "util/check.h"

namespace asyncmac::adversary {

namespace {

struct ProbeResult {
  bool transmitted = false;
  std::uint64_t first_tx_slot = 0;  // 1-based slot index of the target
  std::uint64_t queue = 0;          // target's queue when the probe ended
};

// Run the target station alone against silence: unit slots, packets at the
// end of slots S, S+d, S+2d, ... (k packets), stop at the protocol's first
// transmission attempt.
ProbeResult probe(const ProtocolFactory& factory, StationId target,
                  std::uint64_t s_start, std::uint64_t d, std::uint64_t k,
                  std::uint32_t bound_r) {
  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = bound_r;
  cfg.allow_control = false;  // the theorem's model class
  cfg.keep_channel_history = true;

  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.push_back(factory(1));
  protocols.push_back(factory(2));

  std::vector<sim::Injection> script;
  for (std::uint64_t i = 0; i < k; ++i)
    script.push_back({static_cast<Tick>(s_start + i * d) * kTicksPerUnit,
                      target, kTicksPerUnit});

  sim::Engine engine(cfg, std::move(protocols),
                     std::make_unique<UniformSlotPolicy>(kTicksPerUnit),
                     std::make_unique<ScriptedInjector>(std::move(script)));

  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(s_start + k * d + 2) * kTicksPerUnit;
  stop.predicate = [](const sim::Engine& e) {
    return e.channel_stats().transmissions >= 1;
  };
  engine.run(stop);

  ProbeResult out;
  out.queue = engine.queue_size(target);
  if (engine.channel_stats().transmissions >= 1) {
    out.transmitted = true;
    Tick first_begin = kTickInfinity;
    for (const auto& tx : engine.ledger().full_history())
      first_begin = std::min(first_begin, tx.begin);
    for (const auto& tx : engine.ledger().window())
      first_begin = std::min(first_begin, tx.begin);
    AM_CHECK(first_begin != kTickInfinity);
    out.first_tx_slot =
        static_cast<std::uint64_t>(first_begin / kTicksPerUnit) + 1;
  }
  return out;
}

}  // namespace

CollisionForceOutcome force_collision_or_overflow(
    const ProtocolFactory& factory, util::Ratio rho, std::uint64_t l_bound,
    std::uint32_t bound_r) {
  AM_REQUIRE(bound_r >= 2, "Theorem 4 needs R >= 2 (asynchrony)");
  AM_REQUIRE(rho.num > 0, "Theorem 4 needs a positive rate");
  AM_REQUIRE(l_bound >= 1, "queue bound must be positive");

  CollisionForceOutcome out;

  // S > (2L + 2) / (rho (R - 1)), with margin so that the slot-length
  // ratio (S + beta - 1)/(S + alpha - 1) stays below R.
  const std::uint64_t s_start =
      static_cast<std::uint64_t>(
          (static_cast<__int128>(2 * l_bound + 2) * rho.den) /
          (static_cast<__int128>(rho.num) * (bound_r - 1))) +
      2;
  out.s_start = s_start;

  // Per-probe injection cadence: one unit-cost packet every d slots keeps
  // the per-station rate at most rho/2.
  const std::uint64_t d = static_cast<std::uint64_t>(
      (2 * rho.den + rho.num - 1) / rho.num);
  const std::uint64_t k = l_bound + 2;

  const ProbeResult p1 = probe(factory, 1, s_start, d, k, bound_r);
  const ProbeResult p2 = probe(factory, 2, s_start, d, k, bound_r);

  if (!p1.transmitted || !p2.transmitted) {
    out.kind = CollisionForceOutcome::Kind::kQueueOverflow;
    out.overflow_queue = std::max(p1.queue, p2.queue);
    return out;
  }
  AM_CHECK(p1.first_tx_slot > s_start && p2.first_tx_slot > s_start);
  out.alpha = p1.first_tx_slot - s_start;
  out.beta = p2.first_tx_slot - s_start;

  // Align the *starts* of the two first transmissions:
  //   (T1 - 1) X = (T2 - 1) Y  with  X = c (T2-1), Y = c (T1-1).
  const Tick a1 = static_cast<Tick>(p1.first_tx_slot - 1);
  const Tick a2 = static_cast<Tick>(p2.first_tx_slot - 1);
  const Tick c_min = (kTicksPerUnit + std::min(a1, a2) - 1) / std::min(a1, a2);
  const Tick c_max =
      static_cast<Tick>(bound_r) * kTicksPerUnit / std::max(a1, a2);
  AM_CHECK_MSG(c_min <= c_max,
               "no feasible stretch: alpha=" << out.alpha
                                             << " beta=" << out.beta
                                             << " S=" << s_start);
  const Tick c = c_min;
  const Tick x = c * a2;
  const Tick y = c * a1;
  out.x_ticks = x;
  out.y_ticks = y;

  // Joint run with the stretched slots; each probe's silent prefix is
  // reproduced exactly (neither station hears the other before both
  // transmissions start, at the same instant).
  std::vector<sim::Injection> script;
  for (std::uint64_t i = 0; i < k; ++i) {
    script.push_back({static_cast<Tick>(s_start + i * d) * x, 1, x});
    script.push_back({static_cast<Tick>(s_start + i * d) * y, 2, y});
  }
  std::sort(script.begin(), script.end(),
            [](const sim::Injection& lhs, const sim::Injection& rhs) {
              return lhs.time < rhs.time;
            });

  sim::EngineConfig cfg;
  cfg.n = 2;
  cfg.bound_r = bound_r;
  cfg.allow_control = false;
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.push_back(factory(1));
  protocols.push_back(factory(2));
  sim::Engine engine(
      cfg, std::move(protocols),
      std::make_unique<PerStationSlotPolicy>(std::vector<Tick>{x, y}),
      std::make_unique<ScriptedInjector>(std::move(script)));

  const Tick expected_collision = c * a1 * a2;
  sim::StopCondition stop;
  stop.max_time = expected_collision +
                  4 * static_cast<Tick>(bound_r) * kTicksPerUnit;
  stop.predicate = [](const sim::Engine& e) {
    return e.channel_stats().collided >= 1;
  };
  engine.run(stop);
  // Let the partner transmission (ending up to R units later) finalize so
  // the collision is fully accounted.
  engine.run(sim::until(
      engine.now() + 2 * static_cast<Tick>(bound_r) * kTicksPerUnit));

  out.collisions = engine.channel_stats().collided;
  if (out.collisions >= 1) {
    out.kind = CollisionForceOutcome::Kind::kCollisionForced;
    out.collision_time = expected_collision;
  } else if (engine.queue_size(1) > l_bound ||
             engine.queue_size(2) > l_bound) {
    out.kind = CollisionForceOutcome::Kind::kQueueOverflow;
    out.overflow_queue = std::max(engine.queue_size(1), engine.queue_size(2));
  } else {
    out.kind = CollisionForceOutcome::Kind::kNoTransmission;
  }
  return out;
}

}  // namespace asyncmac::adversary
