#include "adversary/slot_policies.h"

#include "snapshot/state.h"
#include "util/check.h"

namespace asyncmac::adversary {

Tick require_slot_length(Tick ticks) {
  AM_REQUIRE(ticks >= kTicksPerUnit, "slot length below 1 time unit");
  return ticks;
}

UniformSlotPolicy::UniformSlotPolicy(Tick length_ticks)
    : length_(require_slot_length(length_ticks)) {}

std::string UniformSlotPolicy::name() const {
  return "uniform(" + std::to_string(length_) + ")";
}

PerStationSlotPolicy::PerStationSlotPolicy(std::vector<Tick> lengths)
    : lengths_(std::move(lengths)) {
  AM_REQUIRE(!lengths_.empty(), "need at least one station length");
  for (Tick t : lengths_) require_slot_length(t);
}

Tick PerStationSlotPolicy::slot_length(StationId s, SlotIndex, Tick,
                                       SlotAction) {
  AM_CHECK(s >= 1 && s <= lengths_.size());
  return lengths_[s - 1];
}

Tick PerStationSlotPolicy::fixed_length(StationId s) const {
  AM_CHECK(s >= 1 && s <= lengths_.size());
  return lengths_[s - 1];
}

std::string PerStationSlotPolicy::name() const { return "per-station-fixed"; }

CyclicSlotPolicy::CyclicSlotPolicy(std::vector<Tick> pattern,
                                   bool shift_per_station)
    : pattern_(std::move(pattern)), shift_per_station_(shift_per_station) {
  AM_REQUIRE(!pattern_.empty(), "pattern must be non-empty");
  for (Tick t : pattern_) require_slot_length(t);
}

Tick CyclicSlotPolicy::slot_length(StationId s, SlotIndex j, Tick,
                                   SlotAction) {
  const std::size_t shift = shift_per_station_ ? s : 0;
  return pattern_[(static_cast<std::size_t>(j - 1) + shift) %
                  pattern_.size()];
}

std::string CyclicSlotPolicy::name() const { return "cyclic"; }

RandomSlotPolicy::RandomSlotPolicy(std::uint32_t n, Tick min_ticks,
                                   Tick max_ticks, std::uint64_t seed)
    : min_(require_slot_length(min_ticks)), max_(max_ticks) {
  AM_REQUIRE(max_ticks >= min_ticks, "max < min");
  util::Rng seeder(seed);
  rngs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rngs_.push_back(seeder.split());
}

Tick RandomSlotPolicy::slot_length(StationId s, SlotIndex, Tick, SlotAction) {
  AM_CHECK(s >= 1 && s <= rngs_.size());
  return rngs_[s - 1].range(min_, max_);
}

std::string RandomSlotPolicy::name() const { return "random"; }

void RandomSlotPolicy::save_state(snapshot::Writer& w) const {
  w.u64(rngs_.size());
  for (const util::Rng& rng : rngs_) snapshot::save_rng(w, rng);
}

void RandomSlotPolicy::load_state(snapshot::Reader& r) {
  const std::uint64_t count = r.u64();
  if (count != rngs_.size())
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "random slot policy was saved with a different station count");
  for (util::Rng& rng : rngs_) snapshot::load_rng(r, rng);
}

StretchTransmitsPolicy::StretchTransmitsPolicy(Tick stretch_ticks)
    : stretch_(require_slot_length(stretch_ticks)) {}

Tick StretchTransmitsPolicy::slot_length(StationId, SlotIndex, Tick,
                                         SlotAction a) {
  return is_transmit(a) ? stretch_ : kTicksPerUnit;
}

std::string StretchTransmitsPolicy::name() const {
  return "stretch-transmits(" + std::to_string(stretch_) + ")";
}

RegimeFlipSlotPolicy::RegimeFlipSlotPolicy(
    std::unique_ptr<sim::SlotPolicy> before,
    std::unique_ptr<sim::SlotPolicy> after, Tick flip_at_ticks)
    : before_(std::move(before)),
      after_(std::move(after)),
      flip_at_(flip_at_ticks) {
  AM_REQUIRE(before_ && after_, "both regimes must be provided");
  AM_REQUIRE(flip_at_ticks >= 0, "flip time must be non-negative");
}

Tick RegimeFlipSlotPolicy::slot_length(StationId s, SlotIndex j, Tick begin,
                                       SlotAction a) {
  return (begin < flip_at_ ? before_ : after_)
      ->slot_length(s, j, begin, a);
}

std::string RegimeFlipSlotPolicy::name() const {
  return "regime-flip(" + before_->name() + "->" + after_->name() + ")";
}

void RegimeFlipSlotPolicy::save_state(snapshot::Writer& w) const {
  before_->save_state(w);
  after_->save_state(w);
}

void RegimeFlipSlotPolicy::load_state(snapshot::Reader& r) {
  before_->load_state(r);
  after_->load_state(r);
}

std::unique_ptr<sim::SlotPolicy> make_slot_policy(const std::string& name,
                                                  std::uint32_t n,
                                                  std::uint32_t bound_r,
                                                  std::uint64_t seed) {
  const Tick u = kTicksPerUnit;
  if (name == "sync") return std::make_unique<UniformSlotPolicy>(u);
  if (name == "max")
    return std::make_unique<UniformSlotPolicy>(bound_r * u);
  if (name == "perstation") {
    std::vector<Tick> lens(n);
    for (std::uint32_t i = 0; i < n; ++i) lens[i] = (1 + (i % bound_r)) * u;
    return std::make_unique<PerStationSlotPolicy>(std::move(lens));
  }
  if (name == "cyclic") {
    std::vector<Tick> pattern;
    for (std::uint32_t k = 1; k <= bound_r; ++k) pattern.push_back(k * u);
    return std::make_unique<CyclicSlotPolicy>(std::move(pattern));
  }
  if (name == "random")
    return std::make_unique<RandomSlotPolicy>(n, u, bound_r * u, seed);
  if (name == "stretch-tx")
    return std::make_unique<StretchTransmitsPolicy>(bound_r * u);
  AM_REQUIRE(false, "unknown slot policy: " + name);
  return nullptr;
}

std::vector<std::string> slot_policy_names() {
  return {"sync", "max", "perstation", "cyclic", "random", "stretch-tx"};
}

}  // namespace asyncmac::adversary
