#include "adversary/injectors.h"

#include <algorithm>

#include "snapshot/state.h"
#include "util/check.h"

namespace asyncmac::adversary {

// ---------------------------------------------------------------- bucket

CostBucket::CostBucket(util::Ratio rho, Tick burst_cost)
    : rho_(rho), burst_(burst_cost) {
  AM_REQUIRE(burst_cost >= 0, "burstiness must be non-negative");
  tokens_scaled_ = static_cast<__int128>(burst_) * rho_.den;
}

void CostBucket::advance(Tick now) {
  AM_CHECK(now >= last_);
  const __int128 cap = static_cast<__int128>(burst_) * rho_.den;
  tokens_scaled_ += static_cast<__int128>(rho_.num) * (now - last_);
  if (tokens_scaled_ > cap) tokens_scaled_ = cap;
  last_ = now;
}

bool CostBucket::can_afford(Tick cost) const {
  return tokens_scaled_ >= static_cast<__int128>(cost) * rho_.den;
}

void CostBucket::spend(Tick cost) {
  AM_CHECK(can_afford(cost));
  tokens_scaled_ -= static_cast<__int128>(cost) * rho_.den;
}

Tick CostBucket::tokens() const {
  return static_cast<Tick>(tokens_scaled_ / rho_.den);
}

Tick CostBucket::next_afford_time(Tick cost) const {
  const __int128 need = static_cast<__int128>(cost) * rho_.den;
  if (tokens_scaled_ >= need) return last_;
  // The balance is capped at burst_ * den, so a cost above the burstiness
  // never becomes affordable; neither does anything under a zero rate.
  if (cost > burst_ || rho_.num == 0) return kTickInfinity;
  const __int128 deficit = need - tokens_scaled_;
  const __int128 dt = (deficit + rho_.num - 1) / rho_.num;
  const __int128 when = static_cast<__int128>(last_) + dt;
  if (when >= static_cast<__int128>(kTickInfinity)) return kTickInfinity;
  return static_cast<Tick>(when);
}

void CostBucket::save_state(snapshot::Writer& w) const {
  snapshot::save_i128(w, tokens_scaled_);
  w.i64(last_);
}

void CostBucket::load_state(snapshot::Reader& r) {
  tokens_scaled_ = snapshot::load_i128(r);
  last_ = r.i64();
}

// ---------------------------------------------------------------- helpers

Tick packet_cost_for(const sim::EngineView& view, StationId station) {
  const Tick fixed = view.fixed_slot_length(station);
  return fixed > 0 ? fixed : kTicksPerUnit;
}

// ---------------------------------------------------------- SaturatingInjector

SaturatingInjector::SaturatingInjector(util::Ratio rho, Tick burst_cost,
                                       TargetPattern pattern,
                                       StationId single_target,
                                       std::uint64_t seed)
    : bucket_(rho, burst_cost),
      pattern_(pattern),
      single_target_(single_target),
      rng_(seed) {}

StationId SaturatingInjector::pick(const sim::EngineView& view) {
  switch (pattern_) {
    case TargetPattern::kSingle:
      return single_target_;
    case TargetPattern::kRandom:
      return static_cast<StationId>(1 + rng_.below(view.n()));
    case TargetPattern::kRoundRobin:
    default: {
      const StationId s = rr_next_;
      rr_next_ = (rr_next_ % view.n()) + 1;
      return s;
    }
  }
}

void SaturatingInjector::poll(Tick now, const sim::EngineView& view,
                              std::vector<sim::Injection>& out) {
  bucket_.advance(now);
  for (;;) {
    // Peek the next target's cost without consuming the pattern state
    // unless we actually inject.
    const StationId candidate =
        (pattern_ == TargetPattern::kRoundRobin) ? rr_next_
        : (pattern_ == TargetPattern::kSingle)   ? single_target_
                                                 : kInvalidStation;
    StationId target = candidate;
    Tick cost;
    if (pattern_ == TargetPattern::kRandom) {
      // Random pattern: affordability is checked against the cheapest
      // possible cost; the draw itself happens only if we can inject the
      // drawn station's packet (re-checked below).
      if (!bucket_.can_afford(kTicksPerUnit)) {
        hint_cost_ = kTicksPerUnit;
        break;
      }
      target = static_cast<StationId>(1 + rng_.below(view.n()));
      cost = packet_cost_for(view, target);
      if (!bucket_.can_afford(cost)) {
        // Drawn target too expensive, but the next poll can afford the
        // cheapest cost and would advance the RNG — so no skipping.
        hint_cost_ = 0;
        break;
      }
    } else {
      cost = packet_cost_for(view, target);
      if (!bucket_.can_afford(cost)) {
        hint_cost_ = cost;
        break;
      }
      if (pattern_ == TargetPattern::kRoundRobin)
        rr_next_ = (rr_next_ % view.n()) + 1;
    }
    bucket_.spend(cost);
    const sim::Injection inj{now, target, cost};
    out.push_back(inj);
    injected_cost_ += cost;
    if (keep_log_) log_.push_back(inj);
  }
}

Tick SaturatingInjector::next_arrival_hint(Tick now) {
  // hint_cost_ is the cost whose affordability ended the last poll: until
  // the bucket can pay it, a poll would change nothing (the pattern state
  // is only consumed on injection, and bucket accrual merges exactly).
  if (hint_cost_ == 0) return now;
  return bucket_.next_afford_time(hint_cost_);
}

std::string SaturatingInjector::name() const {
  return "saturating(rho=" + bucket_.rate().str() + ")";
}

void SaturatingInjector::save_state(snapshot::Writer& w) const {
  bucket_.save_state(w);
  w.u32(rr_next_);
  snapshot::save_rng(w, rng_);
  w.i64(injected_cost_);
  w.i64(hint_cost_);
  w.boolean(keep_log_);
  w.u64(log_.size());
  for (const sim::Injection& inj : log_) {
    w.i64(inj.time);
    w.u32(inj.station);
    w.i64(inj.cost);
  }
}

void SaturatingInjector::load_state(snapshot::Reader& r) {
  bucket_.load_state(r);
  rr_next_ = r.u32();
  snapshot::load_rng(r, rng_);
  injected_cost_ = r.i64();
  hint_cost_ = r.i64();
  keep_log_ = r.boolean();
  const std::uint64_t count = r.u64();
  log_.clear();
  log_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::Injection inj;
    inj.time = r.i64();
    inj.station = r.u32();
    inj.cost = r.i64();
    log_.push_back(inj);
  }
}

// ------------------------------------------------------------- BurstyInjector

BurstyInjector::BurstyInjector(util::Ratio rho, Tick burst_cost,
                               Tick period_ticks, TargetPattern pattern,
                               StationId single_target, std::uint64_t seed)
    : bucket_(rho, burst_cost),
      period_(period_ticks),
      pattern_(pattern),
      single_target_(single_target),
      rng_(seed) {
  AM_REQUIRE(period_ticks > 0, "burst period must be positive");
}

StationId BurstyInjector::pick(const sim::EngineView& view) {
  switch (pattern_) {
    case TargetPattern::kSingle:
      return single_target_;
    case TargetPattern::kRandom:
      return static_cast<StationId>(1 + rng_.below(view.n()));
    case TargetPattern::kRoundRobin:
    default: {
      const StationId s = rr_next_;
      rr_next_ = (rr_next_ % view.n()) + 1;
      return s;
    }
  }
}

void BurstyInjector::poll(Tick now, const sim::EngineView& view,
                          std::vector<sim::Injection>& out) {
  if (now < next_burst_) return;
  bucket_.advance(now);
  for (;;) {
    const StationId target = pick(view);
    const Tick cost = packet_cost_for(view, target);
    if (!bucket_.can_afford(cost)) break;
    bucket_.spend(cost);
    out.push_back({now, target, cost});
  }
  next_burst_ = now + period_;
}

Tick BurstyInjector::next_arrival_hint(Tick) {
  // Polls strictly before next_burst_ return without touching anything;
  // the poll at (or first past) next_burst_ must happen even with an
  // empty bucket, because it re-arms the burst clock.
  return next_burst_;
}

std::string BurstyInjector::name() const {
  return "bursty(rho=" + bucket_.rate().str() + ")";
}

void BurstyInjector::save_state(snapshot::Writer& w) const {
  bucket_.save_state(w);
  w.i64(next_burst_);
  w.u32(rr_next_);
  snapshot::save_rng(w, rng_);
}

void BurstyInjector::load_state(snapshot::Reader& r) {
  bucket_.load_state(r);
  next_burst_ = r.i64();
  rr_next_ = r.u32();
  snapshot::load_rng(r, rng_);
}

// -------------------------------------------------------- DrainChasingInjector

DrainChasingInjector::DrainChasingInjector(util::Ratio rho, Tick burst_cost,
                                           StationId a, StationId b)
    : bucket_(rho, burst_cost), a_(a), b_(b) {
  AM_REQUIRE(a != b, "chasing needs two distinct stations");
}

void DrainChasingInjector::poll(Tick now, const sim::EngineView& view,
                                std::vector<sim::Injection>& out) {
  bucket_.advance(now);
  if (min_cost_ == 0)
    min_cost_ = std::min(packet_cost_for(view, a_), packet_cost_for(view, b_));
  // Target whichever of {a, b} did NOT just transmit successfully, so the
  // protocol must keep switching the withheld channel between them.
  const StationId busy = view.last_successful_station();
  const StationId target = (busy == a_) ? b_ : a_;
  for (;;) {
    const Tick cost = packet_cost_for(view, target);
    if (!bucket_.can_afford(cost)) break;
    bucket_.spend(cost);
    out.push_back({now, target, cost});
  }
}

Tick DrainChasingInjector::next_arrival_hint(Tick now) {
  // The target flips with the channel, so only the cheaper victim's
  // afford time is a sound skip bound: before it, neither target's packet
  // is payable and a poll is a pure (mergeable) bucket advance.
  if (min_cost_ == 0) return now;
  return bucket_.next_afford_time(min_cost_);
}

std::string DrainChasingInjector::name() const {
  return "drain-chasing(rho=" + bucket_.rate().str() + ")";
}

void DrainChasingInjector::save_state(snapshot::Writer& w) const {
  bucket_.save_state(w);
  w.i64(min_cost_);
}

void DrainChasingInjector::load_state(snapshot::Reader& r) {
  bucket_.load_state(r);
  min_cost_ = r.i64();
}

// ------------------------------------------------------------ MaxQueueInjector

MaxQueueInjector::MaxQueueInjector(util::Ratio rho, Tick burst_cost)
    : bucket_(rho, burst_cost) {}

void MaxQueueInjector::poll(Tick now, const sim::EngineView& view,
                            std::vector<sim::Injection>& out) {
  bucket_.advance(now);
  if (min_cost_ == 0) {
    min_cost_ = packet_cost_for(view, 1);
    for (StationId s = 2; s <= view.n(); ++s)
      min_cost_ = std::min(min_cost_, packet_cost_for(view, s));
  }
  for (;;) {
    StationId target = 1;
    Tick worst = -1;
    for (StationId s = 1; s <= view.n(); ++s) {
      if (view.queue_cost(s) > worst) {
        worst = view.queue_cost(s);
        target = s;
      }
    }
    const Tick cost = packet_cost_for(view, target);
    if (!bucket_.can_afford(cost)) break;
    bucket_.spend(cost);
    out.push_back({now, target, cost});
  }
}

Tick MaxQueueInjector::next_arrival_hint(Tick now) {
  // Same reasoning as DrainChasingInjector: the adaptive target can move,
  // so skip only until the cheapest station's packet is payable.
  if (min_cost_ == 0) return now;
  return bucket_.next_afford_time(min_cost_);
}

std::string MaxQueueInjector::name() const {
  return "max-queue(rho=" + bucket_.rate().str() + ")";
}

void MaxQueueInjector::save_state(snapshot::Writer& w) const {
  bucket_.save_state(w);
  w.i64(min_cost_);
}

void MaxQueueInjector::load_state(snapshot::Reader& r) {
  bucket_.load_state(r);
  min_cost_ = r.i64();
}

// ------------------------------------------------------------------ factory

TargetPattern parse_target_pattern(const std::string& name) {
  if (name == "roundrobin") return TargetPattern::kRoundRobin;
  if (name == "single") return TargetPattern::kSingle;
  if (name == "random") return TargetPattern::kRandom;
  throw std::invalid_argument("unknown injection pattern: " + name);
}

std::unique_ptr<sim::InjectionPolicy> make_injector(const InjectorSpec& spec) {
  if (spec.kind == "saturating")
    return std::make_unique<SaturatingInjector>(
        spec.rho, spec.burst_ticks, parse_target_pattern(spec.pattern),
        spec.single_target, spec.seed);
  if (spec.kind == "bursty")
    return std::make_unique<BurstyInjector>(
        spec.rho, spec.burst_ticks, spec.period_ticks,
        parse_target_pattern(spec.pattern), spec.single_target, spec.seed);
  if (spec.kind == "maxqueue")
    return std::make_unique<MaxQueueInjector>(spec.rho, spec.burst_ticks);
  if (spec.kind == "drain-chasing")
    return std::make_unique<DrainChasingInjector>(spec.rho, spec.burst_ticks,
                                                  spec.drain_a, spec.drain_b);
  throw std::invalid_argument("unknown injector kind: " + spec.kind);
}

std::vector<std::string> injector_kinds() {
  return {"saturating", "bursty", "maxqueue", "drain-chasing"};
}

// ------------------------------------------------------------ ScriptedInjector

ScriptedInjector::ScriptedInjector(std::vector<sim::Injection> script)
    : script_(std::move(script)) {
  for (std::size_t i = 1; i < script_.size(); ++i)
    AM_REQUIRE(script_[i - 1].time <= script_[i].time,
               "script must be sorted by time");
}

void ScriptedInjector::poll(Tick now, const sim::EngineView&,
                            std::vector<sim::Injection>& out) {
  while (next_ < script_.size() && script_[next_].time <= now)
    out.push_back(script_[next_++]);
}

Tick ScriptedInjector::next_arrival_hint(Tick) {
  return next_ < script_.size() ? script_[next_].time : kTickInfinity;
}

void ScriptedInjector::save_state(snapshot::Writer& w) const {
  w.u64(next_);
}

void ScriptedInjector::load_state(snapshot::Reader& r) {
  const std::uint64_t cursor = r.u64();
  if (cursor > script_.size())
    throw snapshot::SnapshotError(snapshot::ErrorKind::kCorrupt,
                                  "scripted injector cursor past script end");
  next_ = static_cast<std::size_t>(cursor);
}

}  // namespace asyncmac::adversary
