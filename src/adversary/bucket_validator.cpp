#include "adversary/bucket_validator.h"

#include "util/check.h"

namespace asyncmac::adversary {

namespace {

// Shared scan: computes max over i <= j of
//   den*(P_j - P_{i-1}) - num*(t_j - t_i)
// i.e. the scaled worst window excess, together with the witnessing
// window. b is compliant iff excess <= den*b.
struct Excess {
  __int128 scaled = 0;  // max excess * den (0 when log empty)
  Tick begin = 0, end = 0;
  Tick cost = 0;
};

Excess worst_window(const std::vector<sim::Injection>& log,
                    util::Ratio rho) {
  Excess best;
  if (log.empty()) return best;
  __int128 prefix = 0;  // P_{i-1} style running sum
  // Track, over candidate window starts i, the max of num*t_i - den*P_{i-1}
  // together with the start time (for reporting).
  __int128 best_start_val = static_cast<__int128>(rho.num) * log[0].time;
  Tick best_start_time = log[0].time;
  __int128 best_start_prefix = 0;
  bool have = false;
  for (std::size_t j = 0; j < log.size(); ++j) {
    AM_CHECK(j == 0 || log[j - 1].time <= log[j].time);
    // A window may start at t_j (including only injection j), so update
    // the start candidate BEFORE closing windows at j.
    const __int128 start_val =
        static_cast<__int128>(rho.num) * log[j].time -
        static_cast<__int128>(rho.den) * prefix;
    if (!have || start_val > best_start_val) {
      best_start_val = start_val;
      best_start_time = log[j].time;
      best_start_prefix = prefix;
      have = true;
    }
    prefix += log[j].cost;
    const __int128 excess = static_cast<__int128>(rho.den) * prefix -
                            static_cast<__int128>(rho.num) * log[j].time +
                            best_start_val;
    if (excess > best.scaled) {
      best.scaled = excess;
      best.begin = best_start_time;
      best.end = log[j].time;
      best.cost = static_cast<Tick>(prefix - best_start_prefix);
    }
  }
  return best;
}

}  // namespace

BucketViolation check_leaky_bucket(const std::vector<sim::Injection>& log,
                                   util::Ratio rho, Tick burst) {
  BucketViolation out;
  const Excess worst = worst_window(log, rho);
  const __int128 allowed_scaled = static_cast<__int128>(burst) * rho.den;
  if (worst.scaled > allowed_scaled) {
    out.violated = true;
    out.window_begin = worst.begin;
    out.window_end = worst.end;
    out.cost_in_window = worst.cost;
    out.allowed = rho.mul_floor(worst.end - worst.begin) + burst;
  }
  return out;
}

Tick effective_burstiness(const std::vector<sim::Injection>& log,
                          util::Ratio rho) {
  const Excess worst = worst_window(log, rho);
  // ceil(scaled / den)
  const __int128 den = rho.den;
  return static_cast<Tick>((worst.scaled + den - 1) / den);
}

}  // namespace asyncmac::adversary
