// asyncmac/adversary/injectors.h
//
// Leaky-bucket packet-injection adversaries (Def. 1). All of them share an
// exact integer token bucket: tokens (measured in cost ticks) accrue at
// rate rho and are capped at the burstiness b, which is precisely the
// class of injection patterns the paper's stability theorems quantify
// over — any window of length t receives at most rho*t + b cost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/injection.h"
#include "util/ratio.h"
#include "util/rng.h"
#include "util/types.h"

namespace asyncmac::adversary {

/// Exact token bucket over integer ticks. Never uses floating point.
class CostBucket {
 public:
  /// rho in [0, 1] typically; burst_cost in ticks (>= largest packet cost
  /// for any packet to ever be injectable).
  CostBucket(util::Ratio rho, Tick burst_cost);

  /// Accrue tokens up to `now` (monotone).
  void advance(Tick now);
  bool can_afford(Tick cost) const;
  /// Requires can_afford(cost).
  void spend(Tick cost);
  /// Current whole-tick token count (floor).
  Tick tokens() const;
  util::Ratio rate() const { return rho_; }
  Tick burst() const { return burst_; }

  /// Earliest time t >= the last advance() such that advance(t) would make
  /// `cost` affordable; kTickInfinity when it never becomes affordable
  /// (cost above the burstiness cap, or a zero rate). Exact — the basis of
  /// the injectors' next_arrival_hint implementations.
  Tick next_afford_time(Tick cost) const;

  /// Checkpoint/resume: the mutable balance and accrual clock only; the
  /// rate and burstiness are construction parameters the caller rebuilds.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  util::Ratio rho_;
  Tick burst_;
  __int128 tokens_scaled_;  // tokens * rho_.den
  Tick last_ = 0;
};

/// How an injector chooses the next victim station.
enum class TargetPattern : std::uint8_t {
  kRoundRobin,  ///< cycle 1..n
  kSingle,      ///< always the same station
  kRandom,      ///< uniform random station (seeded)
};

/// Returns the Def.-1 cost of a packet bound for `station`: the station's
/// fixed slot length when the slot policy exposes one, otherwise one time
/// unit (a declared lower bound; the BucketValidator cross-checks realized
/// costs for variable policies).
Tick packet_cost_for(const sim::EngineView& view, StationId station);

/// Injects as aggressively as the bucket permits at every poll — the
/// bucket-saturating adversary. With kRoundRobin this is the canonical
/// uniform-pressure workload of the stability benchmarks.
class SaturatingInjector final : public sim::InjectionPolicy {
 public:
  SaturatingInjector(util::Ratio rho, Tick burst_cost, TargetPattern pattern,
                     StationId single_target = 1, std::uint64_t seed = 1);

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override;
  Tick next_arrival_hint(Tick now) override;
  std::string name() const override;

  const std::vector<sim::Injection>& log() const { return log_; }
  void set_keep_log(bool keep) { keep_log_ = keep; }
  Tick injected_cost() const { return injected_cost_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  StationId pick(const sim::EngineView& view);

  CostBucket bucket_;
  TargetPattern pattern_;
  StationId single_target_;
  StationId rr_next_ = 1;
  util::Rng rng_;
  std::vector<sim::Injection> log_;
  bool keep_log_ = false;
  Tick injected_cost_ = 0;
  /// Cost whose affordability ended the last poll; 0 means "no skipping"
  /// (a poll could mutate state — e.g. the random pattern's RNG — even
  /// without injecting).
  Tick hint_cost_ = 0;
};

/// Lets tokens pile up and dumps everything affordable every
/// `period_ticks` — maximal burstiness at a fixed long-run rate.
class BurstyInjector final : public sim::InjectionPolicy {
 public:
  BurstyInjector(util::Ratio rho, Tick burst_cost, Tick period_ticks,
                 TargetPattern pattern, StationId single_target = 1,
                 std::uint64_t seed = 1);

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override;
  /// Exactly next_burst_: any poll at or past it mutates the burst clock
  /// (regardless of bucket balance), and any poll before it is a no-op.
  Tick next_arrival_hint(Tick now) override;
  std::string name() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  StationId pick(const sim::EngineView& view);

  CostBucket bucket_;
  Tick period_;
  Tick next_burst_ = 0;
  TargetPattern pattern_;
  StationId single_target_;
  StationId rr_next_ = 1;
  util::Rng rng_;
};

/// The Theorem-5 adversary: runs the bucket at rate rho (use 1 for the
/// impossibility experiment) and always targets a station that is NOT the
/// one that most recently completed a successful transmission, forcing the
/// protocol to hand the channel over infinitely often; each hand-over
/// wastes time under asynchrony, so no protocol is stable at rho = 1.
class DrainChasingInjector final : public sim::InjectionPolicy {
 public:
  /// Chases between stations `a` and `b` (distinct).
  DrainChasingInjector(util::Ratio rho, Tick burst_cost, StationId a,
                       StationId b);

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override;
  Tick next_arrival_hint(Tick now) override;
  std::string name() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  CostBucket bucket_;
  StationId a_, b_;
  /// min(cost(a), cost(b)) — the adaptive target choice can flip between
  /// polls, so the hint must be when the *cheaper* victim's packet becomes
  /// affordable. Cached on first poll (fixed_slot_length is constant).
  Tick min_cost_ = 0;
};

/// Adaptive worst-case-fairness adversary: every packet goes to the
/// station whose queue already holds the most cost, concentrating
/// pressure where the backlog is worst. Universal stability (Theorem 3 /
/// Theorem 6) quantifies over adaptive adversaries too, so the ARRoW
/// protocols must hold up against it.
class MaxQueueInjector final : public sim::InjectionPolicy {
 public:
  MaxQueueInjector(util::Ratio rho, Tick burst_cost);

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override;
  Tick next_arrival_hint(Tick now) override;
  std::string name() const override;

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  CostBucket bucket_;
  /// Cheapest per-station cost — the adaptive max-queue target can change
  /// between polls. Cached on first poll (fixed_slot_length is constant).
  Tick min_cost_ = 0;
};

/// Declarative description of an injection adversary — the common
/// currency of the CLI, the experiment grids and the fuzzing campaign's
/// scenario generator (verify::ScenarioGen), all of which need to build
/// injectors from plain data that can be serialized into repro files.
struct InjectorSpec {
  /// One of injector_kinds(): saturating | bursty | maxqueue |
  /// drain-chasing.
  std::string kind = "saturating";
  util::Ratio rho{1, 2};
  Tick burst_ticks = 8 * kTicksPerUnit;
  /// saturating/bursty only: roundrobin | single | random.
  std::string pattern = "roundrobin";
  StationId single_target = 1;
  Tick period_ticks = 0;  ///< bursty only: dump period (> 0)
  StationId drain_a = 1, drain_b = 2;  ///< drain-chasing only (distinct)
  std::uint64_t seed = 1;

  bool operator==(const InjectorSpec&) const = default;
};

/// Build the injector an InjectorSpec describes; throws
/// std::invalid_argument on an unknown kind/pattern or inconsistent
/// parameters (e.g. drain-chasing with drain_a == drain_b).
std::unique_ptr<sim::InjectionPolicy> make_injector(const InjectorSpec& spec);

/// The kinds make_injector accepts.
std::vector<std::string> injector_kinds();

/// Parse a pattern name (roundrobin | single | random); throws
/// std::invalid_argument on anything else.
TargetPattern parse_target_pattern(const std::string& name);

/// Replays an explicit list of injections (tests, Theorem-4 driver).
class ScriptedInjector final : public sim::InjectionPolicy {
 public:
  /// `script` must be sorted by time.
  explicit ScriptedInjector(std::vector<sim::Injection> script);

  void poll(Tick now, const sim::EngineView& view,
            std::vector<sim::Injection>& out) override;
  /// The next scripted time (kTickInfinity once exhausted) — polls before
  /// it cannot emit and touch no state.
  Tick next_arrival_hint(Tick now) override;
  std::string name() const override { return "scripted"; }

  /// The script itself is construction data; only the cursor is state.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

 private:
  std::vector<sim::Injection> script_;
  std::size_t next_ = 0;
};

}  // namespace asyncmac::adversary
