// asyncmac/adversary/collision_forcer.h
//
// The Theorem-4 adversary (Section V): against any deterministic protocol
// that sends no control messages and claims to be collision-free, either
// drive some queue above a chosen bound L or force a collision.
//
// Construction (following the proof, with one precision fix): pick
// S > (2L+2) / (rho (R-1)) and probe each of two stations alone — inject
// its first packet at the end of its slot S and further packets at rate
// rho/2, with every slot one unit long, and record the index of its first
// transmission attempt (the protocol hears only silence until then, so
// the index depends only on slot counts, not on slot lengths). If either
// station withholds past slot S + 2L/rho + 1, its queue already exceeds
// L. Otherwise, with alpha/beta the measured withholding spans, fix the
// two stations' slot lengths X = c (S+beta-1), Y = c (S+alpha-1): the
// *starts* of their first transmissions then coincide exactly in real
// time (neither hears the other before committing, because feedback only
// arrives at slot ends), and the two transmissions overlap — a collision.
// (The paper's sketch aligns the transmission ends; aligning the starts
// is the airtight variant: with ends aligned the shorter-slot station
// would hear the longer transmission one slot early.)
#pragma once

#include <cstdint>

#include "adversary/protocol_factory.h"
#include "util/ratio.h"
#include "util/types.h"

namespace asyncmac::adversary {

struct CollisionForceOutcome {
  enum class Kind : std::uint8_t {
    kCollisionForced,  ///< the protocol collided: not collision-free
    kQueueOverflow,    ///< a probe queue exceeded L: not stable
    kNoTransmission,   ///< protocol never transmitted (degenerate; counts
                       ///< as overflow once L packets accumulate)
  };
  Kind kind = Kind::kNoTransmission;
  std::uint64_t s_start = 0;          ///< the S parameter used
  std::uint64_t alpha = 0, beta = 0;  ///< measured withholding spans
  Tick x_ticks = 0, y_ticks = 0;      ///< chosen slot lengths
  Tick collision_time = 0;            ///< start of the forced collision
  std::uint64_t collisions = 0;       ///< collided transmissions observed
  std::uint64_t overflow_queue = 0;   ///< packets queued at overflow
};

/// Run the Theorem-4 construction against `factory` (two stations, IDs 1
/// and 2) for injection rate rho in (0, 1] and queue bound L (packets).
/// Requires R >= 2. Throws if the protocol emits control messages (it is
/// then outside the theorem's model class).
CollisionForceOutcome force_collision_or_overflow(const ProtocolFactory& factory,
                                                  util::Ratio rho,
                                                  std::uint64_t l_bound,
                                                  std::uint32_t bound_r);

}  // namespace asyncmac::adversary
