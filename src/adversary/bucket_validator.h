// asyncmac/adversary/bucket_validator.h
//
// Post-hoc verifier of the Def.-1 leaky-bucket constraint: given the
// sequence of injections of a run (with either declared or realized
// costs), confirm that every time window [t_i, t_j] received at most
// rho * (t_j - t_i) + b cost. Used by tests to prove that the workload
// generators really belong to the adversary class the theorems quantify
// over, and to cross-check realized costs under variable slot policies.
#pragma once

#include <vector>

#include "sim/injection.h"
#include "util/ratio.h"
#include "util/types.h"

namespace asyncmac::adversary {

struct BucketViolation {
  bool violated = false;
  Tick window_begin = 0;
  Tick window_end = 0;
  Tick cost_in_window = 0;
  Tick allowed = 0;
};

/// Exact O(k) check. Injections must be sorted by time (the engine
/// enforces this ordering during the run).
///
/// The constraint "sum of costs in any window <= rho*t + b" is violated
/// iff for some i <= j:  P_j - P_{i-1} > rho*(t_j - t_i) + b, where P is
/// the cost prefix sum. Scanning j while keeping the maximum of
/// (rho * t_i - P_{i-1}) over i <= j decides this in one pass with
/// 128-bit intermediates.
BucketViolation check_leaky_bucket(const std::vector<sim::Injection>& log,
                                   util::Ratio rho, Tick burst);

/// Maximum burst parameter b that would make the log compliant at rate
/// rho (the log's "effective burstiness"). Returns 0 for an empty log.
Tick effective_burstiness(const std::vector<sim::Injection>& log,
                          util::Ratio rho);

}  // namespace asyncmac::adversary
