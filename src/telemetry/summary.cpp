#include "telemetry/summary.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace asyncmac::telemetry {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // Our writer only emits \u00xx control escapes; decode the
          // BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    // JSON forbids leading zeros ("01") and a bare minus sign.
    if (pos_ == digits) fail("bad number");
    if (text_[digits] == '0' && pos_ - digits > 1) fail("bad number");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    JsonValue v;
    try {
      if (integral) {
        v.kind = JsonValue::Kind::kInt;
        v.integer = std::stoll(token);
        v.number = static_cast<double>(v.integer);
      } else {
        v.kind = JsonValue::Kind::kDouble;
        v.number = std::stod(token);
      }
    } catch (const std::out_of_range&) {
      // Counters are uint64; fall back to double magnitude.
      v.kind = JsonValue::Kind::kDouble;
      v.number = std::stod(token);
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(const JsonValue& v) {
  if (v.kind == JsonValue::Kind::kInt && v.integer >= 0)
    return static_cast<std::uint64_t>(v.integer);
  if (v.kind == JsonValue::Kind::kDouble && v.number >= 0)
    return static_cast<std::uint64_t>(v.number);
  return 0;
}

void fold_snapshot(const JsonValue& line, JsonlSummary& summary) {
  summary.counters.clear();
  summary.gauges.clear();
  summary.timers.clear();
  if (const JsonValue* counters = line.find("counters"))
    for (const auto& [name, value] : counters->object)
      summary.counters.emplace_back(name, as_u64(value));
  if (const JsonValue* gauges = line.find("gauges"))
    for (const auto& [name, value] : gauges->object)
      summary.gauges.emplace_back(name, as_u64(value));
  if (const JsonValue* timers = line.find("timers"))
    for (const auto& [name, value] : timers->object) {
      Snapshot::TimerStats stats;
      if (const JsonValue* f = value.find("count")) stats.count = as_u64(*f);
      if (const JsonValue* f = value.find("min_ns")) stats.min_ns = f->as_int();
      if (const JsonValue* f = value.find("mean_ns")) stats.mean_ns = f->number;
      if (const JsonValue* f = value.find("p50_ns")) stats.p50_ns = f->as_int();
      if (const JsonValue* f = value.find("p99_ns")) stats.p99_ns = f->as_int();
      if (const JsonValue* f = value.find("max_ns")) stats.max_ns = f->as_int();
      summary.timers.emplace_back(name, stats);
    }
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

std::int64_t JsonValue::as_int() const {
  if (kind == Kind::kInt) return integer;
  if (kind == Kind::kDouble) return static_cast<std::int64_t>(number);
  return 0;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

JsonlSummary summarize_stream(std::istream& in) {
  JsonlSummary summary;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(line_no) + ": " +
                                  e.what());
    }
    const JsonValue* type = v.find("type");
    if (v.kind != JsonValue::Kind::kObject || type == nullptr ||
        type->kind != JsonValue::Kind::kString)
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": not a typed telemetry object");
    ++summary.lines;
    if (const JsonValue* t_ms = v.find("t_ms"))
      summary.span_ms = std::max(summary.span_ms, t_ms->as_int());
    if (type->string == "meta") {
      ++summary.meta_lines;
    } else if (type->string == "snapshot") {
      ++summary.snapshots;
      fold_snapshot(v, summary);
    } else if (type->string == "event") {
      ++summary.events;
      const JsonValue* name = v.find("name");
      if (name == nullptr || name->kind != JsonValue::Kind::kString)
        throw std::invalid_argument("line " + std::to_string(line_no) +
                                    ": event without a name");
      ++summary.event_counts[name->string];
    } else {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": unknown type \"" + type->string + "\"");
    }
  }
  return summary;
}

std::string render_summary(const JsonlSummary& summary, std::size_t top) {
  std::ostringstream os;
  os << "telemetry: " << summary.lines << " lines (" << summary.meta_lines
     << " meta, " << summary.snapshots << " snapshots, " << summary.events
     << " events), span "
     << static_cast<double>(summary.span_ms) / 1000.0 << " s\n";

  auto nonzero = summary.counters;
  nonzero.erase(std::remove_if(nonzero.begin(), nonzero.end(),
                               [](const auto& kv) { return kv.second == 0; }),
                nonzero.end());
  std::stable_sort(nonzero.begin(), nonzero.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (top != 0 && nonzero.size() > top) nonzero.resize(top);
  os << "counters (last snapshot, top " << nonzero.size() << "):\n";
  for (const auto& [name, value] : nonzero)
    os << "  " << name << " = " << value << "\n";

  bool any_gauge = false;
  for (const auto& [name, value] : summary.gauges) {
    if (value == 0) continue;
    if (!any_gauge) os << "gauges (high-water marks):\n";
    any_gauge = true;
    os << "  " << name << " = " << value << "\n";
  }

  bool any_timer = false;
  for (const auto& [name, t] : summary.timers) {
    if (t.count == 0) continue;
    if (!any_timer) os << "timers (ns):\n";
    any_timer = true;
    os << "  " << name << "  n=" << t.count << " min=" << t.min_ns
       << " mean=" << t.mean_ns << " p50=" << t.p50_ns << " p99=" << t.p99_ns
       << " max=" << t.max_ns << "\n";
  }

  if (!summary.event_counts.empty()) {
    os << "events:\n";
    for (const auto& [name, n] : summary.event_counts)
      os << "  " << name << " x " << n << "\n";
  }
  return os.str();
}

}  // namespace asyncmac::telemetry
