// asyncmac/telemetry/registry.h
//
// Run-telemetry instruments: a process-global registry of named monotonic
// counters, high-water gauges, and steady-clock scope timers, built for
// observing long sweeps and fuzz campaigns while they run.
//
// Contract with the deterministic simulator (DESIGN.md §5):
//   * Telemetry is strictly write-only from the simulation's point of
//     view — no simulation decision ever reads an instrument, so enabling
//     or disabling telemetry changes no RunStats, trace, or verdict byte.
//   * Instruments live *outside* simulated time: counters are relaxed
//     atomics, timers use the wall steady clock, and nothing here touches
//     Tick arithmetic.
//   * Zero-cost-when-disabled: every hot-path record checks one relaxed
//     atomic bool and branches away. Compiled in, off by default.
//   * Registry lookups (name -> instrument) take a mutex; hot paths
//     resolve their instruments once at construction and cache the
//     pointer (instrument addresses are stable for process lifetime).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace asyncmac::telemetry {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Global on/off switch. Off by default; flipping it on only starts
/// accumulation — it never alters simulation behaviour.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic counter. Thread-safe (parallel sweep workers share them).
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    if (enabled()) value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// High-water-mark gauge (e.g. peak ledger window size).
class MaxGauge {
 public:
  void observe(std::uint64_t v) noexcept {
    if (!enabled()) return;
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Duration sink: a mutex-guarded util::Histogram of nanosecond samples.
/// Record via ScopeTimer or record_ns directly.
class Timer {
 public:
  void record_ns(std::int64_t ns) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(ns);
  }
  util::Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.clear();
  }

 private:
  mutable std::mutex mu_;
  util::Histogram hist_;
};

/// RAII steady-clock timer: measures its own lifetime into a Timer.
/// Cost when telemetry is disabled: one relaxed load, no clock reads.
class ScopeTimer {
 public:
  explicit ScopeTimer(Timer& timer) noexcept
      : timer_(&timer), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (armed_)
      timer_->record_ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Timer* timer_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every instrument, ready for export.
struct Snapshot {
  struct TimerStats {
    std::uint64_t count = 0;
    std::int64_t min_ns = 0;
    double mean_ns = 0;
    std::int64_t p50_ns = 0;
    std::int64_t p99_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, TimerStats>> timers;
};

/// Name -> instrument map. Instruments are created on first lookup and
/// never destroyed before process exit, so returned references are safe
/// to cache in hot paths.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  MaxGauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  /// Copies all instrument values (counters/gauges at relaxed loads,
  /// timers summarized from their histograms). Zero-valued instruments
  /// are included — consumers filter.
  Snapshot snapshot() const;

  /// Zero every instrument (tests and campaign restarts). Instruments
  /// stay registered so cached pointers remain valid.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// Cold-path convenience: bump a named counter through the registry map.
/// Hot paths cache Counter* instead.
inline void count(const std::string& name, std::uint64_t d = 1) {
  if (!enabled()) return;
  Registry::global().counter(name).add(d);
}

}  // namespace asyncmac::telemetry
