#include "telemetry/jsonl.h"

#include <cstdio>
#include <sstream>

namespace asyncmac::telemetry {

namespace {

std::string field_value_json(const FieldValue& v) {
  std::ostringstream os;
  if (std::holds_alternative<std::int64_t>(v)) {
    os << std::get<std::int64_t>(v);
  } else if (std::holds_alternative<std::uint64_t>(v)) {
    os << std::get<std::uint64_t>(v);
  } else if (std::holds_alternative<double>(v)) {
    // JSON has no NaN/Inf; clamp to null for robustness.
    const double d = std::get<double>(v);
    if (d != d) {
      os << "null";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      os << buf;
    }
  } else if (std::holds_alternative<bool>(v)) {
    os << (std::get<bool>(v) ? "true" : "false");
  } else {
    os << '"' << json_escape(std::get<std::string>(v)) << '"';
  }
  return os.str();
}

std::string timer_stats_json(const Snapshot::TimerStats& t) {
  std::ostringstream os;
  char mean[64];
  std::snprintf(mean, sizeof mean, "%.17g", t.mean_ns);
  os << "{\"count\":" << t.count << ",\"min_ns\":" << t.min_ns
     << ",\"mean_ns\":" << mean << ",\"p50_ns\":" << t.p50_ns
     << ",\"p99_ns\":" << t.p99_ns << ",\"max_ns\":" << t.max_ns << "}";
  return os.str();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonlExporter::JsonlExporter(Options options)
    : out_(options.path),
      ok_(static_cast<bool>(out_)),
      start_(std::chrono::steady_clock::now()),
      period_(options.snapshot_period) {
  if (!ok_) return;
  const auto unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::ostringstream os;
  os << "{\"type\":\"meta\",\"version\":1,\"start_unix_ms\":" << unix_ms
     << "}";
  write_line(os.str());
  if (period_.count() > 0)
    flusher_ = std::thread([this] { flusher_loop(); });
}

JsonlExporter::~JsonlExporter() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      stopping_ = true;
    }
    stop_cv_.notify_all();
    flusher_.join();
  }
  if (ok_) snapshot_now("teardown");
}

std::int64_t JsonlExporter::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void JsonlExporter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(out_mu_);
  out_ << line << '\n';
  out_.flush();  // every line lands immediately: the file is tailable
}

void JsonlExporter::event(const std::string& name, const Fields& fields) {
  if (!ok_) return;
  std::ostringstream os;
  os << "{\"type\":\"event\",\"name\":\"" << json_escape(name)
     << "\",\"t_ms\":" << elapsed_ms() << ",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":" << field_value_json(value);
  }
  os << "}}";
  write_line(os.str());
}

void JsonlExporter::snapshot_now(const std::string& reason) {
  if (!ok_) return;
  const Snapshot snap = Registry::global().snapshot();
  std::ostringstream os;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    seq = snapshot_seq_++;
  }
  os << "{\"type\":\"snapshot\",\"seq\":" << seq
     << ",\"t_ms\":" << elapsed_ms() << ",\"reason\":\""
     << json_escape(reason) << "\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, stats] : snap.timers) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << timer_stats_json(stats);
  }
  os << "}}";
  write_line(os.str());
}

void JsonlExporter::flusher_loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, period_, [this] { return stopping_; }))
      break;
    lock.unlock();
    snapshot_now("periodic");
    lock.lock();
  }
}

namespace {
std::mutex g_exporter_mu;
std::unique_ptr<JsonlExporter> g_exporter;
}  // namespace

void install_exporter(std::unique_ptr<JsonlExporter> new_exporter) {
  std::unique_ptr<JsonlExporter> old;
  {
    std::lock_guard<std::mutex> lock(g_exporter_mu);
    old = std::move(g_exporter);
    g_exporter = std::move(new_exporter);
  }
  // `old` finalizes (final snapshot + join) outside the lock.
}

void uninstall_exporter() { install_exporter(nullptr); }

JsonlExporter* exporter() noexcept { return g_exporter.get(); }

void emit(const std::string& name, const Fields& fields) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_exporter_mu);
  if (g_exporter) g_exporter->event(name, fields);
}

bool enable_to_file(const std::string& path) {
  auto exp = std::make_unique<JsonlExporter>(JsonlExporter::Options{path});
  if (!exp->ok()) return false;
  set_enabled(true);
  install_exporter(std::move(exp));
  return true;
}

}  // namespace asyncmac::telemetry
