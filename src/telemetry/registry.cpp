#include "telemetry/registry.h"

namespace asyncmac::telemetry {

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: cached
  return *instance;                            // instrument pointers stay
}                                              // valid through exit paths

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

MaxGauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MaxGauge>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace_back(name, g->value());
  snap.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    const util::Histogram h = t->snapshot();
    Snapshot::TimerStats stats;
    stats.count = h.count();
    if (!h.empty()) {
      stats.min_ns = h.min();
      stats.mean_ns = h.mean();
      stats.p50_ns = h.quantile(0.5);
      stats.p99_ns = h.quantile(0.99);
      stats.max_ns = h.max();
    }
    snap.timers.emplace_back(name, stats);
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

}  // namespace asyncmac::telemetry
