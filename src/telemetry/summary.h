// asyncmac/telemetry/summary.h
//
// Reader side of the JSONL telemetry stream: a minimal strict JSON
// parser (full value grammar, no extensions) plus a summarizer that
// validates every line and folds the stream into a human-readable
// digest — top counters, gauge high-water marks, timer histograms, and
// per-name event counts. `asyncmac_cli stats` is a thin wrapper over
// this, and CI uses it to validate the artifact a smoke run produced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.h"

namespace asyncmac::telemetry {

/// Parsed JSON value (object keys keep insertion order).
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t integer = 0;  ///< valid when kind == kInt
  double number = 0;         ///< valid when kind == kDouble (and kInt)
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// First member with this key, or nullptr (objects only).
  const JsonValue* find(const std::string& key) const;
  /// integer when kInt, truncated number when kDouble, else 0.
  std::int64_t as_int() const;
};

/// Parse one JSON document; throws std::invalid_argument with a byte
/// offset on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

/// Digest of one telemetry JSONL stream.
struct JsonlSummary {
  std::uint64_t lines = 0;
  std::uint64_t meta_lines = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t events = 0;
  std::int64_t span_ms = 0;  ///< largest t_ms observed
  std::map<std::string, std::uint64_t> event_counts;  ///< by event name
  // From the last snapshot line (empty when the stream has none).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, Snapshot::TimerStats>> timers;
};

/// Parse and fold a whole stream. Every line must be a valid JSON object
/// with a known "type"; throws std::invalid_argument (with the line
/// number) otherwise. Blank lines are permitted and ignored.
JsonlSummary summarize_stream(std::istream& in);

/// Render the digest: top `top` counters by value (all when 0), gauges,
/// timer summaries, event tallies.
std::string render_summary(const JsonlSummary& summary, std::size_t top = 20);

}  // namespace asyncmac::telemetry
