// asyncmac/telemetry/jsonl.h
//
// Streaming JSONL (one JSON object per line) event export for live runs.
// Every line is self-contained, flushed as soon as it is written, and
// carries a monotonic elapsed-ms stamp, so a long grid sweep or fuzz
// campaign can be watched with `tail -f run.jsonl` and summarized at any
// point with `asyncmac_cli stats run.jsonl`.
//
// Line schema (see docs/OBSERVABILITY.md):
//   {"type":"meta","version":1,"start_unix_ms":...}
//   {"type":"event","name":"...","t_ms":N,"fields":{...}}
//   {"type":"snapshot","seq":K,"t_ms":N,"reason":"...",
//    "counters":{...},"gauges":{...},
//    "timers":{"name":{"count":..,"min_ns":..,"mean_ns":..,
//                      "p50_ns":..,"p99_ns":..,"max_ns":..}}}
//
// A background flusher thread appends a snapshot line every
// snapshot_period (default 1 s) while the process works, plus a final
// snapshot at teardown. The thread only reads instruments (relaxed
// atomics / the timer mutex) and its own output mutex — it never touches
// simulation state, preserving the determinism guarantee.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "telemetry/registry.h"

namespace asyncmac::telemetry {

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

using FieldValue =
    std::variant<std::int64_t, std::uint64_t, double, bool, std::string>;
using Fields = std::vector<std::pair<std::string, FieldValue>>;

class JsonlExporter {
 public:
  struct Options {
    std::string path;
    /// Cadence of background snapshot lines; zero disables the flusher
    /// thread (snapshots then only appear at teardown / snapshot_now).
    std::chrono::milliseconds snapshot_period{1000};
  };

  explicit JsonlExporter(Options options);
  /// Emits a final "teardown" snapshot and joins the flusher.
  ~JsonlExporter();

  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  bool ok() const { return ok_; }

  /// Append one event line. Safe from any thread.
  void event(const std::string& name, const Fields& fields);

  /// Append one snapshot line of the global Registry right now.
  void snapshot_now(const std::string& reason);

 private:
  void write_line(const std::string& line);
  std::int64_t elapsed_ms() const;
  void flusher_loop();

  std::ofstream out_;
  bool ok_ = false;
  std::chrono::steady_clock::time_point start_;
  std::mutex out_mu_;
  std::uint64_t snapshot_seq_ = 0;

  std::chrono::milliseconds period_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread flusher_;
};

/// Install a process-global exporter so instrumented layers can emit
/// milestone events without plumbing a handle through every call chain.
/// Passing ownership; replaces (and finalizes) any previous exporter.
void install_exporter(std::unique_ptr<JsonlExporter> exporter);

/// Flush the final snapshot and close the global exporter (no-op when
/// none is installed).
void uninstall_exporter();

/// Currently installed exporter, or nullptr.
JsonlExporter* exporter() noexcept;

/// Emit an event through the global exporter; no-op when telemetry is
/// disabled or no exporter is installed.
void emit(const std::string& name, const Fields& fields);

/// Convenience: enable telemetry and install a JSONL exporter writing to
/// `path`. Returns false (and installs nothing) if the file cannot be
/// opened.
bool enable_to_file(const std::string& path);

}  // namespace asyncmac::telemetry
