// asyncmac/trace/renderer.h
//
// ASCII renderer for slot-level traces, in the spirit of the paper's
// Fig. 2: one row pair per station — the action occupying each slot and
// the feedback delivered at the slot's end. Time is drawn to scale
// (columns are fractions of a time unit), so asynchronous slot stretching
// is visible at a glance.
#pragma once

#include <string>
#include <vector>

#include "trace/recorder.h"

namespace asyncmac::trace {

struct RenderOptions {
  Tick from = 0;                 ///< first tick to draw
  Tick to = kTickInfinity;       ///< last tick (clamped to trace extent)
  int columns_per_unit = 8;      ///< horizontal resolution
  int max_width = 600;           ///< hard cap on line width
  bool show_feedback = true;     ///< draw the feedback row
};

/// Render the schedule of all stations appearing in the trace.
/// Transmitting slots are drawn as `TTTT` (packets) / `CCCC` (control),
/// listening slots as `....`, slot boundaries as `|`, and the feedback row
/// marks each slot end with `a` (ack), `b` (busy) or `s` (silence).
std::string render_schedule(const std::vector<SlotRecord>& slots,
                            const RenderOptions& options = {});

}  // namespace asyncmac::trace
