#include "trace/invariants.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "channel/ledger.h"

namespace asyncmac::trace {

namespace {

template <typename... Ts>
CheckResult fail(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return {false, os.str()};
}

}  // namespace

std::vector<channel::Transmission> transmissions_of(
    const std::vector<SlotRecord>& slots) {
  std::vector<channel::Transmission> out;
  for (const auto& s : slots) {
    if (!is_transmit(s.action)) continue;
    channel::Transmission t;
    t.station = s.station;
    t.begin = s.begin;
    t.end = s.end;
    t.is_control = (s.action == SlotAction::kTransmitControl);
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const channel::Transmission& a,
               const channel::Transmission& b) {
              return std::tie(a.begin, a.station) <
                     std::tie(b.begin, b.station);
            });
  return out;
}

CheckResult check_no_overlaps(
    const std::vector<channel::Transmission>& transmissions) {
  // Sorted by begin: it suffices to compare each with the running latest
  // end among predecessors.
  Tick latest_end = 0;
  StationId latest_station = kInvalidStation;
  for (const auto& t : transmissions) {
    if (t.begin < latest_end)
      return fail("transmissions overlap: station ", t.station, " starts at ",
                  t.begin, " before station ", latest_station, " ends at ",
                  latest_end);
    if (t.end > latest_end) {
      latest_end = t.end;
      latest_station = t.station;
    }
  }
  return {};
}

CheckResult check_slot_contiguity(const std::vector<SlotRecord>& slots) {
  std::map<StationId, const SlotRecord*> last;
  for (const auto& s : slots) {
    auto [it, fresh] = last.try_emplace(s.station, nullptr);
    if (fresh) {
      if (s.index != 1 || s.begin != 0)
        return fail("station ", s.station,
                    " first recorded slot is index ", s.index, " at ",
                    s.begin, " (expected index 1 at t=0)");
    } else {
      const SlotRecord* prev = it->second;
      if (s.index != prev->index + 1)
        return fail("station ", s.station, " slot index jumps from ",
                    prev->index, " to ", s.index);
      if (s.begin != prev->end)
        return fail("station ", s.station, " slot ", s.index,
                    " begins at ", s.begin, " but previous ended at ",
                    prev->end);
    }
    if (s.end <= s.begin)
      return fail("station ", s.station, " slot ", s.index, " is empty");
    it->second = &s;
  }
  return {};
}

Tick checkable_horizon(const std::vector<SlotRecord>& slots) {
  // At the end of a run each station may have one in-flight slot the
  // trace never sees. An unseen in-flight *transmission* influenced other
  // stations' feedback but is absent from a replay, so only slots ending
  // at or before the earliest per-station "last recorded end" are
  // checkable: every unseen transmission begins at its station's last
  // recorded end, which is >= that horizon, and therefore cannot overlap
  // a checkable slot.
  std::map<StationId, Tick> last_end;
  for (const auto& s : slots)
    last_end[s.station] = std::max(last_end[s.station], s.end);
  Tick horizon = kTickInfinity;
  for (const auto& [station, end] : last_end)
    horizon = std::min(horizon, end);
  return horizon;
}

CheckResult check_feedback_consistency(const std::vector<SlotRecord>& slots,
                                       channel::RestrainedSpec restrained) {
  const Tick horizon = checkable_horizon(slots);
  channel::Ledger ledger(/*keep_history=*/false, restrained);
  for (const auto& t : transmissions_of(slots)) ledger.add(t);
  for (const auto& s : slots) {
    if (s.end > horizon) continue;  // may depend on unrecorded slots
    const Feedback expected = ledger.feedback(s.begin, s.end);
    if (s.feedback != expected)
      return fail("station ", s.station, " slot ", s.index, " at [",
                  s.begin, ",", s.end, ") recorded ", to_string(s.feedback),
                  " but the channel model replays ", to_string(expected));
  }
  return {};
}

CheckResult check_mirror_property(const std::vector<SlotRecord>& slots) {
  for (const auto& s : slots) {
    const Feedback expected =
        is_transmit(s.action) ? Feedback::kBusy : Feedback::kSilence;
    if (s.feedback != expected)
      return fail("mirror broken: station ", s.station, " slot ", s.index,
                  " did ", to_string(s.action), " but heard ",
                  to_string(s.feedback));
  }
  return {};
}

CheckResult check_cyclic_turn_order(
    const std::vector<channel::Transmission>& transmissions,
    std::uint32_t n) {
  StationId prev_burst = kInvalidStation;
  StationId current = kInvalidStation;
  for (const auto& t : transmissions) {
    if (t.station == current) continue;  // same burst continues
    // New burst: must be the cyclic successor of the previous burst's
    // station (bursts by stations with empty turns are skipped only via
    // their control signal, which still shows up as a burst).
    if (prev_burst != kInvalidStation) {
      const StationId expected = (prev_burst % n) + 1;
      if (t.station != expected)
        return fail("turn order broken at t=", t.begin, ": station ",
                    t.station, " transmits after station ", prev_burst,
                    " (expected ", expected, ")");
    }
    prev_burst = current = t.station;
  }
  return {};
}

}  // namespace asyncmac::trace
