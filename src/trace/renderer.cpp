#include "trace/renderer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.h"

namespace asyncmac::trace {

std::string render_schedule(const std::vector<SlotRecord>& slots,
                            const RenderOptions& options) {
  if (slots.empty()) return "(empty trace)\n";
  AM_REQUIRE(options.columns_per_unit > 0, "columns_per_unit must be > 0");

  Tick from = options.from;
  Tick to = 0;
  for (const auto& r : slots) to = std::max(to, r.end);
  to = std::min(to, options.to);
  if (to <= from) return "(trace window empty)\n";

  const double cols_per_tick = static_cast<double>(options.columns_per_unit) /
                               static_cast<double>(kTicksPerUnit);
  auto col_of = [&](Tick t) {
    return static_cast<long>(static_cast<double>(t - from) * cols_per_tick);
  };
  long width = col_of(to) + 1;
  width = std::min<long>(width, options.max_width);

  // Group records per station, keeping station order stable.
  std::map<StationId, std::vector<const SlotRecord*>> per_station;
  for (const auto& r : slots) {
    if (r.end <= from || r.begin >= to) continue;
    per_station[r.station].push_back(&r);
  }

  if (per_station.empty()) return "(trace window empty)\n";

  std::ostringstream os;
  for (const auto& [station, records] : per_station) {
    std::string action_row(static_cast<std::size_t>(width), ' ');
    std::string feedback_row(static_cast<std::size_t>(width), ' ');
    for (const auto* r : records) {
      const long b = std::clamp(col_of(r->begin), 0L, width - 1);
      const long e = std::clamp(col_of(r->end), 0L, width - 1);
      char fill = '.';
      if (r->action == SlotAction::kTransmitPacket) fill = 'T';
      if (r->action == SlotAction::kTransmitControl) fill = 'C';
      for (long c = b; c <= e; ++c)
        action_row[static_cast<std::size_t>(c)] = fill;
      action_row[static_cast<std::size_t>(b)] = '|';
      char fb = 's';
      if (r->feedback == Feedback::kBusy) fb = 'b';
      if (r->feedback == Feedback::kAck) fb = 'a';
      feedback_row[static_cast<std::size_t>(e)] = fb;
    }
    os << "station " << station << "\n";
    os << "  act  " << action_row << "\n";
    if (options.show_feedback) os << "  fbk  " << feedback_row << "\n";
  }
  os << "  (T=transmit packet, C=control, .=listen, |=slot start; "
        "feedback at slot end: a=ack, b=busy, s=silence)\n";
  return os.str();
}

}  // namespace asyncmac::trace
