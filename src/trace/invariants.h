// asyncmac/trace/invariants.h
//
// Trace-level invariant checkers. Tests and benches use these to verify
// *global* properties of whole executions that no single station can
// observe — collision-freedom, slot contiguity, feedback consistency
// against an independent channel-model replay, mirror-execution shape,
// and CA-ARRoW's cyclic turn order.
#pragma once

#include <string>
#include <vector>

#include "channel/transmission.h"
#include "trace/recorder.h"

namespace asyncmac::trace {

struct CheckResult {
  bool ok = true;
  std::string what;  ///< first violation, empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// No two transmissions overlap in time (the CA-ARRoW guarantee).
CheckResult check_no_overlaps(
    const std::vector<channel::Transmission>& transmissions);

/// Every station's slots tile its timeline: indices 1,2,3,... and each
/// slot begins exactly where the previous one ended, starting at 0.
CheckResult check_slot_contiguity(const std::vector<SlotRecord>& slots);

/// Re-derive every slot's feedback from the transmissions alone (through
/// a fresh Ledger) and compare with what the engine delivered. This is an
/// end-to-end consistency check of the channel model. When the run used
/// a k-restrained channel, pass its spec so the replay admits/rejects
/// identically (transmissions_of() returns adds in (begin, station)
/// order — the engine's event order — so admission replays exactly).
CheckResult check_feedback_consistency(const std::vector<SlotRecord>& slots,
                                       channel::RestrainedSpec restrained = {});

/// The mirror-execution property (Theorem 2): listening slots hear
/// silence, transmitting slots hear busy — and hence nobody succeeds.
CheckResult check_mirror_property(const std::vector<SlotRecord>& slots);

/// Successful transmission *bursts* (maximal runs of successive
/// transmissions by one station) rotate over stations in cyclic ID order
/// — CA-ARRoW's turn structure. `n` is the number of stations.
CheckResult check_cyclic_turn_order(
    const std::vector<channel::Transmission>& transmissions,
    std::uint32_t n);

/// Gather all transmissions recorded in a trace (from transmit slots).
std::vector<channel::Transmission> transmissions_of(
    const std::vector<SlotRecord>& slots);

/// Latest time up to which a trace is checkable against a channel replay:
/// the minimum over stations of the last recorded slot end. A slot that
/// ends later may depend on an in-flight slot the trace never recorded
/// (the trace records a slot when it ENDS), so replay-based checks skip
/// it. kTickInfinity for an empty trace.
Tick checkable_horizon(const std::vector<SlotRecord>& slots);

}  // namespace asyncmac::trace
