#include "trace/serialize.h"

#include <sstream>

#include "util/check.h"
#include "util/parse.h"

namespace asyncmac::trace {

namespace {

const char* action_name(SlotAction a) {
  switch (a) {
    case SlotAction::kListen: return "listen";
    case SlotAction::kTransmitPacket: return "tx";
    case SlotAction::kTransmitControl: return "ctl";
  }
  return "?";
}

SlotAction parse_action(const std::string& s) {
  if (s == "listen") return SlotAction::kListen;
  if (s == "tx") return SlotAction::kTransmitPacket;
  if (s == "ctl") return SlotAction::kTransmitControl;
  throw std::invalid_argument("unknown action: " + s);
}

const char* feedback_name(Feedback f) {
  switch (f) {
    case Feedback::kSilence: return "silence";
    case Feedback::kBusy: return "busy";
    case Feedback::kAck: return "ack";
  }
  return "?";
}

Feedback parse_feedback(const std::string& s) {
  if (s == "silence") return Feedback::kSilence;
  if (s == "busy") return Feedback::kBusy;
  if (s == "ack") return Feedback::kAck;
  throw std::invalid_argument("unknown feedback: " + s);
}

// Strict all-digits u32 parse (shared with argv parsing): rejects trailing
// garbage, signs, and overflow with std::invalid_argument — fuzzed trace
// files must fail cleanly on every one of those.
std::uint32_t parse_u32(const std::string& s, const char* what) {
  return util::parse_u32(s, what);
}

}  // namespace

std::string serialize_trace(const TraceHeader& header,
                            const std::vector<SlotRecord>& slots) {
  std::ostringstream os;
  os << "asyncmac-trace v1 n=" << header.n << " r=" << header.bound_r
     << "\n";
  for (const auto& s : slots) {
    os << "slot " << s.station << ' ' << s.index << ' ' << s.begin << ' '
       << s.end << ' ' << action_name(s.action) << ' '
       << feedback_name(s.feedback) << "\n";
  }
  return os.str();
}

ParsedTrace parse_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  ParsedTrace out;

  AM_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty trace text");
  {
    std::istringstream h(line);
    std::string magic, version, nfield, rfield, extra;
    h >> magic >> version >> nfield >> rfield;
    AM_REQUIRE(magic == "asyncmac-trace" && version == "v1",
               "bad trace header");
    AM_REQUIRE(nfield.rfind("n=", 0) == 0 && rfield.rfind("r=", 0) == 0,
               "bad trace header fields");
    AM_REQUIRE(!(h >> extra), "trailing tokens in trace header");
    out.header.n = parse_u32(nfield.substr(2), "header n");
    out.header.bound_r = parse_u32(rfield.substr(2), "header r");
  }

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    AM_REQUIRE(tag == "slot",
               "line " + std::to_string(line_no) + ": unknown tag " + tag);
    SlotRecord rec;
    std::string action, feedback, extra;
    ls >> rec.station >> rec.index >> rec.begin >> rec.end >> action >>
        feedback;
    AM_REQUIRE(!ls.fail(),
               "line " + std::to_string(line_no) + ": malformed slot");
    AM_REQUIRE(!(ls >> extra),
               "line " + std::to_string(line_no) + ": trailing tokens");
    rec.action = parse_action(action);
    rec.feedback = parse_feedback(feedback);
    AM_REQUIRE(rec.station >= 1 && rec.station <= out.header.n,
               "line " + std::to_string(line_no) + ": station out of range");
    AM_REQUIRE(rec.index >= 1,
               "line " + std::to_string(line_no) + ": slot index must be >= 1");
    AM_REQUIRE(rec.begin >= 0,
               "line " + std::to_string(line_no) + ": negative slot begin");
    AM_REQUIRE(rec.end > rec.begin,
               "line " + std::to_string(line_no) + ": empty slot interval");
    out.slots.push_back(rec);
  }
  return out;
}

CheckResult verify_trace_text(const std::string& text) {
  ParsedTrace parsed;
  try {
    parsed = parse_trace(text);
  } catch (const std::invalid_argument& e) {
    return {false, e.what()};
  }
  if (auto contiguous = check_slot_contiguity(parsed.slots); !contiguous)
    return contiguous;
  return check_feedback_consistency(parsed.slots);
}

}  // namespace asyncmac::trace
