// asyncmac/trace/serialize.h
//
// Text (de)serialization of execution traces. One line per slot:
//
//   slot <station> <index> <begin> <end> <action> <feedback>
//
// preceded by a header line `asyncmac-trace v1 n=<n> r=<R>`. The format
// is deliberately line-oriented and diff-friendly: traces can be stored
// as golden files, attached to bug reports, and re-verified against the
// exact channel model (verify_trace_text) on any machine — runs are
// bit-deterministic, so a mismatch is always meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/invariants.h"
#include "trace/recorder.h"

namespace asyncmac::trace {

struct TraceHeader {
  std::uint32_t n = 0;
  std::uint32_t bound_r = 0;
};

/// Serialize a recorded trace (slot-end order preserved).
std::string serialize_trace(const TraceHeader& header,
                            const std::vector<SlotRecord>& slots);

struct ParsedTrace {
  TraceHeader header;
  std::vector<SlotRecord> slots;
};

/// Parse a serialized trace; throws std::invalid_argument on malformed
/// input (wrong magic, bad field counts, unknown enum names).
ParsedTrace parse_trace(const std::string& text);

/// Parse, then re-run the slot feedback through the channel model and the
/// structural invariants (contiguity + feedback consistency).
CheckResult verify_trace_text(const std::string& text);

}  // namespace asyncmac::trace
