#include "trace/recorder.h"

namespace asyncmac::trace {

std::vector<SlotRecord> Recorder::station_slots(StationId id) const {
  std::vector<SlotRecord> out;
  for (const auto& r : slots_)
    if (r.station == id) out.push_back(r);
  return out;
}

}  // namespace asyncmac::trace
