// asyncmac/trace/recorder.h
//
// Slot-level execution trace. One record per (station, slot) with the
// absolute interval, the action taken and the feedback received — enough
// to re-render schedules in the style of the paper's Fig. 2 / Fig. 4 and
// to assert trace-level invariants in tests (e.g. CA-ARRoW's transmissions
// never overlap).
#pragma once

#include <vector>

#include "util/types.h"

namespace asyncmac::trace {

struct SlotRecord {
  StationId station = kInvalidStation;
  SlotIndex index = 0;  ///< 1-based within the station's own partition
  Tick begin = 0;
  Tick end = 0;
  SlotAction action = SlotAction::kListen;
  Feedback feedback = Feedback::kSilence;
};

class Recorder {
 public:
  /// Records are appended in slot-end order (the engine's event order).
  void record(const SlotRecord& r) { slots_.push_back(r); }

  const std::vector<SlotRecord>& slots() const noexcept { return slots_; }
  bool empty() const noexcept { return slots_.empty(); }
  void clear() { slots_.clear(); }

  /// All records of one station, in slot order.
  std::vector<SlotRecord> station_slots(StationId id) const;

 private:
  std::vector<SlotRecord> slots_;
};

}  // namespace asyncmac::trace
