#include "analysis/registry.h"

#include <map>

#include "baselines/aloha.h"
#include "baselines/beb.h"
#include "baselines/csma_lbt.h"
#include "baselines/listen.h"
#include "baselines/mbtf.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "baselines/sync_binary_le.h"
#include "baselines/tree_resolution.h"
#include "core/abs.h"
#include "core/adaptive_abs.h"
#include "core/ao_arrow.h"
#include "core/ca_arrow.h"
#include "util/check.h"

namespace asyncmac::analysis {

namespace {

const std::map<std::string, ProtocolMaker>& registry() {
  static const std::map<std::string, ProtocolMaker> kRegistry = {
      {"ao-arrow",
       [] { return std::make_unique<core::AoArrowProtocol>(); }},
      {"ca-arrow",
       [] { return std::make_unique<core::CaArrowProtocol>(); }},
      {"adaptive-abs",
       [] { return std::make_unique<core::AdaptiveAbsProtocol>(); }},
      {"abs", [] { return std::make_unique<core::AbsProtocol>(); }},
      {"rrw", [] { return std::make_unique<baselines::RrwProtocol>(); }},
      {"mbtf", [] { return std::make_unique<baselines::MbtfProtocol>(); }},
      {"aloha",
       [] { return std::make_unique<baselines::SlottedAlohaProtocol>(); }},
      {"beb", [] { return std::make_unique<baselines::BebProtocol>(); }},
      {"csma-lbt",
       [] { return std::make_unique<baselines::CsmaLbtProtocol>(); }},
      {"silence-tdma",
       [] {
         return std::make_unique<baselines::SilenceCountTdmaProtocol>();
       }},
      {"sync-binary-le",
       [] { return std::make_unique<baselines::SyncBinaryLeProtocol>(); }},
      {"tree-resolution",
       [] {
         return std::make_unique<baselines::TreeResolutionProtocol>();
       }},
      {"listen",
       [] { return std::make_unique<baselines::ListenProtocol>(); }},
  };
  return kRegistry;
}

}  // namespace

ProtocolMaker protocol_maker(const std::string& name) {
  const auto it = registry().find(name);
  AM_REQUIRE(it != registry().end(), "unknown protocol: " + name);
  return it->second;
}

std::unique_ptr<sim::Protocol> make_protocol(const std::string& name) {
  return protocol_maker(name)();
}

std::vector<std::unique_ptr<sim::Protocol>> make_protocols(
    const std::string& name, std::uint32_t n) {
  const auto maker = protocol_maker(name);
  std::vector<std::unique_ptr<sim::Protocol>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(maker());
  return out;
}

std::vector<std::string> protocol_names() {
  std::vector<std::string> names;
  for (const auto& [name, maker] : registry()) names.push_back(name);
  return names;
}

}  // namespace asyncmac::analysis
