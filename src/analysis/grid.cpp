#include "analysis/grid.h"

#include <filesystem>
#include <memory>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "channel/transmission.h"
#include "energy/meter.h"
#include "sim/cohort_engine.h"
#include "sim/engine.h"
#include "snapshot/format.h"
#include "util/check.h"

namespace asyncmac::analysis {

namespace {

/// The lane-invariant parameters of one work unit's cells, with the
/// registry lookup hoisted: every cell of a unit shares protocol, n, R
/// and policy, while seed AND the injector parameters (rho) may vary per
/// lane — injectors are free under cohort eligibility, so a whole grid
/// row of injector cells batches as one lockstep cohort.
struct CellSetup {
  ProtocolMaker maker;
  std::string protocol;
  std::uint32_t n;
  std::uint32_t bound_r;
  std::string policy;
  Tick burst_units;
  channel::RestrainedSpec restrained;
  energy::EnergyModel energy;

  CellSetup(const ExperimentSpec& spec, const std::string& protocol_name,
            std::uint32_t n_, std::uint32_t r_, const std::string& policy_)
      : maker(protocol_maker(protocol_name)),
        protocol(protocol_name),
        n(n_),
        bound_r(r_),
        policy(policy_),
        burst_units(spec.burst_units),
        restrained{spec.restrained_k, spec.restrained_jam},
        energy{spec.energy_enabled, spec.energy_cost_transmit,
               spec.energy_cost_listen, spec.energy_cost_sleep} {}

  /// Engine materials for one (seed, rho) cell of this unit.
  sim::LaneMaterials materials(std::uint64_t seed, int rho_pct) const {
    sim::LaneMaterials m;
    m.cfg.n = n;
    m.cfg.bound_r = bound_r;
    m.cfg.seed = seed;
    m.cfg.restrained = restrained;
    m.cfg.energy = energy;
    m.protocols.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) m.protocols.push_back(maker());
    m.slot_policy = adversary::make_slot_policy(policy, n, bound_r, seed);
    m.injection = std::make_unique<adversary::SaturatingInjector>(
        util::Ratio(rho_pct, 100), burst_units * kTicksPerUnit,
        adversary::TargetPattern::kRoundRobin, 1, seed + 1);
    return m;
  }
};

ExperimentRecord extract_record(const CellSetup& setup, int rho_pct,
                                std::uint64_t seed,
                                const metrics::RunStats& s,
                                const channel::LedgerStats& ch,
                                const energy::EnergyMeter& meter) {
  ExperimentRecord rec;
  rec.protocol = setup.protocol;
  rec.n = setup.n;
  rec.bound_r = setup.bound_r;
  rec.rho_pct = rho_pct;
  rec.slot_policy = setup.policy;
  rec.seed = seed;
  rec.injected = s.injected_packets;
  rec.delivered = s.delivered_packets;
  rec.queued = s.queued_packets;
  rec.max_queue_cost_units = to_units(s.max_queued_cost);
  rec.final_queue_cost_units = to_units(s.queued_cost);
  rec.collisions = ch.collided;
  rec.control_msgs = ch.control_transmissions;
  rec.delivered_fraction =
      s.injected_packets ? static_cast<double>(s.delivered_packets) /
                               static_cast<double>(s.injected_packets)
                         : 1.0;
  rec.p99_latency_units =
      s.latency.empty() ? 0.0 : to_units(s.latency.quantile(0.99));
  if (setup.energy.enabled) {
    rec.energy_total = meter.total_charge(setup.energy);
    rec.energy_peak_station = meter.peak_station_charge(setup.energy);
    rec.energy_per_delivery =
        s.delivered_packets ? static_cast<double>(rec.energy_total) /
                                  static_cast<double>(s.delivered_packets)
                            : 0.0;
  }
  return rec;
}

/// Cells per contiguous chunkable block. Seed replicas of one base cell
/// are always contiguous (seed innermost); with a single slot policy the
/// whole rho x seed sub-block of one (protocol, n, R) row is contiguous
/// too, and rho only parameterizes the injector — free under cohort
/// eligibility — so the block grows to rho_percents.size() * seeds.
std::size_t chunk_block(const ExperimentSpec& spec) {
  const std::size_t seeds = static_cast<std::size_t>(spec.seeds);
  return spec.slot_policies.size() == 1 ? seeds * spec.rho_percents.size()
                                        : seeds;
}

}  // namespace

unsigned grid_cohort_width(const ExperimentSpec& spec) {
  if (spec.cohort != 0) return spec.cohort;
  return static_cast<unsigned>(std::min<std::size_t>(8, chunk_block(spec)));
}

GridPlan plan_grid(const ExperimentSpec& spec) {
  AM_REQUIRE(!spec.protocols.empty() && !spec.station_counts.empty() &&
                 !spec.bounds_r.empty() && !spec.rho_percents.empty() &&
                 !spec.slot_policies.empty(),
             "every sweep dimension needs at least one value");
  AM_REQUIRE(spec.seeds >= 1, "need at least one seed");
  AM_REQUIRE(spec.horizon_units > 0, "horizon must be positive");

  GridPlan plan;
  for (const auto& protocol : spec.protocols)
    for (std::uint32_t n : spec.station_counts)
      for (std::uint32_t r : spec.bounds_r)
        for (int rho : spec.rho_percents)
          for (const auto& policy : spec.slot_policies)
            for (int s = 0; s < spec.seeds; ++s)
              plan.cells.push_back(
                  {protocol, n, r, rho, policy,
                   spec.seed + static_cast<std::uint64_t>(s) * 1000003});

  // Work units: chunks of up to `cohort_width` cells within each
  // contiguous block of cells sharing protocol, n, R and policy (see
  // chunk_block — with one slot policy a block is a whole rho x seed grid
  // row, so lanes of one cohort may differ in injector parameters, not
  // just seed). A unit is [first, first + count) in cell order.
  const unsigned cohort_width = grid_cohort_width(spec);
  const std::size_t block = chunk_block(spec);
  for (std::size_t base = 0; base < plan.cells.size(); base += block)
    for (std::size_t s = 0; s < block; s += cohort_width)
      plan.units.push_back(
          {base + s, std::min<std::size_t>(cohort_width, block - s)});
  return plan;
}

std::uint32_t grid_fingerprint(const ExperimentSpec& spec) {
  snapshot::Writer w;
  for (const auto& p : spec.protocols) w.str(p);
  for (std::uint32_t n : spec.station_counts) w.u32(n);
  for (std::uint32_t r : spec.bounds_r) w.u32(r);
  for (int rho : spec.rho_percents) w.i64(rho);
  for (const auto& p : spec.slot_policies) w.str(p);
  w.i64(spec.burst_units);
  w.i64(spec.horizon_units);
  w.u64(spec.seed);
  w.i64(spec.seeds);
  w.u32(spec.restrained_k);
  w.boolean(spec.restrained_jam);
  w.boolean(spec.energy_enabled);
  w.u64(spec.energy_cost_transmit);
  w.u64(spec.energy_cost_listen);
  w.u64(spec.energy_cost_sleep);
  return snapshot::crc32(w.buffer().data(), w.buffer().size());
}

void save_record(snapshot::Writer& w, const ExperimentRecord& rec) {
  w.str(rec.protocol);
  w.u32(rec.n);
  w.u32(rec.bound_r);
  w.i64(rec.rho_pct);
  w.str(rec.slot_policy);
  w.u64(rec.seed);
  w.u64(rec.injected);
  w.u64(rec.delivered);
  w.u64(rec.queued);
  w.f64(rec.max_queue_cost_units);
  w.f64(rec.final_queue_cost_units);
  w.u64(rec.collisions);
  w.u64(rec.control_msgs);
  w.f64(rec.delivered_fraction);
  w.f64(rec.p99_latency_units);
  w.u64(rec.energy_total);
  w.u64(rec.energy_peak_station);
  w.f64(rec.energy_per_delivery);
}

ExperimentRecord load_record(snapshot::Reader& r) {
  ExperimentRecord rec;
  rec.protocol = r.str();
  rec.n = r.u32();
  rec.bound_r = r.u32();
  rec.rho_pct = static_cast<int>(r.i64());
  rec.slot_policy = r.str();
  rec.seed = r.u64();
  rec.injected = r.u64();
  rec.delivered = r.u64();
  rec.queued = r.u64();
  rec.max_queue_cost_units = r.f64();
  rec.final_queue_cost_units = r.f64();
  rec.collisions = r.u64();
  rec.control_msgs = r.u64();
  rec.delivered_fraction = r.f64();
  rec.p99_latency_units = r.f64();
  rec.energy_total = r.u64();
  rec.energy_peak_station = r.u64();
  rec.energy_per_delivery = r.f64();
  return rec;
}

std::vector<ExperimentRecord> run_grid_cells(
    const ExperimentSpec& spec, const GridPlan& plan,
    const std::vector<std::size_t>& todo) {
  AM_REQUIRE(!todo.empty(), "run_grid_cells needs at least one cell");
  for (std::size_t i : todo)
    AM_REQUIRE(i < plan.cells.size(), "cell index out of range");

  const GridCell& c0 = plan.cells[todo.front()];
  for (std::size_t i : todo) {
    const GridCell& c = plan.cells[i];
    AM_REQUIRE(c.protocol == c0.protocol && c.n == c0.n &&
                   c.bound_r == c0.bound_r && c.slot_policy == c0.slot_policy,
               "cells of one work unit must share protocol, n, R and policy");
  }
  const auto setup = std::make_shared<const CellSetup>(
      spec, c0.protocol, c0.n, c0.bound_r, c0.slot_policy);

  std::vector<ExperimentRecord> out;
  out.reserve(todo.size());
  if (todo.size() == 1) {
    sim::LaneMaterials m = setup->materials(c0.seed, c0.rho_pct);
    sim::Engine engine(std::move(m.cfg), std::move(m.protocols),
                       std::move(m.slot_policy), std::move(m.injection));
    engine.run(sim::until(spec.horizon_units * kTicksPerUnit));
    out.push_back(extract_record(*setup, c0.rho_pct, c0.seed, engine.stats(),
                                 engine.channel_stats(),
                                 engine.energy_meter()));
  } else {
    std::vector<sim::LaneBuilder> builders;
    builders.reserve(todo.size());
    for (std::size_t i : todo)
      builders.push_back(
          [setup, seed = plan.cells[i].seed, rho = plan.cells[i].rho_pct] {
            return setup->materials(seed, rho);
          });
    sim::CohortEngine cohort(std::move(builders));
    cohort.run(sim::until(spec.horizon_units * kTicksPerUnit));
    for (std::size_t k = 0; k < todo.size(); ++k) {
      const GridCell& c = plan.cells[todo[k]];
      out.push_back(extract_record(*setup, c.rho_pct, c.seed, cohort.stats(k),
                                   cohort.channel_stats(k),
                                   cohort.energy_meter(k)));
    }
  }
  return out;
}

std::string grid_manifest_path(const std::string& dir) {
  return dir + "/grid-manifest.snap";
}

void write_grid_manifest(const std::string& dir, std::uint32_t fingerprint,
                         const std::vector<std::uint8_t>& done,
                         const std::vector<ExperimentRecord>& records) {
  snapshot::Writer w;
  w.u32(fingerprint);
  w.u64(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) {
    w.boolean(done[i] != 0);
    if (done[i]) save_record(w, records[i]);
  }
  snapshot::write_file(grid_manifest_path(dir),
                       snapshot::FileKind::kGridManifest, w.buffer());
}

std::size_t load_grid_manifest(const std::string& dir,
                               std::uint32_t fingerprint,
                               std::vector<std::uint8_t>& done,
                               std::vector<ExperimentRecord>& records) {
  if (!std::filesystem::exists(grid_manifest_path(dir))) return 0;
  const auto payload = snapshot::read_file(
      grid_manifest_path(dir), snapshot::FileKind::kGridManifest);
  snapshot::Reader r(payload);
  if (r.u32() != fingerprint)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "grid manifest in " + dir + " was written for a different sweep");
  if (r.u64() != done.size())
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "grid manifest in " + dir + " has a different cell count");
  std::size_t completed = 0;
  for (std::size_t i = 0; i < done.size(); ++i) {
    done[i] = r.boolean() ? 1 : 0;
    if (done[i]) {
      records[i] = load_record(r);
      ++completed;
    }
  }
  r.expect_end();
  return completed;
}

}  // namespace asyncmac::analysis
