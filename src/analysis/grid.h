// asyncmac/analysis/grid.h
//
// The shared internals of experiment-grid execution: cell enumeration,
// cohort-width work-unit chunking, the sweep fingerprint, record
// (de)serialization and the resumable grid manifest (docs/CHECKPOINT.md).
//
// analysis::run_grid composes these on a local thread pool; the
// distributed sweep service (src/sweep/, docs/DISTRIBUTED.md) composes
// the *same* pieces across processes — a coordinator plans units and
// merges records/manifest, workers execute run_grid_cells. Both paths
// therefore produce byte-identical records and manifest files by
// construction: every cell is an independent deterministic engine and
// the enumeration order below is the single source of truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "snapshot/io.h"
#include "util/types.h"

namespace asyncmac::analysis {

/// One grid cell with every dimension resolved (seed included). Cells are
/// enumerated protocols x n x R x rho x policy x seed, seed innermost —
/// the documented record order of run_grid.
struct GridCell {
  std::string protocol;
  std::uint32_t n = 0;
  std::uint32_t bound_r = 0;
  int rho_pct = 0;
  std::string slot_policy;
  std::uint64_t seed = 0;
};

/// A contiguous run [first, first + count) of cells forming one work
/// unit. All cells of a unit share protocol, n, R and slot policy —
/// everything cohort eligibility needs — and differ only in seed and
/// injector parameters (rho), so a unit batches as one sim::CohortEngine
/// cohort. With a single slot policy in the spec, a unit may span the
/// rho values of one grid row, not just the seed replicas of one cell.
struct GridUnit {
  std::size_t first = 0;
  std::size_t count = 0;
};

struct GridPlan {
  std::vector<GridCell> cells;
  std::vector<GridUnit> units;
};

/// Enumerate the cross product and chunk it into cohort-width units
/// (grid_cohort_width). Validates the spec the same way run_grid does
/// (throws std::invalid_argument).
GridPlan plan_grid(const ExperimentSpec& spec);

/// The effective cohort width: spec.cohort when set, otherwise
/// min(8, cells-per-chunkable-block) — with a single slot policy the
/// block is a whole rho x seed grid row, else the seed replicas of one
/// cell.
unsigned grid_cohort_width(const ExperimentSpec& spec);

/// CRC over the sweep-defining dimensions (not jobs / cohort /
/// checkpoint_dir): a manifest — or a distributed worker — only serves
/// the exact grid it was planned for.
std::uint32_t grid_fingerprint(const ExperimentSpec& spec);

/// ExperimentRecord payload serialization (manifest rows and sweep
/// Result messages share this encoding).
void save_record(snapshot::Writer& w, const ExperimentRecord& rec);
ExperimentRecord load_record(snapshot::Reader& r);

/// Run the cells at `todo` (indices into plan.cells; all must share
/// protocol, n, R and slot policy — seed and rho may differ) and return
/// their records in todo order. One cell runs a scalar engine, several
/// run as one lockstep cohort — records are byte-identical either way
/// (the cohort contract).
std::vector<ExperimentRecord> run_grid_cells(
    const ExperimentSpec& spec, const GridPlan& plan,
    const std::vector<std::size_t>& todo);

// ------------------------------------------------------- grid manifest

std::string grid_manifest_path(const std::string& dir);

/// Atomically rewrite dir/grid-manifest.snap with the completed-cell set
/// and their records (done[i] != 0 => records[i] is final).
void write_grid_manifest(const std::string& dir, std::uint32_t fingerprint,
                         const std::vector<std::uint8_t>& done,
                         const std::vector<ExperimentRecord>& records);

/// Load the manifest (when one exists) into done/records; returns the
/// number of already-completed cells. Throws SnapshotError(kMismatch) on
/// a manifest from a different spec or cell count.
std::size_t load_grid_manifest(const std::string& dir,
                               std::uint32_t fingerprint,
                               std::vector<std::uint8_t>& done,
                               std::vector<ExperimentRecord>& records);

}  // namespace asyncmac::analysis
