// asyncmac/analysis/stability.h
//
// Empirical stability classification. The paper's stability notion (an
// upper bound on queued-but-undelivered cost over the infinite execution)
// is not directly observable from a finite run, so the probe uses the
// standard finite-horizon proxy: run the system across several equal
// time chunks, sample the total queued cost at each boundary, and
// classify the tail behaviour —
//   * kStable   — the backlog stops growing (late samples comparable to
//                 middle samples) and stays below an absolute ceiling;
//   * kGrowing  — the backlog keeps climbing chunk over chunk;
//   * kSaturated— the backlog exceeded the ceiling outright (divergence
//                 faster than the growth test needs).
// The MSR estimator binary-searches on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "util/types.h"

namespace asyncmac::analysis {

enum class Verdict : std::uint8_t { kStable, kGrowing, kSaturated };

const char* to_string(Verdict v) noexcept;

struct StabilityConfig {
  Tick horizon = 400000 * kTicksPerUnit;  ///< total simulated time
  int chunks = 8;                         ///< sampling points
  /// Absolute backlog ceiling (cost ticks); crossing it is kSaturated.
  Tick ceiling = 50000 * kTicksPerUnit;
  /// Tail growth tolerance: mean of the last quarter of samples may
  /// exceed the mean of the middle quarter by this factor before the
  /// probe says kGrowing.
  double growth_tolerance = 1.3;
  /// Sub-linear divergence (e.g. sqrt(t) backlog under a rate-1 adversary)
  /// grows too slowly chunk-over-chunk to trip the tail/middle test, but
  /// the tail/early ratio still exposes it: flag kGrowing when the tail
  /// mean exceeds the first-quarter mean by this factor. (sqrt(t) backlog
  /// over 8 chunks gives a ratio of about sqrt(8) / sqrt(1.5) ~ 2.3.)
  double early_tolerance = 2.0;
  /// Minimum backlog (cost ticks) below which growth is ignored (noise).
  Tick noise_floor = 200 * kTicksPerUnit;
};

struct StabilityReport {
  Verdict verdict = Verdict::kStable;
  std::vector<Tick> samples;  ///< queued cost at each chunk boundary
  Tick max_queued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  std::uint64_t collisions = 0;
};

/// Builds a fresh Engine for each probe (the estimator runs many).
using EngineFactory = std::function<std::unique_ptr<sim::Engine>()>;

/// Run one probe and classify.
StabilityReport probe_stability(const EngineFactory& factory,
                                const StabilityConfig& config = {});

/// Classify an already-collected series of queued-cost samples (one per
/// chunk boundary). Shared by probe_stability and the live daemon, which
/// samples its mirror backlog at the same boundaries — the sim-vs-live
/// differential compares verdicts, so both sides must run the exact same
/// decision procedure. A sample above the ceiling is kSaturated (samples
/// past it are ignored, matching probe_stability's early break).
Verdict classify_backlog_samples(const std::vector<Tick>& samples,
                                 const StabilityConfig& config = {});

}  // namespace asyncmac::analysis
