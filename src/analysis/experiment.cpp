#include "analysis/experiment.h"

#include <filesystem>
#include <mutex>

#include "analysis/grid.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asyncmac::analysis {

std::vector<ExperimentRecord> run_grid(const ExperimentSpec& spec) {
  // Enumerate the cross product up front (in the documented record order),
  // then run the cohort-width units on a pool: each unit is a batch of
  // independent deterministic engines writing into pre-sized slots, so the
  // result is byte-identical to the serial sweep for every jobs value.
  // The same plan/run/manifest pieces back the distributed sweep service
  // (analysis/grid.h, src/sweep/).
  const GridPlan plan = plan_grid(spec);
  std::vector<ExperimentRecord> records(plan.cells.size());

  // Checkpointing: `skip` is an immutable pre-run snapshot of the
  // manifest (safe to read from every worker); `done` and the manifest
  // rewrite are guarded by one mutex, and a cell is marked done only
  // after its record is fully written (the mutex orders that store
  // against the manifest serializer's read).
  const bool checkpointing = !spec.checkpoint_dir.empty();
  std::vector<std::uint8_t> done(plan.cells.size(), 0);
  std::uint32_t fingerprint = 0;
  if (checkpointing) {
    std::filesystem::create_directories(spec.checkpoint_dir);
    fingerprint = grid_fingerprint(spec);
    load_grid_manifest(spec.checkpoint_dir, fingerprint, done, records);
  }
  const std::vector<std::uint8_t> skip = done;
  std::mutex manifest_mutex;

  const unsigned cohort_width = grid_cohort_width(spec);
  telemetry::emit("grid.start",
                  {{"cells", static_cast<std::uint64_t>(plan.cells.size())},
                   {"jobs", static_cast<std::int64_t>(spec.jobs)},
                   {"cohort", static_cast<std::int64_t>(cohort_width)},
                   {"horizon_units", static_cast<std::int64_t>(
                                         spec.horizon_units)}});
  util::parallel_for(spec.jobs, plan.units.size(), [&](std::size_t ui) {
    // Cells already completed by a resumed manifest drop out of the unit;
    // the rest form the cohort (each lane is independent, so a partial
    // unit batches just as well).
    std::vector<std::size_t> todo;
    for (std::size_t i = plan.units[ui].first;
         i < plan.units[ui].first + plan.units[ui].count; ++i)
      if (!skip[i]) todo.push_back(i);
    if (todo.empty()) return;

    static auto& cell_count =
        telemetry::Registry::global().counter("analysis.grid_cells");
    static auto& cell_timer =
        telemetry::Registry::global().timer("analysis.grid_cell_ns");
    const telemetry::ScopeTimer scope(cell_timer);

    const std::vector<ExperimentRecord> out =
        run_grid_cells(spec, plan, todo);
    for (std::size_t k = 0; k < todo.size(); ++k)
      records[todo[k]] = out[k];

    if (checkpointing) {
      const std::lock_guard<std::mutex> lock(manifest_mutex);
      for (std::size_t i : todo) done[i] = 1;
      write_grid_manifest(spec.checkpoint_dir, fingerprint, done, records);
    }
    cell_count.add(todo.size());
  });
  telemetry::emit("grid.done",
                  {{"cells", static_cast<std::uint64_t>(plan.cells.size())}});
  return records;
}

std::string to_table(const std::vector<ExperimentRecord>& records) {
  util::Table t({"protocol", "n", "R", "rho%", "policy", "seed",
                 "delivered frac", "max queue (units)", "collisions",
                 "control", "p99 latency"});
  for (const auto& r : records)
    t.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
          r.delivered_fraction, r.max_queue_cost_units, r.collisions,
          r.control_msgs, r.p99_latency_units);
  return t.to_string();
}

void write_csv(const std::vector<ExperimentRecord>& records,
               const std::string& path, bool energy_columns) {
  std::vector<std::string> header{
      "protocol", "n", "R", "rho_pct", "policy", "seed", "injected",
      "delivered", "queued", "max_queue_units", "final_queue_units",
      "collisions", "control_msgs", "p99_latency_units"};
  if (energy_columns) {
    header.push_back("energy_total");
    header.push_back("energy_peak_station");
    header.push_back("energy_per_delivery");
  }
  util::CsvWriter csv(path, header);
  for (const auto& r : records) {
    if (energy_columns) {
      csv.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
              r.injected, r.delivered, r.queued, r.max_queue_cost_units,
              r.final_queue_cost_units, r.collisions, r.control_msgs,
              r.p99_latency_units, r.energy_total, r.energy_peak_station,
              r.energy_per_delivery);
    } else {
      csv.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
              r.injected, r.delivered, r.queued, r.max_queue_cost_units,
              r.final_queue_cost_units, r.collisions, r.control_msgs,
              r.p99_latency_units);
    }
  }
}

}  // namespace asyncmac::analysis
