#include "analysis/experiment.h"

#include <filesystem>
#include <memory>
#include <mutex>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "sim/engine.h"
#include "snapshot/format.h"
#include "snapshot/io.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asyncmac::analysis {

namespace {

ExperimentRecord run_cell(const std::string& protocol, std::uint32_t n,
                          std::uint32_t bound_r, int rho_pct,
                          const std::string& policy, Tick burst_units,
                          Tick horizon_units, std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = bound_r;
  cfg.seed = seed;
  sim::Engine engine(
      cfg, make_protocols(protocol, n),
      adversary::make_slot_policy(policy, n, bound_r, seed),
      std::make_unique<adversary::SaturatingInjector>(
          util::Ratio(rho_pct, 100), burst_units * kTicksPerUnit,
          adversary::TargetPattern::kRoundRobin, 1, seed + 1));
  engine.run(sim::until(horizon_units * kTicksPerUnit));

  ExperimentRecord rec;
  rec.protocol = protocol;
  rec.n = n;
  rec.bound_r = bound_r;
  rec.rho_pct = rho_pct;
  rec.slot_policy = policy;
  rec.seed = seed;
  const auto& s = engine.stats();
  rec.injected = s.injected_packets;
  rec.delivered = s.delivered_packets;
  rec.queued = s.queued_packets;
  rec.max_queue_cost_units = to_units(s.max_queued_cost);
  rec.final_queue_cost_units = to_units(s.queued_cost);
  rec.collisions = engine.channel_stats().collided;
  rec.control_msgs = engine.channel_stats().control_transmissions;
  rec.delivered_fraction =
      s.injected_packets ? static_cast<double>(s.delivered_packets) /
                               static_cast<double>(s.injected_packets)
                         : 1.0;
  rec.p99_latency_units =
      s.latency.empty() ? 0.0 : to_units(s.latency.quantile(0.99));
  return rec;
}

// ------------------------------------------------------- grid checkpoints

/// CRC over the sweep-defining dimensions (not jobs / checkpoint_dir): a
/// manifest only resumes the exact grid it was written for.
std::uint32_t spec_fingerprint(const ExperimentSpec& spec) {
  snapshot::Writer w;
  for (const auto& p : spec.protocols) w.str(p);
  for (std::uint32_t n : spec.station_counts) w.u32(n);
  for (std::uint32_t r : spec.bounds_r) w.u32(r);
  for (int rho : spec.rho_percents) w.i64(rho);
  for (const auto& p : spec.slot_policies) w.str(p);
  w.i64(spec.burst_units);
  w.i64(spec.horizon_units);
  w.u64(spec.seed);
  w.i64(spec.seeds);
  return snapshot::crc32(w.buffer().data(), w.buffer().size());
}

void save_record(snapshot::Writer& w, const ExperimentRecord& rec) {
  w.str(rec.protocol);
  w.u32(rec.n);
  w.u32(rec.bound_r);
  w.i64(rec.rho_pct);
  w.str(rec.slot_policy);
  w.u64(rec.seed);
  w.u64(rec.injected);
  w.u64(rec.delivered);
  w.u64(rec.queued);
  w.f64(rec.max_queue_cost_units);
  w.f64(rec.final_queue_cost_units);
  w.u64(rec.collisions);
  w.u64(rec.control_msgs);
  w.f64(rec.delivered_fraction);
  w.f64(rec.p99_latency_units);
}

ExperimentRecord load_record(snapshot::Reader& r) {
  ExperimentRecord rec;
  rec.protocol = r.str();
  rec.n = r.u32();
  rec.bound_r = r.u32();
  rec.rho_pct = static_cast<int>(r.i64());
  rec.slot_policy = r.str();
  rec.seed = r.u64();
  rec.injected = r.u64();
  rec.delivered = r.u64();
  rec.queued = r.u64();
  rec.max_queue_cost_units = r.f64();
  rec.final_queue_cost_units = r.f64();
  rec.collisions = r.u64();
  rec.control_msgs = r.u64();
  rec.delivered_fraction = r.f64();
  rec.p99_latency_units = r.f64();
  return rec;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/grid-manifest.snap";
}

void write_manifest(const std::string& dir, std::uint32_t fingerprint,
                    const std::vector<std::uint8_t>& done,
                    const std::vector<ExperimentRecord>& records) {
  snapshot::Writer w;
  w.u32(fingerprint);
  w.u64(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) {
    w.boolean(done[i] != 0);
    if (done[i]) save_record(w, records[i]);
  }
  snapshot::write_file(manifest_path(dir),
                       snapshot::FileKind::kGridManifest, w.buffer());
}

/// Load the manifest (when one exists) into done/records; returns the
/// number of already-completed cells. Throws SnapshotError(kMismatch) on
/// a manifest from a different spec or cell count.
std::size_t load_manifest(const std::string& dir, std::uint32_t fingerprint,
                          std::vector<std::uint8_t>& done,
                          std::vector<ExperimentRecord>& records) {
  if (!std::filesystem::exists(manifest_path(dir))) return 0;
  const auto payload = snapshot::read_file(manifest_path(dir),
                                           snapshot::FileKind::kGridManifest);
  snapshot::Reader r(payload);
  if (r.u32() != fingerprint)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "grid manifest in " + dir + " was written for a different sweep");
  if (r.u64() != done.size())
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "grid manifest in " + dir + " has a different cell count");
  std::size_t completed = 0;
  for (std::size_t i = 0; i < done.size(); ++i) {
    done[i] = r.boolean() ? 1 : 0;
    if (done[i]) {
      records[i] = load_record(r);
      ++completed;
    }
  }
  r.expect_end();
  return completed;
}

}  // namespace

std::vector<ExperimentRecord> run_grid(const ExperimentSpec& spec) {
  AM_REQUIRE(!spec.protocols.empty() && !spec.station_counts.empty() &&
                 !spec.bounds_r.empty() && !spec.rho_percents.empty() &&
                 !spec.slot_policies.empty(),
             "every sweep dimension needs at least one value");
  AM_REQUIRE(spec.seeds >= 1, "need at least one seed");
  AM_REQUIRE(spec.horizon_units > 0, "horizon must be positive");

  // Enumerate the cross product up front (in the documented record order),
  // then run the cells on a pool: each cell is an independent deterministic
  // Engine writing into its own pre-sized slot, so the result is
  // byte-identical to the serial sweep for every jobs value.
  struct Cell {
    const std::string* protocol;
    std::uint32_t n;
    std::uint32_t r;
    int rho;
    const std::string* policy;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const auto& protocol : spec.protocols)
    for (std::uint32_t n : spec.station_counts)
      for (std::uint32_t r : spec.bounds_r)
        for (int rho : spec.rho_percents)
          for (const auto& policy : spec.slot_policies)
            for (int s = 0; s < spec.seeds; ++s)
              cells.push_back(
                  {&protocol, n, r, rho, &policy,
                   spec.seed + static_cast<std::uint64_t>(s) * 1000003});

  std::vector<ExperimentRecord> records(cells.size());

  // Checkpointing: `skip` is an immutable pre-run snapshot of the
  // manifest (safe to read from every worker); `done` and the manifest
  // rewrite are guarded by one mutex, and a cell is marked done only
  // after its record is fully written (the mutex orders that store
  // against the manifest serializer's read).
  const bool checkpointing = !spec.checkpoint_dir.empty();
  std::vector<std::uint8_t> done(cells.size(), 0);
  std::uint32_t fingerprint = 0;
  if (checkpointing) {
    std::filesystem::create_directories(spec.checkpoint_dir);
    fingerprint = spec_fingerprint(spec);
    load_manifest(spec.checkpoint_dir, fingerprint, done, records);
  }
  const std::vector<std::uint8_t> skip = done;
  std::mutex manifest_mutex;

  telemetry::emit("grid.start",
                  {{"cells", static_cast<std::uint64_t>(cells.size())},
                   {"jobs", static_cast<std::int64_t>(spec.jobs)},
                   {"horizon_units", static_cast<std::int64_t>(
                                         spec.horizon_units)}});
  util::parallel_for(spec.jobs, cells.size(), [&](std::size_t i) {
    if (skip[i]) return;
    static auto& cell_count =
        telemetry::Registry::global().counter("analysis.grid_cells");
    static auto& cell_timer =
        telemetry::Registry::global().timer("analysis.grid_cell_ns");
    const telemetry::ScopeTimer scope(cell_timer);
    const Cell& c = cells[i];
    records[i] = run_cell(*c.protocol, c.n, c.r, c.rho, *c.policy,
                          spec.burst_units, spec.horizon_units, c.seed);
    if (checkpointing) {
      const std::lock_guard<std::mutex> lock(manifest_mutex);
      done[i] = 1;
      write_manifest(spec.checkpoint_dir, fingerprint, done, records);
    }
    cell_count.add();
  });
  telemetry::emit("grid.done",
                  {{"cells", static_cast<std::uint64_t>(cells.size())}});
  return records;
}

std::string to_table(const std::vector<ExperimentRecord>& records) {
  util::Table t({"protocol", "n", "R", "rho%", "policy", "seed",
                 "delivered frac", "max queue (units)", "collisions",
                 "control", "p99 latency"});
  for (const auto& r : records)
    t.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
          r.delivered_fraction, r.max_queue_cost_units, r.collisions,
          r.control_msgs, r.p99_latency_units);
  return t.to_string();
}

void write_csv(const std::vector<ExperimentRecord>& records,
               const std::string& path) {
  util::CsvWriter csv(
      path, {"protocol", "n", "R", "rho_pct", "policy", "seed", "injected",
             "delivered", "queued", "max_queue_units", "final_queue_units",
             "collisions", "control_msgs", "p99_latency_units"});
  for (const auto& r : records)
    csv.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
            r.injected, r.delivered, r.queued, r.max_queue_cost_units,
            r.final_queue_cost_units, r.collisions, r.control_msgs,
            r.p99_latency_units);
}

}  // namespace asyncmac::analysis
