#include "analysis/experiment.h"

#include <memory>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "sim/engine.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asyncmac::analysis {

namespace {

ExperimentRecord run_cell(const std::string& protocol, std::uint32_t n,
                          std::uint32_t bound_r, int rho_pct,
                          const std::string& policy, Tick burst_units,
                          Tick horizon_units, std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = bound_r;
  cfg.seed = seed;
  sim::Engine engine(
      cfg, make_protocols(protocol, n),
      adversary::make_slot_policy(policy, n, bound_r, seed),
      std::make_unique<adversary::SaturatingInjector>(
          util::Ratio(rho_pct, 100), burst_units * kTicksPerUnit,
          adversary::TargetPattern::kRoundRobin, 1, seed + 1));
  engine.run(sim::until(horizon_units * kTicksPerUnit));

  ExperimentRecord rec;
  rec.protocol = protocol;
  rec.n = n;
  rec.bound_r = bound_r;
  rec.rho_pct = rho_pct;
  rec.slot_policy = policy;
  rec.seed = seed;
  const auto& s = engine.stats();
  rec.injected = s.injected_packets;
  rec.delivered = s.delivered_packets;
  rec.queued = s.queued_packets;
  rec.max_queue_cost_units = to_units(s.max_queued_cost);
  rec.final_queue_cost_units = to_units(s.queued_cost);
  rec.collisions = engine.channel_stats().collided;
  rec.control_msgs = engine.channel_stats().control_transmissions;
  rec.delivered_fraction =
      s.injected_packets ? static_cast<double>(s.delivered_packets) /
                               static_cast<double>(s.injected_packets)
                         : 1.0;
  rec.p99_latency_units =
      s.latency.empty() ? 0.0 : to_units(s.latency.quantile(0.99));
  return rec;
}

}  // namespace

std::vector<ExperimentRecord> run_grid(const ExperimentSpec& spec) {
  AM_REQUIRE(!spec.protocols.empty() && !spec.station_counts.empty() &&
                 !spec.bounds_r.empty() && !spec.rho_percents.empty() &&
                 !spec.slot_policies.empty(),
             "every sweep dimension needs at least one value");
  AM_REQUIRE(spec.seeds >= 1, "need at least one seed");
  AM_REQUIRE(spec.horizon_units > 0, "horizon must be positive");

  // Enumerate the cross product up front (in the documented record order),
  // then run the cells on a pool: each cell is an independent deterministic
  // Engine writing into its own pre-sized slot, so the result is
  // byte-identical to the serial sweep for every jobs value.
  struct Cell {
    const std::string* protocol;
    std::uint32_t n;
    std::uint32_t r;
    int rho;
    const std::string* policy;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const auto& protocol : spec.protocols)
    for (std::uint32_t n : spec.station_counts)
      for (std::uint32_t r : spec.bounds_r)
        for (int rho : spec.rho_percents)
          for (const auto& policy : spec.slot_policies)
            for (int s = 0; s < spec.seeds; ++s)
              cells.push_back(
                  {&protocol, n, r, rho, &policy,
                   spec.seed + static_cast<std::uint64_t>(s) * 1000003});

  std::vector<ExperimentRecord> records(cells.size());
  telemetry::emit("grid.start",
                  {{"cells", static_cast<std::uint64_t>(cells.size())},
                   {"jobs", static_cast<std::int64_t>(spec.jobs)},
                   {"horizon_units", static_cast<std::int64_t>(
                                         spec.horizon_units)}});
  util::parallel_for(spec.jobs, cells.size(), [&](std::size_t i) {
    static auto& cell_count =
        telemetry::Registry::global().counter("analysis.grid_cells");
    static auto& cell_timer =
        telemetry::Registry::global().timer("analysis.grid_cell_ns");
    const telemetry::ScopeTimer scope(cell_timer);
    const Cell& c = cells[i];
    records[i] = run_cell(*c.protocol, c.n, c.r, c.rho, *c.policy,
                          spec.burst_units, spec.horizon_units, c.seed);
    cell_count.add();
  });
  telemetry::emit("grid.done",
                  {{"cells", static_cast<std::uint64_t>(cells.size())}});
  return records;
}

std::string to_table(const std::vector<ExperimentRecord>& records) {
  util::Table t({"protocol", "n", "R", "rho%", "policy", "seed",
                 "delivered frac", "max queue (units)", "collisions",
                 "control", "p99 latency"});
  for (const auto& r : records)
    t.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
          r.delivered_fraction, r.max_queue_cost_units, r.collisions,
          r.control_msgs, r.p99_latency_units);
  return t.to_string();
}

void write_csv(const std::vector<ExperimentRecord>& records,
               const std::string& path) {
  util::CsvWriter csv(
      path, {"protocol", "n", "R", "rho_pct", "policy", "seed", "injected",
             "delivered", "queued", "max_queue_units", "final_queue_units",
             "collisions", "control_msgs", "p99_latency_units"});
  for (const auto& r : records)
    csv.row(r.protocol, r.n, r.bound_r, r.rho_pct, r.slot_policy, r.seed,
            r.injected, r.delivered, r.queued, r.max_queue_cost_units,
            r.final_queue_cost_units, r.collisions, r.control_msgs,
            r.p99_latency_units);
}

}  // namespace asyncmac::analysis
