// asyncmac/analysis/msr.h
//
// Empirical Max Stable Rate estimation. MSR is the paper's figure of
// merit for the PT problem: the largest injection rate rho at which the
// protocol keeps queues bounded. The theorems say "any rho < 1" for the
// ARRoW protocols and "no rho > 0" / "no rho = 1" for the impossibility
// rows; the estimator turns those statements into measured numbers by
// binary-searching rho (in integer percent) over stability probes.
//
// The search assumes monotonicity (stable at rho implies stable below),
// which holds for the leaky-bucket workloads used here; randomized
// protocols (ALOHA, BEB) get a majority vote over seeds to tame variance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "analysis/stability.h"
#include "util/ratio.h"

namespace asyncmac::analysis {

/// Builds a fresh engine for a probe at injection rate rho (percent) and
/// seed. The factory owns all other configuration (protocol, n, R, slot
/// policy, burstiness, workload shape).
using RateEngineFactory = std::function<std::unique_ptr<sim::Engine>(
    util::Ratio rho, std::uint64_t seed)>;

struct MsrConfig {
  StabilityConfig probe;      ///< per-probe settings
  int lo_pct = 1;             ///< search range, inclusive (percent)
  int hi_pct = 99;
  int seeds = 1;              ///< majority vote across seeds per rho
  std::uint64_t base_seed = 1;
  /// Worker threads for the per-rho seed votes (0 = hardware_concurrency,
  /// 1 = serial). The binary search over rho stays sequential; with
  /// jobs != 1 the factory must be callable concurrently (it only builds
  /// engines, so value-capturing factories are safe).
  unsigned jobs = 1;
};

struct MsrResult {
  int msr_pct = 0;  ///< highest percent classified stable (0 = none)
  int probes = 0;   ///< stability probes executed
};

/// Binary-search the highest stable rho (percent).
MsrResult estimate_msr(const RateEngineFactory& factory,
                       const MsrConfig& config = {});

/// Single-rate convenience: majority-vote stability at one rho.
bool stable_at(const RateEngineFactory& factory, util::Ratio rho,
               const MsrConfig& config = {});

}  // namespace asyncmac::analysis
