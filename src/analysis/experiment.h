// asyncmac/analysis/experiment.h
//
// Declarative experiment grids: describe a sweep (protocol x n x R x rho
// x slot policy) once, run it, and get uniform records back for table or
// CSV rendering. This is the machinery behind reproducible parameter
// studies on top of the simulator — the benches use hand-rolled loops for
// paper fidelity; downstream users get this instead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/ratio.h"
#include "util/types.h"

namespace asyncmac::analysis {

struct ExperimentSpec {
  /// Registry names to sweep (see analysis/registry.h).
  std::vector<std::string> protocols{"ao-arrow"};
  std::vector<std::uint32_t> station_counts{4};
  std::vector<std::uint32_t> bounds_r{2};
  std::vector<int> rho_percents{50};
  /// Slot-policy names (see adversary::make_slot_policy).
  std::vector<std::string> slot_policies{"perstation"};
  Tick burst_units = 16;
  Tick horizon_units = 100000;
  std::uint64_t seed = 1;
  /// Repetitions with derived seeds; records report per-seed results.
  int seeds = 1;
  /// Worker threads for the sweep: 0 = hardware_concurrency, 1 = serial.
  /// Every cell is an independent deterministic Engine, so the records are
  /// byte-identical for every jobs value (including their order).
  unsigned jobs = 0;
  /// Lockstep batching width: cells differing only in seed AND injector
  /// parameters (rho) are grouped into cohorts of up to this many lanes
  /// and stepped together through sim::CohortEngine — with a single slot
  /// policy a whole rho x seed grid row batches, not just the seed
  /// replicas of one cell (configurations the fast path cannot take fall
  /// back to scalar engines inside the cohort). 0 = auto (min(8, cells
  /// per batchable block)); 1 = one scalar engine per cell, the
  /// pre-cohort behavior. Records are byte-identical for every value —
  /// the cohort engine's contract — so cohort, like jobs, is an
  /// execution knob and not part of the spec fingerprint.
  unsigned cohort = 0;
  /// k-restrained channel for every cell (channel/transmission.h): at most
  /// k transmissions on the air at once; 0 = unrestrained. Over-capacity
  /// transmissions jam (sent anyway, guaranteed collision) when
  /// restrained_jam is true, otherwise they are rejected (suppressed).
  std::uint32_t restrained_k = 0;
  bool restrained_jam = true;
  /// Per-slot energy accounting (energy/model.h, docs/ENERGY.md).
  /// Observation-only: enabling it changes no non-energy record field.
  bool energy_enabled = false;
  std::uint64_t energy_cost_transmit = 1;
  std::uint64_t energy_cost_listen = 1;
  std::uint64_t energy_cost_sleep = 0;
  /// When non-empty, run_grid keeps a manifest (grid-manifest.snap, see
  /// docs/CHECKPOINT.md) in this directory: after every finished cell the
  /// manifest is atomically rewritten with the completed-cell set and
  /// their records. A rerun with the same spec resumes at the first
  /// incomplete cell and returns records byte-identical to an
  /// uninterrupted sweep (cells are deterministic, so replayed or resumed
  /// makes no difference). A manifest from a *different* spec raises
  /// snapshot::SnapshotError(kMismatch). jobs and checkpoint_dir are not
  /// part of the spec fingerprint.
  std::string checkpoint_dir;
};

struct ExperimentRecord {
  // Parameters.
  std::string protocol;
  std::uint32_t n = 0;
  std::uint32_t bound_r = 0;
  int rho_pct = 0;
  std::string slot_policy;
  std::uint64_t seed = 0;
  // Results.
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queued = 0;
  double max_queue_cost_units = 0;
  double final_queue_cost_units = 0;
  std::uint64_t collisions = 0;
  std::uint64_t control_msgs = 0;
  double delivered_fraction = 0;
  double p99_latency_units = 0;
  // Energy results (all zero unless spec.energy_enabled; docs/ENERGY.md).
  std::uint64_t energy_total = 0;         ///< sum of station charges
  std::uint64_t energy_peak_station = 0;  ///< largest single-station charge
  double energy_per_delivery = 0;         ///< total / delivered (0 if none)
};

/// Run the full cross product, on spec.jobs worker threads. Record order:
/// protocols x n x R x rho x policy x seed (innermost last) —
/// deterministic and independent of jobs: cells are enumerated up front
/// and each worker writes into its cell's pre-sized slot.
std::vector<ExperimentRecord> run_grid(const ExperimentSpec& spec);

/// Render records as an aligned ASCII table / CSV file. The energy
/// columns are opt-in (energy_columns = spec.energy_enabled): a sweep
/// without energy accounting writes byte-identical files to builds that
/// predate the energy subsystem.
std::string to_table(const std::vector<ExperimentRecord>& records);
void write_csv(const std::vector<ExperimentRecord>& records,
               const std::string& path, bool energy_columns = false);

}  // namespace asyncmac::analysis
