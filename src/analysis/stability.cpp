#include "analysis/stability.h"

#include <numeric>

#include "util/check.h"

namespace asyncmac::analysis {

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kStable: return "stable";
    case Verdict::kGrowing: return "growing";
    case Verdict::kSaturated: return "saturated";
  }
  return "?";
}

Verdict classify_backlog_samples(const std::vector<Tick>& samples,
                                 const StabilityConfig& config) {
  AM_REQUIRE(!samples.empty(), "need at least one backlog sample");
  for (Tick s : samples)
    if (s > config.ceiling) return Verdict::kSaturated;

  // Tail-growth test: compare the mean backlog of the last quarter of
  // samples against the mean of the quarter around the middle. A stable
  // system's backlog plateaus; an overloaded one keeps climbing.
  const auto n = samples.size();
  const std::size_t q = std::max<std::size_t>(1, n / 4);
  auto mean = [&](std::size_t from, std::size_t count) {
    double total = 0;
    for (std::size_t i = from; i < from + count; ++i)
      total += static_cast<double>(samples[i]);
    return total / static_cast<double>(count);
  };
  const double early = mean(0, q);
  const double mid = mean(n / 2 - q / 2 > 0 ? n / 2 - q / 2 : 0, q);
  const double tail = mean(n - q, q);
  if (tail > static_cast<double>(config.noise_floor) &&
      (tail > mid * config.growth_tolerance ||
       tail > early * config.early_tolerance)) {
    return Verdict::kGrowing;
  }
  return Verdict::kStable;
}

StabilityReport probe_stability(const EngineFactory& factory,
                                const StabilityConfig& config) {
  AM_REQUIRE(config.chunks >= 4, "need at least 4 sampling chunks");
  AM_REQUIRE(config.horizon > 0, "horizon must be positive");

  auto engine = factory();
  AM_REQUIRE(engine != nullptr, "factory returned null engine");

  StabilityReport report;
  const Tick step = config.horizon / config.chunks;
  for (int c = 1; c <= config.chunks; ++c) {
    engine->run(sim::until(step * c));
    report.samples.push_back(engine->stats().queued_cost);
    if (engine->stats().queued_cost > config.ceiling) break;
  }
  report.max_queued = engine->stats().max_queued_cost;
  report.delivered = engine->stats().delivered_packets;
  report.injected = engine->stats().injected_packets;
  report.collisions = engine->channel_stats().collided;
  report.verdict = classify_backlog_samples(report.samples, config);
  return report;
}

}  // namespace asyncmac::analysis
