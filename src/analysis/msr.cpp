#include "analysis/msr.h"

#include <algorithm>
#include <vector>

#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace asyncmac::analysis {

namespace {

bool stable_probe(const RateEngineFactory& factory, util::Ratio rho,
                  const MsrConfig& config, int* probes) {
  // Seed votes are independent deterministic runs: replicate them across
  // the pool and tally afterwards (vote totals are order-independent).
  std::vector<char> stable(static_cast<std::size_t>(config.seeds), 0);
  util::parallel_for(
      config.jobs, stable.size(), [&](std::size_t s) {
        const std::uint64_t seed = config.base_seed + s;
        const auto report = probe_stability(
            [&] { return factory(rho, seed); }, config.probe);
        stable[s] = report.verdict == Verdict::kStable ? 1 : 0;
      });
  if (probes) *probes += config.seeds;
  const int stable_votes = static_cast<int>(
      std::count(stable.begin(), stable.end(), char{1}));
  const bool verdict = 2 * stable_votes > config.seeds;
  static auto& probe_count =
      telemetry::Registry::global().counter("analysis.msr_probes");
  probe_count.add(static_cast<std::uint64_t>(config.seeds));
  telemetry::emit("msr.probe",
                  {{"rho_num", static_cast<std::int64_t>(rho.num)},
                   {"rho_den", static_cast<std::int64_t>(rho.den)},
                   {"stable_votes", static_cast<std::int64_t>(stable_votes)},
                   {"seeds", static_cast<std::int64_t>(config.seeds)},
                   {"stable", verdict}});
  return verdict;
}

}  // namespace

bool stable_at(const RateEngineFactory& factory, util::Ratio rho,
               const MsrConfig& config) {
  return stable_probe(factory, rho, config, nullptr);
}

MsrResult estimate_msr(const RateEngineFactory& factory,
                       const MsrConfig& config) {
  AM_REQUIRE(config.lo_pct >= 1 && config.hi_pct <= 99 &&
                 config.lo_pct <= config.hi_pct,
             "search range must lie in [1, 99]");
  AM_REQUIRE(config.seeds >= 1, "need at least one seed");

  MsrResult result;

  // If even the lowest rate is unstable, MSR is (empirically) zero.
  if (!stable_probe(factory, util::Ratio(config.lo_pct, 100), config,
                    &result.probes)) {
    result.msr_pct = 0;
    return result;
  }
  // If the highest rate is stable, report it directly.
  if (stable_probe(factory, util::Ratio(config.hi_pct, 100), config,
                   &result.probes)) {
    result.msr_pct = config.hi_pct;
    return result;
  }
  // Invariant: stable at lo, unstable at hi.
  int lo = config.lo_pct, hi = config.hi_pct;
  while (hi - lo > 1) {
    const int mid = (lo + hi) / 2;
    if (stable_probe(factory, util::Ratio(mid, 100), config,
                     &result.probes)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.msr_pct = lo;
  return result;
}

}  // namespace asyncmac::analysis
