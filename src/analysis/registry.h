// asyncmac/analysis/registry.h
//
// Name -> protocol factory registry over everything the library ships —
// the paper's algorithms, the experimental extension and every baseline.
// Shared by the CLI, the experiment grid runner and the benches, so
// experiment descriptions can be purely declarative.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.h"

namespace asyncmac::analysis {

using ProtocolMaker = std::function<std::unique_ptr<sim::Protocol>()>;

/// Factory for a registered protocol name; throws std::invalid_argument
/// on an unknown name. Names:
///   ao-arrow, ca-arrow, adaptive-abs, abs,
///   rrw, mbtf, aloha, beb, silence-tdma, sync-binary-le, listen
ProtocolMaker protocol_maker(const std::string& name);

/// Convenience: one instance.
std::unique_ptr<sim::Protocol> make_protocol(const std::string& name);

/// Convenience: n instances (one per station).
std::vector<std::unique_ptr<sim::Protocol>> make_protocols(
    const std::string& name, std::uint32_t n);

/// All registered names, sorted.
std::vector<std::string> protocol_names();

}  // namespace asyncmac::analysis
