// asyncmac/util/rng.h
//
// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
// The core protocols of the paper are deterministic; randomness is used
// only by (a) randomized baselines such as slotted ALOHA and (b) randomized
// adversary/workload generators in tests and benchmarks. A dedicated engine
// (instead of <random>'s unspecified distributions) keeps every run
// reproducible across platforms and standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace asyncmac::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits. Reporting/workloads only.
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (e.g. one per station).
  Rng split();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Raw xoshiro256** state, for checkpoint/resume. set_state() restores
  /// the exact stream position; all-zero state is rejected (it is the one
  /// fixed point the generator can never leave).
  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace asyncmac::util
