// asyncmac/util/parse.h
//
// Strict numeric parsing for untrusted text: argv values, trace files,
// manifest fields. The std::sto* family is unsuitable for all of these —
// it throws std::out_of_range (not invalid_argument) on huge inputs,
// accepts trailing garbage ("8x" → 8), accepts leading whitespace and
// '+', and silently wraps when the result is narrowed to a smaller
// unsigned type. Every parser here consumes the whole string or throws
// std::invalid_argument mentioning `what`, so call sites can surface a
// usage message instead of std::terminate.
#pragma once

#include <cstdint>
#include <string>

namespace asyncmac::util {

/// All-digits unsigned parse, result <= max. Rejects empty strings,
/// signs, whitespace, trailing garbage, and overflow.
std::uint64_t parse_u64(const std::string& s, const char* what,
                        std::uint64_t max = UINT64_MAX);

/// parse_u64 capped at UINT32_MAX (or a tighter `max`, e.g. 65535 for
/// ports).
std::uint32_t parse_u32(const std::string& s, const char* what,
                        std::uint32_t max = UINT32_MAX);

/// Optional leading '-', then all digits; range [INT64_MIN, INT64_MAX].
std::int64_t parse_i64(const std::string& s, const char* what);

/// Finite double: full-string strtod parse, then rejects nan/inf (an
/// adversarial rho of NaN defeats range checks like `v < 0 || v > 1`,
/// which are false for NaN).
double parse_double(const std::string& s, const char* what);

}  // namespace asyncmac::util
