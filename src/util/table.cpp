#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace asyncmac::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AM_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::format_number(double v) {
  std::ostringstream os;
  if (std::isnan(v)) return "n/a";
  const double a = std::fabs(v);
  if (v == std::floor(v) && a < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else if (a != 0 && (a < 1e-3 || a >= 1e7)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
  }
  return os.str();
}

std::string Table::format_number(std::int64_t v) { return std::to_string(v); }
std::string Table::format_number(std::uint64_t v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace asyncmac::util
