// asyncmac/util/csv.h
//
// Tiny CSV writer for exporting benchmark series (one file per figure) so
// results can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace asyncmac::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    add_row(cells);
  }

  bool ok() const { return static_cast<bool>(out_); }

 private:
  // add_row quotes; to_cell only stringifies (escaping here would
  // double-quote every string cell on the row() path).
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }
  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace asyncmac::util
