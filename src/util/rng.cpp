#include "util/rng.h"

#include "util/check.h"

namespace asyncmac::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot emit four
  // zero words from any seed, but keep the guard for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  AM_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  AM_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 iff the range covers all 2^64 values.
  const std::uint64_t draw = (span == 0) ? next() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  AM_CHECK_MSG((s[0] | s[1] | s[2] | s[3]) != 0,
               "all-zero xoshiro state is unreachable");
  s_ = s;
}

Rng Rng::split() {
  Rng child;
  child.reseed(next() ^ 0xd2b74407b1ce6e93ULL);
  return child;
}

}  // namespace asyncmac::util
