// asyncmac/util/check.h
//
// Invariant-checking macros. AM_CHECK fires in every build type: the
// simulator's value rests on its exactness, so internal invariants are not
// compiled out in release builds. Configuration errors coming from user
// input throw std::invalid_argument instead (see AM_REQUIRE).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asyncmac::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "AM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void require_failed(const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "invalid argument: requirement (" << expr << ") violated";
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace asyncmac::detail

/// Internal invariant; logic error if violated. Always on.
#define AM_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::asyncmac::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

/// Internal invariant with a streamed message: AM_CHECK_MSG(x > 0, "x=" << x)
#define AM_CHECK_MSG(expr, stream_expr)                                    \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream am_check_os_;                                     \
      am_check_os_ << stream_expr;                                         \
      ::asyncmac::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                       am_check_os_.str());                \
    }                                                                      \
  } while (0)

/// Precondition on user-supplied configuration; throws invalid_argument.
#define AM_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) ::asyncmac::detail::require_failed(#expr, (msg));         \
  } while (0)
