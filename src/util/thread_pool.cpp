#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

namespace asyncmac::util {

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::packaged_task<void()>> queue;
  bool stopping = false;

  void worker() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();  // exceptions land in the task's future
    }
  }
};

unsigned ThreadPool::resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs) : impl_(std::make_unique<Impl>()) {
  const unsigned n = resolve_jobs(jobs);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { impl_->worker(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(wrapped));
  }
  impl_->cv.notify_one();
  return fut;
}

void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const unsigned workers = ThreadPool::resolve_jobs(jobs);
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Self-scheduling: each worker claims the next unclaimed index, so slow
  // indices never stall the rest of the range behind a static partition.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    const unsigned spawned =
        static_cast<unsigned>(std::min<std::size_t>(workers, count));
    ThreadPool pool(spawned);
    std::vector<std::future<void>> done;
    done.reserve(spawned);
    for (unsigned w = 0; w < spawned; ++w) done.push_back(pool.submit(drain));
    for (auto& f : done) f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace asyncmac::util
