#include "util/csv.h"

#include "util/check.h"

namespace asyncmac::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  AM_REQUIRE(!header.empty(), "csv needs at least one column");
  add_row(header);
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  AM_REQUIRE(cells.size() == width_, "csv row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace asyncmac::util
