// asyncmac/util/types.h
//
// Fundamental scalar types shared by every module.
//
// All simulated time is integer "ticks". One *time unit* (the minimum slot
// length of the paper's model) is `kTicksPerUnit` ticks. The value is
// divisible by every integer in 1..16 as well as by common products of
// small primes, so that:
//   * slot lengths r in [1, R] with R <= 16 can be expressed exactly, even
//     when an adversary picks rational stretch factors with denominators
//     up to 16 (the Theorem-2 mirror adversary stretches g blocks of r
//     slots so that their total length is exactly r*g);
//   * no floating point appears anywhere on the simulation path, making
//     every execution bit-for-bit deterministic and overlap tests exact.
#pragma once

#include <cstdint>
#include <limits>

namespace asyncmac {

/// Integer simulated time. Never use floating point for simulated time.
using Tick = std::int64_t;

/// Ticks per model time unit: 720720 = 2^4 * 3^2 * 5 * 7 * 11 * 13.
/// Divisible by every integer in 1..16.
inline constexpr Tick kTicksPerUnit = 720720;

/// Sentinel "no time"/"unbounded" value.
inline constexpr Tick kTickInfinity = std::numeric_limits<Tick>::max();

/// Station identifier. The paper gives stations unique integer IDs in
/// [n] = {1, ..., n}; we use the same 1-based convention. 0 is invalid.
using StationId = std::uint32_t;

inline constexpr StationId kInvalidStation = 0;

/// Monotone per-run packet sequence number (unique across stations).
using PacketSeq = std::uint64_t;

/// 1-based index of a station's slot within its own partition of time.
using SlotIndex = std::uint64_t;

/// What a station does with one of its slots. "Idle" in the paper is
/// equivalent to listening, so it is not a separate action.
enum class SlotAction : std::uint8_t {
  kListen,          ///< Sense the channel for the duration of the slot.
  kTransmitPacket,  ///< Transmit the head-of-queue packet for the whole slot.
  kTransmitControl, ///< Transmit a contentless signal ("empty signal").
};

/// Channel feedback delivered to a station at the end of each of its slots.
///
/// Ordering of precedence when classifying a slot: kAck > kBusy > kSilence.
///  * kAck     — a successful transmission *ended* during the slot (for a
///               transmitter: its own transmission succeeded).
///  * kBusy    — at least one transmission overlapped the slot but no
///               successful transmission ended in it (this includes a
///               transmitter whose own transmission collided).
///  * kSilence — no transmission overlapped the slot at all.
enum class Feedback : std::uint8_t { kSilence, kBusy, kAck };

inline constexpr bool is_transmit(SlotAction a) noexcept {
  return a != SlotAction::kListen;
}

inline constexpr const char* to_string(SlotAction a) noexcept {
  switch (a) {
    case SlotAction::kListen: return "listen";
    case SlotAction::kTransmitPacket: return "tx-packet";
    case SlotAction::kTransmitControl: return "tx-control";
  }
  return "?";
}

inline constexpr const char* to_string(Feedback f) noexcept {
  switch (f) {
    case Feedback::kSilence: return "silence";
    case Feedback::kBusy: return "busy";
    case Feedback::kAck: return "ack";
  }
  return "?";
}

/// Convert a whole number of time units to ticks.
inline constexpr Tick units(Tick n) noexcept { return n * kTicksPerUnit; }

/// Ticks -> double time units (for reporting only; never for simulation).
inline constexpr double to_units(Tick t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kTicksPerUnit);
}

}  // namespace asyncmac
