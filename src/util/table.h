// asyncmac/util/table.h
//
// Minimal fixed-column ASCII table writer used by the benchmark harnesses
// to print paper-style result tables (rows/series matching the paper's
// Table I and theorem sweeps).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace asyncmac::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: build a row from heterogeneous printable values.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(cell_to_string(values)), ...);
    add_row(std::move(cells));
  }

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render with aligned columns and a header separator.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string cell_to_string(const T& v) {
    return format_number(v);
  }
  static std::string format_number(double v);
  static std::string format_number(std::int64_t v);
  static std::string format_number(std::uint64_t v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string format_number(T v) {
    if constexpr (std::is_signed_v<T>)
      return format_number(static_cast<std::int64_t>(v));
    else
      return format_number(static_cast<std::uint64_t>(v));
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asyncmac::util
