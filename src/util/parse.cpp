#include "util/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace asyncmac::util {

namespace {

std::uint64_t digits_u64(const std::string& s, const char* what,
                         std::uint64_t max) {
  AM_REQUIRE(!s.empty(), std::string("bad ") + what + ": empty value");
  std::uint64_t v = 0;
  for (char c : s) {
    AM_REQUIRE(c >= '0' && c <= '9',
               std::string("bad ") + what + ": '" + s + "' is not a number");
    std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    AM_REQUIRE(v <= (max - d) / 10,
               std::string(what) + " out of range: '" + s + "'");
    v = v * 10 + d;
  }
  return v;
}

}  // namespace

std::uint64_t parse_u64(const std::string& s, const char* what,
                        std::uint64_t max) {
  return digits_u64(s, what, max);
}

std::uint32_t parse_u32(const std::string& s, const char* what,
                        std::uint32_t max) {
  return static_cast<std::uint32_t>(digits_u64(s, what, max));
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  if (!s.empty() && s[0] == '-') {
    // |INT64_MIN| = INT64_MAX + 1; parse the magnitude against that cap.
    std::uint64_t mag =
        digits_u64(s.substr(1), what,
                   static_cast<std::uint64_t>(INT64_MAX) + 1);
    return static_cast<std::int64_t>(~mag + 1);
  }
  return static_cast<std::int64_t>(
      digits_u64(s, what, static_cast<std::uint64_t>(INT64_MAX)));
}

double parse_double(const std::string& s, const char* what) {
  AM_REQUIRE(!s.empty(), std::string("bad ") + what + ": empty value");
  // strtod skips leading whitespace, which the full-consumption check
  // below cannot see; reject it up front.
  AM_REQUIRE(
      s[0] != ' ' && s[0] != '\t' && s[0] != '\n' && s[0] != '\r',
      std::string("bad ") + what + ": '" + s + "' is not a number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  AM_REQUIRE(end == s.c_str() + s.size() && errno != ERANGE,
             std::string("bad ") + what + ": '" + s + "' is not a number");
  AM_REQUIRE(std::isfinite(v),
             std::string("bad ") + what + ": '" + s + "' is not finite");
  return v;
}

}  // namespace asyncmac::util
