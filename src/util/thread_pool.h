// asyncmac/util/thread_pool.h
//
// A small fixed-size worker pool for running independent simulations in
// parallel. Parallelism in asyncmac lives strictly *above* the Engine: an
// Engine is single-threaded and deterministic, and the pool only ever runs
// whole engines (or other self-contained tasks) concurrently — nothing on
// the simulation path is shared between workers.
//
// Design: a mutex/condvar task queue drained by `size()` worker threads.
// submit() returns a std::future so exceptions thrown inside a task
// surface at the caller's future.get(), never in a worker. Tasks may
// submit further tasks (workers never hold the queue lock while running a
// task), and destroying the pool drains everything already submitted.
//
// parallel_for() is the common entry point: it self-schedules indices
// through an atomic cursor (work stealing at index granularity), so
// uneven task durations — e.g. grid cells whose horizon-long simulations
// differ wildly in cost — balance automatically.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

namespace asyncmac::util {

class ThreadPool {
 public:
  /// Spawn `jobs` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(unsigned jobs = 0);

  /// Drains all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. The returned future carries any exception the task
  /// throws. Safe to call from inside a running task.
  std::future<void> submit(std::function<void()> task);

  /// Resolve a user-facing jobs value: 0 -> hardware_concurrency, floor 1.
  static unsigned resolve_jobs(unsigned jobs);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for every i in [0, count). With jobs resolved to 1 (or
/// count <= 1) this runs inline on the caller's thread — no threads are
/// spawned, so the serial path stays exactly serial. Otherwise indices are
/// self-scheduled across min(jobs, count) workers; the first exception any
/// fn(i) throws is rethrown on the caller after all workers finish.
void parallel_for(unsigned jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace asyncmac::util
