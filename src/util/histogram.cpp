#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace asyncmac::util {

namespace {
// 4 sub-buckets per power of two: resolution ~25% everywhere.
constexpr std::size_t kSubBuckets = 4;
}  // namespace

double Int128Sum::to_double() const noexcept {
  return std::ldexp(static_cast<double>(hi), 64) + static_cast<double>(lo);
}

Histogram::Histogram() : buckets_(kSubBuckets * 64, 0) {}

std::size_t Histogram::bucket_of(std::int64_t v) noexcept {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  const int log2 = 63 - std::countl_zero(u);
  const auto sub = static_cast<std::size_t>(
      (u >> (static_cast<unsigned>(log2) - 2)) & (kSubBuckets - 1));
  return kSubBuckets * static_cast<std::size_t>(log2 - 1) + sub;
}

std::int64_t Histogram::bucket_upper(std::size_t b) noexcept {
  if (b < kSubBuckets) return static_cast<std::int64_t>(b);
  const std::size_t log2 = b / kSubBuckets + 1;
  const std::size_t sub = b % kSubBuckets;
  const auto base = std::uint64_t{1} << log2;
  const auto step = base / kSubBuckets;
  return static_cast<std::int64_t>(base + step * (sub + 1) - 1);
}

void Histogram::add(std::int64_t sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_.add(sample);
  const std::size_t b = bucket_of(sample);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
}

void Histogram::restore(State s) {
  AM_CHECK_MSG(s.buckets.size() >= kSubBuckets * 64,
               "histogram state from an incompatible bucket layout");
  buckets_ = std::move(s.buckets);
  count_ = s.count;
  sum_ = s.sum;
  min_ = s.min;
  max_ = s.max;
}

void Histogram::merge(const Histogram& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_.add(other.sum_);
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_.clear();
  min_ = max_ = 0;
}

std::int64_t Histogram::min() const {
  AM_CHECK(count_ > 0);
  return min_;
}

std::int64_t Histogram::max() const {
  AM_CHECK(count_ > 0);
  return max_;
}

double Histogram::mean() const {
  AM_CHECK(count_ > 0);
  return sum_.to_double() / static_cast<double>(count_);
}

std::int64_t Histogram::quantile(double q) const {
  AM_CHECK(count_ > 0);
  AM_CHECK(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) return std::clamp(bucket_upper(b), min_, max_);
  }
  return max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  if (empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count_ << " min=" << min() << " mean=" << mean()
     << " p50=" << quantile(0.5) << " p99=" << quantile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace asyncmac::util
