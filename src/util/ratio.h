// asyncmac/util/ratio.h
//
// Exact non-negative rational numbers for injection rates (rho) and bound
// formulas. The stability theorems hinge on comparisons like
// "cost injected in window <= rho * t + b"; doing this in floating point
// would blur exactly the boundary cases (rho -> 1) the paper is about.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>

#include "util/check.h"

namespace asyncmac::util {

struct Ratio {
  std::int64_t num = 0;
  std::int64_t den = 1;

  constexpr Ratio() = default;
  Ratio(std::int64_t n, std::int64_t d) : num(n), den(d) {
    AM_REQUIRE(d > 0, "denominator must be positive");
    AM_REQUIRE(n >= 0, "rates are non-negative");
    const std::int64_t g = std::gcd(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
  }

  static Ratio zero() { return {}; }
  static Ratio one() { return {1, 1}; }
  /// Closest rational with denominator `max_den` (for user-facing doubles
  /// like rho = 0.9 in benchmark sweeps).
  static Ratio from_double(double v, std::int64_t max_den = 1000000);

  double to_double() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }

  /// floor(*this * t) with 128-bit intermediate (t in ticks).
  std::int64_t mul_floor(std::int64_t t) const {
    const __int128 p = static_cast<__int128>(num) * t;
    return static_cast<std::int64_t>(p / den);
  }

  /// ceil(t / *this): smallest x with *this * x >= t. Requires num > 0.
  std::int64_t div_ceil(std::int64_t t) const {
    AM_CHECK(num > 0);
    const __int128 p = static_cast<__int128>(t) * den;
    return static_cast<std::int64_t>((p + num - 1) / num);
  }

  bool operator==(const Ratio& o) const {
    return static_cast<__int128>(num) * o.den ==
           static_cast<__int128>(o.num) * den;
  }
  bool operator<(const Ratio& o) const {
    return static_cast<__int128>(num) * o.den <
           static_cast<__int128>(o.num) * den;
  }
  bool operator<=(const Ratio& o) const { return *this < o || *this == o; }

  std::string str() const {
    return std::to_string(num) + "/" + std::to_string(den);
  }
};

inline Ratio Ratio::from_double(double v, std::int64_t max_den) {
  AM_REQUIRE(v >= 0, "rates are non-negative");
  return {static_cast<std::int64_t>(v * static_cast<double>(max_den) + 0.5),
          max_den};
}

}  // namespace asyncmac::util
