// asyncmac/util/histogram.h
//
// Streaming histogram over non-negative integer samples (ticks, slot
// counts, queue sizes). Exact min/max/mean plus quantiles from
// power-of-two-ish logarithmic buckets — adequate for latency tails where
// only the order of magnitude matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asyncmac::util {

class Histogram {
 public:
  Histogram();

  void add(std::int64_t sample);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  double sum() const noexcept { return sum_; }

  /// Approximate quantile q in [0,1]; exact at q=0 and q=1.
  std::int64_t quantile(double q) const;

  /// One-line human-readable summary: "n=… min=… p50=… p99=… max=…".
  std::string summary() const;

 private:
  static std::size_t bucket_of(std::int64_t v) noexcept;
  static std::int64_t bucket_upper(std::size_t b) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace asyncmac::util
