// asyncmac/util/histogram.h
//
// Streaming histogram over non-negative integer samples (ticks, slot
// counts, queue sizes). Exact min/max/mean plus quantiles from
// power-of-two-ish logarithmic buckets — adequate for latency tails where
// only the order of magnitude matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asyncmac::util {

/// Exact signed 128-bit accumulator for int64 samples (two's complement
/// split into a high signed word and a low unsigned word). A plain
/// `double` running sum silently drops low bits once the magnitude
/// exceeds 2^53, which long-horizon tick sums reach routinely; this keeps
/// every bit until the caller converts at the reporting boundary.
struct Int128Sum {
  std::int64_t hi = 0;
  std::uint64_t lo = 0;

  void add(std::int64_t v) noexcept {
    const std::uint64_t old = lo;
    lo += static_cast<std::uint64_t>(v);
    hi += (v < 0 ? -1 : 0) + (lo < old ? 1 : 0);
  }

  void add(const Int128Sum& o) noexcept {
    const std::uint64_t old = lo;
    lo += o.lo;
    hi += o.hi + (lo < old ? 1 : 0);
  }

  void clear() noexcept { hi = 0; lo = 0; }

  /// Lossy conversion for reporting (hi * 2^64 + lo as a double).
  double to_double() const noexcept;

  friend bool operator==(const Int128Sum& a, const Int128Sum& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

class Histogram {
 public:
  Histogram();

  void add(std::int64_t sample);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Running sample sum as a double (reporting only — see sum_exact()).
  double sum() const noexcept { return sum_.to_double(); }
  /// Bit-exact running sample sum; survives past 2^53 where a double
  /// accumulator starts dropping increments.
  const Int128Sum& sum_exact() const noexcept { return sum_; }

  /// Approximate quantile q in [0,1]; exact at q=0 and q=1.
  std::int64_t quantile(double q) const;

  /// One-line human-readable summary: "n=… min=… p50=… p99=… max=…".
  std::string summary() const;

  /// Exact internal state, for checkpoint/resume (snapshot/checkpoint.h).
  /// restore() replaces everything; the bucket vector length must match
  /// this build's bucket layout (it is fixed at construction).
  struct State {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    Int128Sum sum;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };
  State state() const { return {buckets_, count_, sum_, min_, max_}; }
  void restore(State s);

 private:
  static std::size_t bucket_of(std::int64_t v) noexcept;
  static std::int64_t bucket_upper(std::size_t b) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  Int128Sum sum_;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace asyncmac::util
