// asyncmac/verify/scenario.h
//
// Self-contained, serializable descriptions of whole simulator runs, and
// a deterministic generator over them. A Scenario pins every degree of
// freedom of an execution — protocol, topology (n, R), the adversarial
// slot-length schedule, the injection adversary and the engine seed — so
// that one plain-data record replays a run bit-for-bit on any machine.
//
// ScenarioGen searches adversary space: it derives each case from a
// single 64-bit seed through a splittable PRNG (one child generator per
// decision group), so a failing case replays from its printed seed alone
// and adding draws to one group never perturbs another. This is the
// entry point of the fuzzing campaign (see verify/campaign.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "sim/cohort_engine.h"
#include "sim/engine.h"
#include "util/types.h"

namespace asyncmac::verify {

struct Scenario {
  std::string protocol = "ao-arrow";  ///< analysis registry name
  std::uint32_t n = 2;                ///< stations
  std::uint32_t bound_r = 2;          ///< asynchrony bound R
  std::string slot_policy = "perstation";  ///< adversary policy name
  Tick horizon_units = 100;           ///< simulated time units
  std::uint64_t seed = 1;             ///< engine + slot-policy seed
  adversary::InjectorSpec injector;
  /// k-restrained channel: at most `restrained_k` overlapping
  /// transmissions admitted (0 = unrestrained). Excess arrivals jam the
  /// slot when `restrained_jam`, else they are silently rejected.
  std::uint32_t restrained_k = 0;
  bool restrained_jam = true;
  /// Per-slot energy accounting (observation-only: billing never feeds
  /// back into protocol decisions, so traces are unchanged).
  bool energy_enabled = false;
  std::uint64_t energy_cost_transmit = 1;
  std::uint64_t energy_cost_listen = 1;
  std::uint64_t energy_cost_sleep = 0;
  /// Generator seed this scenario was derived from (0 = handwritten).
  std::uint64_t case_seed = 0;

  bool operator==(const Scenario&) const = default;

  /// One-line human-readable summary (deterministic; used in campaign
  /// output, so its format is part of the jobs-determinism contract).
  std::string describe() const;
};

/// The scenario's engine construction materials (configuration, protocol
/// instances, slot policy, injector) with trace recording and full channel
/// history enabled — verification needs both. The single source of truth
/// for how a Scenario maps onto an engine: build_engine consumes one
/// build, and the campaign's cohort-equivalence oracle uses it as a
/// sim::LaneBuilder. Throws std::invalid_argument on unknown
/// protocol/policy/injector names. `seed_override` (0 = none) replaces
/// s.seed in the engine configuration only — the slot policy still draws
/// from s.seed, keeping cohort lanes schedule-compatible.
sim::LaneMaterials scenario_materials(const Scenario& s,
                                      std::uint64_t seed_override = 0);

/// Build the engine a scenario describes (see scenario_materials).
std::unique_ptr<sim::Engine> build_engine(const Scenario& s);

/// Run the scenario to its horizon and return the engine.
std::unique_ptr<sim::Engine> run_scenario(const Scenario& s);

/// The protocols the generator samples from: the paper's core algorithms
/// plus every queue-driven baseline.
const std::vector<std::string>& default_protocol_pool();

/// Derive the full scenario a case seed denotes — a pure function of the
/// seed, shared by generation, replay and shrinking.
Scenario scenario_from_seed(std::uint64_t case_seed);

/// As above but restricted to a protocol subset (used by campaign configs
/// that target specific protocols). `pool` must be non-empty.
Scenario scenario_from_seed(std::uint64_t case_seed,
                            const std::vector<std::string>& pool);

class ScenarioGen {
 public:
  /// `campaign_seed` identifies the whole campaign; case i's seed is a
  /// SplitMix64 mix of (campaign_seed, i), so case seeds are decorrelated
  /// and each one regenerates its scenario without the campaign context.
  explicit ScenarioGen(std::uint64_t campaign_seed,
                       std::vector<std::string> pool = {});

  /// Seed of 0-based case `index`.
  std::uint64_t case_seed(std::uint64_t index) const;

  /// Scenario of 0-based case `index`.
  Scenario generate(std::uint64_t index) const;

  const std::vector<std::string>& pool() const { return pool_; }

 private:
  std::uint64_t campaign_seed_;
  std::vector<std::string> pool_;
};

}  // namespace asyncmac::verify
