#include "verify/repro.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

#include "trace/serialize.h"
#include "util/check.h"
#include "verify/campaign.h"

namespace asyncmac::verify {

namespace {

// ------------------------------------------------------------- writing

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// ------------------------------------------------------------- parsing
//
// Minimal strict JSON for the fixed repro schema: objects, strings and
// integers. Everything unexpected throws std::invalid_argument.

struct JsonValue {
  enum class Kind { kObject, kString, kNumber } kind = Kind::kObject;
  std::map<std::string, JsonValue> object;
  std::string string;
  std::int64_t number = 0;           // valid when kind == kNumber && fits_i64
  std::uint64_t unsigned_number = 0; // full-width value for u64 fields
  bool negative = false;             // the literal had a '-' sign
  bool fits_i64 = true;              // `number` is representable
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    AM_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    AM_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  char take() {
    AM_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_++];
  }

  void expect(char c) {
    AM_REQUIRE(take() == c, std::string("expected '") + c + "' in JSON");
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    throw std::invalid_argument("unexpected character in JSON");
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue member = parse_value();
      AM_REQUIRE(v.object.emplace(std::move(key), std::move(member)).second,
                 "duplicate JSON key");
      skip_ws();
      const char next = take();
      if (next == '}') return v;
      AM_REQUIRE(next == ',', "expected ',' or '}' in JSON object");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      AM_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                 "unescaped control character in JSON string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            value <<= 4;
            if (h >= '0' && h <= '9')
              value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else
              throw std::invalid_argument("bad \\u escape in JSON string");
          }
          AM_REQUIRE(value < 0x80,
                     "non-ASCII \\u escape in repro JSON (unsupported)");
          out.push_back(static_cast<char>(value));
          break;
        }
        default:
          throw std::invalid_argument("unknown escape in JSON string");
      }
    }
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    AM_REQUIRE(pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_])),
               "malformed JSON number");
    std::uint64_t magnitude = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      AM_REQUIRE(magnitude <= (UINT64_MAX - digit) / 10,
                 "JSON number out of range");
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    v.negative = negative;
    v.unsigned_number = negative ? 0 : magnitude;
    if (negative) {
      AM_REQUIRE(magnitude <= static_cast<std::uint64_t>(INT64_MAX) + 1,
                 "JSON number out of range");
      v.number = -static_cast<std::int64_t>(magnitude - 1) - 1;
    } else if (magnitude <= static_cast<std::uint64_t>(INT64_MAX)) {
      v.number = static_cast<std::int64_t>(magnitude);
    } else {
      // Full-u64 values (seeds) are fine; only i64 accessors must balk.
      v.fits_i64 = false;
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& member(const JsonValue& obj, const std::string& key) {
  AM_REQUIRE(obj.kind == JsonValue::Kind::kObject, "expected JSON object");
  const auto it = obj.object.find(key);
  AM_REQUIRE(it != obj.object.end(), "missing repro field: " + key);
  return it->second;
}

const std::string& get_string(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  AM_REQUIRE(v.kind == JsonValue::Kind::kString,
             "repro field must be a string: " + key);
  return v.string;
}

std::int64_t get_i64(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  AM_REQUIRE(v.kind == JsonValue::Kind::kNumber && v.fits_i64,
             "repro field must be an int64 number: " + key);
  return v.number;
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = member(obj, key);
  AM_REQUIRE(v.kind == JsonValue::Kind::kNumber && !v.negative,
             "repro field must be a non-negative number: " + key);
  return v.unsigned_number;
}

std::uint32_t get_u32(const JsonValue& obj, const std::string& key) {
  const std::uint64_t v = get_u64(obj, key);
  AM_REQUIRE(v <= UINT32_MAX, "repro field out of range: " + key);
  return static_cast<std::uint32_t>(v);
}

// Optional fields added after version 1 shipped: absent in old repro
// files, which must keep parsing (they predate the restrained channel
// and energy metering, so the defaults reproduce their runs exactly).
std::uint64_t get_u64_or(const JsonValue& obj, const std::string& key,
                         std::uint64_t fallback) {
  if (obj.object.find(key) == obj.object.end()) return fallback;
  return get_u64(obj, key);
}

}  // namespace

std::string to_json(const Repro& repro) {
  const Scenario& s = repro.scenario;
  const adversary::InjectorSpec& inj = s.injector;
  std::ostringstream os;
  os << "{\n";
  os << "  \"format\": \"asyncmac-fuzz-repro\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"violation\": ";
  write_escaped(os, repro.violation);
  os << ",\n";
  os << "  \"scenario\": {\n";
  os << "    \"protocol\": ";
  write_escaped(os, s.protocol);
  os << ",\n";
  os << "    \"n\": " << s.n << ",\n";
  os << "    \"r\": " << s.bound_r << ",\n";
  os << "    \"slot_policy\": ";
  write_escaped(os, s.slot_policy);
  os << ",\n";
  os << "    \"horizon_units\": " << s.horizon_units << ",\n";
  os << "    \"seed\": " << s.seed << ",\n";
  os << "    \"case_seed\": " << s.case_seed << ",\n";
  // Channel-variant fields (0/1 for flags — the strict parser speaks
  // only objects, strings and integers). Written unconditionally so a
  // repro is explicit about running on the unrestrained channel too.
  os << "    \"restrained_k\": " << s.restrained_k << ",\n";
  os << "    \"restrained_jam\": " << (s.restrained_jam ? 1 : 0) << ",\n";
  os << "    \"energy_enabled\": " << (s.energy_enabled ? 1 : 0) << ",\n";
  os << "    \"energy_cost_transmit\": " << s.energy_cost_transmit << ",\n";
  os << "    \"energy_cost_listen\": " << s.energy_cost_listen << ",\n";
  os << "    \"energy_cost_sleep\": " << s.energy_cost_sleep << ",\n";
  os << "    \"injector\": {\n";
  os << "      \"kind\": ";
  write_escaped(os, inj.kind);
  os << ",\n";
  os << "      \"rho_num\": " << inj.rho.num << ",\n";
  os << "      \"rho_den\": " << inj.rho.den << ",\n";
  os << "      \"burst_ticks\": " << inj.burst_ticks << ",\n";
  os << "      \"pattern\": ";
  write_escaped(os, inj.pattern);
  os << ",\n";
  os << "      \"single_target\": " << inj.single_target << ",\n";
  os << "      \"period_ticks\": " << inj.period_ticks << ",\n";
  os << "      \"drain_a\": " << inj.drain_a << ",\n";
  os << "      \"drain_b\": " << inj.drain_b << ",\n";
  os << "      \"seed\": " << inj.seed << "\n";
  os << "    }\n";
  os << "  },\n";
  os << "  \"trace\": ";
  write_escaped(os, repro.trace_text);
  os << "\n}\n";
  return os.str();
}

Repro parse_repro_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  AM_REQUIRE(get_string(root, "format") == "asyncmac-fuzz-repro",
             "not an asyncmac fuzz repro file");
  AM_REQUIRE(get_i64(root, "version") == 1, "unsupported repro version");

  Repro repro;
  repro.violation = get_string(root, "violation");
  repro.trace_text = get_string(root, "trace");

  const JsonValue& sc = member(root, "scenario");
  Scenario& s = repro.scenario;
  s.protocol = get_string(sc, "protocol");
  s.n = get_u32(sc, "n");
  s.bound_r = get_u32(sc, "r");
  s.slot_policy = get_string(sc, "slot_policy");
  s.horizon_units = get_i64(sc, "horizon_units");
  s.seed = get_u64(sc, "seed");
  s.case_seed = get_u64(sc, "case_seed");
  const std::uint64_t rk = get_u64_or(sc, "restrained_k", 0);
  AM_REQUIRE(rk <= UINT32_MAX, "repro field out of range: restrained_k");
  s.restrained_k = static_cast<std::uint32_t>(rk);
  s.restrained_jam = get_u64_or(sc, "restrained_jam", 1) != 0;
  s.energy_enabled = get_u64_or(sc, "energy_enabled", 0) != 0;
  s.energy_cost_transmit = get_u64_or(sc, "energy_cost_transmit", 1);
  s.energy_cost_listen = get_u64_or(sc, "energy_cost_listen", 1);
  s.energy_cost_sleep = get_u64_or(sc, "energy_cost_sleep", 0);
  AM_REQUIRE(s.n >= 1 && s.bound_r >= 1 && s.horizon_units >= 1,
             "repro scenario out of range");

  const JsonValue& ij = member(sc, "injector");
  adversary::InjectorSpec& inj = s.injector;
  inj.kind = get_string(ij, "kind");
  inj.rho = util::Ratio(get_i64(ij, "rho_num"), get_i64(ij, "rho_den"));
  inj.burst_ticks = get_i64(ij, "burst_ticks");
  inj.pattern = get_string(ij, "pattern");
  inj.single_target = get_u32(ij, "single_target");
  inj.period_ticks = get_i64(ij, "period_ticks");
  inj.drain_a = get_u32(ij, "drain_a");
  inj.drain_b = get_u32(ij, "drain_b");
  inj.seed = get_u64(ij, "seed");
  return repro;
}

Repro make_repro(const Scenario& s, const std::string& violation) {
  Repro repro;
  repro.scenario = s;
  repro.violation = violation;
  try {
    auto engine = run_scenario(s);
    repro.trace_text =
        trace::serialize_trace({s.n, s.bound_r}, engine->trace().slots());
  } catch (const std::exception&) {
    // The violation is an engine exception: there is no trace to embed,
    // but the scenario alone still replays the crash.
  }
  return repro;
}

ReplayOutcome replay_repro(const Repro& repro) {
  ReplayOutcome outcome;
  outcome.case_result = run_case(repro.scenario);
  if (!repro.trace_text.empty()) {
    try {
      auto engine = run_scenario(repro.scenario);
      const std::string regenerated = trace::serialize_trace(
          {repro.scenario.n, repro.scenario.bound_r}, engine->trace().slots());
      outcome.trace_matches = regenerated == repro.trace_text;
    } catch (const std::exception&) {
      outcome.trace_matches = false;
    }
  }
  outcome.reproduced =
      outcome.trace_matches &&
      (repro.violation.empty() ? outcome.case_result.ok
                               : !outcome.case_result.ok);
  return outcome;
}

}  // namespace asyncmac::verify
