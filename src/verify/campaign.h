// asyncmac/verify/campaign.h
//
// The property-fuzzing campaign: generate scenarios from seeds
// (verify/scenario.h), run each one, and check every global trace
// invariant plus the differential channel oracle on the result. Failing
// cases are shrunk — fewer stations, shorter horizon, simpler slot
// lengths, fewer injections — to a minimal counterexample fit for a
// committed repro file (verify/repro.h).
//
// Determinism contract: for a fixed (seed, cases, protocol pool) the
// verdict of every case, the failure list, the shrunk counterexample and
// all summary text are byte-identical for every jobs value — cases are
// enumerated up front, each worker writes into its case's pre-sized
// slot, and shrinking runs serially on the first failure by case index
// (mirroring analysis::run_grid's determinism scheme).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/invariants.h"
#include "verify/scenario.h"

namespace asyncmac::verify {

/// Extra per-case predicate, checked after the built-in invariants.
/// Tests use this to inject synthetic violations and exercise the
/// shrinker/repro machinery on a stack that (correctly) refuses to fail
/// on its own.
using CaseCheck =
    std::function<trace::CheckResult(const Scenario&, const sim::Engine&)>;

struct CampaignConfig {
  std::uint64_t seed = 1;      ///< campaign seed (case seeds derive)
  std::uint64_t cases = 100;   ///< number of generated cases
  unsigned jobs = 0;           ///< worker threads; 0 = all cores
  /// Wall-clock budget in seconds; 0 = unlimited. Checked between
  /// fixed-size chunks, so per-case verdicts stay deterministic — only
  /// *how many* chunks run can vary under a budget.
  int time_budget_seconds = 0;
  bool shrink = true;          ///< shrink the first failure
  /// Restrict generation to these protocols (empty = default pool).
  std::vector<std::string> protocols;
  CaseCheck extra_check;       ///< optional synthetic-violation hook
  /// When non-empty, the campaign writes a cursor file here after every
  /// chunk (verdicts so far + the case index to resume at, see
  /// docs/CHECKPOINT.md) and, on start, resumes from an existing cursor
  /// instead of re-running completed chunks. Verdicts are byte-identical
  /// to an uninterrupted campaign. A cursor from a different (seed,
  /// cases, protocol pool) raises snapshot::SnapshotError(kMismatch).
  std::string checkpoint_path;
  /// Test hook: stop cleanly after at least this many cases (rounded up
  /// to a chunk boundary), reporting budget_exhausted — a deterministic
  /// stand-in for killing the process mid-campaign. 0 = off.
  std::uint64_t stop_after_cases = 0;
};

/// Run one scenario and check everything: slot contiguity, feedback
/// consistency (Ledger replay), the reference-channel differential
/// oracle, the prune-with-history ledger cross-check, CA-ARRoW's
/// collision-freedom and cyclic turn order when applicable, and the
/// optional extra check. An exception escaping the engine (a tripped
/// AM_CHECK) is reported as a failing result, not propagated — a fuzzer
/// must survive the bugs it finds.
trace::CheckResult run_case(const Scenario& s,
                            const CaseCheck& extra = nullptr);

struct CaseVerdict {
  std::uint64_t index = 0;      ///< 0-based case index in the campaign
  std::uint64_t case_seed = 0;  ///< replays via scenario_from_seed
  bool ok = true;
  std::string violation;        ///< first violation, empty when ok
};

struct FailedCase {
  CaseVerdict verdict;
  Scenario scenario;
};

struct CampaignResult {
  std::uint64_t cases_requested = 0;
  std::uint64_t cases_run = 0;
  bool budget_exhausted = false;
  std::vector<CaseVerdict> verdicts;  ///< one per run case, by index
  std::vector<FailedCase> failures;   ///< ascending case index
  /// Minimal counterexample shrunk from the first failure (when
  /// config.shrink and there was one).
  bool shrunk_valid = false;
  Scenario shrunk;
  std::string shrunk_violation;
};

CampaignResult run_campaign(const CampaignConfig& config);

/// Greedily minimize a failing scenario while it keeps failing
/// run_case(s, extra): fewer stations, shorter horizon, simpler slot
/// policy, simpler/lighter injection. Deterministic; bounded by a fixed
/// candidate-evaluation budget. `violation_out` receives the violation
/// of the returned scenario.
Scenario shrink_counterexample(Scenario s, const CaseCheck& extra,
                               std::string* violation_out);

/// Deterministic human-readable summary (part of the jobs-determinism
/// contract; the CLI prints exactly this).
std::string summarize(const CampaignResult& result);

}  // namespace asyncmac::verify
