#include "verify/reference_channel.h"

#include <sstream>

#include "channel/ledger.h"

namespace asyncmac::verify {

namespace {

template <typename... Ts>
trace::CheckResult fail(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return {false, os.str()};
}

}  // namespace

bool ReferenceChannel::successful(std::size_t i) const {
  if (cached_) return success_cache_[i];
  for (std::size_t j = 0; j < txs_.size(); ++j) {
    if (j == i) continue;
    if (channel::intervals_overlap(txs_[i].begin, txs_[i].end, txs_[j].begin,
                                   txs_[j].end))
      return false;
  }
  return true;
}

bool ReferenceChannel::successful(StationId station, Tick begin,
                                  Tick end) const {
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (txs_[i].station == station && txs_[i].begin == begin &&
        txs_[i].end == end)
      return successful(i);
  }
  throw std::logic_error("reference channel: no such transmission");
}

void ReferenceChannel::cache_success() {
  success_cache_.assign(txs_.size(), false);
  cached_ = false;  // successful(i) must compute, not read the cache
  for (std::size_t i = 0; i < txs_.size(); ++i)
    success_cache_[i] = successful(i);
  cached_ = true;
}

Feedback ReferenceChannel::feedback(Tick s, Tick t) const {
  bool overlap = false;
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (txs_[i].end > s && txs_[i].end <= t && successful(i))
      return Feedback::kAck;
    if (channel::intervals_overlap(txs_[i].begin, txs_[i].end, s, t))
      overlap = true;
  }
  return overlap ? Feedback::kBusy : Feedback::kSilence;
}

trace::CheckResult check_channel_oracle(
    const std::vector<trace::SlotRecord>& slots) {
  const Tick horizon = trace::checkable_horizon(slots);
  const auto txs = trace::transmissions_of(slots);

  ReferenceChannel ref;
  for (const auto& t : txs) ref.add(t);
  ref.cache_success();

  channel::Ledger ledger;
  for (const auto& t : txs) ledger.add(t);

  for (const auto& s : slots) {
    if (s.end > horizon) continue;  // may depend on unrecorded slots
    const Feedback from_ref = ref.feedback(s.begin, s.end);
    const Feedback from_ledger = ledger.feedback(s.begin, s.end);
    if (from_ref != from_ledger)
      return fail("ledger/reference disagree on slot [", s.begin, ",", s.end,
                  ") of station ", s.station, ": ledger says ",
                  to_string(from_ledger), ", reference says ",
                  to_string(from_ref));
    if (s.feedback != from_ref)
      return fail("station ", s.station, " slot ", s.index, " at [", s.begin,
                  ",", s.end, ") recorded ", to_string(s.feedback),
                  " but the reference channel derives ", to_string(from_ref));
  }
  return {};
}

trace::CheckResult check_ledger_history(const sim::Engine& engine) {
  const channel::Ledger& ledger = engine.ledger();
  // Union of archived and live entries = everything ever registered.
  std::vector<channel::Transmission> all = ledger.full_history();
  for (const auto& t : ledger.window()) all.push_back(t);

  const std::uint64_t registered = ledger.stats().transmissions;
  if (all.size() != registered)
    return fail("ledger history leak: ", registered,
                " transmissions registered but history+window hold ",
                all.size());

  ReferenceChannel ref;
  for (const auto& t : all) ref.add(t);
  ref.cache_success();

  for (std::size_t i = 0; i < all.size(); ++i) {
    const channel::Transmission& t = all[i];
    const bool archived = i < ledger.full_history().size();
    if (archived && !t.decided)
      return fail("archived transmission [", t.begin, ",", t.end,
                  ") of station ", t.station, " was never finalized");
    if (!t.decided) continue;  // in-flight tail of the live window
    if (t.successful != ref.successful(i))
      return fail("success flag of station ", t.station, " [", t.begin, ",",
                  t.end, ") is ", t.successful ? "true" : "false",
                  " but the reference derives ",
                  ref.successful(i) ? "true" : "false",
                  archived ? " (archived by prune)" : " (live window)");
  }
  return {};
}

}  // namespace asyncmac::verify
