#include "verify/reference_channel.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "channel/ledger.h"

namespace asyncmac::verify {

namespace {

template <typename... Ts>
trace::CheckResult fail(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return {false, os.str()};
}

}  // namespace

void ReferenceChannel::ensure_admissions() const {
  if (admissions_valid_) return;
  admission_.assign(txs_.size(),
                    static_cast<std::uint8_t>(channel::Admission::kOk));
  if (restrained_.enabled()) {
    // Replay adds in (begin, station) order — the order the engines
    // register slots in (events sorted by time, ties by station id; a
    // single station never opens two slots at one tick). For each add,
    // count the earlier non-rejected transmissions still on air at its
    // begin; the k-th and later concurrent ones are jammed or rejected.
    std::vector<std::size_t> order(txs_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return std::tie(txs_[a].begin, txs_[a].station) <
                              std::tie(txs_[b].begin, txs_[b].station);
                     });
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      std::uint32_t on_air = 0;
      for (std::size_t prev = 0; prev < pos; ++prev) {
        const std::size_t j = order[prev];
        if (static_cast<channel::Admission>(admission_[j]) ==
            channel::Admission::kRejected)
          continue;
        if (txs_[j].end > txs_[i].begin) ++on_air;
      }
      if (on_air >= restrained_.k)
        admission_[i] = static_cast<std::uint8_t>(
            restrained_.jam ? channel::Admission::kJammed
                            : channel::Admission::kRejected);
    }
  }
  admissions_valid_ = true;
}

channel::Admission ReferenceChannel::admission(std::size_t i) const {
  ensure_admissions();
  return static_cast<channel::Admission>(admission_[i]);
}

bool ReferenceChannel::successful(std::size_t i) const {
  if (cached_) return success_cache_[i];
  if (admission(i) == channel::Admission::kRejected) return false;
  for (std::size_t j = 0; j < txs_.size(); ++j) {
    if (j == i) continue;
    if (admission(j) == channel::Admission::kRejected) continue;
    if (channel::intervals_overlap(txs_[i].begin, txs_[i].end, txs_[j].begin,
                                   txs_[j].end))
      return false;
  }
  return true;
}

bool ReferenceChannel::successful(StationId station, Tick begin,
                                  Tick end) const {
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (txs_[i].station == station && txs_[i].begin == begin &&
        txs_[i].end == end)
      return successful(i);
  }
  throw std::logic_error("reference channel: no such transmission");
}

void ReferenceChannel::cache_success() {
  success_cache_.assign(txs_.size(), false);
  cached_ = false;  // successful(i) must compute, not read the cache
  for (std::size_t i = 0; i < txs_.size(); ++i)
    success_cache_[i] = successful(i);
  cached_ = true;
}

Feedback ReferenceChannel::feedback(Tick s, Tick t) const {
  bool overlap = false;
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    // Rejected transmissions never reached the medium: no ack, no busy.
    if (admission(i) == channel::Admission::kRejected) continue;
    if (txs_[i].end > s && txs_[i].end <= t && successful(i))
      return Feedback::kAck;
    if (channel::intervals_overlap(txs_[i].begin, txs_[i].end, s, t))
      overlap = true;
  }
  return overlap ? Feedback::kBusy : Feedback::kSilence;
}

trace::CheckResult check_channel_oracle(
    const std::vector<trace::SlotRecord>& slots,
    channel::RestrainedSpec restrained) {
  const Tick horizon = trace::checkable_horizon(slots);
  const auto txs = trace::transmissions_of(slots);

  ReferenceChannel ref;
  ref.set_restrained(restrained);
  for (const auto& t : txs) ref.add(t);
  ref.cache_success();

  channel::Ledger ledger(/*keep_history=*/false, restrained);
  for (const auto& t : txs) ledger.add(t);

  if (restrained.enabled()) {
    // The replayed Ledger decided every admission at add; the naive
    // reference re-derives them by counting. They must agree entrywise
    // (the replay window holds all entries — nothing was pruned).
    const auto& window = ledger.window();
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (window[i].admission != static_cast<std::uint8_t>(ref.admission(i)))
        return fail("ledger/reference disagree on admission of station ",
                    window[i].station, " [", window[i].begin, ",",
                    window[i].end, "): ledger says ",
                    unsigned{window[i].admission}, ", reference says ",
                    static_cast<unsigned>(ref.admission(i)));
    }
  }

  for (const auto& s : slots) {
    if (s.end > horizon) continue;  // may depend on unrecorded slots
    const Feedback from_ref = ref.feedback(s.begin, s.end);
    const Feedback from_ledger = ledger.feedback(s.begin, s.end);
    if (from_ref != from_ledger)
      return fail("ledger/reference disagree on slot [", s.begin, ",", s.end,
                  ") of station ", s.station, ": ledger says ",
                  to_string(from_ledger), ", reference says ",
                  to_string(from_ref));
    if (s.feedback != from_ref)
      return fail("station ", s.station, " slot ", s.index, " at [", s.begin,
                  ",", s.end, ") recorded ", to_string(s.feedback),
                  " but the reference channel derives ", to_string(from_ref));
  }
  return {};
}

trace::CheckResult check_ledger_history(const sim::Engine& engine) {
  const channel::Ledger& ledger = engine.ledger();
  // Union of archived and live entries = everything ever registered.
  std::vector<channel::Transmission> all = ledger.full_history();
  for (const auto& t : ledger.window()) all.push_back(t);

  const std::uint64_t registered = ledger.stats().transmissions;
  if (all.size() != registered)
    return fail("ledger history leak: ", registered,
                " transmissions registered but history+window hold ",
                all.size());

  ReferenceChannel ref;
  ref.set_restrained(ledger.restrained());
  for (const auto& t : all) ref.add(t);
  ref.cache_success();

  for (std::size_t i = 0; i < all.size(); ++i) {
    const channel::Transmission& t = all[i];
    const bool archived = i < ledger.full_history().size();
    if (archived && !t.decided)
      return fail("archived transmission [", t.begin, ",", t.end,
                  ") of station ", t.station, " was never finalized");
    if (t.admission != static_cast<std::uint8_t>(ref.admission(i)))
      return fail("admission of station ", t.station, " [", t.begin, ",",
                  t.end, ") is ", unsigned{t.admission},
                  " but the reference derives ",
                  static_cast<unsigned>(ref.admission(i)),
                  archived ? " (archived by prune)" : " (live window)");
    if (!t.decided) continue;  // in-flight tail of the live window
    if (t.successful != ref.successful(i))
      return fail("success flag of station ", t.station, " [", t.begin, ",",
                  t.end, ") is ", t.successful ? "true" : "false",
                  " but the reference derives ",
                  ref.successful(i) ? "true" : "false",
                  archived ? " (archived by prune)" : " (live window)");
  }
  return {};
}

}  // namespace asyncmac::verify
