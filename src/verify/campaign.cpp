#include "verify/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "snapshot/format.h"
#include "snapshot/io.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "verify/reference_channel.h"

namespace asyncmac::verify {

namespace {

// Fixed chunk size between time-budget checks. Independent of jobs so
// chunk boundaries — and with them every per-case verdict — never depend
// on the worker count.
constexpr std::uint64_t kChunk = 64;

// Candidate evaluations the shrinker may spend (each one is a whole
// simulated run).
constexpr int kShrinkBudget = 200;

// ---------------------------------------------------- campaign cursor

// CRC over what determines per-case verdicts: seed, case count and the
// protocol pool. jobs / budget / shrink only affect how far we get.
std::uint32_t campaign_fingerprint(const CampaignConfig& config,
                                   const std::vector<std::string>& pool) {
  snapshot::Writer w;
  w.u64(config.seed);
  w.u64(config.cases);
  for (const auto& p : pool) w.str(p);
  return snapshot::crc32(w.buffer().data(), w.buffer().size());
}

void write_cursor(const std::string& path, std::uint32_t fingerprint,
                  const std::vector<CaseVerdict>& verdicts) {
  snapshot::Writer w;
  w.u32(fingerprint);
  w.u64(verdicts.size());
  for (const CaseVerdict& v : verdicts) {
    w.u64(v.index);
    w.u64(v.case_seed);
    w.boolean(v.ok);
    w.str(v.violation);
  }
  snapshot::write_file(path, snapshot::FileKind::kCampaignCursor, w.buffer());
}

/// Load a cursor file (when one exists) and return the verdicts already
/// decided; throws SnapshotError(kMismatch) on a cursor from a different
/// campaign.
std::vector<CaseVerdict> load_cursor(const std::string& path,
                                     std::uint32_t fingerprint) {
  std::vector<CaseVerdict> verdicts;
  if (!std::filesystem::exists(path)) return verdicts;
  const auto payload =
      snapshot::read_file(path, snapshot::FileKind::kCampaignCursor);
  snapshot::Reader r(payload);
  if (r.u32() != fingerprint)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "campaign cursor " + path +
            " was written for a different campaign (seed/cases/pool)");
  const std::uint64_t count = r.u64();
  verdicts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CaseVerdict v;
    v.index = r.u64();
    v.case_seed = r.u64();
    v.ok = r.boolean();
    v.violation = r.str();
    verdicts.push_back(std::move(v));
  }
  r.expect_end();
  return verdicts;
}

// Keep a shrunken scenario's injector well-formed after its station
// count dropped.
void clamp_to_stations(Scenario& s) {
  adversary::InjectorSpec& inj = s.injector;
  if (inj.single_target > s.n) inj.single_target = 1;
  if (inj.kind == "drain-chasing") {
    if (s.n < 2) {
      inj.kind = "saturating";
    } else if (inj.drain_a > s.n || inj.drain_b > s.n ||
               inj.drain_a == inj.drain_b) {
      inj.drain_a = 1;
      inj.drain_b = 2;
    }
  }
}

}  // namespace

namespace {

/// Differential oracle for the batched cohort engine: replay the scenario
/// as a lane of a sim::CohortEngine (whatever path the cohort picks —
/// lockstep for lane-ized protocol/policy combinations, scalar fallback
/// otherwise) and demand the full state snapshot equal the scalar
/// engine's, byte for byte. Lane 1 rides along with a different seed (the
/// Monte Carlo shape cohorts exist for); lane 2 replays the scenario with
/// a mid-horizon stop and resumes, covering retirement + materialization
/// under every generated adversary; lane 3 runs the scenario with varied
/// injector *parameters* (halved rho, longer bursts) and must match its
/// own scalar twin — the lane-varying-parameter shape analysis::run_grid
/// batches whole grid rows with.
trace::CheckResult check_cohort_equivalence(const Scenario& s,
                                            const sim::Engine& scalar) {
  snapshot::Writer scalar_bytes;
  scalar.save_state(scalar_bytes);

  // Same protocol/policy/seed, different injector parameters: legal for
  // every injector kind (rho only shrinks, bursts only lengthen).
  Scenario varied = s;
  varied.injector.rho =
      util::Ratio(varied.injector.rho.num, varied.injector.rho.den * 2);
  varied.injector.burst_ticks += 4 * kTicksPerUnit;
  snapshot::Writer varied_bytes;
  run_scenario(varied)->save_state(varied_bytes);

  std::vector<sim::LaneBuilder> builders;
  builders.push_back([s] { return scenario_materials(s); });
  builders.push_back(
      [s, seed = s.seed + 1] { return scenario_materials(s, seed); });
  builders.push_back([s] { return scenario_materials(s); });
  builders.push_back([varied] { return scenario_materials(varied); });
  sim::CohortEngine cohort(std::move(builders));

  const Tick horizon = s.horizon_units * kTicksPerUnit;
  std::vector<sim::StopCondition> stops(4, sim::until(horizon));
  stops[2] = sim::until(horizon / 2);
  cohort.run(stops);
  cohort.run(sim::until(horizon));  // resume lane 2 to the full horizon

  for (const std::size_t lane :
       {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    const auto& want = lane == 3 ? varied_bytes : scalar_bytes;
    snapshot::Writer lane_bytes;
    cohort.save_lane_state(lane, lane_bytes);
    if (lane_bytes.buffer() != want.buffer()) {
      std::ostringstream os;
      os << "cohort lane " << lane << " ("
         << (cohort.lockstep() ? "lockstep" : "scalar-fallback")
         << (lane == 2 ? ", retired mid-run and resumed" : "")
         << (lane == 3 ? ", param-varied injector" : "")
         << ") diverged from the scalar engine: state snapshots differ ("
         << lane_bytes.buffer().size() << " vs " << want.buffer().size()
         << " bytes)";
      return {false, os.str()};
    }
  }
  return {};
}

trace::CheckResult run_case_impl(const Scenario& s, const CaseCheck& extra) {
  try {
    auto engine = run_scenario(s);
    const auto& slots = engine->trace().slots();

    const channel::RestrainedSpec restrained = engine->ledger().restrained();
    if (auto r = trace::check_slot_contiguity(slots); !r) return r;
    if (auto r = trace::check_feedback_consistency(slots, restrained); !r)
      return r;
    if (auto r = check_channel_oracle(slots, restrained); !r) return r;
    if (auto r = check_ledger_history(*engine); !r) return r;

    if (s.protocol == "ca-arrow") {
      // The paper's CA-ARRoW guarantees: no transmission ever collides,
      // and successful bursts rotate in cyclic station order.
      const auto txs = trace::transmissions_of(slots);
      if (auto r = trace::check_no_overlaps(txs); !r) return r;
      if (auto r = trace::check_cyclic_turn_order(txs, s.n); !r) return r;
    }

    if (auto r = check_cohort_equivalence(s, *engine); !r) return r;

    if (extra) {
      if (auto r = extra(s, *engine); !r) return r;
    }
    return {};
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what()};
  }
}

}  // namespace

trace::CheckResult run_case(const Scenario& s, const CaseCheck& extra) {
  static auto& case_count =
      telemetry::Registry::global().counter("verify.cases");
  static auto& violation_count =
      telemetry::Registry::global().counter("verify.violations");
  static auto& case_timer =
      telemetry::Registry::global().timer("verify.case_ns");
  const telemetry::ScopeTimer scope(case_timer);
  case_count.add();
  auto r = run_case_impl(s, extra);
  if (!r.ok) violation_count.add();
  return r;
}

Scenario shrink_counterexample(Scenario s, const CaseCheck& extra,
                               std::string* violation_out) {
  int budget = kShrinkBudget;
  std::string violation;

  auto fails = [&](Scenario candidate) {
    if (budget <= 0) return false;
    --budget;
    static auto& candidates =
        telemetry::Registry::global().counter("verify.shrink_candidates");
    candidates.add();
    clamp_to_stations(candidate);
    const auto r = run_case(candidate, extra);
    if (r.ok) return false;
    violation = r.what;
    return true;
  };

  // Establish the baseline violation (the caller hands us a failing
  // scenario; if it stopped failing, return it unchanged).
  {
    const auto r = run_case(s, extra);
    if (r.ok) {
      if (violation_out) violation_out->clear();
      return s;
    }
    violation = r.what;
  }

  // Greedy passes until a whole pass makes no progress (or the candidate
  // budget runs dry). Order matters for minimality of the common case:
  // stations first (the acceptance bar), then time, then simplicity.
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;

    // Fewer stations.
    while (s.n > 1) {
      Scenario candidate = s;
      candidate.n = s.n - 1;
      if (!fails(candidate)) break;
      clamp_to_stations(candidate);
      s = candidate;
      improved = true;
    }

    // Shorter horizon (halving, then a linear trim).
    while (s.horizon_units > 1) {
      Scenario candidate = s;
      candidate.horizon_units = std::max<Tick>(1, s.horizon_units / 2);
      if (!fails(candidate)) break;
      s = candidate;
      improved = true;
    }
    while (s.horizon_units > 1) {
      Scenario candidate = s;
      candidate.horizon_units = s.horizon_units - 1;
      if (!fails(candidate)) break;
      s = candidate;
      improved = true;
    }

    // Simpler slot lengths: fully synchronous beats uniform-max beats
    // per-station constants beats anything time-varying.
    for (const char* simpler : {"sync", "max", "perstation"}) {
      if (s.slot_policy == simpler) break;  // already at least this simple
      Scenario candidate = s;
      candidate.slot_policy = simpler;
      if (fails(candidate)) {
        s = candidate;
        improved = true;
        break;
      }
    }

    // Simpler injection: the plain saturating round-robin adversary.
    if (s.injector.kind != "saturating") {
      Scenario candidate = s;
      candidate.injector.kind = "saturating";
      if (fails(candidate)) {
        s = candidate;
        improved = true;
      }
    }
    if (s.injector.pattern != "single") {
      Scenario candidate = s;
      candidate.injector.pattern = "single";
      if (fails(candidate)) {
        s = candidate;
        improved = true;
      }
    }

    // Simpler channel: an unrestrained medium beats a k-restrained one,
    // and energy metering is observation-only so dropping it should
    // never mask a violation — if it does, that is itself the bug.
    if (s.restrained_k != 0) {
      Scenario candidate = s;
      candidate.restrained_k = 0;
      if (fails(candidate)) {
        s = candidate;
        improved = true;
      }
    }
    if (s.energy_enabled) {
      Scenario candidate = s;
      candidate.energy_enabled = false;
      if (fails(candidate)) {
        s = candidate;
        improved = true;
      }
    }

    // Fewer injections: halve the burst allowance, then the rate.
    while (s.injector.burst_ticks > kTicksPerUnit) {
      Scenario candidate = s;
      candidate.injector.burst_ticks =
          std::max(kTicksPerUnit, s.injector.burst_ticks / 2);
      if (!fails(candidate)) break;
      s = candidate;
      improved = true;
    }
    while (s.injector.rho.num > 1) {
      Scenario candidate = s;
      candidate.injector.rho =
          util::Ratio(s.injector.rho.num / 2, s.injector.rho.den);
      if (!fails(candidate)) break;
      s = candidate;
      improved = true;
    }
  }

  if (violation_out) *violation_out = violation;
  return s;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  AM_REQUIRE(config.cases > 0, "campaign needs at least one case");
  const ScenarioGen gen(config.seed, config.protocols);

  CampaignResult result;
  result.cases_requested = config.cases;
  result.verdicts.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(config.cases, 1 << 20)));

  const bool checkpointing = !config.checkpoint_path.empty();
  std::uint32_t fingerprint = 0;
  if (checkpointing) {
    fingerprint = campaign_fingerprint(config, gen.pool());
    result.verdicts = load_cursor(config.checkpoint_path, fingerprint);
    result.cases_run = result.verdicts.size();
    // Failing scenarios regenerate from their case seeds (a campaign only
    // ever runs generated cases, so case_seed is never the handwritten-0
    // sentinel).
    for (const CaseVerdict& v : result.verdicts)
      if (!v.ok)
        result.failures.push_back(
            {v, scenario_from_seed(v.case_seed, gen.pool())});
  }

  telemetry::emit(
      "campaign.start",
      {{"cases", config.cases},
       {"jobs", static_cast<std::int64_t>(config.jobs)},
       {"time_budget_s",
        static_cast<std::int64_t>(config.time_budget_seconds)}});

  const auto started = std::chrono::steady_clock::now();
  auto budget_exceeded = [&] {
    if (config.time_budget_seconds <= 0) return false;
    const auto elapsed = std::chrono::steady_clock::now() - started;
    return elapsed >= std::chrono::seconds(config.time_budget_seconds);
  };

  for (std::uint64_t chunk_start = result.cases_run;
       chunk_start < config.cases; chunk_start += kChunk) {
    const std::uint64_t count =
        std::min<std::uint64_t>(kChunk, config.cases - chunk_start);
    std::vector<CaseVerdict> chunk(static_cast<std::size_t>(count));
    std::vector<Scenario> chunk_scenarios(static_cast<std::size_t>(count));
    util::parallel_for(
        config.jobs, static_cast<std::size_t>(count), [&](std::size_t i) {
          const std::uint64_t index = chunk_start + i;
          const Scenario s = gen.generate(index);
          const auto r = run_case(s, config.extra_check);
          chunk[i] = {index, s.case_seed, r.ok, r.what};
          if (!r.ok) chunk_scenarios[i] = s;
        });
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      if (!chunk[i].ok)
        result.failures.push_back({chunk[i], chunk_scenarios[i]});
      result.verdicts.push_back(std::move(chunk[i]));
    }
    result.cases_run += count;
    if (checkpointing)
      write_cursor(config.checkpoint_path, fingerprint, result.verdicts);
    if (config.stop_after_cases > 0 &&
        result.cases_run >= config.stop_after_cases &&
        result.cases_run < config.cases) {
      result.budget_exhausted = true;
      break;
    }
    if (telemetry::enabled()) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      telemetry::emit(
          "campaign.chunk",
          {{"cases_run", result.cases_run},
           {"violations",
            static_cast<std::uint64_t>(result.failures.size())},
           {"cases_per_sec",
            elapsed_s > 0.0 ? static_cast<double>(result.cases_run) /
                                  elapsed_s
                            : 0.0}});
    }
    if (budget_exceeded() && chunk_start + count < config.cases) {
      result.budget_exhausted = true;
      break;
    }
  }

  if (!result.failures.empty() && config.shrink) {
    result.shrunk = shrink_counterexample(result.failures.front().scenario,
                                          config.extra_check,
                                          &result.shrunk_violation);
    result.shrunk_valid = true;
  }
  telemetry::emit(
      "campaign.done",
      {{"cases_run", result.cases_run},
       {"violations", static_cast<std::uint64_t>(result.failures.size())},
       {"budget_exhausted", result.budget_exhausted}});
  return result;
}

std::string summarize(const CampaignResult& result) {
  std::ostringstream os;
  os << "cases: " << result.cases_run << "/" << result.cases_requested;
  if (result.budget_exhausted) os << " (time budget exhausted)";
  os << "\nviolations: " << result.failures.size() << "\n";
  for (const auto& f : result.failures)
    os << "case " << f.verdict.index << " seed " << f.verdict.case_seed
       << ": " << f.verdict.violation << "\n  " << f.scenario.describe()
       << "\n";
  if (result.shrunk_valid)
    os << "shrunk counterexample: " << result.shrunk.describe() << "\n"
       << "shrunk violation: " << result.shrunk_violation << "\n";
  return os.str();
}

}  // namespace asyncmac::verify
