// asyncmac/verify/repro.h
//
// JSON repro files for fuzzing counterexamples and pinned corpus cases.
// A repro bundles a Scenario (everything needed to rebuild the run), the
// violation the campaign observed (empty for a pinned-clean corpus
// entry) and the expected serialized trace (trace/serialize text,
// embedded as a JSON string). Replaying re-runs the scenario, re-checks
// every invariant and — when a trace is embedded — requires the current
// build to regenerate it byte-for-byte.
//
// The JSON layer is hand-rolled and dependency-free like metrics/json,
// but bidirectional: repro files come back in from disk, so the parser
// must reject malformed input cleanly (std::invalid_argument, never a
// crash).
#pragma once

#include <string>

#include "trace/invariants.h"
#include "verify/scenario.h"

namespace asyncmac::verify {

struct Repro {
  Scenario scenario;
  std::string violation;   ///< empty for pinned-clean corpus entries
  std::string trace_text;  ///< expected serialized trace (may be empty)

  bool operator==(const Repro&) const = default;
};

/// Serialize with deterministic key order and formatting (repro output
/// is part of the campaign's jobs-determinism contract).
std::string to_json(const Repro& repro);

/// Parse a repro file; throws std::invalid_argument on malformed JSON,
/// missing fields or out-of-range values.
Repro parse_repro_json(const std::string& text);

/// Run the scenario and capture its trace into a repro.
Repro make_repro(const Scenario& s, const std::string& violation);

struct ReplayOutcome {
  trace::CheckResult case_result;  ///< invariants on the fresh run
  bool trace_matches = true;       ///< vs embedded trace, when present
  /// True when the fresh run matches what the repro recorded: a clean
  /// repro replays clean, a violation repro fails again, and any
  /// embedded trace regenerates byte-identically.
  bool reproduced = false;
};

ReplayOutcome replay_repro(const Repro& repro);

}  // namespace asyncmac::verify
