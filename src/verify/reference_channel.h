// asyncmac/verify/reference_channel.h
//
// A deliberately naive re-derivation of the Section-II channel semantics,
// used as a differential oracle against the optimized channel::Ledger.
// Success of a transmission is decided by scanning every other
// transmission for overlap; slot feedback by scanning every transmission.
// There is no windowing, no lower_bound seek, no pruning and no lazy
// finalization — exactly the machinery the Ledger optimizes, so any
// disagreement between the two convicts the optimization (or the model).
// Correctness of this class is meant to be evident by inspection.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/transmission.h"
#include "sim/engine.h"
#include "trace/invariants.h"
#include "trace/recorder.h"
#include "util/types.h"

namespace asyncmac::verify {

class ReferenceChannel {
 public:
  /// Register a transmission interval. Order does not matter (the
  /// reference never assumes sortedness — one less shared assumption
  /// with the Ledger). The stored `admission`/`decided`/`successful`
  /// flags of `t` are ignored: the reference re-derives everything.
  void add(const channel::Transmission& t) {
    txs_.push_back(t);
    cached_ = false;
    admissions_valid_ = false;
  }

  /// Run the channel k-restrained (arXiv 1808.02216): at most k
  /// transmissions admitted on air at once; excess ones are jammed
  /// (spec.jam) or rejected outright. k == 0 means unrestrained.
  void set_restrained(channel::RestrainedSpec spec) {
    restrained_ = spec;
    cached_ = false;
    admissions_valid_ = false;
  }
  const channel::RestrainedSpec& restrained() const noexcept {
    return restrained_;
  }

  /// Admission verdict for transmission i, re-derived naively: replay
  /// all adds in (begin, station) order — the engines' event order —
  /// counting, for each, the earlier non-rejected transmissions still on
  /// air at its begin. O(T^2), no heap, no laziness.
  channel::Admission admission(std::size_t i) const;

  /// A transmission is successful iff it was admitted and no other
  /// non-rejected transmission overlaps it (Section II; rejected entries
  /// never reached the medium). O(T) scan over everything.
  bool successful(std::size_t i) const;

  /// Success verdict for the transmission occupying [begin, end) of
  /// `station`; the (station, begin, end) triple is unique by the
  /// engine's one-slot-at-a-time guarantee. O(T).
  bool successful(StationId station, Tick begin, Tick end) const;

  /// Exact feedback for a slot [s, t): ack iff a successful transmission
  /// ends in (s, t], else busy iff any transmission overlaps [s, t),
  /// else silence. O(T^2) unless cache_success() was called first.
  Feedback feedback(Tick s, Tick t) const;

  /// Precompute all success flags (O(T^2) once), making subsequent
  /// feedback() calls O(T). Call after the last add().
  void cache_success();

  const std::vector<channel::Transmission>& transmissions() const {
    return txs_;
  }

 private:
  void ensure_admissions() const;

  std::vector<channel::Transmission> txs_;
  channel::RestrainedSpec restrained_;
  std::vector<bool> success_cache_;  ///< valid when cached_
  bool cached_ = false;
  /// Admission verdict per transmission (insertion-indexed), valid when
  /// admissions_valid_. Derived lazily; all kOk when unrestrained.
  mutable std::vector<std::uint8_t> admission_;
  mutable bool admissions_valid_ = false;
};

/// Differential oracle over a recorded trace: rebuild the transmission
/// set, then require three-way agreement on every checkable slot between
/// (a) the feedback the engine recorded, (b) a fresh optimized Ledger
/// replay and (c) the naive reference — convicting either the live
/// engine/ledger interaction or the Ledger's windowed feedback scan.
/// When the run used a k-restrained channel, pass its spec; both replays
/// then also cross-check per-transmission admission verdicts.
trace::CheckResult check_channel_oracle(
    const std::vector<trace::SlotRecord>& slots,
    channel::RestrainedSpec restrained = {});

/// Cross-check the engine's own ledger — live window plus the entries
/// prune_before() archived into full_history() — against the reference:
/// every decided transmission's success flag must match the naive
/// verdict, and archiving must have lost nothing (history + window
/// account for every registered transmission). Requires the engine to
/// have been built with keep_channel_history (build_engine does).
trace::CheckResult check_ledger_history(const sim::Engine& engine);

}  // namespace asyncmac::verify
