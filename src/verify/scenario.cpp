#include "verify/scenario.h"

#include <sstream>

#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "util/check.h"
#include "util/rng.h"

namespace asyncmac::verify {

namespace {

// SplitMix64 finalizer: decorrelates (campaign_seed, index) pairs into
// case seeds. Matches util::Rng's seeding primitive by construction but
// is reproduced here so a case seed is a documented, stable function.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Protocols whose correctness argument assumes globally simultaneous
// feedback. The generator pins them to R = 1 (every named slot policy
// then degenerates to 1-unit slots, i.e. the synchronous channel);
// running them under bounded asynchrony is a *known* failure mode of the
// paper, not a bug for the fuzzer to hunt.
bool requires_synchrony(const std::string& protocol) {
  return protocol == "tree-resolution" || protocol == "sync-binary-le" ||
         protocol == "abs";
}

}  // namespace

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "protocol=" << protocol << " n=" << n << " r=" << bound_r
     << " policy=" << slot_policy << " horizon=" << horizon_units
     << " seed=" << seed << " injector=" << injector.kind
     << "(rho=" << injector.rho.str()
     << " burst=" << injector.burst_ticks / kTicksPerUnit << "u";
  if (injector.kind == "saturating" || injector.kind == "bursty")
    os << " pattern=" << injector.pattern;
  if (injector.kind == "bursty")
    os << " period=" << injector.period_ticks / kTicksPerUnit << "u";
  if (injector.kind == "drain-chasing")
    os << " chase=" << injector.drain_a << "<->" << injector.drain_b;
  os << ")";
  if (restrained_k != 0)
    os << " restrained=" << restrained_k
       << (restrained_jam ? ":jam" : ":reject");
  if (energy_enabled)
    os << " energy=" << energy_cost_transmit << ":" << energy_cost_listen
       << ":" << energy_cost_sleep;
  if (case_seed != 0) os << " case-seed=" << case_seed;
  return os.str();
}

sim::LaneMaterials scenario_materials(const Scenario& s,
                                      std::uint64_t seed_override) {
  AM_REQUIRE(s.n >= 1, "scenario needs at least one station");
  AM_REQUIRE(s.bound_r >= 1, "scenario needs R >= 1");
  AM_REQUIRE(s.horizon_units > 0, "scenario horizon must be positive");
  sim::LaneMaterials m;
  m.cfg.n = s.n;
  m.cfg.bound_r = s.bound_r;
  m.cfg.seed = seed_override != 0 ? seed_override : s.seed;
  m.cfg.record_trace = true;
  // Keep the full transmission history: the differential oracle
  // cross-checks the engine's own pruned-and-archived ledger against a
  // naive reference (this is what exercises prune-with-history).
  m.cfg.keep_channel_history = true;
  m.cfg.restrained = {s.restrained_k, s.restrained_jam};
  m.cfg.energy = {s.energy_enabled, s.energy_cost_transmit,
                  s.energy_cost_listen, s.energy_cost_sleep};
  m.protocols = analysis::make_protocols(s.protocol, s.n);
  m.slot_policy =
      adversary::make_slot_policy(s.slot_policy, s.n, s.bound_r, s.seed);
  m.injection = adversary::make_injector(s.injector);
  return m;
}

std::unique_ptr<sim::Engine> build_engine(const Scenario& s) {
  sim::LaneMaterials m = scenario_materials(s);
  return std::make_unique<sim::Engine>(std::move(m.cfg), std::move(m.protocols),
                                       std::move(m.slot_policy),
                                       std::move(m.injection));
}

std::unique_ptr<sim::Engine> run_scenario(const Scenario& s) {
  auto engine = build_engine(s);
  engine->run(sim::until(s.horizon_units * kTicksPerUnit));
  return engine;
}

const std::vector<std::string>& default_protocol_pool() {
  // Core algorithms + every queue-driven baseline (the SST one-shots —
  // abs, sync-binary-le, listen — expect scripted participation, not a
  // packet workload, so the generator leaves them to their own tests).
  static const std::vector<std::string> kPool = {
      "ao-arrow", "ca-arrow", "adaptive-abs",  "rrw",
      "mbtf",     "aloha",    "beb",           "csma-lbt",
      "silence-tdma", "tree-resolution"};
  return kPool;
}

Scenario scenario_from_seed(std::uint64_t case_seed) {
  return scenario_from_seed(case_seed, default_protocol_pool());
}

Scenario scenario_from_seed(std::uint64_t case_seed,
                            const std::vector<std::string>& pool) {
  AM_REQUIRE(!pool.empty(), "protocol pool must not be empty");
  util::Rng root(case_seed);
  // One split per decision group: adding a draw to one group never shifts
  // the draws of another, so generated corpora stay stable under
  // generator evolution within a group.
  util::Rng proto_rng = root.split();
  util::Rng topo_rng = root.split();
  util::Rng slots_rng = root.split();
  util::Rng inject_rng = root.split();
  util::Rng seed_rng = root.split();
  // Appended after the original five groups: earlier-split generators
  // are unaffected, so pre-channel corpora regenerate identically.
  util::Rng channel_rng = root.split();

  Scenario s;
  s.case_seed = case_seed;
  s.protocol = pool[proto_rng.below(pool.size())];

  s.n = static_cast<std::uint32_t>(topo_rng.range(1, 6));
  s.bound_r = static_cast<std::uint32_t>(topo_rng.range(1, 4));
  s.horizon_units = topo_rng.range(30, 200);
  if (requires_synchrony(s.protocol)) s.bound_r = 1;

  const auto policies = adversary::slot_policy_names();
  s.slot_policy = policies[slots_rng.below(policies.size())];

  s.seed = seed_rng.next();
  if (s.seed == 0) s.seed = 1;

  adversary::InjectorSpec& inj = s.injector;
  const std::uint64_t kind_draw = inject_rng.below(100);
  if (kind_draw < 50) {
    inj.kind = "saturating";
  } else if (kind_draw < 70) {
    inj.kind = "bursty";
  } else if (kind_draw < 85 || s.n < 2) {
    inj.kind = "maxqueue";
  } else {
    inj.kind = "drain-chasing";
  }
  inj.rho = util::Ratio(inject_rng.range(5, 100), 100);
  inj.burst_ticks = inject_rng.range(1, 32) * kTicksPerUnit;
  static const char* kPatterns[] = {"roundrobin", "single", "random"};
  inj.pattern = kPatterns[inject_rng.below(3)];
  inj.single_target = static_cast<StationId>(inject_rng.range(1, s.n));
  inj.period_ticks = inject_rng.range(4, 64) * kTicksPerUnit;
  if (s.n >= 2) {
    inj.drain_a = static_cast<StationId>(inject_rng.range(1, s.n - 1));
    inj.drain_b = static_cast<StationId>(
        inj.drain_a + inject_rng.range(1, s.n - inj.drain_a));
  }
  inj.seed = inject_rng.next();
  // Gap stressor: reshape some bursty injectors into rare, widely-spaced
  // bursts (long silent gaps at a low refill rate). This is the workload
  // that exercises the engine's injection skip-ahead — thousands of slot
  // ends between polls — so the fuzzer's differential oracle covers it.
  // Appended at the end of the inject group: the splittable RNG keeps all
  // earlier draws (and every other group) unperturbed.
  if (inj.kind == "bursty" && inject_rng.below(100) < 40) {
    inj.period_ticks =
        static_cast<Tick>(inject_rng.range(200, 1000)) * kTicksPerUnit;
    inj.rho = util::Ratio(inject_rng.range(1, 10), 100);
  }
  // Channel-variant group: a minority of cases run on the k-restrained
  // channel (both jam and reject semantics) and/or with energy metering
  // on, so the campaign's differential oracles sweep those code paths.
  // Energy is observation-only, so enabling it must never change a
  // verdict — the fuzzer doubles as a regression guard for that.
  if (channel_rng.below(100) < 30) {
    s.restrained_k = static_cast<std::uint32_t>(channel_rng.range(1, s.n));
    s.restrained_jam = channel_rng.below(2) == 0;
  }
  if (channel_rng.below(100) < 30) {
    s.energy_enabled = true;
    s.energy_cost_transmit =
        static_cast<std::uint64_t>(channel_rng.range(1, 8));
    s.energy_cost_listen = static_cast<std::uint64_t>(channel_rng.range(0, 4));
    s.energy_cost_sleep = static_cast<std::uint64_t>(channel_rng.range(0, 2));
  }
  return s;
}

ScenarioGen::ScenarioGen(std::uint64_t campaign_seed,
                         std::vector<std::string> pool)
    : campaign_seed_(campaign_seed), pool_(std::move(pool)) {
  if (pool_.empty()) pool_ = default_protocol_pool();
}

std::uint64_t ScenarioGen::case_seed(std::uint64_t index) const {
  std::uint64_t seed = mix64(mix64(campaign_seed_) ^ index);
  if (seed == 0) seed = 1;  // 0 is the "handwritten scenario" sentinel
  return seed;
}

Scenario ScenarioGen::generate(std::uint64_t index) const {
  return scenario_from_seed(case_seed(index), pool_);
}

}  // namespace asyncmac::verify
