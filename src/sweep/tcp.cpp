#include "sweep/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

namespace asyncmac::sweep {

namespace {

[[noreturn]] void die(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    die("fcntl(O_NONBLOCK)");
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Blocking full write (worker side; coordinator uses buffered writes).
bool send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr)
    throw std::runtime_error("cannot resolve host: " + host);
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

}  // namespace

ServeOutcome serve(const ServeOptions& opt) {
  Coordinator coord(opt.coord);

  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) die("socket");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(opt.bind_host, opt.port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listener);
    die("bind");
  }
  if (::listen(listener, 16) < 0) {
    ::close(listener);
    die("listen");
  }
  set_nonblocking(listener);
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &blen);
  if (opt.on_listening) opt.on_listening(ntohs(bound.sin_port));

  struct ConnIo {
    int fd = -1;
    std::vector<std::uint8_t> outbuf;  ///< unsent bytes (short-write tail)
  };
  std::map<std::uint64_t, ConnIo> conns;  // conn id -> socket state
  std::uint64_t next_conn = 1;
  const std::uint64_t t0 = steady_ms();
  std::uint64_t last_tick = 0;

  auto apply = [&](std::vector<Action> actions) {
    for (auto& a : actions) {
      auto it = conns.find(a.conn);
      if (it == conns.end()) continue;
      if (a.kind == Action::Kind::kSend) {
        it->second.outbuf.insert(it->second.outbuf.end(), a.frame.begin(),
                                 a.frame.end());
      } else {
        ::close(it->second.fd);
        conns.erase(it);
      }
    }
  };
  auto drop = [&](std::uint64_t conn, std::uint64_t now) {
    auto it = conns.find(conn);
    if (it == conns.end()) return;
    ::close(it->second.fd);
    conns.erase(it);
    apply(coord.on_eof(conn, now));
  };

  // Once the job completes the loop does NOT slam connections shut:
  // closing a socket with unread bytes in flight (a heartbeat racing the
  // final Shutdown) sends RST and can discard the queued Shutdown on the
  // worker side. Instead the listener closes, every connection gets its
  // Shutdown, and the loop keeps serving until each peer drains it and
  // closes (EOF) — bounded by a grace deadline for dead peers.
  constexpr std::uint64_t kDrainGraceMs = 3000;
  bool closing = false;
  std::uint64_t close_deadline = 0;

  std::uint8_t buf[65536];
  for (;;) {
    const std::uint64_t now = steady_ms() - t0;
    if (coord.done()) {
      if (!closing) {
        closing = true;
        close_deadline = now + kDrainGraceMs;
        ::close(listener);
        listener = -1;
      }
      if (conns.empty() || now >= close_deadline) break;
    }
    if (now - last_tick >= opt.tick_ms) {
      last_tick = now;
      apply(coord.on_tick(now));
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    if (listener >= 0) {
      fds.push_back({listener, POLLIN, 0});
      ids.push_back(0);
    }
    for (auto& [id, io] : conns) {
      short events = POLLIN;
      if (!io.outbuf.empty()) events |= POLLOUT;
      fds.push_back({io.fd, events, 0});
      ids.push_back(id);
    }
    const int timeout = static_cast<int>(opt.tick_ms);
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      die("poll");
    }

    const std::uint64_t now2 = steady_ms() - t0;
    std::size_t first_conn = 0;
    if (listener >= 0) {
      first_conn = 1;
      if (fds[0].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept(listener, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          const std::uint64_t id = next_conn++;
          conns[id] = ConnIo{fd, {}};
          apply(coord.on_connect(id, now2));
        }
      }
    }
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      const std::uint64_t id = ids[i];
      auto it = conns.find(id);
      if (it == conns.end()) continue;  // closed earlier this round
      if (fds[i].revents & POLLOUT) {
        auto& out = it->second.outbuf;
        const ssize_t w =
            ::send(it->second.fd, out.data(), out.size(), MSG_NOSIGNAL);
        if (w > 0)
          out.erase(out.begin(), out.begin() + w);
        else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
          drop(id, now2);
          continue;
        }
      }
      if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        for (;;) {
          const ssize_t n = ::recv(it->second.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            apply(coord.on_bytes(id, buf, static_cast<std::size_t>(n), now2));
            it = conns.find(id);  // on_bytes may have closed the conn
            if (it == conns.end()) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          drop(id, now2);  // n == 0 (peer EOF) or a hard error
          break;
        }
      }
    }
  }

  for (auto& [id, io] : conns) ::close(io.fd);
  if (listener >= 0) ::close(listener);

  ServeOutcome out;
  out.records = coord.grid_records();
  out.verdicts = coord.fuzz_verdicts();
  return out;
}

int run_worker(const WorkerOptions& opt) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) die("socket");
  sockaddr_in addr = resolve(opt.host, opt.port);
  addr.sin_port = htons(opt.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "worker: connect %s:%u failed: %s\n",
                 opt.host.c_str(), static_cast<unsigned>(opt.port),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  WorkerSession::Config cfg;
  cfg.name = opt.name;
  WorkerSession session(cfg);
  const std::uint64_t t0 = steady_ms();

  auto flush = [&](std::vector<std::vector<std::uint8_t>> frames) {
    for (const auto& f : frames)
      if (!send_all(fd, f.data(), f.size())) {
        session.on_eof();
        return;
      }
  };
  flush(session.start(0));

  std::uint8_t buf[65536];
  while (!session.finished() && !session.failed()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      session.on_eof();
      break;
    }
    const std::uint64_t now = steady_ms() - t0;
    if (ready > 0 && (pfd.revents & (POLLIN | POLLERR | POLLHUP))) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        flush(session.on_bytes(buf, static_cast<std::size_t>(n), now));
      } else if (!(n < 0 && (errno == EINTR || errno == EAGAIN ||
                             errno == EWOULDBLOCK))) {
        session.on_eof();
        break;
      }
    }
    if (!session.finished() && !session.failed())
      flush(session.on_tick(steady_ms() - t0));
  }
  ::close(fd);
  if (session.finished()) return 0;
  std::fprintf(stderr, "worker: %s\n",
               session.error().empty() ? "failed" : session.error().c_str());
  return 1;
}

}  // namespace asyncmac::sweep
