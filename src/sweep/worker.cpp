#include "sweep/worker.h"

#include <exception>
#include <utility>

#include "verify/campaign.h"
#include "verify/scenario.h"

namespace asyncmac::sweep {

namespace {

using snapshot::SnapshotError;

}  // namespace

WorkerSession::WorkerSession() : WorkerSession(Config{}) {}

WorkerSession::WorkerSession(Config cfg)
    : WorkerSession(std::move(cfg), default_executor()) {}

WorkerSession::WorkerSession(Config cfg, Executor exec)
    : cfg_(std::move(cfg)), exec_(std::move(exec)) {}

WorkerSession::Executor WorkerSession::default_executor() {
  return [](const Context& ctx, const AssignMsg& a) {
    if (ctx.job->kind == JobKind::kGrid) {
      std::vector<std::size_t> todo;
      todo.reserve(static_cast<std::size_t>(a.count));
      for (std::uint64_t i = 0; i < a.count; ++i)
        todo.push_back(static_cast<std::size_t>(a.first + i));
      return encode_grid_result(
          analysis::run_grid_cells(ctx.job->grid, *ctx.plan, todo));
    }
    // Fuzz unit: per-case verdicts, exactly as verify::run_campaign
    // computes them (same generator, same run_case — byte-identical).
    verify::ScenarioGen gen(ctx.job->fuzz.seed, ctx.job->fuzz.protocols);
    std::vector<verify::CaseVerdict> verdicts;
    verdicts.reserve(static_cast<std::size_t>(a.count));
    for (std::uint64_t i = 0; i < a.count; ++i) {
      const std::uint64_t index = a.first + i;
      const verify::Scenario s = gen.generate(index);
      const trace::CheckResult check = verify::run_case(s);
      verify::CaseVerdict v;
      v.index = index;
      v.case_seed = s.case_seed;
      v.ok = check.ok;
      v.violation = check.what;
      verdicts.push_back(std::move(v));
    }
    return encode_fuzz_result(verdicts);
  };
}

std::vector<std::vector<std::uint8_t>> WorkerSession::start(
    std::uint64_t /*now_ms*/) {
  HelloMsg hello;
  hello.worker_name = cfg_.name;
  return {to_frame(hello)};
}

std::vector<std::vector<std::uint8_t>> WorkerSession::on_bytes(
    const std::uint8_t* data, std::size_t n, std::uint64_t now_ms) {
  if (finished_ || failed_) return {};
  std::vector<std::vector<std::uint8_t>> out;
  try {
    decoder_.feed(data, n);
    while (auto f = decoder_.next()) {
      auto frames = handle(decode_message(*f), now_ms);
      out.insert(out.end(), std::make_move_iterator(frames.begin()),
                 std::make_move_iterator(frames.end()));
      if (finished_ || failed_) break;
    }
  } catch (const SnapshotError& e) {
    fail(std::string("wire error: ") + e.what());
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> WorkerSession::on_tick(
    std::uint64_t now_ms) {
  if (finished_ || failed_ || !welcomed()) return {};
  std::vector<std::vector<std::uint8_t>> out;
  if (now_ms >= next_heartbeat_ms_) {
    HeartbeatMsg hb;
    hb.worker_id = worker_id_;
    out.push_back(to_frame(hb));
    next_heartbeat_ms_ = now_ms + heartbeat_ms_;
  }
  if (retry_at_ms_ != 0 && now_ms >= retry_at_ms_) {
    retry_at_ms_ = 0;
    RequestWorkMsg req;
    req.worker_id = worker_id_;
    out.push_back(to_frame(req));
  }
  return out;
}

void WorkerSession::on_eof() {
  if (!finished_) fail("coordinator closed the connection");
}

std::vector<std::vector<std::uint8_t>> WorkerSession::handle(
    const Message& msg, std::uint64_t now_ms) {
  std::vector<std::vector<std::uint8_t>> out;
  if (const auto* welcome = std::get_if<WelcomeMsg>(&msg)) {
    if (welcomed()) {
      fail("duplicate welcome");
      return out;
    }
    worker_id_ = welcome->worker_id;
    heartbeat_ms_ = welcome->heartbeat_ms == 0 ? 1000 : welcome->heartbeat_ms;
    job_ = welcome->job;
    fingerprint_ = job_fingerprint(job_);
    if (job_.kind == JobKind::kGrid) plan_ = analysis::plan_grid(job_.grid);
    next_heartbeat_ms_ = now_ms + heartbeat_ms_;
    RequestWorkMsg req;
    req.worker_id = worker_id_;
    out.push_back(to_frame(req));
    return out;
  }
  // Shutdown is honored even before Welcome: a worker that joins a
  // sweep already complete is dismissed with a single frame.
  if (std::get_if<ShutdownMsg>(&msg)) {
    finished_ = true;
    return out;
  }
  if (!welcomed()) {
    fail("message before welcome");
    return out;
  }
  if (const auto* assign = std::get_if<AssignMsg>(&msg)) {
    // Cross-check the unit identity against the locally reconstructed
    // job — a coordinator/worker fingerprint disagreement means the two
    // sides are not looking at the same sweep.
    if (assign->unit_id != work_unit_id(fingerprint_, assign->unit_index)) {
      fail("assignment unit id does not match the job");
      return out;
    }
    Context ctx;
    ctx.job = &job_;
    ctx.plan = job_.kind == JobKind::kGrid ? &plan_ : nullptr;
    ResultMsg res;
    res.worker_id = worker_id_;
    res.lease_id = assign->lease_id;
    res.unit_index = assign->unit_index;
    res.unit_id = assign->unit_id;
    try {
      res.payload = exec_(ctx, *assign);
    } catch (const std::exception& e) {
      fail(std::string("executor failed: ") + e.what());
      return out;
    }
    out.push_back(to_frame(res));
    return out;
  }
  if (std::get_if<ResultAckMsg>(&msg)) {
    ++units_completed_;
    RequestWorkMsg req;
    req.worker_id = worker_id_;
    out.push_back(to_frame(req));
    return out;
  }
  if (const auto* nowork = std::get_if<NoWorkMsg>(&msg)) {
    const std::uint64_t retry = nowork->retry_ms == 0 ? 1 : nowork->retry_ms;
    retry_at_ms_ = now_ms + retry;
    return out;
  }
  fail("unexpected message type from coordinator");
  return out;
}

void WorkerSession::fail(const std::string& what) {
  failed_ = true;
  if (error_.empty()) error_ = what;
}

}  // namespace asyncmac::sweep
