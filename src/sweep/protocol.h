// asyncmac/sweep/protocol.h
//
// Message payloads of the distributed-sweep protocol (framing in
// sweep/wire.h, semantics in docs/DISTRIBUTED.md). The conversation:
//
//   worker                         coordinator
//   Hello{name}            ->
//                          <-      Welcome{worker_id, timings, job}
//   RequestWork{id}        ->
//                          <-      Assign{lease, unit}  |  NoWork  |  Shutdown
//   (compute unit ...)
//   Result{lease, unit,
//          payload}        ->
//                          <-      ResultAck{unit, duplicate?}
//   RequestWork{id}        ->      ...
//   Heartbeat{id}          ->      (any time; refreshes lease deadlines)
//
// A job is either an experiment grid (analysis::ExperimentSpec — the
// sweep dimensions only, never execution knobs) or a fuzz campaign
// (seed / cases / chunk / protocol pool). Work units are identified by a
// splittable 64-bit id derived from the job fingerprint and the unit
// index (the verify::ScenarioGen idiom), so coordinator and worker agree
// on unit identity without shared state and duplicate or late results
// deduplicate idempotently.
//
// All payloads use the snapshot::Writer/Reader encoding; every decoder
// finishes with expect_end() and surfaces malformed input as typed
// snapshot::SnapshotError — never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "analysis/experiment.h"
#include "sweep/wire.h"
#include "verify/campaign.h"

namespace asyncmac::sweep {

// ----------------------------------------------------------------- jobs

enum class JobKind : std::uint8_t {
  kGrid = 1,  ///< analysis experiment grid (cells = units' atoms)
  kFuzz = 2,  ///< verify fuzz campaign (case-index chunks)
};

/// Fuzz-campaign job parameters: the deterministic subset of
/// verify::CampaignConfig a remote worker needs (per-case verdicts are a
/// pure function of these; shrinking stays coordinator-local).
struct FuzzJob {
  std::uint64_t seed = 1;
  std::uint64_t cases = 0;
  std::uint64_t chunk = 64;  ///< cases per work unit
  std::vector<std::string> protocols;  ///< empty = default pool

  bool operator==(const FuzzJob&) const = default;
};

struct SweepJob {
  JobKind kind = JobKind::kGrid;
  analysis::ExperimentSpec grid;  ///< meaningful when kind == kGrid
  FuzzJob fuzz;                   ///< meaningful when kind == kFuzz
};

/// CRC over the job-defining dimensions (grid_fingerprint for grids; the
/// seed/cases/chunk/pool tuple for fuzz jobs).
std::uint32_t job_fingerprint(const SweepJob& job);

/// Splittable work-unit identity: a SplitMix64 mix of (fingerprint,
/// index), mirroring verify::ScenarioGen::case_seed — documented, stable,
/// and reconstructible by any party from the job alone.
std::uint64_t work_unit_id(std::uint32_t fingerprint, std::uint64_t index);

// ------------------------------------------------------------- messages

struct HelloMsg {
  std::string worker_name;
};

struct WelcomeMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t heartbeat_ms = 1000;      ///< requested heartbeat cadence
  std::uint64_t lease_timeout_ms = 10000; ///< coordinator's lease patience
  SweepJob job;
};

struct RequestWorkMsg {
  std::uint32_t worker_id = 0;
};

struct AssignMsg {
  std::uint64_t lease_id = 0;    ///< unique per grant (monotone)
  std::uint64_t unit_index = 0;  ///< index into the job's unit list
  std::uint64_t unit_id = 0;     ///< work_unit_id(fingerprint, unit_index)
  std::uint64_t first = 0;       ///< first cell / case index
  std::uint64_t count = 0;       ///< cells / cases in the unit
};

struct ResultMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t lease_id = 0;
  std::uint64_t unit_index = 0;
  std::uint64_t unit_id = 0;
  std::vector<std::uint8_t> payload;  ///< encode_grid_result / encode_fuzz_result
};

struct ResultAckMsg {
  std::uint64_t unit_index = 0;
  bool duplicate = false;  ///< true when the unit was already merged
};

struct HeartbeatMsg {
  std::uint32_t worker_id = 0;
};

struct NoWorkMsg {
  std::uint64_t retry_ms = 100;  ///< everything leased; ask again later
};

struct ShutdownMsg {
  std::string reason;  ///< "complete", or an error description
};

using Message =
    std::variant<HelloMsg, WelcomeMsg, RequestWorkMsg, AssignMsg, ResultMsg,
                 ResultAckMsg, HeartbeatMsg, NoWorkMsg, ShutdownMsg>;

/// Full frame bytes (header + payload) for each message type.
std::vector<std::uint8_t> to_frame(const HelloMsg& m);
std::vector<std::uint8_t> to_frame(const WelcomeMsg& m);
std::vector<std::uint8_t> to_frame(const RequestWorkMsg& m);
std::vector<std::uint8_t> to_frame(const AssignMsg& m);
std::vector<std::uint8_t> to_frame(const ResultMsg& m);
std::vector<std::uint8_t> to_frame(const ResultAckMsg& m);
std::vector<std::uint8_t> to_frame(const HeartbeatMsg& m);
std::vector<std::uint8_t> to_frame(const NoWorkMsg& m);
std::vector<std::uint8_t> to_frame(const ShutdownMsg& m);

/// Decode a validated frame into its message. Throws a typed
/// SnapshotError (kTruncated / kCorrupt) on malformed payloads.
Message decode_message(const Frame& frame);

// -------------------------------------------------------- result payloads

std::vector<std::uint8_t> encode_grid_result(
    const std::vector<analysis::ExperimentRecord>& records);
std::vector<analysis::ExperimentRecord> decode_grid_result(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_fuzz_result(
    const std::vector<verify::CaseVerdict>& verdicts);
std::vector<verify::CaseVerdict> decode_fuzz_result(
    const std::vector<std::uint8_t>& payload);

}  // namespace asyncmac::sweep
