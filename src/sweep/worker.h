// asyncmac/sweep/worker.h
//
// The worker side of the distributed sweep: a sans-IO session that joins
// a coordinator (Hello/Welcome), pulls leased work units, computes them
// with the same deterministic engines a single-process run uses, and
// streams results back. Like sweep/coordinator.h it owns no sockets or
// clocks — a transport feeds bytes and now_ms in and sends the returned
// frames out, so the full worker protocol (including heartbeat pacing
// and NoWork backoff) is unit-testable on the loopback harness.
//
// Workers are stateless beyond the session: the Welcome message carries
// the whole job description, so `asyncmac_cli worker` needs only a
// host:port to participate. Unit payloads are computed by an Executor —
// the default one runs analysis::run_grid_cells / verify::run_case; tests
// substitute executors that stall, lie, or die to exercise the
// coordinator's failure paths.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/grid.h"
#include "sweep/protocol.h"

namespace asyncmac::sweep {

class WorkerSession {
 public:
  struct Config {
    std::string name = "worker";
  };

  /// Everything an executor may need: the job (from Welcome) and, for
  /// grid jobs, the locally reconstructed plan (identical on every
  /// worker — plan_grid is a pure function of the spec).
  struct Context {
    const SweepJob* job = nullptr;
    const analysis::GridPlan* plan = nullptr;  ///< null for fuzz jobs
  };

  /// Computes the Result payload for an assignment. Throwing marks the
  /// session failed(); the transport should then drop the connection
  /// (the coordinator reassigns the lease).
  using Executor =
      std::function<std::vector<std::uint8_t>(const Context&, const AssignMsg&)>;

  /// Default-executor construction: real engine runs.
  WorkerSession();
  explicit WorkerSession(Config cfg);
  WorkerSession(Config cfg, Executor exec);

  /// The executor a production worker runs: grid units via
  /// analysis::run_grid_cells, fuzz units via verify::run_case.
  static Executor default_executor();

  // -- transport events ---------------------------------------------------
  /// Begin the session: returns the Hello frame to send.
  std::vector<std::vector<std::uint8_t>> start(std::uint64_t now_ms);
  /// Bytes arrived from the coordinator; returns frames to send back.
  std::vector<std::vector<std::uint8_t>> on_bytes(const std::uint8_t* data,
                                                  std::size_t n,
                                                  std::uint64_t now_ms);
  /// Periodic: emits heartbeats and retries after NoWork backoff.
  std::vector<std::vector<std::uint8_t>> on_tick(std::uint64_t now_ms);
  /// Coordinator closed the stream.
  void on_eof();

  // -- state --------------------------------------------------------------
  bool welcomed() const noexcept { return worker_id_ != 0; }
  /// Clean exit: the coordinator sent Shutdown.
  bool finished() const noexcept { return finished_; }
  /// Protocol violation, malformed bytes, or executor failure.
  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }
  std::uint32_t worker_id() const noexcept { return worker_id_; }
  /// Units acked by the coordinator (duplicates included).
  std::uint64_t units_completed() const noexcept { return units_completed_; }
  const SweepJob& job() const noexcept { return job_; }

 private:
  std::vector<std::vector<std::uint8_t>> handle(const Message& msg,
                                                std::uint64_t now_ms);
  void fail(const std::string& what);

  Config cfg_;
  Executor exec_;
  FrameDecoder decoder_;

  SweepJob job_;
  analysis::GridPlan plan_;  ///< built on Welcome for grid jobs
  std::uint32_t fingerprint_ = 0;

  std::uint32_t worker_id_ = 0;
  std::uint64_t heartbeat_ms_ = 1000;
  std::uint64_t next_heartbeat_ms_ = 0;
  std::uint64_t retry_at_ms_ = 0;  ///< 0 = no NoWork backoff pending
  std::uint64_t units_completed_ = 0;
  bool finished_ = false;
  bool failed_ = false;
  std::string error_;
};

}  // namespace asyncmac::sweep
