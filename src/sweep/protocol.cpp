#include "sweep/protocol.h"

#include "analysis/grid.h"
#include "util/check.h"

namespace asyncmac::sweep {

namespace {

using snapshot::ErrorKind;
using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

/// SplitMix64 finalizer — the verify::ScenarioGen idiom, reproduced here
/// so a unit id is a documented, stable function of (fingerprint, index).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Guard for list lengths inside payloads: a frame already caps the
/// total payload at kMaxFramePayload, so any declared element count that
/// could not possibly fit is corruption, not a big message.
void check_count(std::uint64_t count, std::uint64_t min_element_bytes) {
  if (min_element_bytes != 0 &&
      count > kMaxFramePayload / min_element_bytes)
    throw SnapshotError(ErrorKind::kCorrupt,
                        "declared element count cannot fit in a frame");
}

void save_string_list(Writer& w, const std::vector<std::string>& v) {
  w.u64(v.size());
  for (const auto& s : v) w.str(s);
}

std::vector<std::string> load_string_list(Reader& r) {
  const std::uint64_t count = r.u64();
  check_count(count, 8);  // each string carries at least its u64 length
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(r.str());
  return v;
}

/// The sweep-defining dimensions of an ExperimentSpec — exactly the
/// fields grid_fingerprint covers. Execution knobs (jobs, cohort,
/// checkpoint_dir) never cross the wire: they are per-process choices.
void save_grid_spec(Writer& w, const analysis::ExperimentSpec& spec) {
  save_string_list(w, spec.protocols);
  w.u64(spec.station_counts.size());
  for (std::uint32_t n : spec.station_counts) w.u32(n);
  w.u64(spec.bounds_r.size());
  for (std::uint32_t r : spec.bounds_r) w.u32(r);
  w.u64(spec.rho_percents.size());
  for (int rho : spec.rho_percents) w.i64(rho);
  save_string_list(w, spec.slot_policies);
  w.i64(spec.burst_units);
  w.i64(spec.horizon_units);
  w.u64(spec.seed);
  w.i64(spec.seeds);
  w.u32(spec.restrained_k);
  w.boolean(spec.restrained_jam);
  w.boolean(spec.energy_enabled);
  w.u64(spec.energy_cost_transmit);
  w.u64(spec.energy_cost_listen);
  w.u64(spec.energy_cost_sleep);
}

analysis::ExperimentSpec load_grid_spec(Reader& r) {
  analysis::ExperimentSpec spec;
  spec.protocols = load_string_list(r);
  std::uint64_t count = r.u64();
  check_count(count, 4);
  spec.station_counts.clear();
  for (std::uint64_t i = 0; i < count; ++i)
    spec.station_counts.push_back(r.u32());
  count = r.u64();
  check_count(count, 4);
  spec.bounds_r.clear();
  for (std::uint64_t i = 0; i < count; ++i) spec.bounds_r.push_back(r.u32());
  count = r.u64();
  check_count(count, 8);
  spec.rho_percents.clear();
  for (std::uint64_t i = 0; i < count; ++i)
    spec.rho_percents.push_back(static_cast<int>(r.i64()));
  spec.slot_policies = load_string_list(r);
  spec.burst_units = r.i64();
  spec.horizon_units = r.i64();
  spec.seed = r.u64();
  spec.seeds = static_cast<int>(r.i64());
  spec.restrained_k = r.u32();
  spec.restrained_jam = r.boolean();
  spec.energy_enabled = r.boolean();
  spec.energy_cost_transmit = r.u64();
  spec.energy_cost_listen = r.u64();
  spec.energy_cost_sleep = r.u64();
  return spec;
}

void save_job(Writer& w, const SweepJob& job) {
  w.u8(static_cast<std::uint8_t>(job.kind));
  if (job.kind == JobKind::kGrid) {
    save_grid_spec(w, job.grid);
  } else {
    w.u64(job.fuzz.seed);
    w.u64(job.fuzz.cases);
    w.u64(job.fuzz.chunk);
    save_string_list(w, job.fuzz.protocols);
  }
}

SweepJob load_job(Reader& r) {
  SweepJob job;
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(JobKind::kGrid) &&
      kind != static_cast<std::uint8_t>(JobKind::kFuzz))
    throw SnapshotError(ErrorKind::kCorrupt, "unknown sweep job kind");
  job.kind = static_cast<JobKind>(kind);
  if (job.kind == JobKind::kGrid) {
    job.grid = load_grid_spec(r);
  } else {
    job.fuzz.seed = r.u64();
    job.fuzz.cases = r.u64();
    job.fuzz.chunk = r.u64();
    if (job.fuzz.chunk == 0)
      throw SnapshotError(ErrorKind::kCorrupt, "fuzz chunk must be nonzero");
    job.fuzz.protocols = load_string_list(r);
  }
  return job;
}

std::vector<std::uint8_t> frame(MsgType type, Writer&& w) {
  return encode_frame(type, w.buffer());
}

}  // namespace

std::uint32_t job_fingerprint(const SweepJob& job) {
  if (job.kind == JobKind::kGrid) return analysis::grid_fingerprint(job.grid);
  Writer w;
  w.u8(static_cast<std::uint8_t>(job.kind));
  w.u64(job.fuzz.seed);
  w.u64(job.fuzz.cases);
  w.u64(job.fuzz.chunk);
  for (const auto& p : job.fuzz.protocols) w.str(p);
  return snapshot::crc32(w.buffer().data(), w.buffer().size());
}

std::uint64_t work_unit_id(std::uint32_t fingerprint, std::uint64_t index) {
  std::uint64_t id = mix64(mix64(fingerprint) ^ index);
  if (id == 0) id = 1;  // reserve 0 as "no unit"
  return id;
}

std::vector<std::uint8_t> to_frame(const HelloMsg& m) {
  Writer w;
  w.str(m.worker_name);
  return frame(MsgType::kHello, std::move(w));
}

std::vector<std::uint8_t> to_frame(const WelcomeMsg& m) {
  Writer w;
  w.u32(m.worker_id);
  w.u64(m.heartbeat_ms);
  w.u64(m.lease_timeout_ms);
  save_job(w, m.job);
  return frame(MsgType::kWelcome, std::move(w));
}

std::vector<std::uint8_t> to_frame(const RequestWorkMsg& m) {
  Writer w;
  w.u32(m.worker_id);
  return frame(MsgType::kRequestWork, std::move(w));
}

std::vector<std::uint8_t> to_frame(const AssignMsg& m) {
  Writer w;
  w.u64(m.lease_id);
  w.u64(m.unit_index);
  w.u64(m.unit_id);
  w.u64(m.first);
  w.u64(m.count);
  return frame(MsgType::kAssign, std::move(w));
}

std::vector<std::uint8_t> to_frame(const ResultMsg& m) {
  Writer w;
  w.u32(m.worker_id);
  w.u64(m.lease_id);
  w.u64(m.unit_index);
  w.u64(m.unit_id);
  w.u64(m.payload.size());
  w.bytes(m.payload.data(), m.payload.size());
  return frame(MsgType::kResult, std::move(w));
}

std::vector<std::uint8_t> to_frame(const ResultAckMsg& m) {
  Writer w;
  w.u64(m.unit_index);
  w.boolean(m.duplicate);
  return frame(MsgType::kResultAck, std::move(w));
}

std::vector<std::uint8_t> to_frame(const HeartbeatMsg& m) {
  Writer w;
  w.u32(m.worker_id);
  return frame(MsgType::kHeartbeat, std::move(w));
}

std::vector<std::uint8_t> to_frame(const NoWorkMsg& m) {
  Writer w;
  w.u64(m.retry_ms);
  return frame(MsgType::kNoWork, std::move(w));
}

std::vector<std::uint8_t> to_frame(const ShutdownMsg& m) {
  Writer w;
  w.str(m.reason);
  return frame(MsgType::kShutdown, std::move(w));
}

Message decode_message(const Frame& f) {
  Reader r(f.payload);
  Message out;
  switch (f.type) {
    case MsgType::kHello: {
      HelloMsg m;
      m.worker_name = r.str();
      out = std::move(m);
      break;
    }
    case MsgType::kWelcome: {
      WelcomeMsg m;
      m.worker_id = r.u32();
      m.heartbeat_ms = r.u64();
      m.lease_timeout_ms = r.u64();
      m.job = load_job(r);
      out = std::move(m);
      break;
    }
    case MsgType::kRequestWork: {
      RequestWorkMsg m;
      m.worker_id = r.u32();
      out = m;
      break;
    }
    case MsgType::kAssign: {
      AssignMsg m;
      m.lease_id = r.u64();
      m.unit_index = r.u64();
      m.unit_id = r.u64();
      m.first = r.u64();
      m.count = r.u64();
      out = m;
      break;
    }
    case MsgType::kResult: {
      ResultMsg m;
      m.worker_id = r.u32();
      m.lease_id = r.u64();
      m.unit_index = r.u64();
      m.unit_id = r.u64();
      const std::uint64_t len = r.u64();
      if (len > kMaxFramePayload)
        throw SnapshotError(ErrorKind::kCorrupt,
                            "result payload length is oversized");
      m.payload.resize(static_cast<std::size_t>(len));
      r.bytes(m.payload.data(), m.payload.size());
      out = std::move(m);
      break;
    }
    case MsgType::kResultAck: {
      ResultAckMsg m;
      m.unit_index = r.u64();
      m.duplicate = r.boolean();
      out = m;
      break;
    }
    case MsgType::kHeartbeat: {
      HeartbeatMsg m;
      m.worker_id = r.u32();
      out = m;
      break;
    }
    case MsgType::kNoWork: {
      NoWorkMsg m;
      m.retry_ms = r.u64();
      out = m;
      break;
    }
    case MsgType::kShutdown: {
      ShutdownMsg m;
      m.reason = r.str();
      out = std::move(m);
      break;
    }
  }
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode_grid_result(
    const std::vector<analysis::ExperimentRecord>& records) {
  Writer w;
  w.u64(records.size());
  for (const auto& rec : records) analysis::save_record(w, rec);
  return w.take();
}

std::vector<analysis::ExperimentRecord> decode_grid_result(
    const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::uint64_t count = r.u64();
  check_count(count, 32);  // a record is far larger than 32 bytes
  std::vector<analysis::ExperimentRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    records.push_back(analysis::load_record(r));
  r.expect_end();
  return records;
}

std::vector<std::uint8_t> encode_fuzz_result(
    const std::vector<verify::CaseVerdict>& verdicts) {
  Writer w;
  w.u64(verdicts.size());
  for (const auto& v : verdicts) {
    w.u64(v.index);
    w.u64(v.case_seed);
    w.boolean(v.ok);
    w.str(v.violation);
  }
  return w.take();
}

std::vector<verify::CaseVerdict> decode_fuzz_result(
    const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::uint64_t count = r.u64();
  check_count(count, 18);
  std::vector<verify::CaseVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    verify::CaseVerdict v;
    v.index = r.u64();
    v.case_seed = r.u64();
    v.ok = r.boolean();
    v.violation = r.str();
    verdicts.push_back(std::move(v));
  }
  r.expect_end();
  return verdicts;
}

}  // namespace asyncmac::sweep
