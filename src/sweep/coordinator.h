// asyncmac/sweep/coordinator.h
//
// The sweep coordinator: leases work units to workers, reassigns leases
// whose holders stop heartbeating (or disconnect), deduplicates late and
// duplicate results idempotently, and merges records into the same
// grid-manifest.snap a single-process analysis::run_grid would write —
// so a distributed sweep resumes and finishes byte-identical to a local
// one (docs/DISTRIBUTED.md).
//
// The class is sans-IO: it owns no sockets, threads, or clocks. A
// transport (sweep/tcp.h for real sockets, sweep/loopback.h for the
// deterministic fault-injection harness) feeds it connection events,
// raw bytes and a monotonic now_ms, and executes the returned Actions.
// Everything the coordinator does is therefore a pure function of the
// event sequence — which is what makes every failure mode unit-testable
// without real networking or timing flakiness.
//
// Robustness contract: bytes from a worker are untrusted. Malformed
// frames or payloads (typed SnapshotError from the wire layer) sever
// that connection and return its leases to the pending pool; they never
// crash the coordinator or corrupt merged state (pinned by
// tests/test_sweep_fuzz.cpp).
//
// Lease state machine (per work unit):
//
//        assign                     result merged
//   PENDING ------> LEASED --------------------------> DONE
//      ^              |  heartbeat: deadline pushed     ^
//      |              v                                 |
//      +---- lease timeout / worker death          late result from a
//            (sweep.reassigns)                     revoked lease merges
//                                                  too (idempotent; a
//                                                  second copy counts
//                                                  sweep.dup_results)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/grid.h"
#include "sweep/protocol.h"
#include "verify/scenario.h"

namespace asyncmac::sweep {

struct CoordinatorConfig {
  SweepJob job;
  /// A lease not refreshed (by heartbeat, result, or any other frame
  /// from its holder) within this window returns to the pending pool.
  std::uint64_t lease_timeout_ms = 10000;
  /// Heartbeat cadence requested from workers (Welcome).
  std::uint64_t heartbeat_ms = 1000;
  /// Retry hint sent with NoWork when everything is leased.
  std::uint64_t nowork_retry_ms = 100;
  /// Grid jobs: when non-empty, merge into dir/grid-manifest.snap after
  /// every result (resuming an existing manifest on start), exactly as
  /// analysis::run_grid does with ExperimentSpec::checkpoint_dir.
  std::string checkpoint_dir;
};

/// One transport instruction: send a frame to a connection, or close it.
struct Action {
  enum class Kind { kSend, kClose };
  Kind kind = Kind::kSend;
  std::uint64_t conn = 0;
  std::vector<std::uint8_t> frame;  ///< kSend only
};

class Coordinator {
 public:
  /// Builds the unit list (grid: analysis::plan_grid; fuzz: case-index
  /// chunks), loads an existing manifest when checkpointing, and is then
  /// ready for connections. Throws std::invalid_argument on an invalid
  /// job and SnapshotError(kMismatch) on a foreign manifest.
  explicit Coordinator(CoordinatorConfig cfg);

  // -- transport events ---------------------------------------------------
  std::vector<Action> on_connect(std::uint64_t conn, std::uint64_t now_ms);
  std::vector<Action> on_bytes(std::uint64_t conn, const std::uint8_t* data,
                               std::size_t n, std::uint64_t now_ms);
  /// Peer closed its end. A partial frame still buffered means the
  /// stream was severed mid-frame — handled, counted, never fatal.
  std::vector<Action> on_eof(std::uint64_t conn, std::uint64_t now_ms);
  /// Periodic: expires leases. Call at ~heartbeat_ms granularity.
  std::vector<Action> on_tick(std::uint64_t now_ms);

  // -- results ------------------------------------------------------------
  bool done() const noexcept { return units_done_ == units_.size(); }
  std::size_t units_total() const noexcept { return units_.size(); }
  std::size_t units_done() const noexcept { return units_done_; }
  std::uint32_t fingerprint() const noexcept { return fingerprint_; }

  /// Merged grid records (cell order — identical to run_grid's return).
  /// Valid when done() and job.kind == kGrid.
  const std::vector<analysis::ExperimentRecord>& grid_records() const {
    return records_;
  }
  /// Merged fuzz verdicts (case order — identical to run_campaign's).
  const std::vector<verify::CaseVerdict>& fuzz_verdicts() const {
    return verdicts_;
  }

 private:
  enum class UnitState : std::uint8_t { kPending, kLeased, kDone };
  struct Unit {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::uint64_t id = 0;  ///< work_unit_id(fingerprint, index)
    UnitState state = UnitState::kPending;
    std::uint64_t lease_id = 0;
    std::uint64_t holder = 0;       ///< conn of the lease holder
    std::uint64_t deadline_ms = 0;  ///< lease expiry (virtual transport time)
  };
  struct Conn {
    FrameDecoder decoder;
    std::uint32_t worker_id = 0;  ///< 0 until Hello
    bool shutdown_sent = false;
  };

  std::vector<Action> handle(std::uint64_t conn, const Message& msg,
                             std::uint64_t now_ms);
  std::vector<Action> handle_request(std::uint64_t conn,
                                     const RequestWorkMsg& m,
                                     std::uint64_t now_ms);
  std::vector<Action> handle_result(std::uint64_t conn, const ResultMsg& m,
                                    std::uint64_t now_ms);
  bool merge_grid_result(const Unit& unit, const ResultMsg& m);
  bool merge_fuzz_result(const Unit& unit, const ResultMsg& m);
  void refresh_leases(std::uint64_t conn, std::uint64_t now_ms);
  /// Return every lease held by `conn` to the pending pool.
  void revoke_leases(std::uint64_t conn);
  /// Sever a misbehaving connection: revoke + close + forget.
  std::vector<Action> sever(std::uint64_t conn, const char* why);
  std::vector<Action> drop_conn(std::uint64_t conn, bool death);
  /// Broadcast Shutdown once the last unit merges.
  void broadcast_shutdown(std::vector<Action>& out);
  void write_manifest() const;

  CoordinatorConfig cfg_;
  std::uint32_t fingerprint_ = 0;
  analysis::GridPlan plan_;                        // kGrid
  std::vector<analysis::ExperimentRecord> records_;  // kGrid, cell order
  std::vector<std::uint8_t> cell_done_;              // kGrid
  verify::ScenarioGen gen_;                        // kFuzz (seed validation)
  std::vector<verify::CaseVerdict> verdicts_;      // kFuzz, case order

  std::vector<Unit> units_;
  std::size_t units_done_ = 0;
  std::map<std::uint64_t, Conn> conns_;
  std::uint32_t next_worker_id_ = 0;
  std::uint64_t next_lease_id_ = 0;
};

}  // namespace asyncmac::sweep
