#include "sweep/loopback.h"

#include <utility>

namespace asyncmac::sweep {

LoopbackNet::LoopbackNet(Coordinator& coord)
    : LoopbackNet(coord, Options{}) {}

LoopbackNet::LoopbackNet(Coordinator& coord, Options opt)
    : coord_(coord), opt_(opt) {}

std::uint64_t LoopbackNet::attach(WorkerSession& worker) {
  const std::uint64_t conn = next_conn_++;
  Link& link = links_[conn];
  link.worker = &worker;
  apply_actions(coord_.on_connect(conn, now_ms_));
  apply_worker_frames(conn, worker.start(now_ms_));
  return conn;
}

void LoopbackNet::add_fault(std::uint64_t conn, Dir dir,
                            std::uint64_t msg_index, FaultKind kind,
                            std::uint64_t arg) {
  Link& link = links_.at(conn);
  auto& table =
      dir == Dir::kToCoordinator ? link.faults_to_coord : link.faults_to_worker;
  table[msg_index] = Fault{kind, arg};
}

void LoopbackNet::kill_worker(std::uint64_t conn) { sever_link(conn); }

bool LoopbackNet::worker_alive(std::uint64_t conn) const {
  auto it = links_.find(conn);
  return it != links_.end() && it->second.alive;
}

void LoopbackNet::send(std::uint64_t conn, Dir dir,
                       std::vector<std::uint8_t> frame) {
  auto it = links_.find(conn);
  if (it == links_.end() || !it->second.alive) return;
  Link& link = it->second;
  // Frames are numbered at send time, faulted or not, so a script's
  // indices match the logical message sequence of the conversation.
  const std::uint64_t index = dir == Dir::kToCoordinator
                                  ? link.sent_to_coord++
                                  : link.sent_to_worker++;
  auto& table =
      dir == Dir::kToCoordinator ? link.faults_to_coord : link.faults_to_worker;
  auto& queue = dir == Dir::kToCoordinator ? link.to_coord : link.to_worker;

  std::uint64_t due = steps_;
  auto fit = table.find(index);
  if (fit != table.end()) {
    const Fault f = fit->second;
    switch (f.kind) {
      case FaultKind::kDrop:
        return;
      case FaultKind::kSever:
        sever_link(conn);
        return;
      case FaultKind::kDelay:
        due = steps_ + f.arg;
        break;
      case FaultKind::kCorrupt:
        frame[static_cast<std::size_t>(f.arg % frame.size())] ^= 0xFF;
        break;
      case FaultKind::kDuplicate: {
        InFlight dup;
        dup.bytes = frame;
        dup.due_step = due;
        queue.push_back(std::move(dup));
        break;
      }
    }
  }
  InFlight msg;
  msg.bytes = std::move(frame);
  msg.due_step = due;
  queue.push_back(std::move(msg));
}

void LoopbackNet::apply_actions(std::vector<Action> actions) {
  for (auto& a : actions) {
    if (a.kind == Action::Kind::kSend)
      send(a.conn, Dir::kToWorker, std::move(a.frame));
    else
      sever_link(a.conn);
  }
}

void LoopbackNet::apply_worker_frames(
    std::uint64_t conn, std::vector<std::vector<std::uint8_t>> frames) {
  for (auto& f : frames) send(conn, Dir::kToCoordinator, std::move(f));
}

void LoopbackNet::sever_link(std::uint64_t conn) {
  auto it = links_.find(conn);
  if (it == links_.end() || !it->second.alive) return;
  Link& link = it->second;
  link.alive = false;
  link.to_coord.clear();
  link.to_worker.clear();
  // Both ends observe the death. The coordinator may return a Close for
  // this very connection — harmless, the link is already down.
  if (link.worker != nullptr && !link.worker->finished())
    link.worker->on_eof();
  apply_actions(coord_.on_eof(conn, now_ms_));
}

void LoopbackNet::step() {
  // Phase 1: deliver due worker->coordinator frames, connection order.
  for (auto& [conn, link] : links_) {
    while (link.alive && !link.to_coord.empty() &&
           link.to_coord.front().due_step <= steps_) {
      InFlight msg = std::move(link.to_coord.front());
      link.to_coord.pop_front();
      apply_actions(
          coord_.on_bytes(conn, msg.bytes.data(), msg.bytes.size(), now_ms_));
    }
  }
  // Phase 2: deliver due coordinator->worker frames.
  for (auto& [conn, link] : links_) {
    while (link.alive && !link.to_worker.empty() &&
           link.to_worker.front().due_step <= steps_) {
      InFlight msg = std::move(link.to_worker.front());
      link.to_worker.pop_front();
      apply_worker_frames(conn, link.worker->on_bytes(
                                    msg.bytes.data(), msg.bytes.size(), now_ms_));
      if (link.alive && link.worker->failed()) sever_link(conn);
    }
  }
  // Phase 3: advance virtual time, tick both sides.
  ++steps_;
  now_ms_ += opt_.tick_ms;
  apply_actions(coord_.on_tick(now_ms_));
  for (auto& [conn, link] : links_) {
    if (!link.alive) continue;
    apply_worker_frames(conn, link.worker->on_tick(now_ms_));
    if (link.alive && link.worker->failed()) sever_link(conn);
  }
}

bool LoopbackNet::run() {
  while (steps_ < opt_.max_steps) {
    bool queues_empty = true;
    bool any_alive = false;
    for (auto& [conn, link] : links_) {
      if (link.alive) any_alive = true;
      if (!link.to_coord.empty() || !link.to_worker.empty())
        queues_empty = false;
    }
    if (coord_.done() && queues_empty) return true;
    if (!coord_.done() && !any_alive && queues_empty)
      return false;  // everyone is dead; no progress is possible
    step();
  }
  return coord_.done();
}

}  // namespace asyncmac::sweep
