#include "sweep/wire.h"

#include <cstring>

namespace asyncmac::sweep {

namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;

std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kRequestWork: return "request-work";
    case MsgType::kAssign: return "assign";
    case MsgType::kResult: return "result";
    case MsgType::kResultAck: return "result-ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kNoWork: return "no-work";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool known_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MsgType::kHello) &&
         t <= static_cast<std::uint8_t>(MsgType::kShutdown);
}

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload)
    throw SnapshotError(ErrorKind::kCorrupt,
                        "frame payload exceeds kMaxFramePayload");
  snapshot::Writer w;
  w.bytes(kFrameMagic, sizeof(kFrameMagic));
  w.u32(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(payload.size());
  w.u32(snapshot::crc32(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_)
    throw SnapshotError(poison_kind_, "wire decoder poisoned: stream lost sync");
  buf_.insert(buf_.end(), data, data + n);
}

[[noreturn]] void FrameDecoder::poison(ErrorKind kind, const char* what) {
  poisoned_ = true;
  poison_kind_ = kind;
  throw SnapshotError(kind, what);
}

void FrameDecoder::compact() {
  // Reclaim the consumed prefix once it dominates the buffer, keeping
  // feed() amortized O(bytes).
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_)
    throw SnapshotError(poison_kind_, "wire decoder poisoned: stream lost sync");
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;

  // Validate header fields in offset order the moment the header is
  // complete — a garbage stream fails fast instead of waiting for a
  // phantom payload length to "arrive".
  if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0)
    poison(ErrorKind::kBadMagic, "frame does not start with AMWP");
  const std::uint32_t version = read_u32le(h + 4);
  if (version != kWireVersion)
    poison(ErrorKind::kBadVersion,
           "frame written by a different wire-protocol version");
  const std::uint8_t type = h[8];
  if (!known_type(type))
    poison(ErrorKind::kCorrupt, "unknown message type in frame header");
  const std::uint64_t len = read_u64le(h + 9);
  if (len > kMaxFramePayload)
    poison(ErrorKind::kCorrupt, "declared frame payload length is oversized");
  const std::uint32_t crc = read_u32le(h + 17);

  if (buffered() < kFrameHeaderBytes + len) return std::nullopt;
  const std::uint8_t* payload = h + kFrameHeaderBytes;
  if (snapshot::crc32(payload, static_cast<std::size_t>(len)) != crc)
    poison(ErrorKind::kBadCrc, "frame payload checksum mismatch");

  Frame f;
  f.type = static_cast<MsgType>(type);
  f.payload.assign(payload, payload + len);
  pos_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
  compact();
  return f;
}

void FrameDecoder::at_eof() const {
  if (poisoned_)
    throw SnapshotError(poison_kind_, "wire decoder poisoned: stream lost sync");
  if (buffered() != 0)
    throw SnapshotError(ErrorKind::kTruncated,
                        "stream severed mid-frame (partial frame buffered)");
}

}  // namespace asyncmac::sweep
