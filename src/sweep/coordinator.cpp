#include "sweep/coordinator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "snapshot/io.h"
#include "telemetry/registry.h"

namespace asyncmac::sweep {

namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;

void push_send(std::vector<Action>& out, std::uint64_t conn,
               std::vector<std::uint8_t> frame) {
  Action a;
  a.kind = Action::Kind::kSend;
  a.conn = conn;
  a.frame = std::move(frame);
  out.push_back(std::move(a));
}

void push_close(std::vector<Action>& out, std::uint64_t conn) {
  Action a;
  a.kind = Action::Kind::kClose;
  a.conn = conn;
  out.push_back(std::move(a));
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)),
      gen_(cfg_.job.fuzz.seed, cfg_.job.fuzz.protocols) {
  fingerprint_ = job_fingerprint(cfg_.job);
  if (cfg_.job.kind == JobKind::kGrid) {
    plan_ = analysis::plan_grid(cfg_.job.grid);
    records_.resize(plan_.cells.size());
    cell_done_.assign(plan_.cells.size(), 0);
    if (!cfg_.checkpoint_dir.empty()) {
      // Resume: a manifest from an earlier (possibly single-process) run
      // of the same grid pre-marks its cells done; a foreign manifest is
      // a kMismatch, exactly as in analysis::run_grid.
      analysis::load_grid_manifest(cfg_.checkpoint_dir,
                                   analysis::grid_fingerprint(cfg_.job.grid),
                                   cell_done_, records_);
    }
    units_.reserve(plan_.units.size());
    for (std::size_t i = 0; i < plan_.units.size(); ++i) {
      Unit u;
      u.first = plan_.units[i].first;
      u.count = plan_.units[i].count;
      u.id = work_unit_id(fingerprint_, i);
      const auto begin = cell_done_.begin() + static_cast<std::ptrdiff_t>(u.first);
      const bool done = std::all_of(
          begin, begin + static_cast<std::ptrdiff_t>(u.count),
          [](std::uint8_t d) { return d != 0; });
      if (done) {
        u.state = UnitState::kDone;
        ++units_done_;
      }
      units_.push_back(u);
    }
  } else {
    if (cfg_.job.fuzz.chunk == 0)
      throw std::invalid_argument("fuzz job chunk must be nonzero");
    verdicts_.resize(cfg_.job.fuzz.cases);
    const std::uint64_t cases = cfg_.job.fuzz.cases;
    const std::uint64_t chunk = cfg_.job.fuzz.chunk;
    for (std::uint64_t first = 0; first < cases; first += chunk) {
      Unit u;
      u.first = first;
      u.count = std::min(chunk, cases - first);
      u.id = work_unit_id(fingerprint_, units_.size());
      units_.push_back(u);
    }
  }
}

std::vector<Action> Coordinator::on_connect(std::uint64_t conn,
                                            std::uint64_t /*now_ms*/) {
  conns_.emplace(conn, Conn{});
  return {};
}

std::vector<Action> Coordinator::on_bytes(std::uint64_t conn,
                                          const std::uint8_t* data,
                                          std::size_t n, std::uint64_t now_ms) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return {};
  std::vector<Action> out;
  try {
    it->second.decoder.feed(data, n);
    // Every frame from a live holder refreshes its leases — a worker deep
    // in a long unit still proves liveness by heartbeating.
    refresh_leases(conn, now_ms);
    while (auto f = it->second.decoder.next()) {
      const Message msg = decode_message(*f);
      auto acts = handle(conn, msg, now_ms);
      out.insert(out.end(), std::make_move_iterator(acts.begin()),
                 std::make_move_iterator(acts.end()));
      // handle() may have severed the connection (protocol violation).
      it = conns_.find(conn);
      if (it == conns_.end()) break;
    }
  } catch (const SnapshotError&) {
    // Malformed bytes: the stream is unrecoverable. Sever, reassign.
    auto acts = sever(conn, "malformed frame");
    out.insert(out.end(), std::make_move_iterator(acts.begin()),
               std::make_move_iterator(acts.end()));
  }
  return out;
}

std::vector<Action> Coordinator::on_eof(std::uint64_t conn,
                                        std::uint64_t /*now_ms*/) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return {};
  bool death = !it->second.shutdown_sent;
  if (death) {
    try {
      it->second.decoder.at_eof();
    } catch (const SnapshotError&) {
      // Severed mid-frame: definitely not a clean goodbye.
    }
  }
  return drop_conn(conn, death);
}

std::vector<Action> Coordinator::on_tick(std::uint64_t now_ms) {
  for (auto& u : units_) {
    if (u.state == UnitState::kLeased && u.deadline_ms <= now_ms) {
      u.state = UnitState::kPending;
      u.holder = 0;
      telemetry::count("sweep.reassigns");
    }
  }
  return {};
}

std::vector<Action> Coordinator::handle(std::uint64_t conn, const Message& msg,
                                        std::uint64_t now_ms) {
  Conn& c = conns_.at(conn);
  std::vector<Action> out;
  if (const auto* hello = std::get_if<HelloMsg>(&msg)) {
    (void)hello;
    if (c.worker_id != 0) return sever(conn, "duplicate hello");
    c.worker_id = ++next_worker_id_;
    WelcomeMsg w;
    w.worker_id = c.worker_id;
    w.heartbeat_ms = cfg_.heartbeat_ms;
    w.lease_timeout_ms = cfg_.lease_timeout_ms;
    w.job = cfg_.job;
    push_send(out, conn, to_frame(w));
    // A worker joining a finished sweep gets its dismissal in the same
    // flush — it must not have to survive another round trip against
    // the transport's drain deadline.
    if (done() && !c.shutdown_sent) {
      ShutdownMsg bye;
      bye.reason = "complete";
      c.shutdown_sent = true;
      push_send(out, conn, to_frame(bye));
    }
    return out;
  }
  if (c.worker_id == 0) return sever(conn, "message before hello");
  if (const auto* req = std::get_if<RequestWorkMsg>(&msg))
    return handle_request(conn, *req, now_ms);
  if (const auto* res = std::get_if<ResultMsg>(&msg))
    return handle_result(conn, *res, now_ms);
  if (std::get_if<HeartbeatMsg>(&msg)) {
    return out;  // liveness already recorded by refresh_leases
  }
  // Coordinator-bound streams carry no other types; anything else means
  // the peer is confused (or hostile).
  return sever(conn, "unexpected message type from worker");
}

std::vector<Action> Coordinator::handle_request(std::uint64_t conn,
                                                const RequestWorkMsg& /*m*/,
                                                std::uint64_t now_ms) {
  std::vector<Action> out;
  Conn& c = conns_.at(conn);
  if (done()) {
    ShutdownMsg bye;
    bye.reason = "complete";
    c.shutdown_sent = true;
    push_send(out, conn, to_frame(bye));
    return out;
  }
  // Lowest pending index first: deterministic, and keeps the merged
  // manifest's done-prefix dense for resumability.
  for (std::size_t i = 0; i < units_.size(); ++i) {
    Unit& u = units_[i];
    if (u.state != UnitState::kPending) continue;
    u.state = UnitState::kLeased;
    u.lease_id = ++next_lease_id_;
    u.holder = conn;
    u.deadline_ms = now_ms + cfg_.lease_timeout_ms;
    telemetry::count("sweep.leases");
    AssignMsg a;
    a.lease_id = u.lease_id;
    a.unit_index = i;
    a.unit_id = u.id;
    a.first = u.first;
    a.count = u.count;
    push_send(out, conn, to_frame(a));
    return out;
  }
  NoWorkMsg nw;
  nw.retry_ms = cfg_.nowork_retry_ms;
  push_send(out, conn, to_frame(nw));
  return out;
}

std::vector<Action> Coordinator::handle_result(std::uint64_t conn,
                                               const ResultMsg& m,
                                               std::uint64_t /*now_ms*/) {
  std::vector<Action> out;
  if (m.unit_index >= units_.size())
    return sever(conn, "result for out-of-range unit");
  Unit& u = units_[m.unit_index];
  if (m.unit_id != u.id)
    return sever(conn, "result unit id does not match this job");

  if (u.state == UnitState::kDone) {
    // Late duplicate (the unit was reassigned and finished elsewhere, or
    // the worker resent after a lost ack). Deterministic engines make the
    // payload identical, so merging again would be a no-op — skip it.
    telemetry::count("sweep.dup_results");
    ResultAckMsg ack;
    ack.unit_index = m.unit_index;
    ack.duplicate = true;
    push_send(out, conn, to_frame(ack));
    return out;
  }

  // Accept the payload whether or not this connection still holds the
  // lease: a late result from a revoked lease is still the right bytes
  // (at-least-once execution, exactly-once merge).
  bool ok = cfg_.job.kind == JobKind::kGrid ? merge_grid_result(u, m)
                                            : merge_fuzz_result(u, m);
  if (!ok) return sever(conn, "result payload failed validation");

  u.state = UnitState::kDone;
  u.holder = 0;
  ++units_done_;
  telemetry::count("sweep.results");
  if (cfg_.job.kind == JobKind::kGrid && !cfg_.checkpoint_dir.empty())
    write_manifest();

  ResultAckMsg ack;
  ack.unit_index = m.unit_index;
  ack.duplicate = false;
  push_send(out, conn, to_frame(ack));
  if (done()) broadcast_shutdown(out);
  return out;
}

bool Coordinator::merge_grid_result(const Unit& unit, const ResultMsg& m) {
  std::vector<analysis::ExperimentRecord> records;
  try {
    records = decode_grid_result(m.payload);
  } catch (const SnapshotError&) {
    return false;
  }
  if (records.size() != unit.count) return false;
  // The payload must describe exactly the cells of this unit — a worker
  // computing a different grid (or lying) is rejected, not merged.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const analysis::GridCell& cell = plan_.cells[unit.first + i];
    const analysis::ExperimentRecord& r = records[i];
    if (r.protocol != cell.protocol || r.n != cell.n ||
        r.bound_r != cell.bound_r || r.rho_pct != cell.rho_pct ||
        r.slot_policy != cell.slot_policy || r.seed != cell.seed)
      return false;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    records_[unit.first + i] = records[i];
    cell_done_[unit.first + i] = 1;
  }
  return true;
}

bool Coordinator::merge_fuzz_result(const Unit& unit, const ResultMsg& m) {
  std::vector<verify::CaseVerdict> verdicts;
  try {
    verdicts = decode_fuzz_result(m.payload);
  } catch (const SnapshotError&) {
    return false;
  }
  if (verdicts.size() != unit.count) return false;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const std::uint64_t index = unit.first + i;
    if (verdicts[i].index != index ||
        verdicts[i].case_seed != gen_.case_seed(index))
      return false;
  }
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    verdicts_[unit.first + i] = verdicts[i];
  return true;
}

void Coordinator::refresh_leases(std::uint64_t conn, std::uint64_t now_ms) {
  for (auto& u : units_)
    if (u.state == UnitState::kLeased && u.holder == conn)
      u.deadline_ms = now_ms + cfg_.lease_timeout_ms;
}

void Coordinator::revoke_leases(std::uint64_t conn) {
  for (auto& u : units_) {
    if (u.state == UnitState::kLeased && u.holder == conn) {
      u.state = UnitState::kPending;
      u.holder = 0;
      telemetry::count("sweep.reassigns");
    }
  }
}

std::vector<Action> Coordinator::sever(std::uint64_t conn,
                                       const char* /*why*/) {
  telemetry::count("sweep.protocol_errors");
  return drop_conn(conn, /*death=*/true);
}

std::vector<Action> Coordinator::drop_conn(std::uint64_t conn, bool death) {
  std::vector<Action> out;
  auto it = conns_.find(conn);
  if (it == conns_.end()) return out;
  if (death && it->second.worker_id != 0)
    telemetry::count("sweep.worker_deaths");
  revoke_leases(conn);
  conns_.erase(it);
  push_close(out, conn);
  return out;
}

void Coordinator::broadcast_shutdown(std::vector<Action>& out) {
  ShutdownMsg bye;
  bye.reason = "complete";
  const std::vector<std::uint8_t> frame = to_frame(bye);
  // Pre-Hello connections are included: a worker that connected just as
  // the sweep finished is dismissed cleanly (Shutdown is valid before
  // Welcome on the worker side) instead of seeing a dead socket.
  for (auto& [conn, c] : conns_) {
    if (c.shutdown_sent) continue;
    c.shutdown_sent = true;
    push_send(out, conn, frame);
  }
}

void Coordinator::write_manifest() const {
  analysis::write_grid_manifest(cfg_.checkpoint_dir,
                                analysis::grid_fingerprint(cfg_.job.grid),
                                cell_done_, records_);
}

}  // namespace asyncmac::sweep
