// asyncmac/sweep/wire.h
//
// Framing layer of the distributed-sweep wire protocol
// (docs/DISTRIBUTED.md). Every message travels as one length-prefixed,
// CRC-guarded frame over an ordered byte stream (TCP or the in-process
// loopback transport):
//
//   offset  size  field
//   0       4     magic "AMWP"
//   4       4     wire version (u32 LE, kWireVersion)
//   8       1     message type (MsgType)
//   9       8     payload length (u64 LE, <= kMaxFramePayload)
//   17      4     CRC-32 of the payload (u32 LE)
//   21      ...   payload (snapshot::Writer encoding, see sweep/protocol.h)
//
// The decoder is incremental (bytes arrive in arbitrary chunks) and
// strict: every violation raises a typed snapshot::SnapshotError —
// kBadMagic / kBadVersion / kCorrupt (unknown type, oversized length) /
// kBadCrc / kTruncated (stream severed mid-frame) — and never undefined
// behaviour, no matter what a peer sends (pinned by tests/test_sweep_wire
// and the seed-replayable wire fuzzer, both run under ASan in CI).
//
// Versioning policy mirrors snapshot/format.h: kWireVersion bumps on ANY
// frame or payload schema change; peers refuse other versions. A sweep
// is a short-lived cooperation between binaries of one build — there is
// no cross-version negotiation by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "snapshot/io.h"

namespace asyncmac::sweep {

inline constexpr std::uint32_t kWireVersion = 1;
inline constexpr std::uint8_t kFrameMagic[4] = {'A', 'M', 'W', 'P'};
inline constexpr std::size_t kFrameHeaderBytes = 21;
/// Frames carry at most one work unit's records; 16 MiB is orders of
/// magnitude above any real payload and small enough that a corrupted
/// length field cannot drive allocation to OOM.
inline constexpr std::uint64_t kMaxFramePayload = 16ull * 1024 * 1024;

/// Message types of the coordinator/worker protocol (sweep/protocol.h
/// defines the payloads). Values are wire-stable.
enum class MsgType : std::uint8_t {
  kHello = 1,        ///< worker -> coordinator: join the sweep
  kWelcome = 2,      ///< coordinator -> worker: id + the job description
  kRequestWork = 3,  ///< worker -> coordinator: lease me a unit
  kAssign = 4,       ///< coordinator -> worker: leased work unit
  kResult = 5,       ///< worker -> coordinator: completed unit payload
  kResultAck = 6,    ///< coordinator -> worker: result merged (or duplicate)
  kHeartbeat = 7,    ///< worker -> coordinator: keep my leases alive
  kNoWork = 8,       ///< coordinator -> worker: nothing leasable right now
  kShutdown = 9,     ///< coordinator -> worker: sweep complete, disconnect
};

const char* to_string(MsgType t) noexcept;
bool known_type(std::uint8_t t) noexcept;

struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Frame a payload for the stream (header + CRC + payload). Throws
/// SnapshotError(kCorrupt) on payloads above kMaxFramePayload.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload);

/// Incremental frame reassembly over an ordered byte stream. feed() any
/// chunking; next() yields complete validated frames in order. All
/// validation errors are typed SnapshotErrors; after a throw the decoder
/// is poisoned (the stream has lost sync) and every further call throws
/// the same kind — callers must sever the connection.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// The next complete frame, if one is buffered. Header fields are
  /// validated in offset order (magic, version, type, length) as soon as
  /// the header is complete; the payload CRC once the payload is.
  std::optional<Frame> next();

  /// Call when the peer closed the stream: a partially buffered frame
  /// means the connection was severed mid-frame -> kTruncated.
  void at_eof() const;

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  [[noreturn]] void poison(snapshot::ErrorKind kind, const char* what);
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
  snapshot::ErrorKind poison_kind_ = snapshot::ErrorKind::kCorrupt;
};

}  // namespace asyncmac::sweep
