// asyncmac/sweep/tcp.h
//
// Real-socket transport for the sweep service (POSIX TCP, localhost or
// LAN). Thin by design: both ends of the protocol live in the sans-IO
// Coordinator/WorkerSession state machines (tested on the loopback
// harness); this file only pumps bytes, timestamps, and connection
// events between them and the kernel.
//
//   serve()      binds, accepts workers, drives a Coordinator until the
//                job completes, and returns the merged results. Blocking;
//                single-threaded poll() loop.
//   run_worker() connects to a coordinator and computes leased units
//                until Shutdown. Blocking; returns a process exit code.
//
// Used by `asyncmac_cli serve` / `asyncmac_cli worker` and the CI
// sweep-smoke job (3 workers, one SIGKILLed mid-sweep, merged output
// compared byte-for-byte against a single-process run).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/coordinator.h"
#include "sweep/worker.h"

namespace asyncmac::sweep {

struct ServeOptions {
  CoordinatorConfig coord;
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (reported via on_listening)
  std::uint64_t tick_ms = 100;
  /// Called once the listener is bound, with the actual port — the CI
  /// smoke job and tests use it to learn an ephemeral port, the CLI to
  /// print the "listening" line before blocking.
  std::function<void(std::uint16_t)> on_listening;
};

struct ServeOutcome {
  std::vector<analysis::ExperimentRecord> records;  ///< grid jobs
  std::vector<verify::CaseVerdict> verdicts;        ///< fuzz jobs
};

/// Run a coordinator over real sockets until the job is complete.
/// Throws std::runtime_error on socket-layer failures (bind in use, ...);
/// worker misbehaviour never throws — the Coordinator absorbs it.
ServeOutcome serve(const ServeOptions& opt);

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "worker";
};

/// Join a sweep and work until the coordinator says Shutdown. Returns 0
/// on a clean finish, 1 on connection loss / protocol failure (the
/// error is written to stderr).
int run_worker(const WorkerOptions& opt);

}  // namespace asyncmac::sweep
