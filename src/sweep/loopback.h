// asyncmac/sweep/loopback.h
//
// Deterministic in-process transport for the sweep service: pumps frames
// between one Coordinator and N WorkerSessions under a virtual clock,
// with scriptable fault injection. No sockets, no threads, no wall
// time — a run is a pure function of (job, worker set, fault script), so
// failure-path tests (tests/test_sweep_service.cpp) replay exactly.
//
// Faults target the k-th frame sent on a (connection, direction) link,
// counted from 0 at attach time:
//   kDrop       the frame silently vanishes (lost datagram)
//   kDuplicate  the frame is delivered twice (retransmit race)
//   kDelay      delivery is postponed by `delay_steps` pump steps
//   kCorrupt    one byte is flipped in flight (guarded by the frame CRC)
//   kSever      the link dies: the frame is lost, both ends see the
//               disconnect (this is how tests "SIGKILL" a worker
//               mid-chunk — its computed Result never leaves the box)
//
// The pump is strictly ordered (connections in id order, FIFO per link,
// fixed tick per step), which makes every interleaving reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sweep/coordinator.h"
#include "sweep/worker.h"

namespace asyncmac::sweep {

class LoopbackNet {
 public:
  struct Options {
    std::uint64_t tick_ms = 100;     ///< virtual time per pump step
    std::uint64_t max_steps = 100000;  ///< run() safety budget
  };

  enum class Dir { kToCoordinator, kToWorker };
  enum class FaultKind { kDrop, kDuplicate, kDelay, kCorrupt, kSever };

  explicit LoopbackNet(Coordinator& coord);
  LoopbackNet(Coordinator& coord, Options opt);

  /// Attach a worker (connect + Hello); returns its connection id, the
  /// handle fault scripts use.
  std::uint64_t attach(WorkerSession& worker);

  /// Script a fault against the `msg_index`-th frame (0-based, counted
  /// per link since attach) sent on (conn, dir). Faults apply at send
  /// time. `arg` is delay_steps for kDelay and the flipped byte offset
  /// (modulo frame size) for kCorrupt.
  void add_fault(std::uint64_t conn, Dir dir, std::uint64_t msg_index,
                 FaultKind kind, std::uint64_t arg = 0);

  /// Sever a link right now (between steps) — kill a worker outside any
  /// frame send, e.g. while it idles between heartbeats.
  void kill_worker(std::uint64_t conn);

  /// Pump until the coordinator is done and all queues drained (true) or
  /// the step budget runs out (false).
  bool run();
  /// One pump step: deliver due frames both ways, then advance the clock
  /// and tick both sides.
  void step();

  std::uint64_t now_ms() const noexcept { return now_ms_; }
  std::uint64_t steps() const noexcept { return steps_; }
  bool worker_alive(std::uint64_t conn) const;

 private:
  struct Fault {
    FaultKind kind = FaultKind::kDrop;
    std::uint64_t arg = 0;
  };
  struct InFlight {
    std::vector<std::uint8_t> bytes;
    std::uint64_t due_step = 0;
  };
  struct Link {
    WorkerSession* worker = nullptr;
    bool alive = true;
    std::deque<InFlight> to_coord;
    std::deque<InFlight> to_worker;
    std::uint64_t sent_to_coord = 0;   ///< frames ever sent on the link
    std::uint64_t sent_to_worker = 0;
    std::map<std::uint64_t, Fault> faults_to_coord;  ///< by msg index
    std::map<std::uint64_t, Fault> faults_to_worker;
  };

  void send(std::uint64_t conn, Dir dir, std::vector<std::uint8_t> frame);
  void apply_actions(std::vector<Action> actions);
  void apply_worker_frames(std::uint64_t conn,
                           std::vector<std::vector<std::uint8_t>> frames);
  void sever_link(std::uint64_t conn);

  Coordinator& coord_;
  Options opt_;
  std::map<std::uint64_t, Link> links_;
  std::uint64_t next_conn_ = 1;
  std::uint64_t now_ms_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace asyncmac::sweep
