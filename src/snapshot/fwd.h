// asyncmac/snapshot/fwd.h
//
// Forward declarations of the snapshot serialization primitives, for
// interface headers that declare save_state/load_state virtuals without
// pulling in the full io machinery.
#pragma once

namespace asyncmac::snapshot {
class Writer;
class Reader;
}  // namespace asyncmac::snapshot
