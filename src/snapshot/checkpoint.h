// asyncmac/snapshot/checkpoint.h
//
// High-level checkpoint/resume for whole engine runs (docs/CHECKPOINT.md).
//
// A checkpoint file (FileKind::kEngineRun) carries two sections:
//   1. a RunSpec — the declarative configuration of the run (protocol
//      registry name, topology, adversaries, seed, recording flags), and
//   2. the Engine's serialized mutable state (sim::Engine::save_state).
// Resume rebuilds the engine from the RunSpec via the same factories the
// CLI and experiment grids use, then overwrites its mutable state; from
// that point the run continues bit-for-bit as the saved run would have
// (the determinism contract pinned by tests/test_checkpoint_engine.cpp).
//
// The AutoSaver is the standard EngineConfig::checkpoint_sink: it writes
// rotating, atomically-renamed snapshot files into a directory with
// bounded retention.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "sim/engine.h"
#include "snapshot/format.h"
#include "snapshot/io.h"
#include "util/types.h"

namespace asyncmac::snapshot {

/// Declarative description of an engine run — everything needed to
/// reconstruct an identical Engine before loading a snapshot into it.
struct RunSpec {
  std::string protocol = "ao-arrow";  ///< analysis registry name
  std::uint32_t n = 4;
  std::uint32_t bound_r = 2;
  std::string slot_policy = "perstation";  ///< adversary policy name
  bool has_injector = true;
  adversary::InjectorSpec injector;
  std::uint64_t seed = 1;            ///< engine + slot-policy seed
  Tick horizon_units = 100000;       ///< intended run length (time units)
  bool keep_channel_history = false;
  bool record_trace = false;
  bool record_deliveries = false;
  bool allow_control = true;
  std::uint64_t prune_interval = 4096;
  std::uint64_t checkpoint_interval = 0;
  /// k-restrained channel admission cap (0 = unrestrained) and overflow
  /// mode — see channel::RestrainedSpec.
  std::uint32_t restrained_k = 0;
  bool restrained_jam = true;
  /// Per-station energy accounting model (energy/model.h).
  bool energy_enabled = false;
  std::uint64_t energy_cost_transmit = 1;
  std::uint64_t energy_cost_listen = 1;
  std::uint64_t energy_cost_sleep = 0;

  channel::RestrainedSpec restrained() const {
    return {restrained_k, restrained_jam};
  }
  energy::EnergyModel energy() const {
    return {energy_enabled, energy_cost_transmit, energy_cost_listen,
            energy_cost_sleep};
  }

  bool operator==(const RunSpec&) const = default;
};

/// InjectorSpec payload serialization (shared with verify's campaign
/// cursor, which embeds scenarios the same way).
void save_injector_spec(Writer& w, const adversary::InjectorSpec& spec);
adversary::InjectorSpec load_injector_spec(Reader& r);

void save_run_spec(Writer& w, const RunSpec& spec);
RunSpec load_run_spec(Reader& r);

/// Build a fresh engine from the spec through the shared factories
/// (analysis::make_protocols, adversary::make_slot_policy/make_injector).
/// The checkpoint_sink is left unset — install one after construction if
/// the resumed run should keep autosaving. Throws std::invalid_argument
/// on unknown protocol / policy / injector names.
std::unique_ptr<sim::Engine> build_engine(const RunSpec& spec);

/// Serialize spec + engine state into a kEngineRun payload (unframed).
std::vector<std::uint8_t> encode_checkpoint(const RunSpec& spec,
                                            const sim::Engine& engine);

/// Frame and atomically write a checkpoint file.
void write_checkpoint(const std::string& path, const RunSpec& spec,
                      const sim::Engine& engine);

struct ResumedRun {
  RunSpec spec;
  std::unique_ptr<sim::Engine> engine;
};

/// Decode a kEngineRun payload: rebuild the engine from the embedded
/// RunSpec and load the saved state into it. Throws SnapshotError on
/// corrupt payloads.
ResumedRun decode_checkpoint(const std::vector<std::uint8_t>& payload);

/// Read + validate a checkpoint file (magic, kind, version, CRC), then
/// decode it. Throws SnapshotError with a typed kind on every failure
/// mode; never undefined behaviour on corrupt input.
ResumedRun resume_checkpoint(const std::string& path);

/// Rotating checkpoint writer for EngineConfig::checkpoint_sink. Writes
/// ckpt-NNNNNN.snap files into `dir` (created if missing) and removes the
/// oldest once more than `retention` exist. Write errors propagate as
/// SnapshotError(kIo) — a checkpointed run should fail loudly, not
/// silently stop snapshotting.
class AutoSaver {
 public:
  AutoSaver(std::string dir, RunSpec spec, std::size_t retention = 3);

  void operator()(const sim::Engine& engine) { save(engine); }
  void save(const sim::Engine& engine);

  /// Paths currently on disk, oldest first.
  const std::vector<std::string>& files() const noexcept { return files_; }
  /// Most recent checkpoint path (empty before the first save).
  std::string latest() const {
    return files_.empty() ? std::string() : files_.back();
  }

 private:
  std::string dir_;
  RunSpec spec_;
  std::size_t retention_;
  std::uint64_t counter_ = 0;
  std::vector<std::string> files_;
};

}  // namespace asyncmac::snapshot
