#include "snapshot/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "adversary/slot_policies.h"
#include "analysis/registry.h"
#include "util/check.h"

namespace asyncmac::snapshot {

void save_injector_spec(Writer& w, const adversary::InjectorSpec& spec) {
  w.str(spec.kind);
  w.i64(spec.rho.num);
  w.i64(spec.rho.den);
  w.i64(spec.burst_ticks);
  w.str(spec.pattern);
  w.u32(spec.single_target);
  w.i64(spec.period_ticks);
  w.u32(spec.drain_a);
  w.u32(spec.drain_b);
  w.u64(spec.seed);
}

adversary::InjectorSpec load_injector_spec(Reader& r) {
  adversary::InjectorSpec spec;
  spec.kind = r.str();
  const std::int64_t num = r.i64();
  const std::int64_t den = r.i64();
  if (num < 0 || den <= 0)
    throw SnapshotError(ErrorKind::kCorrupt, "invalid injection rate ratio");
  spec.rho = util::Ratio(num, den);
  spec.burst_ticks = r.i64();
  spec.pattern = r.str();
  spec.single_target = r.u32();
  spec.period_ticks = r.i64();
  spec.drain_a = r.u32();
  spec.drain_b = r.u32();
  spec.seed = r.u64();
  return spec;
}

void save_run_spec(Writer& w, const RunSpec& spec) {
  w.str(spec.protocol);
  w.u32(spec.n);
  w.u32(spec.bound_r);
  w.str(spec.slot_policy);
  w.boolean(spec.has_injector);
  save_injector_spec(w, spec.injector);
  w.u64(spec.seed);
  w.i64(spec.horizon_units);
  w.boolean(spec.keep_channel_history);
  w.boolean(spec.record_trace);
  w.boolean(spec.record_deliveries);
  w.boolean(spec.allow_control);
  w.u64(spec.prune_interval);
  w.u64(spec.checkpoint_interval);
  w.u32(spec.restrained_k);
  w.boolean(spec.restrained_jam);
  w.boolean(spec.energy_enabled);
  w.u64(spec.energy_cost_transmit);
  w.u64(spec.energy_cost_listen);
  w.u64(spec.energy_cost_sleep);
}

RunSpec load_run_spec(Reader& r) {
  RunSpec spec;
  spec.protocol = r.str();
  spec.n = r.u32();
  spec.bound_r = r.u32();
  spec.slot_policy = r.str();
  spec.has_injector = r.boolean();
  spec.injector = load_injector_spec(r);
  spec.seed = r.u64();
  spec.horizon_units = r.i64();
  spec.keep_channel_history = r.boolean();
  spec.record_trace = r.boolean();
  spec.record_deliveries = r.boolean();
  spec.allow_control = r.boolean();
  spec.prune_interval = r.u64();
  spec.checkpoint_interval = r.u64();
  spec.restrained_k = r.u32();
  spec.restrained_jam = r.boolean();
  spec.energy_enabled = r.boolean();
  spec.energy_cost_transmit = r.u64();
  spec.energy_cost_listen = r.u64();
  spec.energy_cost_sleep = r.u64();
  if (spec.n < 1 || spec.bound_r < 1 || spec.prune_interval < 1)
    throw SnapshotError(ErrorKind::kCorrupt,
                        "run spec violates engine invariants");
  return spec;
}

std::unique_ptr<sim::Engine> build_engine(const RunSpec& spec) {
  sim::EngineConfig cfg;
  cfg.n = spec.n;
  cfg.bound_r = spec.bound_r;
  cfg.seed = spec.seed;
  cfg.keep_channel_history = spec.keep_channel_history;
  cfg.record_trace = spec.record_trace;
  cfg.record_deliveries = spec.record_deliveries;
  cfg.allow_control = spec.allow_control;
  cfg.prune_interval = spec.prune_interval;
  cfg.checkpoint_interval = spec.checkpoint_interval;
  cfg.restrained = spec.restrained();
  cfg.energy = spec.energy();
  return std::make_unique<sim::Engine>(
      cfg, analysis::make_protocols(spec.protocol, spec.n),
      adversary::make_slot_policy(spec.slot_policy, spec.n, spec.bound_r,
                                  spec.seed),
      spec.has_injector ? adversary::make_injector(spec.injector) : nullptr);
}

std::vector<std::uint8_t> encode_checkpoint(const RunSpec& spec,
                                            const sim::Engine& engine) {
  Writer w;
  save_run_spec(w, spec);
  engine.save_state(w);
  return w.take();
}

void write_checkpoint(const std::string& path, const RunSpec& spec,
                      const sim::Engine& engine) {
  const auto payload = encode_checkpoint(spec, engine);
  write_file(path, FileKind::kEngineRun, payload);
}

ResumedRun decode_checkpoint(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ResumedRun run;
  run.spec = load_run_spec(r);
  try {
    run.engine = build_engine(run.spec);
  } catch (const std::invalid_argument& e) {
    // Unknown registry names mean the snapshot came from a build with
    // protocols/policies this binary does not ship.
    throw SnapshotError(ErrorKind::kMismatch,
                        std::string("cannot rebuild run: ") + e.what());
  }
  run.engine->load_state(r);
  r.expect_end();
  return run;
}

ResumedRun resume_checkpoint(const std::string& path) {
  return decode_checkpoint(read_file(path, FileKind::kEngineRun));
}

AutoSaver::AutoSaver(std::string dir, RunSpec spec, std::size_t retention)
    : dir_(std::move(dir)), spec_(std::move(spec)), retention_(retention) {
  AM_REQUIRE(retention_ >= 1, "checkpoint retention must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw SnapshotError(ErrorKind::kIo,
                        "cannot create checkpoint directory " + dir_ + ": " +
                            ec.message());
}

void AutoSaver::save(const sim::Engine& engine) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.snap",
                static_cast<unsigned long long>(counter_++));
  const std::string path = dir_ + "/" + name;
  write_checkpoint(path, spec_, engine);
  files_.push_back(path);
  while (files_.size() > retention_) {
    std::remove(files_.front().c_str());
    files_.erase(files_.begin());
  }
}

}  // namespace asyncmac::snapshot
