#include "snapshot/format.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace asyncmac::snapshot {

namespace {

constexpr std::size_t kHeaderSize = 8 + 1 + 4 + 8 + 4;

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// RAII FILE* so the early throws below cannot leak a handle.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f) std::fclose(f);
  }
};

}  // namespace

const char* to_string(FileKind k) noexcept {
  switch (k) {
    case FileKind::kEngineRun: return "engine-run checkpoint";
    case FileKind::kGridManifest: return "grid manifest";
    case FileKind::kCampaignCursor: return "campaign cursor";
  }
  return "unknown";
}

void write_file(const std::string& path, FileKind kind,
                const std::vector<std::uint8_t>& payload) {
  Writer frame;
  frame.bytes(kMagic, sizeof(kMagic));
  frame.u8(static_cast<std::uint8_t>(kind));
  frame.u32(kFormatVersion);
  frame.u64(payload.size());
  frame.u32(crc32(payload.data(), payload.size()));
  frame.bytes(payload.data(), payload.size());

  // Unique tmp name per call: re-truncating the same .tmp path on every
  // autosave makes ext4 wait on the previous write's dirty pages (~5x the
  // cost of a fresh file), and concurrent writers to sibling paths must
  // not clobber each other's staging file. The suffix only needs to be
  // process-unique — rename() then replaces the target atomically.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + "." +
                          std::to_string(tmp_seq.fetch_add(1)) + ".tmp";
  {
    File out;
    out.f = std::fopen(tmp.c_str(), "wb");
    if (!out.f)
      throw SnapshotError(ErrorKind::kIo, errno_message("cannot open", tmp));
    const auto& buf = frame.buffer();
    if (std::fwrite(buf.data(), 1, buf.size(), out.f) != buf.size() ||
        std::fflush(out.f) != 0)
      throw SnapshotError(ErrorKind::kIo, errno_message("cannot write", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw SnapshotError(ErrorKind::kIo,
                        errno_message("cannot rename into", path));
}

std::vector<std::uint8_t> read_file(const std::string& path, FileKind kind) {
  File in;
  in.f = std::fopen(path.c_str(), "rb");
  if (!in.f)
    throw SnapshotError(ErrorKind::kIo, errno_message("cannot open", path));
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof(chunk), in.f);
    raw.insert(raw.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) {
      if (std::ferror(in.f))
        throw SnapshotError(ErrorKind::kIo,
                            errno_message("cannot read", path));
      break;
    }
  }

  if (raw.size() < kHeaderSize)
    throw SnapshotError(ErrorKind::kTruncated,
                        path + " holds " + std::to_string(raw.size()) +
                            " bytes, header needs " +
                            std::to_string(kHeaderSize));
  Reader header(raw.data(), kHeaderSize);
  char magic[sizeof(kMagic)];
  header.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError(ErrorKind::kBadMagic,
                        path + " is not an asyncmac snapshot");
  const std::uint8_t got_kind = header.u8();
  if (got_kind != static_cast<std::uint8_t>(kind))
    throw SnapshotError(
        ErrorKind::kMismatch,
        path + " is a kind-" + std::to_string(got_kind) + " snapshot, not a " +
            to_string(kind));
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion)
    throw SnapshotError(ErrorKind::kBadVersion,
                        path + " uses format v" + std::to_string(version) +
                            ", this binary reads v" +
                            std::to_string(kFormatVersion));
  const std::uint64_t payload_len = header.u64();
  const std::uint32_t expected_crc = header.u32();
  if (raw.size() - kHeaderSize != payload_len)
    throw SnapshotError(ErrorKind::kTruncated,
                        path + " payload holds " +
                            std::to_string(raw.size() - kHeaderSize) +
                            " bytes, header declares " +
                            std::to_string(payload_len));
  const std::uint32_t actual_crc =
      crc32(raw.data() + kHeaderSize, static_cast<std::size_t>(payload_len));
  if (actual_crc != expected_crc)
    throw SnapshotError(ErrorKind::kBadCrc, path + " payload checksum " +
                                                std::to_string(actual_crc) +
                                                " != declared " +
                                                std::to_string(expected_crc));
  return {raw.begin() + static_cast<std::ptrdiff_t>(kHeaderSize), raw.end()};
}

}  // namespace asyncmac::snapshot
