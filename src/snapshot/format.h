// asyncmac/snapshot/format.h
//
// On-disk framing for snapshot files (docs/CHECKPOINT.md):
//
//   offset  size  field
//   0       8     magic "AMACSNAP"
//   8       1     file kind (FileKind)
//   9       4     format version (u32 LE)
//   13      8     payload length (u64 LE)
//   21      4     CRC-32 of the payload (u32 LE)
//   25      ...   payload (kind-specific, snapshot::Writer encoding)
//
// Versioning policy: kFormatVersion bumps on ANY payload schema change.
// Readers refuse files with a different version (kBadVersion) — resumed
// determinism is only guaranteed for snapshots written by the same
// format, so there is no cross-version migration path by design.
//
// write_file is atomic: the frame is written to "<path>.tmp" and renamed
// into place, so a crash mid-write never leaves a half-written file at
// the target path (the stale .tmp is ignored by readers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/io.h"

namespace asyncmac::snapshot {

// v2: Ledger::save_state grew the memo_hits/memo_misses pending telemetry
// deltas (channel/ledger.h).
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr char kMagic[8] = {'A', 'M', 'A', 'C', 'S', 'N', 'A', 'P'};

enum class FileKind : std::uint8_t {
  kEngineRun = 1,       ///< RunSpec + full Engine state (snapshot/checkpoint.h)
  kGridManifest = 2,    ///< sweep manifest + completed cells (analysis)
  kCampaignCursor = 3,  ///< fuzz-campaign chunk cursor (verify)
};

const char* to_string(FileKind k) noexcept;

/// Frame `payload` and write it atomically (tmp file + rename). Throws
/// SnapshotError(kIo) on any filesystem failure.
void write_file(const std::string& path, FileKind kind,
                const std::vector<std::uint8_t>& payload);

/// Read, validate (magic, kind, version, length, CRC — in that order) and
/// return the payload. Throws a typed SnapshotError on every failure.
std::vector<std::uint8_t> read_file(const std::string& path, FileKind kind);

}  // namespace asyncmac::snapshot
