#include "snapshot/io.h"

#include <array>
#include <cstring>

namespace asyncmac::snapshot {

const char* to_string(ErrorKind k) noexcept {
  switch (k) {
    case ErrorKind::kIo: return "snapshot io error";
    case ErrorKind::kTruncated: return "snapshot truncated";
    case ErrorKind::kBadMagic: return "snapshot bad magic";
    case ErrorKind::kBadVersion: return "snapshot bad version";
    case ErrorKind::kBadCrc: return "snapshot bad crc";
    case ErrorKind::kCorrupt: return "snapshot corrupt";
    case ErrorKind::kMismatch: return "snapshot mismatch";
  }
  return "snapshot error";
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t crc) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Writer::bytes(const void* p, std::size_t n) {
  if (n == 0) return;  // p may be null for an empty span (vector::data())
  const auto* b = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n)
    throw SnapshotError(ErrorKind::kTruncated,
                        "need " + std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()));
}

std::uint8_t Reader::u8() {
  need(1);
  return *p_++;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1)
    throw SnapshotError(ErrorKind::kCorrupt,
                        "boolean byte " + std::to_string(v));
  return v != 0;
}

std::string Reader::str() {
  const std::uint64_t len = u64();
  // need() guards the allocation: a corrupt huge length is reported as
  // truncation instead of an out-of-memory attempt.
  need(static_cast<std::size_t>(len));
  std::string s(reinterpret_cast<const char*>(p_),
                static_cast<std::size_t>(len));
  p_ += len;
  return s;
}

void Reader::bytes(void* out, std::size_t n) {
  if (n == 0) return;  // out may be null for an empty span (vector::data())
  need(n);
  std::memcpy(out, p_, n);
  p_ += n;
}

void Reader::expect_end() const {
  if (remaining() != 0)
    throw SnapshotError(ErrorKind::kCorrupt,
                        std::to_string(remaining()) +
                            " trailing bytes after payload");
}

}  // namespace asyncmac::snapshot
