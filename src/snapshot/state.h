// asyncmac/snapshot/state.h
//
// Inline helpers for serializing the util-layer value types that appear
// in many components' save_state/load_state implementations. Lives in
// snapshot/ (not util/) so util stays free of snapshot includes; callers
// already link util for the types themselves.
#pragma once

#include <array>
#include <cstdint>

#include "snapshot/io.h"
#include "util/rng.h"

namespace asyncmac::snapshot {

/// xoshiro256** stream: four u64 words, in order.
inline void save_rng(Writer& w, const util::Rng& rng) {
  for (std::uint64_t v : rng.state()) w.u64(v);
}

inline void load_rng(Reader& r, util::Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& v : s) v = r.u64();
  rng.set_state(s);
}

/// Signed 128-bit value as two u64 words, low then high.
inline void save_i128(Writer& w, __int128 v) {
  const auto u = static_cast<unsigned __int128>(v);
  w.u64(static_cast<std::uint64_t>(u));
  w.u64(static_cast<std::uint64_t>(u >> 64));
}

inline __int128 load_i128(Reader& r) {
  const std::uint64_t lo = r.u64();
  const std::uint64_t hi = r.u64();
  return static_cast<__int128>((static_cast<unsigned __int128>(hi) << 64) |
                               lo);
}

}  // namespace asyncmac::snapshot
