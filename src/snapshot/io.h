// asyncmac/snapshot/io.h
//
// Primitive binary serialization for the checkpoint/resume subsystem
// (docs/CHECKPOINT.md). Writer appends fixed-width little-endian scalars
// to an in-memory buffer; Reader consumes the same encoding with strict
// bounds checks. Every decode failure raises a typed SnapshotError —
// corrupt or truncated input must surface as an exception, never as
// undefined behaviour (pinned by test_snapshot_io under ASan/UBSan).
//
// The encoding is deliberately boring: byte-by-byte little-endian, no
// varints, no alignment, no implicit framing. Determinism of resumed runs
// rests on these bytes round-tripping exactly, so the format must not
// depend on host endianness or struct layout.
//
// This library depends on nothing else in the repo so that every stateful
// layer (util, channel, sim, core, baselines, adversary, analysis,
// verify) can link it without cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace asyncmac::snapshot {

/// Classification of snapshot failures. Kept coarse on purpose: callers
/// branch on "which guarantee was violated", not on byte offsets.
enum class ErrorKind : std::uint8_t {
  kIo,          ///< file could not be opened/read/written/renamed
  kTruncated,   ///< input ended before a declared field/payload
  kBadMagic,    ///< file does not start with the snapshot magic
  kBadVersion,  ///< written by a newer (or unknown) format version
  kBadCrc,      ///< payload checksum mismatch (bit rot / partial write)
  kCorrupt,     ///< framing/CRC fine but content is inconsistent
  kMismatch,    ///< snapshot is valid but for a different configuration
};

const char* to_string(ErrorKind k) noexcept;

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `crc` chains
/// incremental computations; pass 0 to start.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t crc = 0) noexcept;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Doubles are stored as their IEEE-754 bit pattern; they round-trip
  /// exactly (doubles appear only in reporting fields, never on the
  /// simulation path).
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u64) raw bytes.
  void str(const std::string& s);
  void bytes(const void* p, std::size_t n);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::string str();
  void bytes(void* out, std::size_t n);

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  /// Throws kCorrupt unless the whole input was consumed — catches
  /// writer/reader schema drift early.
  void expect_end() const;

 private:
  /// Throws SnapshotError(kTruncated) unless n more bytes are available.
  void need(std::size_t n) const;

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace asyncmac::snapshot
