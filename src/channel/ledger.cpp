#include "channel/ledger.h"

#include <algorithm>

#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::channel {

namespace {
// Telemetry instruments (write-only observability; see DESIGN.md §5 and
// docs/OBSERVABILITY.md). The hot paths (add, feedback) never touch these
// directly: deltas accumulate in plain Ledger members and reach the
// atomic instruments through flush_telemetry() on the cold path.
struct LedgerTelemetry {
  telemetry::Counter& adds =
      telemetry::Registry::global().counter("channel.transmissions");
  telemetry::Counter& feedback_queries =
      telemetry::Registry::global().counter("channel.feedback_queries");
  telemetry::Counter& feedback_scanned =
      telemetry::Registry::global().counter("channel.feedback_scanned");
  telemetry::Counter& feedback_fast_silence =
      telemetry::Registry::global().counter("channel.feedback_fast_silence");
  telemetry::Counter& prunes =
      telemetry::Registry::global().counter("channel.prunes");
  telemetry::Counter& pruned_entries =
      telemetry::Registry::global().counter("channel.pruned_entries");
  telemetry::MaxGauge& window_peak =
      telemetry::Registry::global().gauge("channel.window_peak");

  static LedgerTelemetry& get() {
    static LedgerTelemetry t;
    return t;
  }
};
}  // namespace

void Ledger::add(Transmission t) {
  AM_CHECK_MSG(t.begin >= last_begin_,
               "transmissions must be added in begin order: " << t.begin
                                                              << " < "
                                                              << last_begin_);
  AM_CHECK(t.end > t.begin);
  AM_CHECK(t.station != kInvalidStation);
  t.decided = false;
  t.successful = false;
  last_begin_ = t.begin;
  latest_end_ = std::max(latest_end_, t.end);
  max_duration_ = std::max(max_duration_, t.duration());
  ++stats_.transmissions;
  if (t.is_control) ++stats_.control_transmissions;
  window_.push_back(t);
  ++pending_adds_;
  if (window_.size() > window_peak_local_) window_peak_local_ = window_.size();
}

bool Ledger::overlaps_other(const Transmission& t) const {
  // window_ is sorted by begin. Only a bounded neighborhood can overlap t:
  // predecessors whose begin is within max_duration_ of t.begin, and
  // successors whose begin precedes t.end.
  auto lo = std::lower_bound(
      window_.begin(), window_.end(), t.begin,
      [](const Transmission& a, Tick b) { return a.begin < b; });
  for (auto it = lo; it != window_.begin();) {
    --it;
    if (it->begin + max_duration_ <= t.begin) break;
    if (it->end > t.begin &&
        !(it->station == t.station && it->begin == t.begin &&
          it->end == t.end))
      return true;
  }
  for (auto it = lo; it != window_.end(); ++it) {
    if (it->begin >= t.end) break;
    if (it->station == t.station && it->begin == t.begin && it->end == t.end)
      continue;  // t itself
    if (intervals_overlap(it->begin, it->end, t.begin, t.end)) return true;
  }
  return false;
}

void Ledger::finalize_until(Tick now) {
  // Begins are non-decreasing but ends are not, so decidable entries can be
  // interleaved with pending ones; walk the undecided suffix and flip each
  // entry whose end has passed, then advance the decided prefix marker.
  for (std::size_t i = finalized_; i < window_.size(); ++i) {
    Transmission& t = window_[i];
    if (t.decided || t.end > now) continue;
    t.successful = !overlaps_other(t);
    t.decided = true;
    if (t.successful) {
      ++stats_.successful;
      if (t.is_control) {
        stats_.successful_control_time += t.duration();
      } else {
        ++stats_.successful_packets;
        stats_.successful_packet_time += t.duration();
      }
    } else {
      ++stats_.collided;
    }
  }
  while (finalized_ < window_.size() && window_[finalized_].decided)
    ++finalized_;
}

Feedback Ledger::feedback(Tick s, Tick t) {
  AM_CHECK(s < t);
  ++pending_queries_;
  // O(1) silence fast paths. An empty window trivially yields silence.
  // When s >= latest_end_ every registered interval has end <= s, so none
  // overlaps [s, t) or ends inside (s, t] — but undecided entries must
  // still be finalized so LedgerStats stay current for adaptive
  // adversaries reading channel_stats() mid-run.
  if (window_.empty()) {
    ++pending_fast_silence_;
    return Feedback::kSilence;
  }
  if (s >= latest_end_) {
    ++pending_fast_silence_;
    if (finalized_ < window_.size()) finalize_until(t);
    return Feedback::kSilence;
  }
  finalize_until(t);
  // Only a bounded neighborhood of the slot can matter: an entry with
  // begin <= s - max_duration_ has end <= s, so it neither overlaps [s, t)
  // nor ends inside (s, t]. The window is begin-sorted, so seek the first
  // entry that can reach the slot (the same trick overlaps_other uses)
  // instead of scanning from the front — O(log W + neighborhood) per slot
  // instead of O(W).
  const Tick lo_begin = s - max_duration_;
  auto it = std::lower_bound(
      window_.begin(), window_.end(), lo_begin,
      [](const Transmission& a, Tick b) { return a.begin <= b; });
  bool any_overlap = false;
  std::uint64_t scanned = 0;
  auto record = [&](Feedback fb) {
    pending_scanned_ += scanned;
    return fb;
  };
  // Scan the neighborhood: begins in (s - max_duration_, t).
  for (; it != window_.end(); ++it) {
    const Transmission& tx = *it;
    if (tx.begin >= t) break;
    ++scanned;
    if (tx.end > s && tx.end <= t) {
      AM_CHECK(tx.decided);  // end <= t means finalize_until(t) decided it
      if (tx.successful) return record(Feedback::kAck);
    }
    if (!any_overlap) any_overlap = intervals_overlap(tx.begin, tx.end, s, t);
  }
  return record(any_overlap ? Feedback::kBusy : Feedback::kSilence);
}

void Ledger::prune_before(Tick horizon) {
  finalize_until(horizon);
  std::uint64_t removed = 0;
  while (!window_.empty() && window_.front().decided &&
         window_.front().end <= horizon) {
    if (keep_history_) history_.push_back(window_.front());
    window_.pop_front();
    AM_CHECK(finalized_ > 0);
    --finalized_;
    ++removed;
  }
  ++pending_prunes_;
  pending_pruned_entries_ += removed;
  flush_telemetry();
}

void Ledger::flush_telemetry() {
  if ((pending_adds_ | pending_queries_ | pending_scanned_ |
       pending_fast_silence_ | pending_prunes_ | pending_pruned_entries_ |
       window_peak_local_) == 0)
    return;
  LedgerTelemetry& t = LedgerTelemetry::get();
  t.adds.add(pending_adds_);
  t.feedback_queries.add(pending_queries_);
  t.feedback_scanned.add(pending_scanned_);
  t.feedback_fast_silence.add(pending_fast_silence_);
  t.prunes.add(pending_prunes_);
  t.pruned_entries.add(pending_pruned_entries_);
  t.window_peak.observe(window_peak_local_);
  pending_adds_ = pending_queries_ = pending_scanned_ =
      pending_fast_silence_ = pending_prunes_ = pending_pruned_entries_ = 0;
  window_peak_local_ = 0;
}

bool Ledger::transmission_successful(StationId station, Tick end) const {
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if (it->station == station && it->end == end) {
      AM_CHECK(it->decided);
      return it->successful;
    }
    // Sorted by begin: once begins are so old they cannot reach `end`,
    // no earlier entry can have this end time.
    if (it->begin + max_duration_ < end) break;
  }
  AM_CHECK_MSG(false, "no transmission of station " << station
                                                    << " ending at " << end);
  return false;
}

}  // namespace asyncmac::channel
