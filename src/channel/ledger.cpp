#include "channel/ledger.h"

#include <algorithm>
#include <functional>

#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::channel {

namespace {
// Telemetry instruments (write-only observability; see DESIGN.md §5 and
// docs/OBSERVABILITY.md). The hot paths (add, feedback) never touch these
// directly: deltas accumulate in plain Ledger members and reach the
// atomic instruments through flush_telemetry() on the cold path.
struct LedgerTelemetry {
  telemetry::Counter& adds =
      telemetry::Registry::global().counter("channel.transmissions");
  telemetry::Counter& feedback_queries =
      telemetry::Registry::global().counter("channel.feedback_queries");
  telemetry::Counter& feedback_scanned =
      telemetry::Registry::global().counter("channel.feedback_scanned");
  telemetry::Counter& feedback_fast_silence =
      telemetry::Registry::global().counter("channel.feedback_fast_silence");
  telemetry::Counter& memo_hits =
      telemetry::Registry::global().counter("channel.memo_hits");
  telemetry::Counter& memo_misses =
      telemetry::Registry::global().counter("channel.memo_misses");
  telemetry::Counter& prunes =
      telemetry::Registry::global().counter("channel.prunes");
  telemetry::Counter& pruned_entries =
      telemetry::Registry::global().counter("channel.pruned_entries");
  telemetry::MaxGauge& window_peak =
      telemetry::Registry::global().gauge("channel.window_peak");

  static LedgerTelemetry& get() {
    static LedgerTelemetry t;
    return t;
  }
};
}  // namespace

void Ledger::add(Transmission t) {
  AM_CHECK_MSG(t.begin >= last_begin_,
               "transmissions must be added in begin order: " << t.begin
                                                              << " < "
                                                              << last_begin_);
  AM_CHECK(t.end > t.begin);
  AM_CHECK(t.station != kInvalidStation);
  t.decided = false;
  t.successful = false;
  t.admission = static_cast<std::uint8_t>(Admission::kOk);
  if (restrained_.enabled()) {
    const Admission verdict = admit(t.begin, t.end);
    t.admission = static_cast<std::uint8_t>(verdict);
    if (verdict == Admission::kJammed) {
      ++stats_.jammed;
    } else if (verdict == Admission::kRejected) {
      // Suppressed at the radio: decided-unsuccessful right here, and
      // counted as collided so successful + collided keeps tracking the
      // decided count exactly as finalize_until maintains it.
      t.decided = true;
      ++stats_.rejected;
      ++stats_.collided;
    }
  }
  last_begin_ = t.begin;
  latest_end_ = std::max(latest_end_, t.end);
  const Tick prev_max_duration = max_duration_;
  max_duration_ = std::max(max_duration_, t.duration());
  ++stats_.transmissions;
  if (t.is_control) ++stats_.control_transmissions;
  window_.push_back(t);
  // The memo survives an add that provably cannot change a replay of its
  // query: the feedback scan only reaches entries with begin < t (so an
  // entry beginning at or after memo_t_ is never scanned — the common
  // case, since stations at one boundary query [s, t) and then commit
  // their next slot beginning at t), and the scan's seek point depends on
  // max_duration_, so a new global maximum shifts the scanned count.
  if (t.begin < memo_t_ || max_duration_ != prev_max_duration)
    memo_valid_ = false;
  ++pending_adds_;
  if (window_.size() > window_peak_local_) window_peak_local_ = window_.size();
}

Admission Ledger::admit(Tick begin, Tick end) {
  // Lazily drop ends at or before the new begin (half-open intervals:
  // a transmission ending exactly at `begin` is off the air already).
  while (!live_ends_.empty() && live_ends_.front() <= begin) {
    std::pop_heap(live_ends_.begin(), live_ends_.end(), std::greater<Tick>());
    live_ends_.pop_back();
  }
  if (live_ends_.size() < restrained_.k) {
    live_ends_.push_back(end);
    std::push_heap(live_ends_.begin(), live_ends_.end(), std::greater<Tick>());
    return Admission::kOk;
  }
  if (restrained_.jam) {
    // A jammed transmission still occupies the medium (and so counts
    // toward the on-air total seen by later adds).
    live_ends_.push_back(end);
    std::push_heap(live_ends_.begin(), live_ends_.end(), std::greater<Tick>());
    return Admission::kJammed;
  }
  return Admission::kRejected;
}

bool Ledger::overlaps_other(const Transmission& t) const {
  // window_ is sorted by begin. Only a bounded neighborhood can overlap t:
  // predecessors whose begin is within max_duration_ of t.begin, and
  // successors whose begin precedes t.end.
  auto lo = std::lower_bound(
      window_.begin(), window_.end(), t.begin,
      [](const Transmission& a, Tick b) { return a.begin < b; });
  for (auto it = lo; it != window_.begin();) {
    --it;
    if (it->begin + max_duration_ <= t.begin) break;
    if (static_cast<Admission>(it->admission) == Admission::kRejected)
      continue;  // never reached the medium
    if (it->end > t.begin &&
        !(it->station == t.station && it->begin == t.begin &&
          it->end == t.end))
      return true;
  }
  for (auto it = lo; it != window_.end(); ++it) {
    if (it->begin >= t.end) break;
    if (static_cast<Admission>(it->admission) == Admission::kRejected)
      continue;  // never reached the medium
    if (it->station == t.station && it->begin == t.begin && it->end == t.end)
      continue;  // t itself
    if (intervals_overlap(it->begin, it->end, t.begin, t.end)) return true;
  }
  return false;
}

void Ledger::finalize_until(Tick now) {
  // Begins are non-decreasing but ends are not, so decidable entries can be
  // interleaved with pending ones; walk the undecided suffix and flip each
  // entry whose end has passed, then advance the decided prefix marker.
  for (std::size_t i = finalized_; i < window_.size(); ++i) {
    Transmission& t = window_[i];
    if (t.decided || t.end > now) continue;
    t.successful = !overlaps_other(t);
    t.decided = true;
    if (t.successful) {
      ++stats_.successful;
      if (t.is_control) {
        stats_.successful_control_time += t.duration();
      } else {
        ++stats_.successful_packets;
        stats_.successful_packet_time += t.duration();
      }
    } else {
      ++stats_.collided;
    }
  }
  while (finalized_ < window_.size() && window_[finalized_].decided)
    ++finalized_;
}

Feedback Ledger::feedback_slow(Tick s, Tick t) {
  // The O(1) silence fast paths (and the pending_queries_ accounting) ran
  // inline in the header; from here on the slot provably neighbors at
  // least one live interval.
  ++pending_memo_misses_;
  finalize_until(t);
  // Only a bounded neighborhood of the slot can matter: an entry with
  // begin <= s - max_duration_ has end <= s, so it neither overlaps [s, t)
  // nor ends inside (s, t]. The window is begin-sorted, so seek the first
  // entry that can reach the slot (the same trick overlaps_other uses)
  // instead of scanning from the front — O(log W + neighborhood) per slot
  // instead of O(W).
  const Tick lo_begin = s - max_duration_;
  auto it = std::lower_bound(
      window_.begin(), window_.end(), lo_begin,
      [](const Transmission& a, Tick b) { return a.begin <= b; });
  bool any_overlap = false;
  std::uint64_t scanned = 0;
  auto record = [&](Feedback fb) {
    pending_scanned_ += scanned;
    memo_valid_ = true;
    memo_s_ = s;
    memo_t_ = t;
    memo_fb_ = fb;
    memo_scanned_ = scanned;
    return fb;
  };
  // Scan the neighborhood: begins in (s - max_duration_, t).
  for (; it != window_.end(); ++it) {
    const Transmission& tx = *it;
    if (tx.begin >= t) break;
    ++scanned;
    // Rejected transmissions are invisible to feedback: counted in the
    // scan telemetry (the entry was visited) but neither ack nor busy.
    if (static_cast<Admission>(tx.admission) == Admission::kRejected)
      continue;
    if (tx.end > s && tx.end <= t) {
      AM_CHECK(tx.decided);  // end <= t means finalize_until(t) decided it
      if (tx.successful) return record(Feedback::kAck);
    }
    if (!any_overlap) any_overlap = intervals_overlap(tx.begin, tx.end, s, t);
  }
  return record(any_overlap ? Feedback::kBusy : Feedback::kSilence);
}

void Ledger::prune_before(Tick horizon) {
  finalize_until(horizon);
  memo_valid_ = false;
  std::uint64_t removed = 0;
  while (!window_.empty() && window_.front().decided &&
         window_.front().end <= horizon) {
    if (keep_history_) history_.push_back(window_.front());
    window_.pop_front();
    AM_CHECK(finalized_ > 0);
    --finalized_;
    ++removed;
  }
  ++pending_prunes_;
  pending_pruned_entries_ += removed;
  flush_telemetry();
}

void Ledger::flush_telemetry() {
  if ((pending_adds_ | pending_queries_ | pending_scanned_ |
       pending_fast_silence_ | pending_memo_hits_ | pending_memo_misses_ |
       pending_prunes_ | pending_pruned_entries_ | window_peak_local_) == 0)
    return;
  LedgerTelemetry& t = LedgerTelemetry::get();
  t.adds.add(pending_adds_);
  t.feedback_queries.add(pending_queries_);
  t.feedback_scanned.add(pending_scanned_);
  t.feedback_fast_silence.add(pending_fast_silence_);
  t.memo_hits.add(pending_memo_hits_);
  t.memo_misses.add(pending_memo_misses_);
  t.prunes.add(pending_prunes_);
  t.pruned_entries.add(pending_pruned_entries_);
  t.window_peak.observe(window_peak_local_);
  pending_adds_ = pending_queries_ = pending_scanned_ =
      pending_fast_silence_ = pending_memo_hits_ = pending_memo_misses_ =
          pending_prunes_ = pending_pruned_entries_ = 0;
  window_peak_local_ = 0;
}

namespace {

void save_transmission(snapshot::Writer& w, const Transmission& t) {
  w.u32(t.station);
  w.i64(t.begin);
  w.i64(t.end);
  w.boolean(t.is_control);
  w.u64(t.packet);
  w.boolean(t.successful);
  w.boolean(t.decided);
  w.u8(t.admission);
}

Transmission load_transmission(snapshot::Reader& r) {
  Transmission t;
  t.station = r.u32();
  t.begin = r.i64();
  t.end = r.i64();
  t.is_control = r.boolean();
  t.packet = r.u64();
  t.successful = r.boolean();
  t.decided = r.boolean();
  t.admission = r.u8();
  return t;
}

}  // namespace

void Ledger::save_state(snapshot::Writer& w) const {
  w.boolean(keep_history_);
  w.u32(restrained_.k);
  w.boolean(restrained_.jam);
  w.u64(window_.size());
  for (const Transmission& t : window_) save_transmission(w, t);
  w.u64(finalized_);
  w.u64(history_.size());
  for (const Transmission& t : history_) save_transmission(w, t);
  w.u64(stats_.transmissions);
  w.u64(stats_.successful);
  w.u64(stats_.collided);
  w.u64(stats_.control_transmissions);
  w.u64(stats_.successful_packets);
  w.i64(stats_.successful_packet_time);
  w.i64(stats_.successful_control_time);
  w.u64(stats_.rejected);
  w.u64(stats_.jammed);
  w.i64(last_begin_);
  w.i64(latest_end_);
  w.i64(max_duration_);
  // Batched telemetry deltas ride along so a resumed run flushes the same
  // not-yet-flushed counts (telemetry itself is outside the determinism
  // contract, but carrying the deltas keeps it *approximately* seamless).
  w.u64(pending_adds_);
  w.u64(pending_queries_);
  w.u64(pending_scanned_);
  w.u64(pending_fast_silence_);
  w.u64(pending_memo_hits_);
  w.u64(pending_memo_misses_);
  w.u64(pending_prunes_);
  w.u64(pending_pruned_entries_);
  w.u64(window_peak_local_);
}

void Ledger::load_state(snapshot::Reader& r) {
  memo_valid_ = false;  // cold memo; replay is identical to re-scanning
  const bool keep_history = r.boolean();
  if (keep_history != keep_history_)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "ledger keep_history flag differs from the snapshot's");
  const std::uint32_t restrained_k = r.u32();
  const bool restrained_jam = r.boolean();
  if (restrained_k != restrained_.k || restrained_jam != restrained_.jam)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "ledger restrained-channel spec differs from the snapshot's");
  const std::uint64_t window_count = r.u64();
  window_.clear();
  for (std::uint64_t i = 0; i < window_count; ++i)
    window_.push_back(load_transmission(r));
  finalized_ = static_cast<std::size_t>(r.u64());
  if (finalized_ > window_.size())
    throw snapshot::SnapshotError(snapshot::ErrorKind::kCorrupt,
                                  "ledger finalized cursor beyond window");
  const std::uint64_t history_count = r.u64();
  history_.clear();
  history_.reserve(static_cast<std::size_t>(history_count));
  for (std::uint64_t i = 0; i < history_count; ++i)
    history_.push_back(load_transmission(r));
  stats_.transmissions = r.u64();
  stats_.successful = r.u64();
  stats_.collided = r.u64();
  stats_.control_transmissions = r.u64();
  stats_.successful_packets = r.u64();
  stats_.successful_packet_time = r.i64();
  stats_.successful_control_time = r.i64();
  stats_.rejected = r.u64();
  stats_.jammed = r.u64();
  last_begin_ = r.i64();
  latest_end_ = r.i64();
  max_duration_ = r.i64();
  pending_adds_ = r.u64();
  pending_queries_ = r.u64();
  pending_scanned_ = r.u64();
  pending_fast_silence_ = r.u64();
  pending_memo_hits_ = r.u64();
  pending_memo_misses_ = r.u64();
  pending_prunes_ = r.u64();
  pending_pruned_entries_ = r.u64();
  window_peak_local_ = static_cast<std::size_t>(r.u64());
  // Rebuild the admission heap from the non-rejected window entries.
  // Observably equivalent to the pre-save heap: any end the saver had
  // already lazily popped (or pruned) lies at or below every future
  // begin, so it would be popped again before the next admission count.
  live_ends_.clear();
  if (restrained_.enabled()) {
    for (const Transmission& t : window_)
      if (static_cast<Admission>(t.admission) != Admission::kRejected)
        live_ends_.push_back(t.end);
    std::make_heap(live_ends_.begin(), live_ends_.end(), std::greater<Tick>());
  }
}

bool Ledger::transmission_successful(StationId station, Tick end) const {
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if (it->station == station && it->end == end) {
      AM_CHECK(it->decided);
      return it->successful;
    }
    // Sorted by begin: once begins are so old they cannot reach `end`,
    // no earlier entry can have this end time.
    if (it->begin + max_duration_ < end) break;
  }
  AM_CHECK_MSG(false, "no transmission of station " << station
                                                    << " ending at " << end);
  return false;
}

}  // namespace asyncmac::channel
