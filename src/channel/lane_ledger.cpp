#include "channel/lane_ledger.h"

#include <algorithm>
#include <functional>

#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::channel {

namespace {
// The same channel.* instruments the scalar Ledger flushes into — the
// registry resolves by name, so a lockstep lane contributes to exactly
// the counters its scalar twin would (see ledger.cpp).
struct LaneLedgerTelemetry {
  telemetry::Counter& adds =
      telemetry::Registry::global().counter("channel.transmissions");
  telemetry::Counter& feedback_queries =
      telemetry::Registry::global().counter("channel.feedback_queries");
  telemetry::Counter& feedback_scanned =
      telemetry::Registry::global().counter("channel.feedback_scanned");
  telemetry::Counter& feedback_fast_silence =
      telemetry::Registry::global().counter("channel.feedback_fast_silence");
  telemetry::Counter& memo_hits =
      telemetry::Registry::global().counter("channel.memo_hits");
  telemetry::Counter& memo_misses =
      telemetry::Registry::global().counter("channel.memo_misses");
  telemetry::Counter& prunes =
      telemetry::Registry::global().counter("channel.prunes");
  telemetry::Counter& pruned_entries =
      telemetry::Registry::global().counter("channel.pruned_entries");
  telemetry::MaxGauge& window_peak =
      telemetry::Registry::global().gauge("channel.window_peak");

  static LaneLedgerTelemetry& get() {
    static LaneLedgerTelemetry t;
    return t;
  }
};
}  // namespace

void LaneLedger::Window::push(const Transmission& t) {
  begin.push_back(t.begin);
  end.push_back(t.end);
  station.push_back(t.station);
  packet.push_back(t.packet);
  is_control.push_back(t.is_control ? 1 : 0);
  // Success flags start cleared; a rejected transmission arrives decided
  // (the scalar add() flips it before the window push).
  successful.push_back(0);
  decided.push_back(t.decided ? 1 : 0);
  admission.push_back(t.admission);
}

void LaneLedger::Window::compact() {
  // Amortized O(1): only when the dead prefix dominates the live tail.
  if (head < 64 || head < size() - head) return;
  const auto h = static_cast<std::ptrdiff_t>(head);
  begin.erase(begin.begin(), begin.begin() + h);
  end.erase(end.begin(), end.begin() + h);
  station.erase(station.begin(), station.begin() + h);
  packet.erase(packet.begin(), packet.begin() + h);
  is_control.erase(is_control.begin(), is_control.begin() + h);
  successful.erase(successful.begin(), successful.begin() + h);
  decided.erase(decided.begin(), decided.begin() + h);
  admission.erase(admission.begin(), admission.begin() + h);
  finalized -= head;
  head = 0;
}

LaneLedger::LaneLedger(std::uint32_t lanes, bool keep_history,
                       RestrainedSpec restrained)
    : K_(lanes), keep_history_(keep_history), restrained_(restrained) {
  AM_REQUIRE(lanes >= 1, "lane ledger needs at least one lane");
  win_.resize(K_);
  history_.resize(K_);
  live_ends_.resize(K_);
  stats_.resize(K_);
  live_count_.assign(K_, 0);
  fin_pending_.assign(K_, 0);
  latest_end_.assign(K_, 0);
  last_begin_.assign(K_, 0);
  max_duration_.assign(K_, 0);
  memo_valid_.assign(K_, 0);
  memo_s_.assign(K_, 0);
  memo_t_.assign(K_, 0);
  memo_fb_.assign(K_, static_cast<std::uint8_t>(Feedback::kSilence));
  memo_scanned_.assign(K_, 0);
  pend_adds_.assign(K_, 0);
  pend_queries_.assign(K_, 0);
  pend_scanned_.assign(K_, 0);
  pend_fast_silence_.assign(K_, 0);
  pend_memo_hits_.assign(K_, 0);
  pend_memo_misses_.assign(K_, 0);
  pend_prunes_.assign(K_, 0);
  pend_pruned_entries_.assign(K_, 0);
  window_peak_.assign(K_, 0);
  code_.assign(K_, 0);
  rare_.assign(K_, 0);
}

LaneLedger::~LaneLedger() {
  for (std::uint32_t k = 0; k < K_; ++k) flush_telemetry(k);
}

void LaneLedger::add(std::uint32_t lane, const Transmission& t_in) {
  Transmission t = t_in;
  AM_CHECK_MSG(t.begin >= last_begin_[lane],
               "transmissions must be added in begin order: "
                   << t.begin << " < " << last_begin_[lane]);
  AM_CHECK(t.end > t.begin);
  AM_CHECK(t.station != kInvalidStation);
  t.decided = false;
  t.successful = false;
  t.admission = static_cast<std::uint8_t>(Admission::kOk);
  if (restrained_.enabled()) {
    const Admission verdict = admit(lane, t.begin, t.end);
    t.admission = static_cast<std::uint8_t>(verdict);
    if (verdict == Admission::kJammed) {
      ++stats_[lane].jammed;
    } else if (verdict == Admission::kRejected) {
      // Scalar rule (ledger.cpp add): decided-unsuccessful at add, and
      // counted as collided so successful + collided keeps tracking the
      // decided count.
      t.decided = true;
      ++stats_[lane].rejected;
      ++stats_[lane].collided;
    }
  }
  last_begin_[lane] = t.begin;
  latest_end_[lane] = std::max(latest_end_[lane], t.end);
  const Tick prev_max_duration = max_duration_[lane];
  max_duration_[lane] = std::max(prev_max_duration, t.duration());
  ++stats_[lane].transmissions;
  if (t.is_control) ++stats_[lane].control_transmissions;
  win_[lane].push(t);
  ++live_count_[lane];
  fin_pending_[lane] = 1;
  // The scalar Ledger's memo-survival rule (ledger.cpp): an add can only
  // be ignored when its begin is at or past memo_t_ and it did not grow
  // the global max duration (which shifts the scan's seek point).
  if (t.begin < memo_t_[lane] || max_duration_[lane] != prev_max_duration)
    memo_valid_[lane] = 0;
  ++pend_adds_[lane];
  if (win_[lane].live() > window_peak_[lane])
    window_peak_[lane] = win_[lane].live();
}

Admission LaneLedger::admit(std::uint32_t lane, Tick begin, Tick end) {
  std::vector<Tick>& heap = live_ends_[lane];
  while (!heap.empty() && heap.front() <= begin) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<Tick>());
    heap.pop_back();
  }
  if (heap.size() < restrained_.k) {
    heap.push_back(end);
    std::push_heap(heap.begin(), heap.end(), std::greater<Tick>());
    return Admission::kOk;
  }
  if (restrained_.jam) {
    heap.push_back(end);
    std::push_heap(heap.begin(), heap.end(), std::greater<Tick>());
    return Admission::kJammed;
  }
  return Admission::kRejected;
}

bool LaneLedger::overlaps_other(const Window& w, Tick max_dur,
                                std::size_t i) const {
  const Tick b = w.begin[i];
  const Tick e = w.end[i];
  const StationId st = w.station[i];
  // w.begin[head..size) is sorted; seek as the scalar overlaps_other does.
  const std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(w.begin.begin() + static_cast<std::ptrdiff_t>(w.head),
                       w.begin.end(), b) -
      w.begin.begin());
  for (std::size_t j = lo; j > w.head;) {
    --j;
    if (w.begin[j] + max_dur <= b) break;
    if (static_cast<Admission>(w.admission[j]) == Admission::kRejected)
      continue;  // never reached the medium
    if (w.end[j] > b &&
        !(w.station[j] == st && w.begin[j] == b && w.end[j] == e))
      return true;
  }
  for (std::size_t j = lo; j < w.size(); ++j) {
    if (w.begin[j] >= e) break;
    if (static_cast<Admission>(w.admission[j]) == Admission::kRejected)
      continue;  // never reached the medium
    if (w.station[j] == st && w.begin[j] == b && w.end[j] == e)
      continue;  // the entry itself
    if (intervals_overlap(w.begin[j], w.end[j], b, e)) return true;
  }
  return false;
}

void LaneLedger::finalize_until(std::uint32_t lane, Tick now) {
  Window& w = win_[lane];
  LedgerStats& st = stats_[lane];
  const Tick max_dur = max_duration_[lane];
  for (std::size_t i = w.finalized; i < w.size(); ++i) {
    if (w.decided[i] || w.end[i] > now) continue;
    const bool ok = !overlaps_other(w, max_dur, i);
    w.successful[i] = ok ? 1 : 0;
    w.decided[i] = 1;
    if (ok) {
      ++st.successful;
      const Tick dur = w.end[i] - w.begin[i];
      if (w.is_control[i]) {
        st.successful_control_time += dur;
      } else {
        ++st.successful_packets;
        st.successful_packet_time += dur;
      }
    } else {
      ++st.collided;
    }
  }
  while (w.finalized < w.size() && w.decided[w.finalized]) ++w.finalized;
  fin_pending_[lane] = w.finalized < w.size() ? 1 : 0;
}

Feedback LaneLedger::feedback_slow(std::uint32_t lane, Tick s, Tick t) {
  ++pend_memo_misses_[lane];
  finalize_until(lane, t);
  Window& w = win_[lane];
  // Seek the first entry that can reach the slot (begin > s - max_dur);
  // the scalar's lower_bound with an a.begin <= b comparator is an
  // upper_bound over the flat begin array.
  const Tick lo_begin = s - max_duration_[lane];
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(w.begin.begin() + static_cast<std::ptrdiff_t>(w.head),
                       w.begin.end(), lo_begin) -
      w.begin.begin());
  bool any_overlap = false;
  std::uint64_t scanned = 0;
  const auto record = [&](Feedback fb) {
    pend_scanned_[lane] += scanned;
    memo_valid_[lane] = 1;
    memo_s_[lane] = s;
    memo_t_[lane] = t;
    memo_fb_[lane] = static_cast<std::uint8_t>(fb);
    memo_scanned_[lane] = scanned;
    return fb;
  };
  for (; i < w.size(); ++i) {
    if (w.begin[i] >= t) break;
    ++scanned;
    // Rejected transmissions are invisible to feedback (scalar rule:
    // counted in the scan telemetry, neither ack nor busy).
    if (static_cast<Admission>(w.admission[i]) == Admission::kRejected)
      continue;
    if (w.end[i] > s && w.end[i] <= t) {
      AM_CHECK(w.decided[i]);  // end <= t means finalize_until(t) decided it
      if (w.successful[i]) return record(Feedback::kAck);
    }
    if (!any_overlap)
      any_overlap = intervals_overlap(w.begin[i], w.end[i], s, t);
  }
  return record(any_overlap ? Feedback::kBusy : Feedback::kSilence);
}

bool LaneLedger::feedback_all(Tick s, Tick t,
                              const std::vector<std::uint32_t>& active,
                              Feedback* fb) {
  AM_CHECK(s < t);
  // Pass 0 — cohort-wide fast-silence gate: the vectorized analogue of
  // the scalar Ledger's two O(1) silence fast paths. On mostly-listen
  // workloads (the dominant shape for arrow protocols) every lane is
  // code 0 — empty live window, or a query starting at/after every known
  // transmission end with no finalization pending — and the whole call
  // collapses to one AND-reduction plus three unit-stride counter loops,
  // all over flat arrays with no calls: exactly what the auto-vectorizer
  // lifts to SIMD. Byte-identity: code 0 touches only pend_queries_ and
  // pend_fast_silence_, the same increments the general pass makes.
  if (active.size() == K_) {
    std::uint32_t all_quiet = 1;
    for (std::uint32_t k = 0; k < K_; ++k)
      all_quiet &= static_cast<std::uint32_t>(live_count_[k] == 0) |
                   (static_cast<std::uint32_t>(s >= latest_end_[k]) &
                    static_cast<std::uint32_t>(fin_pending_[k] == 0));
    if (all_quiet != 0) {
      for (std::uint32_t k = 0; k < K_; ++k) ++pend_queries_[k];
      for (std::uint32_t k = 0; k < K_; ++k) ++pend_fast_silence_[k];
      for (std::uint32_t k = 0; k < K_; ++k) fb[k] = Feedback::kSilence;
      return true;
    }
    // Pass 0b — cohort-wide memo-replay gate. Under a synchronous slot
    // policy every station's slot in a round spans the same [s, t), so
    // once one event in a busy round pays the seek-and-scan, the other
    // n-1 replay the memo — in every lane at once when the cohort moves
    // in step (the common case for seed-varying lanes on deterministic
    // protocols). The gate checks each lane would classify exactly code 2
    // (live window, s below latest end, memo match) and then applies the
    // code-2 increments verbatim, skipping the general pass.
    std::uint32_t all_memo = 1;
    for (std::uint32_t k = 0; k < K_; ++k)
      all_memo &= static_cast<std::uint32_t>(live_count_[k] != 0) &
                  static_cast<std::uint32_t>(s < latest_end_[k]) &
                  static_cast<std::uint32_t>(memo_valid_[k] != 0) &
                  static_cast<std::uint32_t>(s == memo_s_[k]) &
                  static_cast<std::uint32_t>(t == memo_t_[k]);
    if (all_memo != 0) {
      for (std::uint32_t k = 0; k < K_; ++k) ++pend_queries_[k];
      for (std::uint32_t k = 0; k < K_; ++k) ++pend_memo_hits_[k];
      for (std::uint32_t k = 0; k < K_; ++k)
        pend_scanned_[k] += memo_scanned_[k];
      for (std::uint32_t k = 0; k < K_; ++k)
        fb[k] = static_cast<Feedback>(memo_fb_[k]);
      return false;
    }
  }
  // Pass 1 — branch-light classification over the contiguous summary
  // arrays. The common outcomes (fast silence, memo replay) complete
  // here; pass 0 already drained the all-quiet events, so this runs only
  // when some lane has live entries or pending finalization.
  std::size_t nrare = 0;
  for (std::size_t a = 0; a < active.size(); ++a) {
    const std::uint32_t k = active[a];
    ++pend_queries_[k];
    const bool empty = live_count_[k] == 0;
    const bool fast = s >= latest_end_[k];
    const bool memo =
        memo_valid_[k] != 0 && s == memo_s_[k] && t == memo_t_[k];
    // 0 = fast silence, 1 = fast silence needing finalize catch-up,
    // 2 = memo replay, 3 = slow seek-and-scan.
    const std::uint8_t code =
        empty ? 0 : fast ? (fin_pending_[k] ? 1 : 0) : memo ? 2 : 3;
    pend_fast_silence_[k] += code <= 1;
    pend_scanned_[k] += code == 2 ? memo_scanned_[k] : 0;
    pend_memo_hits_[k] += code == 2;
    fb[k] = code == 2 ? static_cast<Feedback>(memo_fb_[k])
                      : Feedback::kSilence;
    code_[k] = code;
    rare_[nrare] = k;
    nrare += (code == 1) | (code == 3);
  }
  // Pass 2 — the rare lanes only: finalize catch-up keeps LedgerStats
  // current for adaptive adversaries; the slow tail is the scalar
  // Ledger's seek-and-scan, ported to the flat arrays.
  for (std::size_t a = 0; a < nrare; ++a) {
    const std::uint32_t k = rare_[a];
    if (code_[k] == 1)
      finalize_until(k, t);
    else
      fb[k] = feedback_slow(k, s, t);
  }
  return false;
}

void LaneLedger::prune_before(std::uint32_t lane, Tick horizon) {
  finalize_until(lane, horizon);
  memo_valid_[lane] = 0;
  Window& w = win_[lane];
  std::uint64_t removed = 0;
  while (w.head < w.size() && w.decided[w.head] && w.end[w.head] <= horizon) {
    if (keep_history_) {
      Transmission t;
      t.station = w.station[w.head];
      t.begin = w.begin[w.head];
      t.end = w.end[w.head];
      t.is_control = w.is_control[w.head] != 0;
      t.packet = w.packet[w.head];
      t.successful = w.successful[w.head] != 0;
      t.decided = true;
      t.admission = w.admission[w.head];
      history_[lane].push_back(t);
    }
    AM_CHECK(w.finalized > w.head);
    ++w.head;
    ++removed;
  }
  live_count_[lane] = static_cast<std::uint32_t>(w.live());
  ++pend_prunes_[lane];
  pend_pruned_entries_[lane] += removed;
  flush_telemetry(lane);
  w.compact();
}

void LaneLedger::flush_telemetry(std::uint32_t lane) {
  if ((pend_adds_[lane] | pend_queries_[lane] | pend_scanned_[lane] |
       pend_fast_silence_[lane] | pend_memo_hits_[lane] |
       pend_memo_misses_[lane] | pend_prunes_[lane] |
       pend_pruned_entries_[lane] | window_peak_[lane]) == 0)
    return;
  LaneLedgerTelemetry& t = LaneLedgerTelemetry::get();
  t.adds.add(pend_adds_[lane]);
  t.feedback_queries.add(pend_queries_[lane]);
  t.feedback_scanned.add(pend_scanned_[lane]);
  t.feedback_fast_silence.add(pend_fast_silence_[lane]);
  t.memo_hits.add(pend_memo_hits_[lane]);
  t.memo_misses.add(pend_memo_misses_[lane]);
  t.prunes.add(pend_prunes_[lane]);
  t.pruned_entries.add(pend_pruned_entries_[lane]);
  t.window_peak.observe(static_cast<std::size_t>(window_peak_[lane]));
  pend_adds_[lane] = pend_queries_[lane] = pend_scanned_[lane] =
      pend_fast_silence_[lane] = pend_memo_hits_[lane] =
          pend_memo_misses_[lane] = pend_prunes_[lane] =
              pend_pruned_entries_[lane] = 0;
  window_peak_[lane] = 0;
}

bool LaneLedger::transmission_successful(std::uint32_t lane,
                                         StationId station, Tick end) const {
  const Window& w = win_[lane];
  for (std::size_t i = w.size(); i-- > w.head;) {
    if (w.station[i] == station && w.end[i] == end) {
      AM_CHECK(w.decided[i]);
      return w.successful[i] != 0;
    }
    // Sorted by begin: once begins are so old they cannot reach `end`,
    // no earlier entry can have this end time (scalar rule).
    if (w.begin[i] + max_duration_[lane] < end) break;
  }
  AM_CHECK_MSG(false, "no transmission of station " << station
                                                    << " ending at " << end);
  return false;
}

void LaneLedger::save_state(std::uint32_t lane, snapshot::Writer& w) const {
  // Ledger::save_state's exact field order (channel/ledger.cpp — the KEEP
  // IN SYNC note there points back here).
  const Window& win = win_[lane];
  const auto entry = [&](std::size_t i) {
    w.u32(win.station[i]);
    w.i64(win.begin[i]);
    w.i64(win.end[i]);
    w.boolean(win.is_control[i] != 0);
    w.u64(win.packet[i]);
    w.boolean(win.successful[i] != 0);
    w.boolean(win.decided[i] != 0);
    w.u8(win.admission[i]);
  };
  w.boolean(keep_history_);
  w.u32(restrained_.k);
  w.boolean(restrained_.jam);
  w.u64(win.live());
  for (std::size_t i = win.head; i < win.size(); ++i) entry(i);
  w.u64(win.finalized - win.head);
  w.u64(history_[lane].size());
  for (const Transmission& t : history_[lane]) {
    w.u32(t.station);
    w.i64(t.begin);
    w.i64(t.end);
    w.boolean(t.is_control);
    w.u64(t.packet);
    w.boolean(t.successful);
    w.boolean(t.decided);
    w.u8(t.admission);
  }
  const LedgerStats& st = stats_[lane];
  w.u64(st.transmissions);
  w.u64(st.successful);
  w.u64(st.collided);
  w.u64(st.control_transmissions);
  w.u64(st.successful_packets);
  w.i64(st.successful_packet_time);
  w.i64(st.successful_control_time);
  w.u64(st.rejected);
  w.u64(st.jammed);
  w.i64(last_begin_[lane]);
  w.i64(latest_end_[lane]);
  w.i64(max_duration_[lane]);
  w.u64(pend_adds_[lane]);
  w.u64(pend_queries_[lane]);
  w.u64(pend_scanned_[lane]);
  w.u64(pend_fast_silence_[lane]);
  w.u64(pend_memo_hits_[lane]);
  w.u64(pend_memo_misses_[lane]);
  w.u64(pend_prunes_[lane]);
  w.u64(pend_pruned_entries_[lane]);
  w.u64(window_peak_[lane]);
}

}  // namespace asyncmac::channel
