// asyncmac/channel/transmission.h
//
// A single transmission interval on the shared channel. In the paper's
// model a transmitting slot of a station occupies exactly the slot
// interval [begin, end), and the transmission is *successful* iff no other
// transmission overlaps it in continuous time (Section II).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace asyncmac::channel {

/// Admission verdict of a transmission under the k-restrained channel
/// (Hradovich–Klonowski–Kowalski, arXiv 1808.02216): the channel admits
/// at most k concurrently on-air transmissions. Excess transmissions are
/// either jammed (they occupy the medium and destroy every overlapping
/// transmission, like a classic collision) or rejected (the channel
/// refuses them outright: they never reach the medium, are invisible to
/// feedback, and cannot collide with anything). On the unrestrained
/// channel every transmission is kOk.
enum class Admission : std::uint8_t {
  kOk = 0,        ///< admitted: competes on the medium normally
  kJammed = 1,    ///< over capacity, transmitted anyway: jams the medium
  kRejected = 2,  ///< over capacity, suppressed: never reaches the medium
};

/// Restrained-channel configuration. k == 0 means unrestrained (the
/// paper's default model); k >= 1 bounds concurrent on-air transmissions.
struct RestrainedSpec {
  /// Maximum concurrently on-air (non-rejected) transmissions; 0 = off.
  std::uint32_t k = 0;
  /// True: excess transmissions jam (occupy the medium, collide);
  /// false: excess transmissions are rejected (suppressed at the radio).
  bool jam = true;

  bool enabled() const noexcept { return k != 0; }
  bool operator==(const RestrainedSpec& o) const noexcept {
    return k == o.k && jam == o.jam;
  }
  bool operator!=(const RestrainedSpec& o) const noexcept {
    return !(*this == o);
  }
};

struct Transmission {
  StationId station = kInvalidStation;
  Tick begin = 0;  ///< inclusive start (base-station continuous time, ticks)
  Tick end = 0;    ///< exclusive end
  /// True when the transmission carries no packet (an "empty signal");
  /// only protocols in the control-message model may set this.
  bool is_control = false;
  /// Sequence number of the carried packet (meaningless when is_control).
  PacketSeq packet = 0;
  /// Filled in by the ledger once decidable (at time >= end).
  bool successful = false;
  /// Ledger-internal: true once `successful` has been finalized.
  bool decided = false;
  /// Restrained-channel admission verdict, fixed at add() time (always
  /// Admission::kOk on the unrestrained channel).
  std::uint8_t admission = 0;

  Tick duration() const noexcept { return end - begin; }
};

/// Half-open interval overlap: [a1,a2) and [b1,b2) overlap iff each starts
/// before the other ends. Touching endpoints do NOT overlap — two
/// back-to-back transmissions are both successful, matching the
/// continuous-time base station of the paper.
inline constexpr bool intervals_overlap(Tick a1, Tick a2, Tick b1,
                                        Tick b2) noexcept {
  return a1 < b2 && b1 < a2;
}

}  // namespace asyncmac::channel
