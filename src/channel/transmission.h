// asyncmac/channel/transmission.h
//
// A single transmission interval on the shared channel. In the paper's
// model a transmitting slot of a station occupies exactly the slot
// interval [begin, end), and the transmission is *successful* iff no other
// transmission overlaps it in continuous time (Section II).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace asyncmac::channel {

struct Transmission {
  StationId station = kInvalidStation;
  Tick begin = 0;  ///< inclusive start (base-station continuous time, ticks)
  Tick end = 0;    ///< exclusive end
  /// True when the transmission carries no packet (an "empty signal");
  /// only protocols in the control-message model may set this.
  bool is_control = false;
  /// Sequence number of the carried packet (meaningless when is_control).
  PacketSeq packet = 0;
  /// Filled in by the ledger once decidable (at time >= end).
  bool successful = false;
  /// Ledger-internal: true once `successful` has been finalized.
  bool decided = false;

  Tick duration() const noexcept { return end - begin; }
};

/// Half-open interval overlap: [a1,a2) and [b1,b2) overlap iff each starts
/// before the other ends. Touching endpoints do NOT overlap — two
/// back-to-back transmissions are both successful, matching the
/// continuous-time base station of the paper.
inline constexpr bool intervals_overlap(Tick a1, Tick a2, Tick b1,
                                        Tick b2) noexcept {
  return a1 < b2 && b1 < a2;
}

}  // namespace asyncmac::channel
