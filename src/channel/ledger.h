// asyncmac/channel/ledger.h
//
// The transmission ledger is the heart of the channel model: it records
// every transmission interval and answers, exactly, the two questions the
// paper's feedback model poses at the end of each station slot [s, t):
//
//   ack     — did a *successful* transmission end at a time e in (s, t] ?
//   busy    — otherwise, did any transmission overlap [s, t) ?
//   silence — otherwise.
//
// (Every instant of a station's timeline belongs to exactly one of its
// slots because end times are charged to the slot via the half-open rule
// e in (s, t].)
//
// A transmission T = [a, b) is successful iff no other transmission
// overlaps it (Section II). Success is decidable at time b: any
// transmission starting at or after b cannot overlap a past half-open
// interval. The ledger therefore finalizes transmissions lazily once the
// caller's clock passes their end.
//
// Contract with the engine: transmissions are added in non-decreasing
// order of begin time, and feedback(s, t) is only queried when every
// transmission with begin < t has already been added. The simulation
// engine meets this by processing slot boundaries in time order
// (a transmission is registered at its slot's start event).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "channel/transmission.h"
#include "snapshot/fwd.h"
#include "util/check.h"
#include "util/types.h"

namespace asyncmac::channel {

/// Cumulative channel statistics (survive pruning).
struct LedgerStats {
  std::uint64_t transmissions = 0;        ///< total transmissions registered
  std::uint64_t successful = 0;           ///< finalized successful
  std::uint64_t collided = 0;             ///< finalized unsuccessful
  std::uint64_t control_transmissions = 0;///< control ("empty signal") slots
  std::uint64_t successful_packets = 0;   ///< successful non-control
  Tick successful_packet_time = 0;  ///< total duration of successful
                                    ///< packet transmissions; the complement
                                    ///< is the paper's "wasted time" (Def. 2)
  Tick successful_control_time = 0;
  // Restrained channel (always 0 when k == 0). Rejected transmissions are
  // counted in `collided` too — they are decided-unsuccessful at add() —
  // so successful + collided still equals the decided count.
  std::uint64_t rejected = 0;  ///< suppressed over-capacity transmissions
  std::uint64_t jammed = 0;    ///< over-capacity transmissions sent anyway
};

class Ledger {
 public:
  /// When keep_history is true every finalized transmission is retained in
  /// full_history() for trace rendering; otherwise finalized transmissions
  /// are pruned once out of range. `restrained` selects the k-restrained
  /// channel (channel/transmission.h); the default is unrestrained.
  explicit Ledger(bool keep_history = false, RestrainedSpec restrained = {})
      : restrained_(restrained), keep_history_(keep_history) {}
  ~Ledger() { flush_telemetry(); }

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Register a transmission occupying [t.begin, t.end). Begins must be
  /// non-decreasing across calls and durations strictly positive.
  /// Precondition (engine-guaranteed): one station's transmissions never
  /// overlap each other — a station occupies one slot at a time — so a
  /// (station, begin, end) triple identifies a transmission uniquely.
  /// On a restrained channel the admission verdict is fixed here: the
  /// on-air count at t.begin (non-rejected entries with end > t.begin)
  /// decides kOk vs kJammed/kRejected. Rejected transmissions are decided
  /// unsuccessful immediately and never touch the medium — overlap scans
  /// and feedback classification skip them.
  void add(Transmission t);

  /// Exact feedback for a slot [s, t). Uniform for transmitters and
  /// listeners: a transmitter's own (whole-slot) transmission makes the
  /// rule yield ack exactly when that transmission succeeded and busy
  /// when it collided. Requires t <= the latest safe query time (all
  /// transmissions beginning before t already added). Cost is
  /// O(log W + neighborhood), not O(W): the begin-sorted window is seeked
  /// with lower_bound to the first entry that can reach the slot. Two O(1)
  /// silence fast paths skip the seek entirely: an empty window, and a
  /// slot starting at or after latest_end() (every registered interval is
  /// already over, so nothing can overlap [s, t) or ack-end inside it).
  /// Defined inline so the engines' per-event loops (scalar Engine and the
  /// CohortEngine lane loop, which calls it once per lane per event)
  /// resolve the fast paths without a cross-TU call; only the
  /// neighborhood scan lives out of line.
  Feedback feedback(Tick s, Tick t) {
    AM_CHECK(s < t);
    ++pending_queries_;
    // O(1) silence fast paths. An empty window trivially yields silence.
    // When s >= latest_end_ every registered interval has end <= s, so
    // none overlaps [s, t) or ends inside (s, t] — but undecided entries
    // must still be finalized so LedgerStats stay current for adaptive
    // adversaries reading channel_stats() mid-run.
    if (window_.empty()) {
      ++pending_fast_silence_;
      return Feedback::kSilence;
    }
    if (s >= latest_end_) {
      ++pending_fast_silence_;
      if (finalized_ < window_.size()) finalize_until(t);
      return Feedback::kSilence;
    }
    // Repeat-query memo: stations whose slots share boundaries (all of
    // them under a synchronous policy) ask about the same [s, t) back to
    // back, and with no add/prune in between the window contents, the
    // decided flags relevant to [s, t) (feedback_slow finalizes through t
    // on the first query) and hence the answer AND the scan length are
    // all unchanged — so replay the recorded result and charge exactly
    // the telemetry the real scan would have. A pure cache: cold-memo
    // (e.g. freshly resumed) and warm-memo runs produce identical
    // feedback, stats and counters, so it is deliberately not serialized.
    if (memo_valid_ && s == memo_s_ && t == memo_t_) {
      pending_scanned_ += memo_scanned_;
      ++pending_memo_hits_;
      return memo_fb_;
    }
    return feedback_slow(s, t);
  }

  /// Push batched telemetry deltas into the global atomic instruments.
  /// feedback()/add() accumulate plain-integer counters on the hot path;
  /// prune_before(), the destructor and the engine's run() exit flush
  /// them, so instrument readings lag a live run by at most one prune
  /// interval.
  void flush_telemetry();

  /// Finalize the success flag of all transmissions with end <= now.
  void finalize_until(Tick now);

  /// Drop finalized transmissions with end <= horizon; the engine passes
  /// the minimum current-slot start over all stations, so no future
  /// feedback query can reference a pruned interval.
  void prune_before(Tick horizon);

  /// Was the most recently finalized transmission of `station` ending
  /// exactly at time `end` successful? Used by the engine to decide packet
  /// delivery for a transmit slot that just ended.
  bool transmission_successful(StationId station, Tick end) const;

  const LedgerStats& stats() const noexcept { return stats_; }

  /// The restrained-channel configuration this ledger was built with.
  const RestrainedSpec& restrained() const noexcept { return restrained_; }

  /// Live window (unpruned), ordered by begin.
  const std::deque<Transmission>& window() const noexcept { return window_; }

  /// All finalized transmissions ever (empty unless keep_history).
  const std::vector<Transmission>& full_history() const noexcept {
    return history_;
  }

  /// Largest end time among registered transmissions (0 when none yet).
  Tick latest_end() const noexcept { return latest_end_; }

  /// Largest duration among registered transmissions (0 when none yet).
  /// Feedback queries only scan entries with begin > s - max_duration();
  /// differential tests target slots straddling exactly that boundary.
  Tick max_duration() const noexcept { return max_duration_; }

  /// Checkpoint/resume (docs/CHECKPOINT.md): serialize/restore the full
  /// mutable state — live window, finalized cursor, archived history,
  /// cumulative stats and the batched telemetry deltas. load_state
  /// requires the ledger to have been constructed with the same
  /// keep_history flag (SnapshotError::kMismatch otherwise).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  /// The seek-and-scan tail of feedback(): neighborhood classification for
  /// slots the inline fast paths cannot decide.
  Feedback feedback_slow(Tick s, Tick t);
  bool overlaps_other(const Transmission& t) const;
  /// Restrained admission at add() time: pops stale ends lazily, counts
  /// the on-air transmissions at `begin` and records `end` when the new
  /// transmission reaches the medium. Returns the admission verdict.
  Admission admit(Tick begin, Tick end);

  std::deque<Transmission> window_;
  std::size_t finalized_ = 0;  ///< window_[0..finalized_) have final flags
  RestrainedSpec restrained_;
  /// Min-heap of non-rejected transmission ends (restrained mode only).
  /// Ends <= the current add's begin are popped lazily; the remainder is
  /// the on-air count. Not serialized: load_state rebuilds it from the
  /// non-rejected window entries, which is observably equivalent (pruned
  /// ends lie at or below the horizon, below every future begin).
  std::vector<Tick> live_ends_;

  // Repeat-query memo (see feedback()). Valid only while the window is
  // untouched: add() and prune_before() invalidate, load_state() starts
  // cold. Not serialized — replay is observably identical to re-scanning.
  bool memo_valid_ = false;
  Tick memo_s_ = 0;
  Tick memo_t_ = 0;
  Feedback memo_fb_ = Feedback::kSilence;
  std::uint64_t memo_scanned_ = 0;
  std::vector<Transmission> history_;
  LedgerStats stats_;
  Tick last_begin_ = 0;
  Tick latest_end_ = 0;
  Tick max_duration_ = 0;
  bool keep_history_;

  // Batched telemetry deltas (plain integers on the hot path; see
  // flush_telemetry).
  std::uint64_t pending_adds_ = 0;
  std::uint64_t pending_queries_ = 0;
  std::uint64_t pending_scanned_ = 0;
  std::uint64_t pending_fast_silence_ = 0;
  // Memo effectiveness: a hit replays the memo, a miss runs the seek-and-
  // scan tail. Fast-silence queries are neither (the memo never sees them).
  std::uint64_t pending_memo_hits_ = 0;
  std::uint64_t pending_memo_misses_ = 0;
  std::uint64_t pending_prunes_ = 0;
  std::uint64_t pending_pruned_entries_ = 0;
  std::size_t window_peak_local_ = 0;
};

}  // namespace asyncmac::channel
