// asyncmac/channel/lane_ledger.h
//
// Lane-major SoA substrate for sim::CohortEngine's lockstep fast path: K
// independent channel ledgers ("lanes") whose hot state — window sizes,
// latest-end watermarks, repeat-query memos, pending telemetry deltas —
// lives in contiguous per-lane arrays, and whose transmission windows are
// stored field-split (begins, ends, decided flags, ... each in its own
// flat array per lane) instead of as deques of Transmission structs.
//
// Why it exists: a lockstep cohort asks the *same* feedback question
// [s, t) of every lane at every slot-end event. With K scalar Ledger
// objects that is K pointer chases through scattered heap allocations per
// event; here feedback_all() classifies all K lanes in one pass over flat
// arrays (empty window / fast silence / memo replay / slow scan), written
// as plain auto-vectorization-friendly loops — no intrinsics, and an
// optional -march=native CI leg exercises the wide codegen.
//
// Byte-identity contract (the same one sim/cohort_engine.h carries): each
// lane behaves observably exactly like a scalar channel::Ledger fed the
// same calls — identical feedback, identical LedgerStats at every
// observation point, identical telemetry deltas — and save_state(lane)
// writes the exact byte layout of Ledger::save_state, so a retiring or
// detaching lane materializes a scalar Ledger bit-for-bit. KEEP IN SYNC
// with channel/ledger.{h,cpp}: any change to the scalar feedback rules,
// memo invalidation, telemetry counters or serialization layout must land
// here too (and vice versa); tests/test_cohort.cpp pins the equivalence
// across the golden corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::channel {

class LaneLedger {
 public:
  /// `lanes` ledgers, all with the same keep_history flag and
  /// restrained-channel spec (cohort eligibility requires both shared
  /// across lanes).
  LaneLedger(std::uint32_t lanes, bool keep_history,
             RestrainedSpec restrained = {});
  ~LaneLedger();  ///< flushes every lane's pending telemetry

  LaneLedger(const LaneLedger&) = delete;
  LaneLedger& operator=(const LaneLedger&) = delete;

  std::uint32_t lanes() const noexcept { return K_; }

  /// Ledger::add for one lane: begins non-decreasing per lane, positive
  /// duration, memo invalidation under the scalar rule.
  void add(std::uint32_t lane, const Transmission& t);

  /// Feedback for slot [s, t) for every lane in `active`, written to
  /// fb[lane]. Classification (the common case: empty window, fast
  /// silence, memo replay) is one branch-light pass over the contiguous
  /// per-lane summary arrays; only lanes classified "slow" fall through
  /// to the scalar seek-and-scan tail. Returns true iff the cohort-wide
  /// all-quiet gate fired — every lane took the O(1) silence fast path,
  /// so the caller knows fb is kSilence across the board without reading
  /// it back (CohortEngine keys its idle slot fast path off this).
  bool feedback_all(Tick s, Tick t, const std::vector<std::uint32_t>& active,
                    Feedback* fb);

  /// The pass-0 all-quiet gate condition of feedback_all, exposed inline
  /// (no call, no writes) so CohortEngine can fuse it with its own
  /// idle-station gate: true iff a slot beginning at `s` takes the O(1)
  /// silence fast path in every lane. Holding implies feedback_all would
  /// write kSilence for all lanes and touch only the counters that
  /// apply_all_quiet() bumps.
  bool all_quiet(Tick s) const noexcept {
    std::uint32_t quiet = 1;
    for (std::uint32_t k = 0; k < K_; ++k)
      quiet &= static_cast<std::uint32_t>(live_count_[k] == 0) |
               (static_cast<std::uint32_t>(s >= latest_end_[k]) &
                static_cast<std::uint32_t>(fin_pending_[k] == 0));
    return quiet != 0;
  }

  /// The batched-counter increments of `count` all-quiet classifications
  /// — exactly what feedback_all's pass 0 records per event. Call in
  /// place of feedback_all, once per event (or once per batched run of
  /// events, all of which must satisfy all_quiet()).
  void apply_all_quiet(std::uint64_t count = 1) noexcept {
    for (std::uint32_t k = 0; k < K_; ++k) pend_queries_[k] += count;
    for (std::uint32_t k = 0; k < K_; ++k) pend_fast_silence_[k] += count;
  }

  /// The pass-0b memo-replay gate condition of feedback_all, inline:
  /// true iff every lane would classify slot [s, t) exactly as a memo
  /// replay (live window, s below the latest end, memo match). Holding
  /// implies feedback_all would write memo_feedback(k) for each lane and
  /// touch only the counters that apply_all_memo() bumps.
  bool all_memo(Tick s, Tick t) const noexcept {
    std::uint32_t memo = 1;
    for (std::uint32_t k = 0; k < K_; ++k)
      memo &= static_cast<std::uint32_t>(live_count_[k] != 0) &
              static_cast<std::uint32_t>(s < latest_end_[k]) &
              static_cast<std::uint32_t>(memo_valid_[k] != 0) &
              static_cast<std::uint32_t>(s == memo_s_[k]) &
              static_cast<std::uint32_t>(t == memo_t_[k]);
    return memo != 0;
  }

  /// Lane k's memoized feedback byte (valid only while all_memo() /
  /// memo_valid holds — callers pair this with an all_memo() check).
  std::uint8_t memo_feedback(std::uint32_t k) const noexcept {
    return memo_fb_[k];
  }

  /// The batched-counter increments of `count` memo-replay
  /// classifications — exactly what feedback_all's pass 0b records per
  /// event. Call in place of feedback_all, once per batched run of
  /// events, all of which must satisfy all_memo().
  void apply_all_memo(std::uint64_t count) noexcept {
    for (std::uint32_t k = 0; k < K_; ++k) pend_queries_[k] += count;
    for (std::uint32_t k = 0; k < K_; ++k) pend_memo_hits_[k] += count;
    for (std::uint32_t k = 0; k < K_; ++k)
      pend_scanned_[k] += count * memo_scanned_[k];
  }

  /// Ledger::prune_before for one lane (finalize, memo invalidation,
  /// decided-prefix pop, history archiving, telemetry flush).
  void prune_before(std::uint32_t lane, Tick horizon);

  /// Cumulative per-lane stats, exactly the scalar Ledger's at the same
  /// point in the call sequence.
  const LedgerStats& stats(std::uint32_t lane) const { return stats_[lane]; }

  /// The restrained-channel spec shared by every lane.
  const RestrainedSpec& restrained() const noexcept { return restrained_; }

  /// Ledger::transmission_successful for one lane: was lane `lane`'s most
  /// recent transmission of `station` ending exactly at `end` successful?
  /// The cohort engine consults this on restrained channels before
  /// delivering — an ack can be another station's under reject mode.
  bool transmission_successful(std::uint32_t lane, StationId station,
                               Tick end) const;

  /// Push one lane's batched telemetry deltas into the global atomic
  /// instruments (the same channel.* names the scalar Ledger uses).
  void flush_telemetry(std::uint32_t lane);

  /// Ledger::save_state's exact byte layout, written from lane state.
  void save_state(std::uint32_t lane, snapshot::Writer& w) const;

 private:
  /// One lane's transmission window, field-split. Live entries occupy
  /// [head, size) of every array; prune pops by advancing head and
  /// compacts the arrays once the dead prefix dominates.
  struct Window {
    std::vector<Tick> begin;
    std::vector<Tick> end;
    std::vector<StationId> station;
    std::vector<PacketSeq> packet;
    std::vector<std::uint8_t> is_control;
    std::vector<std::uint8_t> successful;
    std::vector<std::uint8_t> decided;
    std::vector<std::uint8_t> admission;
    std::size_t head = 0;
    std::size_t finalized = 0;  ///< absolute: [head, finalized) decided

    std::size_t size() const noexcept { return begin.size(); }
    std::size_t live() const noexcept { return begin.size() - head; }
    void push(const Transmission& t);
    void compact();
  };

  Feedback feedback_slow(std::uint32_t lane, Tick s, Tick t);
  void finalize_until(std::uint32_t lane, Tick now);
  bool overlaps_other(const Window& w, Tick max_dur, std::size_t i) const;
  /// The scalar Ledger::admit, per lane: lazy pops, on-air count, verdict.
  Admission admit(std::uint32_t lane, Tick begin, Tick end);

  std::uint32_t K_;
  bool keep_history_;
  RestrainedSpec restrained_;
  /// Per-lane min-heaps of non-rejected transmission ends (restrained
  /// mode only; empty vectors otherwise). Mirrors Ledger::live_ends_.
  std::vector<std::vector<Tick>> live_ends_;
  std::vector<Window> win_;
  std::vector<std::vector<Transmission>> history_;
  std::vector<LedgerStats> stats_;

  // ---- cross-lane summary arrays, indexed by lane (the hot state the
  // feedback_all classification pass reads/writes contiguously) ----
  std::vector<std::uint32_t> live_count_;  ///< mirror of win_[k].live()
  std::vector<std::uint8_t> fin_pending_;  ///< 1 iff finalized < size
  std::vector<Tick> latest_end_;
  std::vector<Tick> last_begin_;
  std::vector<Tick> max_duration_;
  std::vector<std::uint8_t> memo_valid_;
  std::vector<Tick> memo_s_;
  std::vector<Tick> memo_t_;
  std::vector<std::uint8_t> memo_fb_;
  std::vector<std::uint64_t> memo_scanned_;

  // ---- per-lane batched telemetry deltas (contiguous; same fields and
  // flush discipline as the scalar Ledger's pending_* members) ----
  std::vector<std::uint64_t> pend_adds_;
  std::vector<std::uint64_t> pend_queries_;
  std::vector<std::uint64_t> pend_scanned_;
  std::vector<std::uint64_t> pend_fast_silence_;
  std::vector<std::uint64_t> pend_memo_hits_;
  std::vector<std::uint64_t> pend_memo_misses_;
  std::vector<std::uint64_t> pend_prunes_;
  std::vector<std::uint64_t> pend_pruned_entries_;
  std::vector<std::uint64_t> window_peak_;

  // feedback_all scratch (sized K at construction, reused every event):
  // per-lane classification code and the packed list of rare lanes.
  std::vector<std::uint8_t> code_;
  std::vector<std::uint32_t> rare_;
};

}  // namespace asyncmac::channel
