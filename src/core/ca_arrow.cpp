#include "core/ca_arrow.h"

#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::core {

std::unique_ptr<sim::Protocol> CaArrowProtocol::clone() const {
  return std::make_unique<CaArrowProtocol>(*this);
}

void CaArrowProtocol::advance_turn(const sim::StationContext& ctx) {
  turn_ = (turn_ % ctx.n()) + 1;
}

SlotAction CaArrowProtocol::begin_phase(sim::StationContext& ctx) {
  if (turn_ == ctx.id()) {
    ++turns_taken_;
    static auto& turns =
        telemetry::Registry::global().counter("core.ca_arrow.turns");
    turns.add();
    countdown_ = 2ULL * ctx.bound_r();
    state_ = State::kCountdown;
  } else {
    heard_transmission_ = false;
    state_ = State::kAwaitSequenceEnd;
  }
  return SlotAction::kListen;
}

// KEEP IN SYNC: sim::CohortEngine lane-izes this automaton — next_action,
// begin_phase, advance_turn AND the save_state field order below are
// ported verbatim onto SoA arrays in sim/cohort_engine.cpp (pinned there
// by byte-identity tests against this implementation). A semantic or
// serialization change here must be mirrored there.
SlotAction CaArrowProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (state_ == State::kInit) {
    AM_CHECK(!prev);
    turn_ = 1;
    return begin_phase(ctx);
  }
  AM_CHECK(prev.has_value());

  switch (state_) {
    case State::kInit:
      break;  // unreachable

    case State::kCountdown:
      if (--countdown_ > 0) return SlotAction::kListen;
      if (ctx.queue_empty()) {
        state_ = State::kNoise;
        return SlotAction::kTransmitControl;
      }
      state_ = State::kDrain;
      return SlotAction::kTransmitPacket;

    case State::kNoise:
      // Our empty signal completed (collision-freedom makes it an ack,
      // which tests assert at the trace level).
      advance_turn(ctx);
      return begin_phase(ctx);

    case State::kDrain:
      // Keep transmitting while packets remain — including packets that
      // arrived during the drain ("transmits all the packets waiting in
      // i's queue").
      if (!ctx.queue_empty()) return SlotAction::kTransmitPacket;
      advance_turn(ctx);
      return begin_phase(ctx);

    case State::kAwaitSequenceEnd:
      if (prev->feedback != Feedback::kSilence) {
        heard_transmission_ = true;
        return SlotAction::kListen;
      }
      if (heard_transmission_) {
        advance_turn(ctx);
        return begin_phase(ctx);
      }
      return SlotAction::kListen;
  }
  AM_CHECK(false);
  return SlotAction::kListen;
}

void CaArrowProtocol::save_state(snapshot::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.u32(turn_);
  w.u64(countdown_);
  w.boolean(heard_transmission_);
  w.u64(turns_taken_);
}

void CaArrowProtocol::load_state(snapshot::Reader& r, sim::StationContext&) {
  state_ = static_cast<State>(r.u8());
  turn_ = r.u32();
  countdown_ = r.u64();
  heard_transmission_ = r.boolean();
  turns_taken_ = r.u64();
}

}  // namespace asyncmac::core
