#include "core/bounds.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace asyncmac::core {

std::uint64_t abs_threshold0(std::uint32_t R) { return 3ULL * R; }

std::uint64_t abs_threshold1(std::uint32_t R) {
  return 4ULL * R * R + 3ULL * R;
}

std::uint64_t abs_slots_per_phase(std::uint32_t R) {
  return (R + 1ULL) + abs_threshold1(R) + 1ULL;
}

std::uint32_t abs_phases(std::uint32_t n) {
  AM_REQUIRE(n >= 1, "n must be >= 1");
  return static_cast<std::uint32_t>(std::bit_width(n)) + 1;
}

std::uint64_t abs_slot_bound(std::uint32_t n, std::uint32_t R) {
  return static_cast<std::uint64_t>(abs_phases(n)) * abs_slots_per_phase(R);
}

double sst_lower_bound_slots(std::uint32_t n, std::uint32_t r) {
  AM_REQUIRE(r >= 2, "lower-bound formula needs r >= 2");
  return static_cast<double>(r) *
         (std::log2(static_cast<double>(n)) /
              std::log2(static_cast<double>(r)) +
          1.0);
}

std::uint64_t abs_max_silent_slots(std::uint32_t R) {
  return 4ULL * R * R + 4ULL * R + 2ULL;
}

std::uint64_t long_silence_threshold(std::uint32_t R) {
  return R * abs_max_silent_slots(R);
}

std::uint64_t sync_countdown_slots(std::uint32_t R) {
  return R * long_silence_threshold(R);
}

std::uint64_t arrow_A(std::uint32_t n, std::uint32_t R) {
  return abs_slot_bound(n, R);
}

double arrow_B(std::uint32_t r, std::uint32_t R) {
  // Paper's closed form; our protocol constants are slightly more
  // conservative, so scale from our thresholds instead:
  // worst observed long silence <= (threshold + countdown + 1) slots of up
  // to r time units each.
  const double slots = static_cast<double>(long_silence_threshold(R) +
                                           sync_countdown_slots(R) + 1);
  return static_cast<double>(r) * slots + 2.0;
}

ArrowBounds arrow_bounds(std::uint32_t n, std::uint32_t R, std::uint32_t r,
                         util::Ratio rho, double b_units) {
  AM_REQUIRE(rho < util::Ratio::one(), "Theorem 3 requires rho < 1");
  ArrowBounds out;
  const double p = rho.to_double();
  const double Rn = static_cast<double>(R);
  out.A = static_cast<double>(arrow_A(n, R));
  out.B = arrow_B(r, R);
  const double nRA = static_cast<double>(n) * Rn * out.A;
  out.S = (nRA + b_units + out.B) / (1.0 - p);
  out.L0 = out.S + ((nRA + out.S) * p + b_units) / (1.0 - p);
  out.L1 = (out.S * p + nRA * p + b_units + out.B) +
           (static_cast<double>(n) + 1.0) * Rn * out.A * p + Rn * p + b_units;
  out.L = std::max(out.L0, out.L1);
  return out;
}

double ca_arrow_bound(std::uint32_t n, std::uint32_t R, util::Ratio rho,
                      double b_units) {
  AM_REQUIRE(rho < util::Ratio::one(), "Theorem 6 requires rho < 1");
  const double p = rho.to_double();
  return (2.0 * n * R * R * (1.0 + p) + b_units) / (1.0 - p);
}

}  // namespace asyncmac::core
