#include "core/abs.h"

#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::core {

LeaderElectionFactory AbsAutomaton::factory() {
  return [](StationId id, std::uint32_t /*n*/, std::uint32_t bound_r) {
    return std::make_unique<AbsAutomaton>(standard(id, bound_r));
  };
}

AbsAutomaton::Config AbsAutomaton::standard(std::uint32_t id,
                                            std::uint32_t R) {
  Config c;
  c.id = id;
  c.R = R;
  c.threshold0 = abs_threshold0(R);
  c.threshold1 = abs_threshold1(R);
  return c;
}

AbsAutomaton::AbsAutomaton(const Config& config) : cfg_(config) {
  AM_REQUIRE(cfg_.R >= 1, "R must be >= 1");
  AM_REQUIRE(cfg_.threshold0 >= 1 && cfg_.threshold1 >= 1,
             "thresholds must be positive");
}

SlotAction AbsAutomaton::begin_listen_loop() {
  const bool bit = (cfg_.id >> phase_) & 1U;
  target_ = bit ? cfg_.threshold1 : cfg_.threshold0;
  counter_ = 0;
  state_ = State::kListenLoop;
  return SlotAction::kListen;
}

SlotAction AbsAutomaton::next(const std::optional<sim::SlotResult>& prev) {
  if (outcome_ != Outcome::kActive) return SlotAction::kListen;

  if (!prev) {
    // First slot of the election: box (1).
    state_ = State::kWaitSilence;
    ++slots_;
    return SlotAction::kListen;
  }

  SlotAction action = SlotAction::kListen;
  switch (state_) {
    case State::kWaitSilence:
      switch (prev->feedback) {
        case Feedback::kSilence:
          action = begin_listen_loop();
          break;
        case Feedback::kBusy:
          action = SlotAction::kListen;  // keep waiting for silence
          break;
        case Feedback::kAck:
          // Someone else's transmission already succeeded: the election is
          // decided; leave quietly.
          outcome_ = Outcome::kEliminated;
          state_ = State::kDone;
          return SlotAction::kListen;
      }
      break;

    case State::kListenLoop:
      if (prev->feedback == Feedback::kSilence) {
        if (++counter_ >= target_) {
          state_ = State::kTransmit;
          action = SlotAction::kTransmitPacket;  // caller may remap
        } else {
          action = SlotAction::kListen;
        }
      } else {
        // busy or ack: another station got there first (Lemma 3) or won.
        outcome_ = Outcome::kEliminated;
        state_ = State::kDone;
        return SlotAction::kListen;
      }
      break;

    case State::kTransmit:
      if (prev->feedback == Feedback::kAck) {
        outcome_ = Outcome::kWon;
        state_ = State::kDone;
        return SlotAction::kListen;
      }
      // Collision: stay alive, advance to the next bit (next phase).
      ++phase_;
      state_ = State::kWaitSilence;
      action = SlotAction::kListen;
      break;

    case State::kDone:
      return SlotAction::kListen;
  }
  ++slots_;
  return action;
}

void AbsAutomaton::save_state(snapshot::Writer& w) const {
  w.u32(cfg_.id);
  w.u32(cfg_.R);
  w.u64(cfg_.threshold0);
  w.u64(cfg_.threshold1);
  w.u8(static_cast<std::uint8_t>(state_));
  w.u8(static_cast<std::uint8_t>(outcome_));
  w.u32(phase_);
  w.u64(counter_);
  w.u64(target_);
  w.u64(slots_);
}

void AbsAutomaton::load_state(snapshot::Reader& r) {
  cfg_.id = r.u32();
  cfg_.R = r.u32();
  cfg_.threshold0 = r.u64();
  cfg_.threshold1 = r.u64();
  state_ = static_cast<State>(r.u8());
  outcome_ = static_cast<Outcome>(r.u8());
  phase_ = r.u32();
  counter_ = r.u64();
  target_ = r.u64();
  slots_ = r.u64();
}

AbsProtocol::AbsProtocol(std::uint64_t threshold0, std::uint64_t threshold1)
    : override_t0_(threshold0), override_t1_(threshold1) {}

std::unique_ptr<sim::Protocol> AbsProtocol::clone() const {
  return std::make_unique<AbsProtocol>(*this);
}

SlotAction AbsProtocol::next_action(const std::optional<sim::SlotResult>& prev,
                                    sim::StationContext& ctx) {
  if (!automaton_) {
    AM_CHECK(!prev);
    auto cfg = AbsAutomaton::standard(ctx.id(), ctx.bound_r());
    if (override_t0_) cfg.threshold0 = *override_t0_;
    if (override_t1_) cfg.threshold1 = *override_t1_;
    automaton_.emplace(cfg);
  }
  SlotAction a = automaton_->next(prev);
  if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
    a = SlotAction::kTransmitControl;  // pure leader election (no message)
  return a;
}

void AbsProtocol::save_state(snapshot::Writer& w) const {
  w.boolean(automaton_.has_value());
  if (automaton_) automaton_->save_state(w);
}

void AbsProtocol::load_state(snapshot::Reader& r, sim::StationContext& ctx) {
  if (r.boolean()) {
    // Any valid config works as the emplacement seed — load_state
    // overwrites it with the snapshotted one.
    automaton_.emplace(AbsAutomaton::standard(ctx.id(), ctx.bound_r()));
    automaton_->load_state(r);
  } else {
    automaton_.reset();
  }
}

}  // namespace asyncmac::core
