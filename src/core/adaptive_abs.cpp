#include "core/adaptive_abs.h"

#include <bit>

#include "core/bounds.h"
#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::core {

SlotAction AdaptiveAbsProtocol::restart_barrier() {
  state_ = State::kBarrier;
  silent_run_ = 0;
  // AO-ARRoW's long-silence rule: this many consecutive silent slots
  // prove no election is in progress when r_est_ >= r. The estimate was
  // just doubled, so legitimate mid-election silent runs (at most
  // r * (4R^2 + 4R + 2) observer slots) cannot reach the barrier and an
  // eliminated station never rejoins a live election it lost fairly — it
  // simply waits there until the winner's ack.
  barrier_target_ = long_silence_threshold(r_est_);
  return SlotAction::kListen;
}

SlotAction AdaptiveAbsProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (status_ != Status::kRunning) return SlotAction::kListen;
  ++slots_;

  if (state_ == State::kInit) {
    AM_CHECK(!prev);
    max_phases_ = static_cast<std::uint32_t>(std::bit_width(ctx.n())) + 1;
    ++epochs_;
    abs_.emplace(AbsAutomaton::standard(ctx.id(), r_est_));
    state_ = State::kElecting;
    SlotAction a = abs_->next(std::nullopt);
    if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
      a = SlotAction::kTransmitControl;
    return a;
  }
  AM_CHECK(prev.has_value());

  if (state_ == State::kBarrier) {
    if (prev->feedback == Feedback::kAck) {
      // Someone won while we waited to rejoin.
      status_ = Status::kObservedWinner;
      return SlotAction::kListen;
    }
    if (prev->feedback == Feedback::kSilence) {
      if (++silent_run_ >= barrier_target_) {
        ++epochs_;
        abs_.emplace(AbsAutomaton::standard(ctx.id(), r_est_));
        state_ = State::kElecting;
        SlotAction a = abs_->next(std::nullopt);
        if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
          a = SlotAction::kTransmitControl;
        return a;
      }
    } else {
      silent_run_ = 0;
    }
    return SlotAction::kListen;
  }

  // kElecting.
  SlotAction a = abs_->next(prev);
  switch (abs_->outcome()) {
    case AbsAutomaton::Outcome::kWon:
      status_ = Status::kWon;
      return SlotAction::kListen;
    case AbsAutomaton::Outcome::kEliminated:
      // Under a correct estimate this is final. Under a too-small one the
      // elimination may be spurious; if the deciding feedback was the
      // winner's ack we are done, otherwise wait at the barrier and try
      // again with a doubled estimate.
      if (prev->feedback == Feedback::kAck) {
        status_ = Status::kObservedWinner;
        return SlotAction::kListen;
      }
      r_est_ *= 2;
      return restart_barrier();
    case AbsAutomaton::Outcome::kActive:
      if (abs_->phase() >= max_phases_) {
        // More phases than any correct election needs: R_est < r.
        r_est_ *= 2;
        return restart_barrier();
      }
      if (a == SlotAction::kTransmitPacket && ctx.queue_empty())
        a = SlotAction::kTransmitControl;
      return a;
  }
  AM_CHECK(false);
  return SlotAction::kListen;
}

void AdaptiveAbsProtocol::save_state(snapshot::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.u8(static_cast<std::uint8_t>(status_));
  w.boolean(abs_.has_value());
  if (abs_) abs_->save_state(w);
  w.u32(r_est_);
  w.u32(epochs_);
  w.u32(max_phases_);
  w.u64(silent_run_);
  w.u64(barrier_target_);
  w.u64(slots_);
}

void AdaptiveAbsProtocol::load_state(snapshot::Reader& r,
                                     sim::StationContext& ctx) {
  state_ = static_cast<State>(r.u8());
  status_ = static_cast<Status>(r.u8());
  if (r.boolean()) {
    abs_.emplace(AbsAutomaton::standard(ctx.id(), ctx.bound_r()));
    abs_->load_state(r);
  } else {
    abs_.reset();
  }
  r_est_ = r.u32();
  epochs_ = r.u32();
  max_phases_ = r.u32();
  silent_run_ = r.u64();
  barrier_target_ = r.u64();
  slots_ = r.u64();
}

}  // namespace asyncmac::core
