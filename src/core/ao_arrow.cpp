#include "core/ao_arrow.h"

#include "core/bounds.h"
#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::core {

namespace {
// Phase-transition telemetry for AO-ARRoW (docs/OBSERVABILITY.md).
struct AoArrowTelemetry {
  telemetry::Counter& elections =
      telemetry::Registry::global().counter("core.ao_arrow.elections");
  telemetry::Counter& wins =
      telemetry::Registry::global().counter("core.ao_arrow.wins");
  telemetry::Counter& long_silences =
      telemetry::Registry::global().counter("core.ao_arrow.long_silences");
  telemetry::Counter& syncs =
      telemetry::Registry::global().counter("core.ao_arrow.syncs");

  static AoArrowTelemetry& get() {
    static AoArrowTelemetry t;
    return t;
  }
};
}  // namespace

AoArrowProtocol::AoArrowProtocol(const AoArrowProtocol& other)
    : state_(other.state_),
      tuning_(other.tuning_),
      le_factory_(other.le_factory_),
      le_(other.le_ ? other.le_->clone() : nullptr),
      wait_(other.wait_),
      silent_run_(other.silent_run_),
      countdown_(other.countdown_),
      threshold_(other.threshold_),
      sync_countdown_(other.sync_countdown_),
      elections_(other.elections_),
      wins_(other.wins_),
      long_silences_(other.long_silences_),
      syncs_(other.syncs_) {}

std::unique_ptr<sim::Protocol> AoArrowProtocol::clone() const {
  return std::make_unique<AoArrowProtocol>(*this);
}

SlotAction AoArrowProtocol::enter_leader_election(sim::StationContext& ctx) {
  ++elections_;
  AoArrowTelemetry::get().elections.add();
  le_ = le_factory_ ? le_factory_(ctx.id(), ctx.n(), ctx.bound_r())
                    : AbsAutomaton::factory()(ctx.id(), ctx.n(),
                                              ctx.bound_r());
  state_ = State::kLeaderElection;
  return le_->next(std::nullopt);
}

SlotAction AoArrowProtocol::begin_iteration(sim::StationContext& ctx) {
  // Box (1): pure decision point, consumes no slot by itself.
  if (!ctx.queue_empty() && wait_ == 0) return enter_leader_election(ctx);
  state_ = State::kListen;
  silent_run_ = 0;
  return SlotAction::kListen;
}

SlotAction AoArrowProtocol::next_action(
    const std::optional<sim::SlotResult>& prev, sim::StationContext& ctx) {
  if (state_ == State::kInit) {
    AM_CHECK(!prev);
    threshold_ = tuning_.long_silence_slots
                     ? tuning_.long_silence_slots
                     : long_silence_threshold(ctx.bound_r());
    sync_countdown_ = tuning_.sync_countdown_slots
                          ? tuning_.sync_countdown_slots
                          : sync_countdown_slots(ctx.bound_r());
    return begin_iteration(ctx);
  }
  AM_CHECK(prev.has_value());

  switch (state_) {
    case State::kInit:
      break;  // unreachable; handled above

    case State::kLeaderElection: {
      const SlotAction action = le_->next(prev);
      switch (le_->outcome()) {
        case LeaderElection::Outcome::kActive:
          // ABS transmissions carry genuine packets; the queue cannot be
          // empty inside an election (it only shrinks via the winning
          // transmission, which ends the election).
          if (action == SlotAction::kTransmitPacket)
            AM_CHECK(!ctx.queue_empty());
          return action;
        case LeaderElection::Outcome::kWon:
          // The winning transmission already delivered one packet
          // (prev->delivered). Box (4): drain the rest.
          ++wins_;
          AoArrowTelemetry::get().wins.add();
          if (!ctx.queue_empty()) {
            state_ = State::kDrain;
            return SlotAction::kTransmitPacket;
          }
          wait_ = ctx.n() - 1;
          return begin_iteration(ctx);
        case LeaderElection::Outcome::kEliminated:
          // Box (5). If this very feedback was an ack the winner is
          // already decided; otherwise wait for the deciding ack first.
          state_ = (prev->feedback == Feedback::kAck)
                       ? State::kAwaitSilence
                       : State::kAwaitWinnerAck;
          return SlotAction::kListen;
      }
      break;
    }

    case State::kDrain:
      // A collided drain slot (possible while rejoining stations
      // synchronize) leaves the packet queued; keep transmitting.
      if (!ctx.queue_empty()) return SlotAction::kTransmitPacket;
      wait_ = ctx.n() - 1;
      return begin_iteration(ctx);

    case State::kAwaitWinnerAck:
      // During a live election every transmission either collides (busy)
      // or wins (first ack): the first ack marks the winner.
      if (prev->feedback == Feedback::kAck) state_ = State::kAwaitSilence;
      return SlotAction::kListen;

    case State::kAwaitSilence:
      // The winner's drain is contiguous in time, so a silent slot can
      // only appear after its last packet.
      if (prev->feedback == Feedback::kSilence) return begin_iteration(ctx);
      return SlotAction::kListen;

    case State::kListen:  // box (3)
      if (prev->feedback == Feedback::kAck) {
        // Box (6): a station won a leader election.
        if (wait_ > 0) --wait_;
        state_ = State::kAwaitSilence;
        return SlotAction::kListen;
      }
      if (prev->feedback == Feedback::kBusy) {
        silent_run_ = 0;
        return SlotAction::kListen;
      }
      if (++silent_run_ >= threshold_) {
        // Box (7): long silence proves no election is in progress.
        ++long_silences_;
        AoArrowTelemetry::get().long_silences.add();
        wait_ = 0;
        silent_run_ = 0;
        state_ = State::kSyncCountdown;
        countdown_ = sync_countdown_;
      }
      return SlotAction::kListen;

    case State::kSyncCountdown:
      if (prev->feedback != Feedback::kSilence) {
        // Somebody synchronized first — rejoin immediately (box 9's
        // "on hearing such a transmission").
        return begin_iteration(ctx);
      }
      if (--countdown_ == 0) {
        if (!ctx.queue_empty()) {
          state_ = State::kSyncTransmit;
          ++syncs_;
          AoArrowTelemetry::get().syncs.add();
          return SlotAction::kTransmitPacket;
        }
        // Nothing to transmit; re-evaluate from the top.
        return begin_iteration(ctx);
      }
      return SlotAction::kListen;

    case State::kSyncTransmit:
      // Our synchronizing packet went out (delivered or collided with a
      // fellow rejoiner); either way a new election round starts now.
      return begin_iteration(ctx);
  }
  AM_CHECK(false);
  return SlotAction::kListen;
}

void AoArrowProtocol::save_state(snapshot::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.boolean(le_ != nullptr);
  if (le_) le_->save_state(w);
  w.u32(wait_);
  w.u64(silent_run_);
  w.u64(countdown_);
  w.u64(threshold_);
  w.u64(sync_countdown_);
  w.u64(elections_);
  w.u64(wins_);
  w.u64(long_silences_);
  w.u64(syncs_);
}

void AoArrowProtocol::load_state(snapshot::Reader& r,
                                 sim::StationContext& ctx) {
  state_ = static_cast<State>(r.u8());
  if (r.boolean()) {
    le_ = le_factory_ ? le_factory_(ctx.id(), ctx.n(), ctx.bound_r())
                      : AbsAutomaton::factory()(ctx.id(), ctx.n(),
                                                ctx.bound_r());
    le_->load_state(r);
  } else {
    le_.reset();
  }
  wait_ = r.u32();
  silent_run_ = r.u64();
  countdown_ = r.u64();
  threshold_ = r.u64();
  sync_countdown_ = r.u64();
  elections_ = r.u64();
  wins_ = r.u64();
  long_silences_ = r.u64();
  syncs_ = r.u64();
}

}  // namespace asyncmac::core
