// asyncmac/core/leader_election.h
//
// The abstract leader-election subroutine. Theorem 3 is stated for
// AO-ARRoW with *any* Leader_Election(R) of per-station slot length A
// ("Let A be the length in slots of subroutine Leader_Election(R)…");
// the closed-form constants simply plug in ABS's A. Making the
// subroutine pluggable lets the benchmarks demonstrate why an
// asynchrony-safe election is load-bearing: AO-ARRoW over the classic
// synchronous binary search works at R = 1 and falls apart at R > 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "sim/protocol.h"
#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::core {

class LeaderElection {
 public:
  enum class Outcome : std::uint8_t { kActive, kWon, kEliminated };

  virtual ~LeaderElection() = default;

  /// Drive one slot boundary (nullopt before the election's first slot).
  /// A returned kTransmitPacket is abstract "transmit"; the caller remaps
  /// it to control when it has no packet to send.
  virtual SlotAction next(const std::optional<sim::SlotResult>& prev) = 0;

  virtual Outcome outcome() const = 0;
  bool active() const { return outcome() == Outcome::kActive; }

  /// Slots consumed while active (the paper's A, measured).
  virtual std::uint64_t slots() const = 0;

  /// Deep copy including all automaton state (protocols embedding an
  /// election must themselves be cloneable).
  virtual std::unique_ptr<LeaderElection> clone() const = 0;

  /// Checkpoint/resume: serialize/restore all automaton state, the
  /// construction parameters included (load_state runs on an instance the
  /// embedding protocol freshly created through its factory and must
  /// overwrite everything). Pure virtual on purpose — a forgotten
  /// implementation would silently break resumed determinism.
  virtual void save_state(snapshot::Writer& w) const = 0;
  virtual void load_state(snapshot::Reader& r) = 0;
};

/// Creates a fresh election instance for a station about to compete.
using LeaderElectionFactory = std::function<std::unique_ptr<LeaderElection>(
    StationId id, std::uint32_t n, std::uint32_t bound_r)>;

}  // namespace asyncmac::core
