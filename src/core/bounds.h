// asyncmac/core/bounds.h
//
// Closed-form bounds from the paper, used two ways:
//  * protocol constants — the ABS listening thresholds (Section III-A) and
//    the AO-ARRoW long-silence / synchronization thresholds (Section IV)
//    are *part of the algorithms* and are defined here once;
//  * reporting — the queue-size bounds L (Theorem 3), the CA-ARRoW bound
//    (Theorem 6) and the SST slot bounds (Theorems 1 and 2) are what the
//    benchmark harnesses print next to measured values.
//
// Units: "slots" counts a station's own slots; "time" is in model time
// units (multiply by kTicksPerUnit for ticks). r is the realized supremum
// of slot lengths, R the known bound; r <= R.
#pragma once

#include <cstdint>

#include "util/ratio.h"
#include "util/types.h"

namespace asyncmac::core {

// ------------------------------------------------------------------ ABS

/// Listening threshold for a 0-bit phase: 3R slots (Fig. 3, box 3).
std::uint64_t abs_threshold0(std::uint32_t R);

/// Listening threshold for a 1-bit phase: 4R^2 + 3R slots (Fig. 3, box 4).
std::uint64_t abs_threshold1(std::uint32_t R);

/// Upper bound on the slots of a single ABS phase (Lemma 5):
/// box 1 takes at most R+1 slots, the listening loop at most 4R^2 + 3R,
/// plus one transmitting slot.
std::uint64_t abs_slots_per_phase(std::uint32_t R);

/// Upper bound on the number of ABS phases: one per ID bit plus the final
/// winning phase (Theorem 1's O(log n)).
std::uint32_t abs_phases(std::uint32_t n);

/// Theorem 1: total per-station slot bound O(R^2 log n) with our constants.
std::uint64_t abs_slot_bound(std::uint32_t n, std::uint32_t R);

/// Theorem 2 lower bound on slots for any deterministic SST algorithm:
/// r * (log n / log r + 1), valid for r >= 2 (as double, asymptotic form).
double sst_lower_bound_slots(std::uint32_t n, std::uint32_t r);

// ------------------------------------------------------------ AO-ARRoW

/// Longest possible run of consecutive silent *alive-station* slots inside
/// one leader election (box 1 of Fig. 3 plus the long listening loop, with
/// slack): 4R^2 + 4R + 2.
std::uint64_t abs_max_silent_slots(std::uint32_t R);

/// AO-ARRoW long-silence threshold (Fig. 5 box 3 -> 7): the number of
/// consecutive silent slots an observer must count before concluding that
/// no leader election is in progress. One alive-station slot can span up
/// to R observer slots, hence the factor R.
std::uint64_t long_silence_threshold(std::uint32_t R);

/// AO-ARRoW rejoin synchronization countdown (Fig. 5 box 9):
/// threshold * R further slots before the synchronizing transmission.
std::uint64_t sync_countdown_slots(std::uint32_t R);

/// A — per-station slot length of one Leader_Election(R) call when the
/// subroutine is ABS (Theorem 3's discussion).
std::uint64_t arrow_A(std::uint32_t n, std::uint32_t R);

/// B — upper bound on the *time* (in units) any station can spend in a
/// long silence with a non-empty queue; r is the realized slot bound.
/// Paper: B = r(4R^2+3R) * R(R+1) + 2 = O(r R^4).
double arrow_B(std::uint32_t r, std::uint32_t R);

/// The Theorem-3 queue bounds, all in time units.
struct ArrowBounds {
  double A = 0;  ///< slots per leader election
  double B = 0;  ///< long-silence time bound
  double S = 0;  ///< subphase pivot: (nRA + b + B) / (1 - rho)
  double L0 = 0;
  double L1 = 0;
  double L = 0;  ///< max(L0, L1): Theorem 3's bound on total queued cost
};

/// Compute Theorem 3's L for injection rate rho < 1 and burstiness b
/// (time units). r is the realized slot-length bound used inside B.
ArrowBounds arrow_bounds(std::uint32_t n, std::uint32_t R, std::uint32_t r,
                         util::Ratio rho, double b_units);

// ------------------------------------------------------------ CA-ARRoW

/// Theorem 6: total queued cost never exceeds
/// (2 n R^2 (1 + rho) + b) / (1 - rho) (time units).
double ca_arrow_bound(std::uint32_t n, std::uint32_t R, util::Ratio rho,
                      double b_units);

}  // namespace asyncmac::core
