// asyncmac/core/abs.h
//
// ABS — Asymmetric Binary Search (Section III-A, Fig. 3): deterministic
// leader election / Single Successful Transmission on the partially
// asynchronous channel. Solves SST in O(R^2 log n) slots (Theorem 1).
//
// Automaton per station (labels follow Fig. 3):
//  (1) listen until the first silent slot (absorbs the tail of the
//      previous phase's transmissions, at most R+1 slots);
//  (2) b <- next bit of the station ID, least significant first (bits
//      beyond the ID's width read as 0; distinct IDs keep differing);
//  (3) if b = 0: listen 3R slots, or (4) if b = 1: listen 4R^2 + 3R
//      slots — abort to "exit by elimination" (6) on any busy slot;
//  (5) after a full silent listening run, transmit one slot: an ack means
//      "exit with winning" (7), otherwise advance to the next phase.
//
// The asymmetric thresholds make 0-bit stations transmit strictly earlier
// than 1-bit stations of the same phase regardless of (bounded) slot
// stretching, so 1-bit stations always hear the busy channel and drop out
// (Lemma 3) while all survivors stay phase-aligned within r time
// (Lemma 1).
//
// AbsAutomaton is an embeddable state machine (AO-ARRoW drives one as its
// leader-election subroutine); AbsProtocol adapts it to the engine's
// Protocol interface for standalone SST runs.
#pragma once

#include <cstdint>
#include <optional>

#include "core/bounds.h"
#include "core/leader_election.h"
#include "sim/protocol.h"
#include "util/types.h"

namespace asyncmac::core {

class AbsAutomaton final : public LeaderElection {
 public:
  using Outcome = LeaderElection::Outcome;

  struct Config {
    std::uint32_t id = 1;  ///< the station's ID (the value binary-searched)
    std::uint32_t R = 1;
    /// Listening thresholds; override only for ablation experiments.
    std::uint64_t threshold0 = 0;
    std::uint64_t threshold1 = 0;
  };

  /// The paper's parameterization: threshold0 = 3R, threshold1 = 4R^2+3R.
  static Config standard(std::uint32_t id, std::uint32_t R);

  explicit AbsAutomaton(const Config& config);

  /// Drive one slot boundary: process the previous slot's result (nullopt
  /// before the election's first slot) and return the next action.
  /// `transmit` actions must be mapped by the caller to packet or control
  /// transmissions. After the automaton leaves kActive it only listens.
  SlotAction next(const std::optional<sim::SlotResult>& prev) override;

  Outcome outcome() const noexcept override { return outcome_; }
  /// 0-based index of the current phase (= ID bit being compared).
  std::uint32_t phase() const noexcept { return phase_; }
  /// Slots consumed while the automaton was active.
  std::uint64_t slots() const noexcept override { return slots_; }

  std::unique_ptr<LeaderElection> clone() const override {
    return std::make_unique<AbsAutomaton>(*this);
  }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  /// The standard LeaderElectionFactory: ABS with the paper's thresholds.
  static LeaderElectionFactory factory();

 private:
  enum class State : std::uint8_t {
    kWaitSilence,  // box (1)
    kListenLoop,   // boxes (3)/(4)
    kTransmit,     // box (5): the slot in flight is our transmission
    kDone,
  };

  SlotAction begin_listen_loop();

  Config cfg_;
  State state_ = State::kWaitSilence;
  Outcome outcome_ = Outcome::kActive;
  std::uint32_t phase_ = 0;
  std::uint64_t counter_ = 0;  // silent slots seen in the listening loop
  std::uint64_t target_ = 0;   // threshold for the current listening loop
  std::uint64_t slots_ = 0;
};

/// Standalone Protocol wrapper for SST experiments. The "message" of the
/// paper's SST problem is the head-of-queue packet; inject exactly one
/// packet per participating station at time 0. If the queue is empty the
/// winning transmission degrades to a control signal (pure leader
/// election), which standalone harnesses may allow.
class AbsProtocol final : public sim::Protocol {
 public:
  /// Default-constructed: standard thresholds, parameters taken from the
  /// StationContext on the first call.
  AbsProtocol() = default;
  /// Explicit thresholds (ablation).
  AbsProtocol(std::uint64_t threshold0, std::uint64_t threshold1);

  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "ABS"; }
  bool finished() const override {
    return automaton_ && !automaton_->active();
  }

  const AbsAutomaton* automaton() const { return automaton_ ? &*automaton_ : nullptr; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  std::optional<std::uint64_t> override_t0_, override_t1_;
  std::optional<AbsAutomaton> automaton_;
};

}  // namespace asyncmac::core
