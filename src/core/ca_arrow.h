// asyncmac/core/ca_arrow.h
//
// CA-ARRoW — Collision-Avoidance Asynchronous Round Robin Withholding
// (Section VI, Fig. 6): dynamic packet transmission that NEVER generates a
// collision, at the price of control messages ("empty signals" by stations
// with empty queues). Universally stable (Theorem 6) with total queued
// cost bounded by (2nR^2(1+rho) + b) / (1-rho).
//
// All stations cycle a shared `turn` variable, kept consistent purely from
// channel feedback:
//  * the turn holder listens 2R of its own slots, then transmits — all of
//    its queued packets back-to-back, or a single empty signal when its
//    queue is empty — and advances its own turn immediately after;
//  * every other station listens until "the next sequence of consecutive
//    transmissions ends" (at least one busy/ack slot followed by a silent
//    slot) and then advances its turn.
//
// Why no listener can miscount sequences: transmissions inside one turn
// are contiguous in continuous time, so no listener slot inside the
// sequence is silent; and the 2R-slot wait of the next holder creates a
// gap of at least 2R time units, which (listener slots being at most R)
// contains at least one fully silent slot of every listener. Hence all
// stations agree on `turn`, only the holder ever transmits, and no two
// transmissions overlap.
#pragma once

#include <cstdint>

#include "sim/protocol.h"

namespace asyncmac::core {

class CaArrowProtocol final : public sim::Protocol {
 public:
  enum class State : std::uint8_t {
    kInit,
    kCountdown,         ///< our turn: waiting 2R slots before transmitting
    kDrain,             ///< our turn: transmitting all queued packets
    kNoise,             ///< our turn: the single empty-signal slot in flight
    kAwaitSequenceEnd,  ///< not our turn: listening for busy...silence
  };

  CaArrowProtocol() = default;

  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "CA-ARRoW"; }
  bool uses_control_messages() const override { return true; }

  State state() const noexcept { return state_; }
  StationId turn() const noexcept { return turn_; }
  std::uint64_t turns_taken() const noexcept { return turns_taken_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  SlotAction begin_phase(sim::StationContext& ctx);
  void advance_turn(const sim::StationContext& ctx);

  State state_ = State::kInit;
  StationId turn_ = 1;
  std::uint64_t countdown_ = 0;
  bool heard_transmission_ = false;
  std::uint64_t turns_taken_ = 0;
};

}  // namespace asyncmac::core
