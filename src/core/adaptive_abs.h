// asyncmac/core/adaptive_abs.h
//
// EXPERIMENTAL EXTENSION (Section VII open problem: "one may assume that
// the bound R exists but is not known"). AdaptiveAbsProtocol runs ABS
// with a doubling estimate of R:
//
//   * epoch k uses R_est = 2^k thresholds;
//   * a station concludes its estimate was too small when its election
//     does not resolve within the phase budget any correct election needs
//     (more than bit_width(n) + 1 phases — under a correct estimate each
//     ID bit is consumed by exactly one phase, Theorem 1's proof);
//   * it then doubles R_est, listens until it has heard
//     3 * R_est consecutive silent slots (a re-synchronization barrier in
//     the spirit of AO-ARRoW's long-silence rule) and restarts ABS from
//     the least significant bit;
//   * stations eliminated under a too-small estimate also rejoin at the
//     barrier unless a winner was already announced (they track the ack).
//
// Status: this is a heuristic, NOT covered by the paper's proofs. The
// test suite exercises it across the adversary families of this repo and
// bench_unknown_r quantifies the doubling penalty against known-R ABS;
// the paper's lower-bound machinery (mirror executions) still applies to
// it, as any deterministic algorithm.
#pragma once

#include <cstdint>
#include <optional>

#include "core/abs.h"
#include "sim/protocol.h"

namespace asyncmac::core {

class AdaptiveAbsProtocol final : public sim::Protocol {
 public:
  enum class Status : std::uint8_t { kRunning, kWon, kObservedWinner };

  /// initial_estimate >= 1; each failed epoch doubles it.
  explicit AdaptiveAbsProtocol(std::uint32_t initial_estimate = 1)
      : r_est_(initial_estimate) {}

  std::unique_ptr<sim::Protocol> clone() const override {
    return std::make_unique<AdaptiveAbsProtocol>(*this);
  }
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "adaptive-ABS"; }
  bool finished() const override { return status_ != Status::kRunning; }

  Status status() const noexcept { return status_; }
  std::uint32_t r_estimate() const noexcept { return r_est_; }
  std::uint32_t epochs() const noexcept { return epochs_; }
  std::uint64_t total_slots() const noexcept { return slots_; }

  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  SlotAction restart_barrier();

  enum class State : std::uint8_t { kInit, kElecting, kBarrier };

  State state_ = State::kInit;
  Status status_ = Status::kRunning;
  std::optional<AbsAutomaton> abs_;
  std::uint32_t r_est_;
  std::uint32_t epochs_ = 0;
  std::uint32_t max_phases_ = 0;  // set from n on first call
  std::uint64_t silent_run_ = 0;
  std::uint64_t barrier_target_ = 0;
  std::uint64_t slots_ = 0;
};

}  // namespace asyncmac::core
