// asyncmac/core/ao_arrow.h
//
// AO-ARRoW — Adaptive Order Asynchronous Round Robin Withholding
// (Section IV, Fig. 5): dynamic packet transmission with NO control
// messages (only genuine packets are ever transmitted); collisions may
// occur and are mitigated online. Universally stable for every injection
// rate rho < 1 (Theorem 3), with total queued cost bounded by L.
//
// Structure (box labels follow Fig. 5):
//  (1) begin iteration — a decision point between slots;
//  (2) with a non-empty queue and wait = 0, run a leader election (ABS);
//  (4) the winner transmits all packets in its queue, then sets
//      wait <- n-1 (it must sit out the next n-1 elections so nobody
//      starves);
//  (5) losers listen until the winner is decided (the election's first and
//      only ack) and then until the channel falls silent (the winner's
//      drain is a contiguous run of ack slots), then re-enter (1);
//  (3) ineligible or packet-less stations listen; each observed election
//      win decrements wait (6) and is followed by a listen-for-silence
//      (8); counting `threshold` consecutive silent slots proves no
//      election is in progress and resets wait (7);
//  (9) a station that saw the long silence listens threshold * R further
//      slots and then transmits one *packet* to re-synchronize: everyone
//      waiting to rejoin sees that transmission and starts a new election
//      together.
//
// The long-silence threshold must dominate any silent run inside a live
// election, converted to observer slots (factor R); the constants come
// from core/bounds.h.
#pragma once

#include <cstdint>
#include <optional>

#include "core/abs.h"
#include "sim/protocol.h"

namespace asyncmac::core {

class AoArrowProtocol final : public sim::Protocol {
 public:
  /// Observable state for tests and traces.
  enum class State : std::uint8_t {
    kInit,             ///< before the first slot
    kLeaderElection,   ///< box (2): ABS in flight
    kDrain,            ///< box (4): winner transmitting its queue
    kAwaitWinnerAck,   ///< box (5), stage 1: election undecided
    kAwaitSilence,     ///< boxes (5)/(8): winner draining, wait for quiet
    kListen,           ///< box (3)
    kSyncCountdown,    ///< box (9): counting threshold * R silent slots
    kSyncTransmit,     ///< box (9): our synchronizing packet is in flight
  };

  /// Default: ABS(R) as the Leader_Election(R) subroutine (the
  /// parameterization Theorem 3's constants assume). A custom factory
  /// lets experiments swap the election — e.g. the synchronous binary
  /// search, to demonstrate that an asynchrony-safe subroutine is
  /// load-bearing for R > 1.
  /// Ablation overrides for the wrapper constants; 0 selects the paper
  /// values (long_silence_threshold(R) and sync_countdown_slots(R)).
  /// Shrinking them below the paper values voids the no-mid-election-
  /// rejoin guarantee — bench_ablation quantifies the damage.
  struct Tuning {
    std::uint64_t long_silence_slots = 0;
    std::uint64_t sync_countdown_slots = 0;
  };

  AoArrowProtocol() = default;
  explicit AoArrowProtocol(LeaderElectionFactory le_factory)
      : le_factory_(std::move(le_factory)) {}
  explicit AoArrowProtocol(const Tuning& tuning) : tuning_(tuning) {}

  AoArrowProtocol(const AoArrowProtocol& other);
  AoArrowProtocol& operator=(const AoArrowProtocol&) = delete;

  std::unique_ptr<sim::Protocol> clone() const override;
  SlotAction next_action(const std::optional<sim::SlotResult>& prev,
                         sim::StationContext& ctx) override;
  std::string name() const override { return "AO-ARRoW"; }
  bool uses_control_messages() const override { return false; }

  State state() const noexcept { return state_; }
  std::uint32_t wait() const noexcept { return wait_; }
  std::uint64_t elections_entered() const noexcept { return elections_; }
  std::uint64_t elections_won() const noexcept { return wins_; }
  /// Box-7 events: long silences observed (phase boundaries of Fig. 4).
  std::uint64_t long_silences() const noexcept { return long_silences_; }
  /// Box-9 synchronizing packets sent.
  std::uint64_t sync_transmissions() const noexcept { return syncs_; }

  /// Checkpoint/resume. The election subroutine is restored through
  /// le_factory_ (the snapshot stores only its state, not its type), so a
  /// resumed run must be constructed with the same factory.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r, sim::StationContext& ctx) override;

 private:
  SlotAction begin_iteration(sim::StationContext& ctx);
  SlotAction enter_leader_election(sim::StationContext& ctx);

  State state_ = State::kInit;
  Tuning tuning_;
  LeaderElectionFactory le_factory_;     // null => ABS standard
  std::unique_ptr<LeaderElection> le_;
  std::uint32_t wait_ = 0;
  std::uint64_t silent_run_ = 0;
  std::uint64_t countdown_ = 0;
  std::uint64_t threshold_ = 0;       // set from R on first call
  std::uint64_t sync_countdown_ = 0;  // set from R on first call
  std::uint64_t elections_ = 0;
  std::uint64_t wins_ = 0;
  std::uint64_t long_silences_ = 0;
  std::uint64_t syncs_ = 0;
};

}  // namespace asyncmac::core
