// asyncmac/energy/meter.h
//
// SoA per-station energy accumulator. The meter stores exact slot
// *counts* per billing class (transmit / listen / sleep) in flat
// per-station arrays; charges are the linear combination with an
// EnergyModel's costs, computed on demand in exact u64 arithmetic. The
// split keeps the hot-path increment a single array bump, makes cohort
// lane-batched charging a unit-stride `+= m` strip, and lets one run be
// re-priced under a different cost vector without re-simulating.
//
// Stations are 1-based (engine convention); index 0 is unused storage.
// Serialization (save_state/load_state) rides at the tail of the engine
// snapshot payloads, gated by the model's enabled flag — see
// sim/engine.cpp and docs/ENERGY.md.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/model.h"
#include "snapshot/fwd.h"
#include "util/check.h"
#include "util/types.h"

namespace asyncmac::energy {

class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(std::uint32_t n) { reset(n); }

  void reset(std::uint32_t n) {
    n_ = n;
    tx_slots_.assign(n + 1, 0);
    listen_slots_.assign(n + 1, 0);
    sleep_slots_.assign(n + 1, 0);
  }

  std::uint32_t n() const noexcept { return n_; }

  /// Bill `count` transmitting slots to `station`.
  void add_transmit(StationId station, std::uint64_t count = 1) {
    AM_CHECK(station >= 1 && station <= n_);
    tx_slots_[station] += count;
  }

  /// Bill `count` listening slots to `station`: sleep-priced when the
  /// station's queue was empty at the slot end, listen-priced otherwise.
  void add_idle(StationId station, bool queue_empty, std::uint64_t count = 1) {
    AM_CHECK(station >= 1 && station <= n_);
    if (queue_empty)
      sleep_slots_[station] += count;
    else
      listen_slots_[station] += count;
  }

  std::uint64_t tx_slots(StationId station) const {
    AM_CHECK(station >= 1 && station <= n_);
    return tx_slots_[station];
  }
  std::uint64_t listen_slots(StationId station) const {
    AM_CHECK(station >= 1 && station <= n_);
    return listen_slots_[station];
  }
  std::uint64_t sleep_slots(StationId station) const {
    AM_CHECK(station >= 1 && station <= n_);
    return sleep_slots_[station];
  }

  /// Exact charge of one station under `model`'s cost vector.
  std::uint64_t station_charge(const EnergyModel& model,
                               StationId station) const {
    AM_CHECK(station >= 1 && station <= n_);
    return tx_slots_[station] * model.cost_transmit +
           listen_slots_[station] * model.cost_listen +
           sleep_slots_[station] * model.cost_sleep;
  }

  /// Sum of station charges.
  std::uint64_t total_charge(const EnergyModel& model) const {
    std::uint64_t total = 0;
    for (StationId i = 1; i <= n_; ++i) total += station_charge(model, i);
    return total;
  }

  /// Largest single-station charge (0 when n == 0).
  std::uint64_t peak_station_charge(const EnergyModel& model) const {
    std::uint64_t peak = 0;
    for (StationId i = 1; i <= n_; ++i) {
      const std::uint64_t c = station_charge(model, i);
      if (c > peak) peak = c;
    }
    return peak;
  }

  bool operator==(const EnergyMeter& o) const noexcept {
    return n_ == o.n_ && tx_slots_ == o.tx_slots_ &&
           listen_slots_ == o.listen_slots_ && sleep_slots_ == o.sleep_slots_;
  }
  bool operator!=(const EnergyMeter& o) const noexcept {
    return !(*this == o);
  }

  /// Checkpoint/resume: the three count arrays, n-prefixed.
  /// load_state requires the same station count (kMismatch otherwise).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  std::uint32_t n_ = 0;
  std::vector<std::uint64_t> tx_slots_;
  std::vector<std::uint64_t> listen_slots_;
  std::vector<std::uint64_t> sleep_slots_;
};

}  // namespace asyncmac::energy
