// asyncmac/energy/model.h
//
// Per-slot energy cost model (docs/ENERGY.md). De Marco–Kowalski–
// Stachowiak (arXiv 2209.14140) charge a station for every slot it
// spends transmitting or listening with packets pending; a station with
// an empty queue can power its radio down and sleep. The model here is
// the configurable integer generalization: each station slot is billed
// exactly one of three costs, decided by the slot action and the queue
// state at the slot's end event:
//
//   transmit — the slot transmitted (packet or control signal);
//   listen   — the slot listened and the station's queue was non-empty
//              (the station must stay receive-ready);
//   sleep    — the slot listened with an empty queue (idle-sleep).
//
// Costs are exact integers so accumulated charges are deterministic and
// serialize bit-for-bit. The default (1/1/0) is the related paper's
// transmitting-and-listening cost model.
//
// Determinism contract: energy accounting is observation-only. Enabling
// it changes no RunStats, trace, feedback or verdict byte — engines
// charge meters strictly after all simulation decisions of a slot
// (tests/test_energy.cpp pins this, mirroring the telemetry guarantee).
#pragma once

#include <cstdint>

namespace asyncmac::energy {

struct EnergyModel {
  bool enabled = false;
  std::uint64_t cost_transmit = 1;  ///< per transmitting slot
  std::uint64_t cost_listen = 1;    ///< per listening slot, queue non-empty
  std::uint64_t cost_sleep = 0;     ///< per listening slot, queue empty

  bool operator==(const EnergyModel& o) const noexcept {
    return enabled == o.enabled && cost_transmit == o.cost_transmit &&
           cost_listen == o.cost_listen && cost_sleep == o.cost_sleep;
  }
  bool operator!=(const EnergyModel& o) const noexcept {
    return !(*this == o);
  }
};

}  // namespace asyncmac::energy
