#include "energy/meter.h"

#include "snapshot/io.h"

namespace asyncmac::energy {

void EnergyMeter::save_state(snapshot::Writer& w) const {
  w.u32(n_);
  for (StationId i = 1; i <= n_; ++i) w.u64(tx_slots_[i]);
  for (StationId i = 1; i <= n_; ++i) w.u64(listen_slots_[i]);
  for (StationId i = 1; i <= n_; ++i) w.u64(sleep_slots_[i]);
}

void EnergyMeter::load_state(snapshot::Reader& r) {
  const std::uint32_t n = r.u32();
  if (n != n_)
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "energy meter station count differs from the snapshot's");
  for (StationId i = 1; i <= n_; ++i) tx_slots_[i] = r.u64();
  for (StationId i = 1; i <= n_; ++i) listen_slots_[i] = r.u64();
  for (StationId i = 1; i <= n_; ++i) sleep_slots_[i] = r.u64();
}

}  // namespace asyncmac::energy
