#include "live/virtual_net.h"

#include <algorithm>

#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::live {

VirtualNet::VirtualNet(Daemon& daemon, std::vector<StationMachine*> stations,
                       EmulationKnobs knobs)
    : daemon_(daemon),
      stations_(std::move(stations)),
      knobs_(knobs),
      rng_(knobs.seed) {
  AM_REQUIRE(stations_.size() == daemon_.station_count(),
             "one station machine per station");
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    AM_REQUIRE(stations_[i] != nullptr, "station machine must not be null");
    AM_REQUIRE(stations_[i]->id() == static_cast<StationId>(i + 1),
               "station machines must be ordered by id");
  }
  timers_.resize(stations_.size());
}

void VirtualNet::add_drop(bool to_station, StationId station,
                          std::uint64_t nth) {
  drops_[{to_station, station}].push_back(nth);
}

Tick VirtualNet::latency() {
  Tick lat = knobs_.delay;
  if (knobs_.jitter > 0)
    lat += static_cast<Tick>(
        rng_.below(static_cast<std::uint64_t>(knobs_.jitter) + 1));
  return lat;
}

void VirtualNet::dispatch(StationId station, bool to_station,
                          std::vector<std::uint8_t> bytes) {
  if (knobs_.loss > 0 && rng_.chance(knobs_.loss)) {
    telemetry::count("live.emu_dropped");
    return;
  }
  const std::uint64_t index = sent_counts_[{to_station, station}]++;
  auto it = drops_.find({to_station, station});
  if (it != drops_.end()) {
    auto& list = it->second;
    auto pos = std::find(list.begin(), list.end(), index);
    if (pos != list.end()) {
      list.erase(pos);
      telemetry::count("live.emu_dropped");
      return;
    }
  }
  Event ev;
  ev.time = now_ + latency();
  ev.seq = next_event_seq_++;
  ev.station = station;
  ev.to_station = to_station;
  ev.bytes = std::move(bytes);
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void VirtualNet::apply_station_actions(StationId id,
                                       StationMachine::Actions actions) {
  for (auto& bytes : actions.sends)
    dispatch(id, /*to_station=*/false, std::move(bytes));
  timers_[id - 1] = actions.finished ? std::nullopt : actions.timer;
}

bool VirtualNet::run(std::uint64_t max_events) {
  // Kick every station off at tick 0 (all Joins land in one wave).
  for (StationId id = 1; id <= stations_.size(); ++id)
    apply_station_actions(id, stations_[id - 1]->on_start(0));

  std::uint64_t processed = 0;
  while (processed < max_events) {
    const bool all_finished = [&] {
      if (!daemon_done_) return false;
      for (const StationMachine* s : stations_)
        if (!s->finished()) return false;
      return true;
    }();
    if (all_finished) return true;

    // Next tick: earliest pending datagram or due timer.
    Tick next = kTickInfinity;
    if (!queue_.empty()) next = queue_.front().time;
    for (const auto& t : timers_)
      if (t && *t < next) next = *t;
    if (next == kTickInfinity) return false;  // deadlock
    AM_CHECK(next >= now_);
    now_ = next;

    // Drain the tick: station deliveries, then due station timers, then
    // the daemon's wave — repeating, because zero-latency replies land
    // back in the same tick.
    bool progressed = true;
    while (progressed && processed < max_events) {
      progressed = false;

      // Station-bound datagrams at now_, in (time, seq) arrival order.
      while (!queue_.empty() && queue_.front().time <= now_ &&
             queue_.front().to_station) {
        std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
        Event ev = std::move(queue_.back());
        queue_.pop_back();
        ++processed;
        progressed = true;
        apply_station_actions(
            ev.station, stations_[ev.station - 1]->on_datagram(now_, ev.bytes));
      }

      // Due station timers (deliveries above may have re-armed them).
      for (StationId id = 1; id <= stations_.size(); ++id) {
        auto& t = timers_[id - 1];
        if (t && *t <= now_) {
          t.reset();
          ++processed;
          progressed = true;
          apply_station_actions(id, stations_[id - 1]->on_timer(now_));
        }
      }

      // All daemon-bound datagrams of this tick form one wave.
      if (!queue_.empty() && queue_.front().time <= now_ &&
          !queue_.front().to_station) {
        std::vector<std::vector<std::uint8_t>> batch;
        while (!queue_.empty() && queue_.front().time <= now_ &&
               !queue_.front().to_station) {
          std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
          batch.push_back(std::move(queue_.back().bytes));
          queue_.pop_back();
        }
        ++processed;
        progressed = true;
        DaemonActions acts = daemon_.on_batch(now_, batch);
        if (acts.done) daemon_done_ = true;
        for (auto& s : acts.sends)
          dispatch(s.to, /*to_station=*/true, std::move(s.datagram));
      }
    }
  }
  return false;
}

VirtualRunReport run_virtual(const snapshot::RunSpec& spec,
                             const VirtualRunOptions& opt) {
  DaemonConfig dc;
  dc.spec = spec;
  dc.chunks = opt.chunks;
  dc.stability = opt.stability;
  Daemon daemon(dc);

  std::vector<std::unique_ptr<StationMachine>> machines;
  machines.reserve(spec.n);
  for (StationId id = 1; id <= spec.n; ++id) {
    StationConfig sc;
    sc.id = id;
    sc.name = "station-" + std::to_string(id);
    sc.retry_ticks = opt.retry_ticks;
    sc.max_retries = opt.max_retries;
    machines.push_back(std::make_unique<StationMachine>(sc));
  }
  std::vector<StationMachine*> ptrs;
  for (auto& m : machines) ptrs.push_back(m.get());

  VirtualNet net(daemon, ptrs, opt.knobs);
  VirtualRunReport report;
  report.completed = net.run(opt.max_events);
  for (const auto& m : machines)
    report.station_exit_max = std::max(report.station_exit_max, m->exit_code());
  report.daemon_failed = daemon.failed();
  report.reason = daemon.reason();
  report.stats = daemon.stats();
  report.channel = daemon.live_channel_stats();
  report.energy = daemon.energy_meter();
  report.trace = daemon.trace().slots();
  report.samples = daemon.backlog_samples();
  if (!report.samples.empty()) report.verdict = daemon.verdict();
  return report;
}

}  // namespace asyncmac::live
