// asyncmac/live/wire.h
//
// Datagram codec of the live-channel protocol (docs/LIVE.md). Unlike the
// sweep wire (a stream protocol with incremental reassembly), live mode
// speaks UDP: one datagram carries exactly one message, so the codec is a
// single-shot encode/decode pair with no streaming state:
//
//   offset  size  field
//   0       4     magic "AMLD"
//   4       4     wire version (u32 LE, kLiveWireVersion)
//   8       1     message type (MsgType)
//   9       8     payload length (u64 LE, <= kMaxDatagramPayload)
//   17      4     CRC-32 of the payload (u32 LE)
//   21      ...   payload (snapshot::Writer encoding)
//
// The decoder is strict: short datagrams, bad magic/version/type, length
// mismatches, CRC failures and trailing payload bytes all raise a typed
// snapshot::SnapshotError and never undefined behaviour — a live daemon
// is exposed to whatever a socket delivers (pinned by tests/test_live_wire
// under ASan/UBSan). The daemon drops malformed datagrams and keeps
// serving; it must never crash on network input.
//
// Versioning policy mirrors sweep/wire.h: kLiveWireVersion bumps on ANY
// schema change and peers refuse other versions — daemon and stations are
// binaries of one build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace asyncmac::live {

inline constexpr std::uint32_t kLiveWireVersion = 1;
inline constexpr std::uint8_t kDatagramMagic[4] = {'A', 'M', 'L', 'D'};
inline constexpr std::size_t kDatagramHeaderBytes = 21;
/// A feedback datagram carries at most one poll's worth of injections;
/// 60 KiB keeps every message within a single unfragmented-ish UDP
/// payload and bounds allocation from a corrupted length field.
inline constexpr std::uint64_t kMaxDatagramPayload = 60 * 1024;

/// Message types of the daemon/station protocol. Values are wire-stable.
enum class MsgType : std::uint8_t {
  kJoin = 1,      ///< station -> daemon: register (retransmitted until Welcome)
  kWelcome = 2,   ///< daemon -> station: run parameters + t=0 injections
  kBoundary = 3,  ///< station -> daemon: protocol decided the next slot action
  kGrant = 4,     ///< daemon -> station: slot length for the announced slot
  kSlotEnd = 5,   ///< station -> daemon: slot timer expired
  kFeedback = 6,  ///< daemon -> station: channel feedback + new injections
  kFin = 7,       ///< daemon -> station: horizon reached (or fatal violation)
};

const char* to_string(MsgType t) noexcept;
bool known_type(std::uint8_t t) noexcept;

/// An injection delta shipped to the owning station (kWelcome/kFeedback).
struct InjectionDelta {
  Tick injected_at = 0;
  Tick cost = 0;
};

/// One decoded datagram. A single struct (rather than one per type) keeps
/// the codec flat; unused fields stay at their defaults and are not
/// encoded for types that do not carry them.
struct Msg {
  MsgType type = MsgType::kJoin;

  /// kJoin/kBoundary/kSlotEnd: sender. kWelcome: the id being confirmed.
  StationId station = 0;
  /// kJoin: station's display name. kWelcome: protocol registry name.
  /// kFin: human-readable reason ("horizon" or a violation description).
  std::string name;

  // kWelcome run parameters (the station builds its StationContext and
  // protocol instance from exactly these — nothing else crosses the wire).
  std::uint32_t n = 0;
  std::uint32_t bound_r = 0;
  std::uint64_t rng_seed = 0;
  Tick horizon_ticks = 0;

  /// kBoundary/kGrant/kSlotEnd/kFeedback: 1-based slot index.
  SlotIndex slot_index = 0;
  /// kBoundary: the action the protocol chose for this slot.
  SlotAction action = SlotAction::kListen;
  /// kGrant: adversary-chosen slot length in ticks.
  Tick length = 0;
  /// kFeedback.
  Feedback feedback = Feedback::kSilence;
  bool delivered = false;
  /// kFin: true on clean horizon completion, false on a protocol violation.
  bool ok = false;

  /// kWelcome/kFeedback: injections owned by the receiving station, in
  /// engine poll order. The station pushes them before popping a
  /// delivered packet — the exact queue-mutation order of sim::Engine.
  std::vector<InjectionDelta> injections;
};

/// Encode one message as a complete datagram (header + CRC + payload).
std::vector<std::uint8_t> encode(const Msg& m);

/// Decode and validate one datagram. Throws snapshot::SnapshotError
/// (kTruncated/kBadMagic/kBadVersion/kBadCrc/kCorrupt) on any violation.
Msg decode(const std::uint8_t* data, std::size_t size);
Msg decode(const std::vector<std::uint8_t>& datagram);

}  // namespace asyncmac::live
