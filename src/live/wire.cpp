#include "live/wire.h"

#include <cstring>

#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::live {

namespace {

using snapshot::ErrorKind;
using snapshot::SnapshotError;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_injections(snapshot::Writer& w,
                       const std::vector<InjectionDelta>& v) {
  w.u64(v.size());
  for (const auto& d : v) {
    w.i64(d.injected_at);
    w.i64(d.cost);
  }
}

std::vector<InjectionDelta> decode_injections(snapshot::Reader& r) {
  const std::uint64_t count = r.u64();
  // A feedback datagram never carries more injections than fit in the
  // payload cap; reject absurd counts before allocating.
  if (count > kMaxDatagramPayload / 16)
    throw SnapshotError(ErrorKind::kCorrupt, "injection count out of range");
  std::vector<InjectionDelta> v;
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    InjectionDelta d;
    d.injected_at = r.i64();
    d.cost = r.i64();
    v.push_back(d);
  }
  return v;
}

SlotAction decode_action(std::uint8_t v) {
  switch (v) {
    case 0: return SlotAction::kListen;
    case 1: return SlotAction::kTransmitPacket;
    case 2: return SlotAction::kTransmitControl;
  }
  throw SnapshotError(ErrorKind::kCorrupt, "unknown slot action");
}

std::uint8_t encode_action(SlotAction a) {
  switch (a) {
    case SlotAction::kListen: return 0;
    case SlotAction::kTransmitPacket: return 1;
    case SlotAction::kTransmitControl: return 2;
  }
  AM_CHECK_MSG(false, "unreachable slot action");
  return 0;
}

Feedback decode_feedback(std::uint8_t v) {
  switch (v) {
    case 0: return Feedback::kSilence;
    case 1: return Feedback::kBusy;
    case 2: return Feedback::kAck;
  }
  throw SnapshotError(ErrorKind::kCorrupt, "unknown feedback");
}

std::uint8_t encode_feedback(Feedback f) {
  switch (f) {
    case Feedback::kSilence: return 0;
    case Feedback::kBusy: return 1;
    case Feedback::kAck: return 2;
  }
  AM_CHECK_MSG(false, "unreachable feedback");
  return 0;
}

}  // namespace

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kJoin: return "join";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kBoundary: return "boundary";
    case MsgType::kGrant: return "grant";
    case MsgType::kSlotEnd: return "slot-end";
    case MsgType::kFeedback: return "feedback";
    case MsgType::kFin: return "fin";
  }
  return "?";
}

bool known_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MsgType::kJoin) &&
         t <= static_cast<std::uint8_t>(MsgType::kFin);
}

std::vector<std::uint8_t> encode(const Msg& m) {
  snapshot::Writer w;
  switch (m.type) {
    case MsgType::kJoin:
      w.u32(m.station);
      w.str(m.name);
      break;
    case MsgType::kWelcome:
      w.u32(m.station);
      w.str(m.name);
      w.u32(m.n);
      w.u32(m.bound_r);
      w.u64(m.rng_seed);
      w.i64(m.horizon_ticks);
      encode_injections(w, m.injections);
      break;
    case MsgType::kBoundary:
      w.u32(m.station);
      w.u64(m.slot_index);
      w.u8(encode_action(m.action));
      break;
    case MsgType::kGrant:
      w.u64(m.slot_index);
      w.i64(m.length);
      break;
    case MsgType::kSlotEnd:
      w.u32(m.station);
      w.u64(m.slot_index);
      break;
    case MsgType::kFeedback:
      w.u64(m.slot_index);
      w.u8(encode_feedback(m.feedback));
      w.boolean(m.delivered);
      encode_injections(w, m.injections);
      break;
    case MsgType::kFin:
      w.boolean(m.ok);
      w.str(m.name);
      break;
  }
  const std::vector<std::uint8_t>& payload = w.buffer();
  AM_CHECK_MSG(payload.size() <= kMaxDatagramPayload, "live datagram too large");

  std::vector<std::uint8_t> out;
  out.reserve(kDatagramHeaderBytes + payload.size());
  out.insert(out.end(), kDatagramMagic, kDatagramMagic + 4);
  put_u32(out, kLiveWireVersion);
  out.push_back(static_cast<std::uint8_t>(m.type));
  put_u64(out, payload.size());
  put_u32(out, snapshot::crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Msg decode(const std::uint8_t* data, std::size_t size) {
  if (size < kDatagramHeaderBytes)
    throw SnapshotError(ErrorKind::kTruncated, "datagram shorter than header");
  if (std::memcmp(data, kDatagramMagic, 4) != 0)
    throw SnapshotError(ErrorKind::kBadMagic, "not a live-channel datagram");
  const std::uint32_t version = get_u32(data + 4);
  if (version != kLiveWireVersion)
    throw SnapshotError(ErrorKind::kBadVersion,
                        "live wire version " + std::to_string(version));
  const std::uint8_t raw_type = data[8];
  if (!known_type(raw_type))
    throw SnapshotError(ErrorKind::kCorrupt,
                        "unknown message type " + std::to_string(raw_type));
  const std::uint64_t len = get_u64(data + 9);
  if (len > kMaxDatagramPayload)
    throw SnapshotError(ErrorKind::kCorrupt, "payload length out of range");
  if (size != kDatagramHeaderBytes + len)
    throw SnapshotError(ErrorKind::kTruncated,
                        "datagram size does not match payload length");
  const std::uint8_t* payload = data + kDatagramHeaderBytes;
  const std::uint32_t crc = get_u32(data + 17);
  if (snapshot::crc32(payload, static_cast<std::size_t>(len)) != crc)
    throw SnapshotError(ErrorKind::kBadCrc, "payload checksum mismatch");

  snapshot::Reader r(payload, static_cast<std::size_t>(len));
  Msg m;
  m.type = static_cast<MsgType>(raw_type);
  switch (m.type) {
    case MsgType::kJoin:
      m.station = r.u32();
      m.name = r.str();
      break;
    case MsgType::kWelcome:
      m.station = r.u32();
      m.name = r.str();
      m.n = r.u32();
      m.bound_r = r.u32();
      m.rng_seed = r.u64();
      m.horizon_ticks = r.i64();
      m.injections = decode_injections(r);
      break;
    case MsgType::kBoundary:
      m.station = r.u32();
      m.slot_index = r.u64();
      m.action = decode_action(r.u8());
      break;
    case MsgType::kGrant:
      m.slot_index = r.u64();
      m.length = r.i64();
      break;
    case MsgType::kSlotEnd:
      m.station = r.u32();
      m.slot_index = r.u64();
      break;
    case MsgType::kFeedback:
      m.slot_index = r.u64();
      m.feedback = decode_feedback(r.u8());
      m.delivered = r.boolean();
      m.injections = decode_injections(r);
      break;
    case MsgType::kFin:
      m.ok = r.boolean();
      m.name = r.str();
      break;
  }
  r.expect_end();
  return m;
}

Msg decode(const std::vector<std::uint8_t>& datagram) {
  return decode(datagram.data(), datagram.size());
}

}  // namespace asyncmac::live
