// asyncmac/live/station.h
//
// Sans-IO station client of live mode (docs/LIVE.md). A StationMachine
// wraps one unmodified sim::Protocol automaton and maps the engine's
// slot-boundary events onto timers and datagrams:
//
//   Join ->                      (retransmitted until Welcome)
//        <- Welcome              build context + protocol, push t=0
//                                injections, first next_action
//   Boundary(i, action) ->
//        <- Grant(i, length)     arm the slot timer
//   [timer fires]
//   SlotEnd(i) ->
//        <- Feedback(i, fb, delivered, injections)
//                                push injections, pop on delivery,
//                                next_action -> Boundary(i+1, ...)
//   ...
//        <- Fin(ok)              run complete (or poisoned)
//
// The protocol observes exactly what it observes under sim::Engine: its
// StationContext (id, n, R, rng seed from Welcome, own queue) and the
// per-slot SlotResult. Queue mutations replay the engine's order — all
// pending injections are pushed before a delivered packet is popped —
// so under the virtual clock the automaton's decision sequence is
// bit-identical to a simulated run. Packet seq numbers are not shipped
// (stations cannot observe them); the daemon's mirror holds the real ones.
//
// Loss handling: every request (Join/Boundary/SlotEnd) is retransmitted
// after retry_ticks without a reply, up to max_retries consecutive times,
// then the machine gives up with exit code 1 (a dead daemon must not hang
// a station forever). Replies are matched by slot index; stale or
// malformed datagrams are dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "live/wire.h"
#include "sim/protocol.h"
#include "sim/station.h"
#include "util/types.h"

namespace asyncmac::live {

struct StationConfig {
  StationId id = 1;
  std::string name = "station";
  /// Reply timeout before a retransmit. Virtual-clock runs never hit it
  /// (replies land on the same tick); UDP runs should set it to a few
  /// RTTs worth of ticks.
  Tick retry_ticks = units(64);
  /// Consecutive unanswered retransmits before giving up (exit 1).
  int max_retries = 25;
};

class StationMachine {
 public:
  explicit StationMachine(StationConfig cfg);
  ~StationMachine();

  struct Actions {
    std::vector<std::vector<std::uint8_t>> sends;  ///< datagrams to daemon
    /// Absolute tick of the next wanted wake-up (slot end or retry),
    /// nullopt when finished.
    std::optional<Tick> timer;
    bool finished = false;
    int exit_code = 0;
  };

  /// Send the initial Join and arm the retry timer.
  Actions on_start(Tick now);
  /// Feed one received datagram. Malformed input is dropped.
  Actions on_datagram(Tick now, const std::uint8_t* data, std::size_t size);
  Actions on_datagram(Tick now, const std::vector<std::uint8_t>& d) {
    return on_datagram(now, d.data(), d.size());
  }
  /// Clock callback; fires slot ends and retransmits that are due.
  Actions on_timer(Tick now);

  bool finished() const noexcept { return phase_ == Phase::kDone; }
  int exit_code() const noexcept { return exit_code_; }
  /// Slots fully settled (Feedback applied).
  std::uint64_t slots_completed() const noexcept { return completed_; }
  std::uint64_t retransmits() const noexcept { return retransmits_; }
  StationId id() const noexcept { return cfg_.id; }

 private:
  enum class Phase : std::uint8_t {
    kJoining,        ///< Join sent, awaiting Welcome
    kAwaitGrant,     ///< Boundary sent, awaiting Grant
    kInSlot,         ///< slot timer armed, awaiting its expiry
    kAwaitFeedback,  ///< SlotEnd sent, awaiting Feedback
    kDone,
  };

  void handle_welcome(Tick now, const Msg& m, Actions& out);
  void handle_grant(Tick now, const Msg& m, Actions& out);
  void handle_feedback(Tick now, const Msg& m, Actions& out);
  void send_request(Tick now, const Msg& m, Actions& out);
  void announce_boundary(Tick now, SlotAction action, Actions& out);
  void give_up(int code, Actions& out);
  void fill_timer(Actions& out) const;

  StationConfig cfg_;
  Phase phase_ = Phase::kJoining;
  std::optional<sim::StationContext> ctx_;
  std::unique_ptr<sim::Protocol> protocol_;
  SlotIndex slot_index_ = 0;
  SlotAction action_ = SlotAction::kListen;
  std::vector<std::uint8_t> last_sent_;
  std::optional<Tick> retry_deadline_;
  std::optional<Tick> slot_deadline_;
  int retries_ = 0;
  int exit_code_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace asyncmac::live
